//! Bring your own workload: assembly in, cycle-level results out.
//!
//! Demonstrates the full library surface a downstream user touches:
//! write a program in the `cpe-isa` assembly language, check its
//! architectural result with the functional emulator, then time it on two
//! machines — and, separately, drive the simulator with a purely
//! synthetic reference stream for controlled experiments.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use cpe::isa::{asm::assemble, Emulator};
use cpe::workloads::synth::{AddressPattern, SynthConfig, SyntheticTrace};
use cpe::{SimConfig, Simulator};

/// A little stencil kernel: b[i] = (a[i-1] + a[i] + a[i+1]) for an
/// L1-resident array, repeated over several sweeps.
const STENCIL: &str = r#"
    .data
    a:    .space 8208          # 1026 elements (one halo each side)
    b:    .space 8192
    sink: .space 8
    .text
    main:
        # init a[i] = i & 63
        la   t0, a
        li   t1, 1026
        li   t2, 0
    init:
        andi t3, t2, 63
        sd   t3, 0(t0)
        addi t0, t0, 8
        addi t2, t2, 1
        addi t1, t1, -1
        bnez t1, init
        li   s0, 40            # sweeps
    sweep:
        la   t0, a
        la   t1, b
        li   t2, 1024
    row:
        ld   a0, 0(t0)
        ld   a1, 8(t0)
        ld   a2, 16(t0)
        add  a0, a0, a1
        add  a0, a0, a2
        sd   a0, 0(t1)
        addi t0, t0, 8
        addi t1, t1, 8
        addi t2, t2, -1
        bnez t2, row
        addi s0, s0, -1
        bnez s0, sweep
        # checksum: b[0] + b[1023]
        la   t1, b
        ld   a0, 0(t1)
        ld   a1, 8184(t1)
        add  a0, a0, a1
        la   t2, sink
        sd   a0, 0(t2)
        halt
"#;

fn main() {
    // 1. Assemble and check the program functionally.
    let program = assemble(STENCIL).expect("stencil assembles");
    let mut emu = Emulator::new(program.clone());
    emu.run_to_halt(50_000_000).expect("halts");
    let sink = program.symbol("sink").expect("sink label");
    println!("functional result: checksum = {}", emu.mem().read_u64(sink));
    println!("dynamic instructions: {}", emu.executed());

    // 2. Time it on two machines.
    for config in [
        SimConfig::naive_single_port(),
        SimConfig::combined_single_port(),
    ] {
        let sim = Simulator::new(config);
        let summary = sim.run_trace("stencil", Emulator::new(program.clone()), None);
        println!(
            "{:>16}: IPC {:.3}  ({} cycles; {:.0}% of loads served portlessly)",
            summary.config,
            summary.ipc,
            summary.cycles,
            summary.portless_load_fraction * 100.0
        );
    }
    println!(
        "The stencil re-reads each element three times across neighbouring\n\
         iterations — prime territory for line buffers and load combining.\n"
    );

    // 3. A controlled synthetic stream: 50% loads over 8 KiB, strided.
    let synth = SynthConfig {
        insts: 200_000,
        load_fraction: 0.5,
        store_fraction: 0.1,
        working_set_bytes: 8 * 1024,
        pattern: AddressPattern::Strided(8),
        body_insts: 64,
        seed: 42,
    };
    for config in [SimConfig::single_port(), SimConfig::dual_port()] {
        let sim = Simulator::new(config);
        let summary = sim.run_trace("synthetic-50%-loads", SyntheticTrace::new(synth), None);
        println!(
            "{:>16}: IPC {:.3} on a 50%-load synthetic stream (port util {:.0}%)",
            summary.config,
            summary.ipc,
            summary.port_utilisation * 100.0
        );
    }
}
