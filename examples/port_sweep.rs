//! Port sweep: how performance scales with true data-cache ports.
//!
//! Reproduces the paper's motivating observation: going from one port to
//! two buys a meaningful speedup on memory-dense code, while four or more
//! ports buy almost nothing — which is why the paper hunts for single-port
//! techniques instead of more ports.
//!
//! ```text
//! cargo run --release --example port_sweep
//! ```

use cpe::workloads::{Scale, Workload};
use cpe::{Experiment, SimConfig};

fn main() {
    let window = Some(200_000);
    let results = Experiment::new(Scale::Small, window)
        .config(SimConfig::single_port())
        .config(SimConfig::dual_port())
        .config(SimConfig::quad_port())
        .config(SimConfig::ideal_ports())
        .workloads(&Workload::ALL)
        .run_with_progress(|workload, config| eprintln!("  {workload} / {config}"));

    println!("\nIPC by true port count:");
    println!("{}", results.ipc_table());
    println!("normalised to the single-ported machine:");
    println!("{}", results.relative_table(0));

    println!("data-port utilisation (fraction of offered slots used):");
    println!(
        "{}",
        results.metric_table("port util", |summary| summary.port_utilisation)
    );

    let two_vs_one = results.geomean_relative(1, 0);
    let four_vs_two = results.geomean_relative(2, 0) / two_vs_one;
    println!(
        "geomean: the second port is worth {:+.1}%, the third and fourth together {:+.1}% —",
        (two_vs_one - 1.0) * 100.0,
        (four_vs_two - 1.0) * 100.0,
    );
    println!("the classic diminishing-returns curve that motivates the paper.");
}
