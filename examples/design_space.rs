//! Design-space exploration: a two-dimensional sweep of port width ×
//! store-buffer depth on the single-ported cache, rendered as a grid.
//!
//! Shows how to use the library for exploration beyond the paper's named
//! design points, and demonstrates the parallel sweep runner.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use cpe::stats::Table;
use cpe::workloads::{Scale, Workload};
use cpe::{Experiment, SimConfig};

fn main() {
    let widths = [8u64, 16, 32];
    let depths = [0usize, 2, 4, 8];
    let window = Some(120_000);

    // Build the full grid as one experiment so runs share the window and
    // can execute in parallel.
    let mut configs = Vec::new();
    for &width in &widths {
        for &depth in &depths {
            configs.push(
                SimConfig::naive_single_port()
                    .with_wide_port(width, true)
                    .with_store_buffer(depth, true)
                    .with_line_buffers(4, width)
                    .named(&format!("{width}B/SB{depth}")),
            );
        }
    }
    configs.push(SimConfig::dual_port());
    let reference = configs.len() - 1;

    eprintln!(
        "sweeping {} configurations × {} workloads in parallel ...",
        configs.len(),
        Workload::ALL.len()
    );
    let results = Experiment::new(Scale::Small, window)
        .configs(configs)
        .workloads(&Workload::ALL)
        .run_parallel(0);

    // Render the grid: rows = width, columns = store-buffer depth, cells =
    // geomean IPC relative to the dual-ported reference.
    let mut header = vec!["port width \\ SB depth".to_string()];
    header.extend(depths.iter().map(|d| format!("SB{d}")));
    let mut grid = Table::new(header);
    let mut best = (String::new(), 0.0f64);
    for (w, &width) in widths.iter().enumerate() {
        let mut row = vec![format!("{width}B")];
        for (d, _) in depths.iter().enumerate() {
            let index = w * depths.len() + d;
            let relative = results.geomean_relative(index, reference);
            if relative > best.1 {
                best = (results.configs()[index].name.clone(), relative);
            }
            row.push(format!("{relative:.3}"));
        }
        grid.row(row);
    }

    println!("\ngeomean IPC relative to the dual-ported cache:\n");
    println!("{grid}");
    println!(
        "best single-port point: {} at {:.1}% of dual-ported performance —",
        best.0,
        best.1 * 100.0
    );
    println!("the paper's combined design sits at the knee of this surface.");
}
