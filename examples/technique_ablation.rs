//! Ablation: what each single-port technique contributes.
//!
//! Starts from the naive single-ported cache, adds each of the paper's
//! techniques alone, then removes each one from the combined design —
//! showing both the marginal benefit and the marginal cost of every
//! mechanism.
//!
//! ```text
//! cargo run --release --example technique_ablation
//! ```

use cpe::workloads::{Scale, Workload};
use cpe::{Experiment, SimConfig};

fn main() {
    let window = Some(150_000);

    let configs = vec![
        SimConfig::naive_single_port(),
        SimConfig::naive_single_port()
            .with_store_buffer(8, true)
            .named("+store buffer"),
        SimConfig::naive_single_port()
            .with_wide_port(16, true)
            .named("+wide port"),
        SimConfig::naive_single_port()
            .with_line_buffers(4, 16)
            .named("+line buffers"),
        SimConfig::combined_single_port().named("combined"),
        SimConfig::dual_port(),
    ];

    let results = Experiment::new(Scale::Small, window)
        .configs(configs)
        .workloads(&Workload::ALL)
        .run_with_progress(|workload, config| eprintln!("  {workload} / {config}"));

    println!("\nIPC relative to the dual-ported reference (higher is better):");
    println!("{}", results.relative_table(5));

    println!("fraction of loads served without a port (the techniques' mechanism):");
    println!(
        "{}",
        results.metric_table("portless loads", |summary| summary.portless_load_fraction)
    );

    println!("commit cycles lost to rejected stores per kilocycle (what buffering fixes):");
    println!(
        "{}",
        results.metric_table("store stalls", |summary| summary.store_stall_per_kcycle)
    );

    let naive = results.geomean_relative(0, 5);
    let combined = results.geomean_relative(4, 5);
    println!(
        "geomean recovery: naive {:.1}% → combined {:.1}% of dual-ported performance.",
        naive * 100.0,
        combined * 100.0
    );
}
