//! Operating-system activity and its effect on the memory system.
//!
//! The paper insisted on evaluating with workloads that *include the OS*:
//! kernel code disturbs user locality and adds differently-shaped memory
//! traffic. This example runs the build-driver workload under increasing
//! amounts of injected kernel activity and reports the per-mode breakdown.
//!
//! ```text
//! cargo run --release --example os_workload
//! ```

use cpe::isa::Emulator;
use cpe::stats::Table;
use cpe::workloads::os::{OsConfig, OsInjector};
use cpe::workloads::programs::pmake;
use cpe::{SimConfig, Simulator};

fn main() {
    let window = Some(150_000);
    let sim = Simulator::new(SimConfig::dual_port());

    let mut table = Table::new([
        "OS presence",
        "kernel insts %",
        "IPC",
        "user IPC",
        "kernel IPC",
        "I-MPKI",
        "D-MPKI",
    ]);
    for (label, config) in [
        ("none", OsConfig::none()),
        ("light", OsConfig::light()),
        ("moderate", OsConfig::default()),
        ("heavy", OsConfig::heavy()),
    ] {
        eprintln!("  running pmake with {label} OS activity ...");
        let user = Emulator::new(pmake::program(400));
        let trace = OsInjector::new(user, config);
        let summary = sim.run_trace(&format!("pmake+{label}"), trace, window);
        table.row([
            label.to_string(),
            format!("{:.1}", summary.kernel_fraction * 100.0),
            format!("{:.3}", summary.ipc),
            format!("{:.3}", summary.user_ipc),
            format!("{:.3}", summary.kernel_ipc),
            format!("{:.2}", summary.icache_mpki),
            format!("{:.2}", summary.dcache_mpki),
        ]);
    }

    println!("\npmake under increasing kernel activity (dual-ported cache):");
    println!("{table}");
    println!(
        "Kernel bursts trap-serialise the pipeline and drag their own code and data\n\
         through the L1s, so both instruction-cache pressure and overall IPC shift\n\
         with OS intensity — the effect the paper's full-system methodology captured\n\
         and user-only simulation misses."
    );
}
