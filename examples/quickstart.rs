//! Quickstart: reproduce the paper's headline claim in one page.
//!
//! Runs the six-workload suite on three machines — the naive single-ported
//! cache, the paper's combined single-port techniques, and the expensive
//! dual-ported reference — and prints how much of the dual-ported
//! performance the single-port design recovers (the paper reports 91%).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cpe::workloads::{Scale, Workload};
use cpe::{Experiment, SimConfig};

fn main() {
    let window_insts = 300_000;
    let window = Some(window_insts);
    println!("cache-port efficiency quickstart");
    println!("  machines : naive 1-port | combined 1-port | 2-port reference");
    println!(
        "  workloads: {}",
        Workload::ALL.map(|w| w.name()).join(", ")
    );
    println!("  window   : {window_insts} committed instructions per run\n");

    let results = Experiment::new(Scale::Small, window)
        .config(SimConfig::naive_single_port())
        .config(SimConfig::combined_single_port())
        .config(SimConfig::dual_port())
        .workloads(&Workload::ALL)
        .run_with_progress(|workload, config| {
            eprintln!("  running {workload} on {config} ...");
        });

    println!("\nIPC:");
    println!("{}", results.ipc_table());
    println!("IPC relative to the dual-ported cache:");
    println!("{}", results.relative_table(2));

    let naive = results.geomean_relative(0, 2);
    let combined = results.geomean_relative(1, 2);
    println!(
        "geomean: naive single port reaches {:.0}% of dual-ported performance;",
        naive * 100.0
    );
    println!(
        "         the paper's combined single-port techniques reach {:.0}% (paper: 91%).",
        combined * 100.0
    );
}
