//! Property test: the disassembly of any canonical instruction assembles
//! back to the identical instruction.
//!
//! This pins the `Display` grammar and the assembler's operand grammar to
//! each other, so listings produced by `Program`'s `Display` (and the
//! `cpe asm` CLI) are always valid assembler input.

use cpe_isa::asm::assemble;
use cpe_isa::{Inst, Op, Reg};
use proptest::prelude::*;

fn arb_int_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::x)
}

fn arb_float_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::f)
}

/// Canonical instructions: unused fields zero, immediates in encodable
/// range, register banks appropriate to the opcode.
fn arb_canonical_inst() -> impl Strategy<Value = Inst> {
    let imm12 = -2048i64..2048;
    let rrr_ops = prop::sample::select(vec![
        Op::Add,
        Op::Sub,
        Op::And,
        Op::Or,
        Op::Xor,
        Op::Sll,
        Op::Srl,
        Op::Sra,
        Op::Slt,
        Op::Sltu,
        Op::Mul,
        Op::Div,
        Op::Rem,
    ]);
    let rri_ops = prop::sample::select(vec![
        Op::Addi,
        Op::Andi,
        Op::Ori,
        Op::Xori,
        Op::Slli,
        Op::Srli,
        Op::Srai,
        Op::Slti,
    ]);
    let load_ops = prop::sample::select(vec![
        Op::Lb,
        Op::Lbu,
        Op::Lh,
        Op::Lhu,
        Op::Lw,
        Op::Lwu,
        Op::Ld,
    ]);
    let store_ops = prop::sample::select(vec![Op::Sb, Op::Sh, Op::Sw, Op::Sd]);
    let branch_ops =
        prop::sample::select(vec![Op::Beq, Op::Bne, Op::Blt, Op::Bge, Op::Bltu, Op::Bgeu]);
    let fp_rrr = prop::sample::select(vec![Op::Fadd, Op::Fsub, Op::Fmul, Op::Fdiv]);
    let fp_unary = prop::sample::select(vec![Op::Fsqrt, Op::Fmv]);

    prop_oneof![
        (rrr_ops, arb_int_reg(), arb_int_reg(), arb_int_reg())
            .prop_map(|(op, rd, rs1, rs2)| Inst::rrr(op, rd, rs1, rs2)),
        (rri_ops, arb_int_reg(), arb_int_reg(), imm12.clone())
            .prop_map(|(op, rd, rs1, imm)| Inst::rri(op, rd, rs1, imm)),
        (load_ops, arb_int_reg(), arb_int_reg(), imm12.clone())
            .prop_map(|(op, rd, base, imm)| Inst::load(op, rd, base, imm)),
        (arb_float_reg(), arb_int_reg(), imm12.clone()).prop_map(|(rd, base, imm)| Inst::load(
            Op::Fld,
            rd,
            base,
            imm
        )),
        (store_ops, arb_int_reg(), arb_int_reg(), imm12.clone())
            .prop_map(|(op, data, base, imm)| Inst::store(op, data, base, imm)),
        (arb_float_reg(), arb_int_reg(), imm12.clone()).prop_map(|(data, base, imm)| Inst::store(
            Op::Fsd,
            data,
            base,
            imm
        )),
        (branch_ops, arb_int_reg(), arb_int_reg(), imm12.clone())
            .prop_map(|(op, rs1, rs2, offset)| Inst::branch(op, rs1, rs2, offset)),
        (fp_rrr, arb_float_reg(), arb_float_reg(), arb_float_reg())
            .prop_map(|(op, rd, rs1, rs2)| Inst::rrr(op, rd, rs1, rs2)),
        (fp_unary, arb_float_reg(), arb_float_reg()).prop_map(|(op, rd, rs1)| Inst {
            op,
            rd,
            rs1,
            rs2: Reg::ZERO,
            imm: 0
        }),
        (arb_float_reg(), arb_int_reg()).prop_map(|(rd, rs1)| Inst {
            op: Op::Fcvt,
            rd,
            rs1,
            rs2: Reg::ZERO,
            imm: 0
        }),
        (arb_int_reg(), arb_float_reg()).prop_map(|(rd, rs1)| Inst {
            op: Op::Fcvtz,
            rd,
            rs1,
            rs2: Reg::ZERO,
            imm: 0
        }),
        (arb_int_reg(), imm12.clone()).prop_map(|(rd, imm)| Inst::rri(Op::Lui, rd, Reg::ZERO, imm)),
        (arb_int_reg(), imm12.clone()).prop_map(|(rd, offset)| Inst::jal(rd, offset)),
        (arb_int_reg(), arb_int_reg(), imm12).prop_map(|(rd, base, imm)| Inst::jalr(rd, base, imm)),
        Just(Inst::system(Op::Syscall)),
        Just(Inst::system(Op::Eret)),
        Just(Inst::system(Op::Halt)),
    ]
}

proptest! {
    #[test]
    fn display_then_assemble_is_identity(inst in arb_canonical_inst()) {
        let listing = inst.to_string();
        let source = format!(".text\n{listing}\n");
        let program = assemble(&source)
            .unwrap_or_else(|error| panic!("`{listing}` failed to assemble: {error}"));
        prop_assert_eq!(program.text.len(), 1, "`{}` expanded unexpectedly", listing);
        prop_assert_eq!(program.text[0], inst, "`{}` roundtripped wrong", listing);
    }

    /// Branch displacement display uses an explicit sign; ensure both
    /// directions parse.
    #[test]
    fn signed_branch_offsets_roundtrip(offset in -4096i64..4096) {
        let inst = Inst::branch(Op::Beq, Reg::x(1), Reg::x(2), offset);
        let source = format!(".text\n{inst}\n");
        let program = assemble(&source).expect("assembles");
        prop_assert_eq!(program.text[0].imm, offset);
    }
}

#[test]
fn whole_listing_roundtrips() {
    // A complete program's listing (labels, addresses) is not directly
    // assembler input, but the instruction column is; rebuild a program
    // from its own instruction Displays.
    let original =
        assemble("main: li a0, 3\nloop: addi a0, a0, -1\n sd a0, 8(sp)\n bnez a0, loop\n halt\n")
            .unwrap();
    let rebuilt_source: String = original
        .text
        .iter()
        .map(|inst| format!("{inst}\n"))
        .collect();
    let rebuilt = assemble(&format!(".text\n{rebuilt_source}")).unwrap();
    assert_eq!(original.text, rebuilt.text);
}
