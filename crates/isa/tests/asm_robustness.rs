//! Robustness: the assembler returns errors, never panics, for arbitrary
//! input — including near-miss programs built from real syntax fragments.

use cpe_isa::asm::assemble;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    /// Arbitrary bytes-as-text never panic the assembler.
    #[test]
    fn arbitrary_text_never_panics(source in ".{0,200}") {
        let _ = assemble(&source);
    }

    /// Near-miss programs: random sequences of plausible tokens.
    #[test]
    fn plausible_token_soup_never_panics(
        tokens in prop::collection::vec(
            prop::sample::select(vec![
                "add", "ld", "sd", "beq", "halt", "li", "la", "jalr", ".data", ".text",
                ".word", ".space", "a0", "t0", "sp", "zero", "f0", "main", "loop", ":",
                ",", "(", ")", "0", "-8", "4096", "0x10", "1.5", "#c",
            ]),
            0..40,
        ),
        newlines in prop::collection::vec(any::<bool>(), 0..40),
    ) {
        let mut source = String::new();
        for (token, newline) in tokens.iter().zip(newlines.iter().chain(std::iter::repeat(&false))) {
            source.push_str(token);
            source.push(if *newline { '\n' } else { ' ' });
        }
        let _ = assemble(&source);
    }

    /// Valid programs with one corrupted character still never panic.
    #[test]
    fn single_character_corruption_never_panics(position in 0usize..120, replacement in any::<char>()) {
        let mut source = String::from(
            ".data\nv: .quad 1, 2\n.text\nmain: la t0, v\n ld a0, 0(t0)\n addi a0, a0, 1\n bnez a0, main\n halt\n",
        );
        if let Some((byte_index, _)) = source.char_indices().nth(position % source.chars().count()) {
            let mut chars: Vec<char> = source.chars().collect();
            chars[source[..byte_index].chars().count()] = replacement;
            source = chars.into_iter().collect();
        }
        let _ = assemble(&source);
    }
}
