//! Differential testing of the functional emulator's ALU semantics: an
//! independently written interpreter (straight from the opcode
//! documentation) must agree with the emulator on random straight-line
//! programs.

use cpe_isa::{Emulator, Inst, Op, Program, Reg};
use proptest::prelude::*;

/// The independent interpreter: one `match` written against the opcode
/// doc-comments, deliberately not sharing code with `Emulator`.
fn reference_step(regs: &mut [u64; 64], inst: &Inst) {
    let rs1 = if inst.rs1.is_zero() {
        0
    } else {
        regs[inst.rs1.index()]
    };
    let rs2 = if inst.rs2.is_zero() {
        0
    } else {
        regs[inst.rs2.index()]
    };
    let imm = inst.imm as u64;
    let value = match inst.op {
        Op::Add => rs1.wrapping_add(rs2),
        Op::Sub => rs1.wrapping_sub(rs2),
        Op::And => rs1 & rs2,
        Op::Or => rs1 | rs2,
        Op::Xor => rs1 ^ rs2,
        Op::Sll => rs1 << (rs2 & 63),
        Op::Srl => rs1 >> (rs2 & 63),
        Op::Sra => ((rs1 as i64) >> (rs2 & 63)) as u64,
        Op::Slt => ((rs1 as i64) < (rs2 as i64)) as u64,
        Op::Sltu => (rs1 < rs2) as u64,
        Op::Mul => rs1.wrapping_mul(rs2),
        Op::Div => {
            if rs2 == 0 {
                u64::MAX
            } else {
                (rs1 as i64).wrapping_div(rs2 as i64) as u64
            }
        }
        Op::Rem => {
            if rs2 == 0 {
                rs1
            } else {
                (rs1 as i64).wrapping_rem(rs2 as i64) as u64
            }
        }
        Op::Addi => rs1.wrapping_add(imm),
        Op::Andi => rs1 & imm,
        Op::Ori => rs1 | imm,
        Op::Xori => rs1 ^ imm,
        Op::Slli => rs1 << (imm & 63),
        Op::Srli => rs1 >> (imm & 63),
        Op::Srai => ((rs1 as i64) >> (imm & 63)) as u64,
        Op::Slti => ((rs1 as i64) < inst.imm) as u64,
        Op::Lui => imm << 12,
        _ => unreachable!("ALU ops only in this test"),
    };
    if !inst.rd.is_zero() {
        regs[inst.rd.index()] = value;
    }
}

fn arb_alu_inst() -> impl Strategy<Value = Inst> {
    let reg = (0u8..32).prop_map(Reg::x);
    let rrr = prop::sample::select(vec![
        Op::Add,
        Op::Sub,
        Op::And,
        Op::Or,
        Op::Xor,
        Op::Sll,
        Op::Srl,
        Op::Sra,
        Op::Slt,
        Op::Sltu,
        Op::Mul,
        Op::Div,
        Op::Rem,
    ]);
    let rri = prop::sample::select(vec![
        Op::Addi,
        Op::Andi,
        Op::Ori,
        Op::Xori,
        Op::Slli,
        Op::Srli,
        Op::Srai,
        Op::Slti,
    ]);
    prop_oneof![
        (rrr, reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(op, rd, rs1, rs2)| Inst::rrr(op, rd, rs1, rs2)),
        (rri, reg.clone(), reg.clone(), -2048i64..2048)
            .prop_map(|(op, rd, rs1, imm)| Inst::rri(op, rd, rs1, imm)),
        (reg, 0i64..1_000_000).prop_map(|(rd, imm)| Inst::rri(Op::Lui, rd, Reg::ZERO, imm)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn emulator_agrees_with_the_reference_interpreter(
        seeds in prop::collection::vec(any::<i32>(), 8),
        body in prop::collection::vec(arb_alu_inst(), 1..60),
    ) {
        // Seed x10..x17 with arbitrary values via addi/lui pairs so the
        // program is self-contained.
        let mut text = Vec::new();
        for (slot, &seed) in seeds.iter().enumerate() {
            text.push(Inst::rri(Op::Addi, Reg::a(slot as u8), Reg::ZERO, i64::from(seed)));
        }
        text.extend(body.iter().copied());
        text.push(Inst::system(Op::Halt));
        let program = Program { text: text.clone(), ..Program::new() };

        // Reference execution.
        let mut regs = [0u64; 64];
        // Stack pointer initialisation matches the emulator's.
        regs[Reg::SP.index()] = cpe_isa::STACK_TOP;
        for inst in &text[..text.len() - 1] {
            reference_step(&mut regs, inst);
        }

        // Emulator execution.
        let mut emu = Emulator::new(program);
        emu.run_to_halt(10_000).expect("straight-line programs halt");

        for reg in (0..32).map(Reg::x) {
            prop_assert_eq!(
                emu.reg(reg),
                if reg.is_zero() { 0 } else { regs[reg.index()] },
                "disagreement in {}",
                reg
            );
        }
    }
}
