//! Property tests for the trace file format: lossless round-tripping of
//! arbitrary well-formed records, and graceful rejection of corruption.

use cpe_isa::trace_io::{write_trace, TraceReader};
use cpe_isa::{DynInst, Inst, Mode, Op, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..64).prop_map(|i| Reg::from_index(i).unwrap())
}

fn arb_record() -> impl Strategy<Value = DynInst> {
    let ops = prop::sample::select(Op::ALL.to_vec());
    (
        ops,
        arb_reg(),
        arb_reg(),
        arb_reg(),
        any::<i32>(),
        any::<u64>(),
        prop::option::of(any::<u64>()),
        any::<bool>(),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(
            |(op, rd, rs1, rs2, imm, pc, mem_addr, taken, next_pc, kernel)| DynInst {
                pc,
                inst: Inst {
                    op,
                    rd,
                    rs1,
                    rs2,
                    imm: i64::from(imm),
                },
                mem_addr,
                taken,
                next_pc,
                mode: if kernel { Mode::Kernel } else { Mode::User },
            },
        )
}

proptest! {
    #[test]
    fn arbitrary_traces_roundtrip(records in prop::collection::vec(arb_record(), 0..100)) {
        let mut buffer = Vec::new();
        let written = write_trace(&mut buffer, records.iter().copied()).unwrap();
        prop_assert_eq!(written as usize, records.len());
        let back: Vec<DynInst> = TraceReader::new(buffer.as_slice())
            .unwrap()
            .map(Result::unwrap)
            .collect();
        prop_assert_eq!(back, records);
    }

    /// Any single-byte corruption of the payload either still decodes
    /// (the byte was a don't-care such as an immediate bit) or surfaces
    /// an error — never a panic, never an infinite loop.
    #[test]
    fn corruption_never_panics(
        records in prop::collection::vec(arb_record(), 1..20),
        position in any::<prop::sample::Index>(),
        value in any::<u8>(),
    ) {
        let mut buffer = Vec::new();
        write_trace(&mut buffer, records).unwrap();
        let index = position.index(buffer.len());
        buffer[index] = value;
        match TraceReader::new(buffer.as_slice()) {
            Ok(reader) => {
                // Bounded consumption: the iterator fuses on error.
                let drained: Vec<_> = reader.collect();
                prop_assert!(drained.len() <= 25);
            }
            Err(_) => {} // header corruption is a fine rejection
        }
    }
}
