//! Property tests for the trace file format: lossless round-tripping of
//! arbitrary well-formed records, and graceful rejection of corruption —
//! each class of damage must surface as its matching [`TraceIoError`]
//! variant, never as a panic or a silent truncation.

use cpe_isa::trace_io::{write_trace, TraceIoError, TraceReader};
use cpe_isa::{decode, DynInst, Inst, Mode, Op, Reg};
use proptest::prelude::*;

/// Byte offsets inside a serialized trace: an 8-byte header, then
/// records of `flags u8, pc u64, inst u64, next_pc u64 [, mem_addr u64]`.
const HEADER_BYTES: usize = 8;
const MIN_RECORD_BYTES: usize = 25;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..64).prop_map(|i| Reg::from_index(i).unwrap())
}

fn arb_record() -> impl Strategy<Value = DynInst> {
    let ops = prop::sample::select(Op::ALL.to_vec());
    (
        ops,
        arb_reg(),
        arb_reg(),
        arb_reg(),
        any::<i32>(),
        any::<u64>(),
        prop::option::of(any::<u64>()),
        any::<bool>(),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(
            |(op, rd, rs1, rs2, imm, pc, mem_addr, taken, next_pc, kernel)| DynInst {
                pc,
                inst: Inst {
                    op,
                    rd,
                    rs1,
                    rs2,
                    imm: i64::from(imm),
                },
                mem_addr,
                taken,
                next_pc,
                mode: if kernel { Mode::Kernel } else { Mode::User },
            },
        )
}

proptest! {
    #[test]
    fn arbitrary_traces_roundtrip(records in prop::collection::vec(arb_record(), 0..100)) {
        let mut buffer = Vec::new();
        let written = write_trace(&mut buffer, records.iter().copied()).unwrap();
        prop_assert_eq!(written as usize, records.len());
        let back: Vec<DynInst> = TraceReader::new(buffer.as_slice())
            .unwrap()
            .map(Result::unwrap)
            .collect();
        prop_assert_eq!(back, records);
    }

    /// Any single-byte corruption of the payload either still decodes
    /// (the byte was a don't-care such as an immediate bit) or surfaces
    /// an error — never a panic, never an infinite loop.
    #[test]
    fn corruption_never_panics(
        records in prop::collection::vec(arb_record(), 1..20),
        position in any::<prop::sample::Index>(),
        value in any::<u8>(),
    ) {
        let mut buffer = Vec::new();
        write_trace(&mut buffer, records).unwrap();
        let index = position.index(buffer.len());
        buffer[index] = value;
        // Header corruption is a fine rejection; a surviving header must
        // still give bounded consumption (the iterator fuses on error).
        if let Ok(reader) = TraceReader::new(buffer.as_slice()) {
            let drained: Vec<_> = reader.collect();
            prop_assert!(drained.len() <= 25);
        }
    }

    /// A file cut off inside the header is an I/O error (unexpected EOF),
    /// not a decode attempt on garbage.
    #[test]
    fn truncated_headers_are_io_errors(
        records in prop::collection::vec(arb_record(), 1..4),
        keep in 0usize..HEADER_BYTES,
    ) {
        let mut buffer = Vec::new();
        write_trace(&mut buffer, records).unwrap();
        buffer.truncate(keep);
        match TraceReader::new(buffer.as_slice()) {
            Err(TraceIoError::Io(error)) => {
                prop_assert_eq!(error.kind(), std::io::ErrorKind::UnexpectedEof);
            }
            other => prop_assert!(false, "expected Io(UnexpectedEof), got {:?}", other),
        }
    }

    /// A file cut off inside a record surfaces exactly one
    /// `Io(UnexpectedEof)` as its final item.
    #[test]
    fn truncated_records_are_io_errors(
        records in prop::collection::vec(arb_record(), 1..20),
        cut in 1usize..MIN_RECORD_BYTES,
    ) {
        let mut buffer = Vec::new();
        write_trace(&mut buffer, records).unwrap();
        // Every record is at least MIN_RECORD_BYTES, so removing fewer
        // bytes than that always tears the last record mid-field.
        buffer.truncate(buffer.len() - cut);
        let results: Vec<_> = TraceReader::new(buffer.as_slice()).unwrap().collect();
        match results.last() {
            Some(Err(TraceIoError::Io(error))) => {
                prop_assert_eq!(error.kind(), std::io::ErrorKind::UnexpectedEof);
            }
            other => prop_assert!(false, "expected a final Io error, got {:?}", other),
        }
        prop_assert_eq!(results.iter().filter(|r| r.is_err()).count(), 1);
    }

    /// Undefined bits in a record's flags byte are rejected as
    /// `BadFlags`, echoing the offending byte.
    #[test]
    fn undefined_flag_bits_are_bad_flags(
        records in prop::collection::vec(arb_record(), 1..8),
        noise in 1u8..32,
    ) {
        let mut buffer = Vec::new();
        write_trace(&mut buffer, records).unwrap();
        // Bits 0..=2 are defined; fold the noise into bits 3..=7.
        let poisoned = buffer[HEADER_BYTES] | (noise << 3);
        buffer[HEADER_BYTES] = poisoned;
        let first = TraceReader::new(buffer.as_slice()).unwrap().next().unwrap();
        match first {
            Err(TraceIoError::BadFlags(flags)) => prop_assert_eq!(flags, poisoned),
            other => prop_assert!(false, "expected BadFlags, got {:?}", other),
        }
    }

    /// An instruction word that does not decode is rejected as
    /// `BadInst`, carrying the decoder's own diagnosis.
    #[test]
    fn undecodable_instruction_words_are_bad_inst(
        records in prop::collection::vec(arb_record(), 1..8),
        word in any::<u64>(),
    ) {
        prop_assume!(decode(word).is_err());
        let mut buffer = Vec::new();
        write_trace(&mut buffer, records).unwrap();
        // The first record's inst field sits after its flags byte and pc.
        let inst_offset = HEADER_BYTES + 1 + 8;
        buffer[inst_offset..inst_offset + 8].copy_from_slice(&word.to_le_bytes());
        let first = TraceReader::new(buffer.as_slice()).unwrap().next().unwrap();
        match first {
            Err(TraceIoError::BadInst(_)) => {}
            other => prop_assert!(false, "expected BadInst, got {:?}", other),
        }
    }
}
