//! `cpe-isa` — the miniature RISC instruction set used by the cache-port
//! efficiency simulation suite.
//!
//! The ISCA '96 paper this workspace reproduces ("Increasing Cache Port
//! Efficiency for Dynamic Superscalar Microprocessors", Wilson, Olukotun and
//! Rosenblum) evaluates its techniques on *real applications*, not synthetic
//! traces. To preserve that property without a MIPS toolchain, this crate
//! defines a small 64-bit load/store architecture together with a two-pass
//! assembler, so workloads can be written as genuine programs with real
//! dataflow, loops and branches.
//!
//! # Overview
//!
//! * [`Reg`] — a unified register name space: 32 integer registers
//!   (`x0`..`x31`, with `x0` hard-wired to zero) and 32 floating-point
//!   registers (`f0`..`f31`).
//! * [`Op`] — every opcode the machine understands, queryable for its
//!   [`OpClass`] (ALU, load, store, branch, ...).
//! * [`Inst`] — one decoded instruction: opcode, registers and immediate.
//! * [`encode`]/[`decode`] — a fixed 64-bit binary encoding with lossless
//!   round-tripping, exercised by property tests.
//! * [`asm`] — the assembler: text in, [`Program`] out.
//! * [`Program`] — assembled text, initialised data and the symbol table.
//! * [`replay`] — the compact record-once / replay-many trace format
//!   behind the replay execution backend.
//!
//! # Example
//!
//! ```
//! use cpe_isa::asm::assemble;
//!
//! # fn main() -> Result<(), cpe_isa::asm::AsmError> {
//! let program = assemble(
//!     r#"
//!     .text
//!     main:
//!         li   a0, 10
//!         li   a1, 0
//!     loop:
//!         add  a1, a1, a0
//!         addi a0, a0, -1
//!         bne  a0, zero, loop
//!         halt
//!     "#,
//! )?;
//! assert_eq!(program.text.len(), 6);
//! # Ok(())
//! # }
//! ```

pub mod asm;
mod emu;
mod encode;
mod inst;
mod op;
mod program;
mod reg;
pub mod replay;
mod trace;
pub mod trace_io;

pub use emu::{syscalls, EmuError, Emulator, SparseMem};
pub use encode::{decode, encode, DecodeError};
pub use inst::Inst;
pub use op::{MemWidth, Op, OpClass};
pub use program::{
    Program, DATA_BASE, INST_BYTES, KERNEL_DATA_BASE, KERNEL_TEXT_BASE, STACK_TOP, TEXT_BASE,
};
pub use reg::Reg;
pub use trace::{DynInst, Mode};
