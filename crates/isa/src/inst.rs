//! The decoded instruction type.

use std::fmt;

use crate::op::{Op, OpClass};
use crate::reg::Reg;

/// One decoded instruction.
///
/// The same three register fields serve every format; unused fields hold
/// [`Reg::ZERO`] and an unused immediate holds zero. The constructors
/// ([`Inst::rrr`], [`Inst::rri`], [`Inst::load`], [`Inst::store`],
/// [`Inst::branch`], ...) build each format with the conventional operand
/// order.
///
/// ```
/// use cpe_isa::{Inst, Op, Reg};
///
/// let add = Inst::rrr(Op::Add, Reg::x(1), Reg::x(2), Reg::x(3));
/// assert_eq!(add.to_string(), "add x1, x2, x3");
///
/// let load = Inst::load(Op::Ld, Reg::x(4), Reg::SP, 16);
/// assert_eq!(load.to_string(), "ld x4, 16(x2)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// Opcode.
    pub op: Op,
    /// Destination register.
    pub rd: Reg,
    /// First source register (the base register of loads/stores).
    pub rs1: Reg,
    /// Second source register (the data register of stores).
    pub rs2: Reg,
    /// Immediate operand: displacement for memory references, byte offset
    /// for control transfers, literal for ALU-immediate forms.
    pub imm: i64,
}

impl Inst {
    /// Register-register-register format: `op rd, rs1, rs2`.
    pub const fn rrr(op: Op, rd: Reg, rs1: Reg, rs2: Reg) -> Inst {
        Inst {
            op,
            rd,
            rs1,
            rs2,
            imm: 0,
        }
    }

    /// Register-register-immediate format: `op rd, rs1, imm`.
    pub const fn rri(op: Op, rd: Reg, rs1: Reg, imm: i64) -> Inst {
        Inst {
            op,
            rd,
            rs1,
            rs2: Reg::ZERO,
            imm,
        }
    }

    /// Load format: `op rd, imm(base)`.
    pub const fn load(op: Op, rd: Reg, base: Reg, imm: i64) -> Inst {
        Inst {
            op,
            rd,
            rs1: base,
            rs2: Reg::ZERO,
            imm,
        }
    }

    /// Store format: `op data, imm(base)`.
    pub const fn store(op: Op, data: Reg, base: Reg, imm: i64) -> Inst {
        Inst {
            op,
            rd: Reg::ZERO,
            rs1: base,
            rs2: data,
            imm,
        }
    }

    /// Branch format: `op rs1, rs2, byte_offset` (offset is relative to this
    /// instruction's address).
    pub const fn branch(op: Op, rs1: Reg, rs2: Reg, offset: i64) -> Inst {
        Inst {
            op,
            rd: Reg::ZERO,
            rs1,
            rs2,
            imm: offset,
        }
    }

    /// `jal rd, byte_offset`.
    pub const fn jal(rd: Reg, offset: i64) -> Inst {
        Inst {
            op: Op::Jal,
            rd,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            imm: offset,
        }
    }

    /// `jalr rd, imm(rs1)`.
    pub const fn jalr(rd: Reg, base: Reg, imm: i64) -> Inst {
        Inst {
            op: Op::Jalr,
            rd,
            rs1: base,
            rs2: Reg::ZERO,
            imm,
        }
    }

    /// Opcode-only format (`syscall`, `eret`, `halt`).
    pub const fn system(op: Op) -> Inst {
        Inst {
            op,
            rd: Reg::ZERO,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            imm: 0,
        }
    }

    /// A canonical no-op (`addi x0, x0, 0`).
    pub const fn nop() -> Inst {
        Inst::rri(Op::Addi, Reg::ZERO, Reg::ZERO, 0)
    }

    /// The destination register, when the instruction writes one.
    ///
    /// `x0` destinations are reported as `None` since the write has no
    /// architectural effect.
    pub fn dest(&self) -> Option<Reg> {
        let writes = match self.op.class() {
            OpClass::Store | OpClass::Branch | OpClass::System => false,
            OpClass::Jump => true,
            _ => true,
        };
        (writes && !self.rd.is_zero()).then_some(self.rd)
    }

    /// The source registers read by this instruction (zero register
    /// excluded, since it never creates a dependence).
    pub fn sources(&self) -> impl Iterator<Item = Reg> {
        let (a, b) = match self.op.class() {
            OpClass::Store => (Some(self.rs1), Some(self.rs2)),
            OpClass::Branch => (Some(self.rs1), Some(self.rs2)),
            OpClass::Load => (Some(self.rs1), None),
            OpClass::Jump if self.op == Op::Jalr => (Some(self.rs1), None),
            OpClass::Jump | OpClass::System => (None, None),
            // `lui` reads nothing; every other ALU/FP form reads rs1 and,
            // for the register-register forms, rs2.
            _ if self.op == Op::Lui => (None, None),
            _ if self.op == Op::Fcvt || self.op == Op::Fcvtz => (Some(self.rs1), None),
            _ if self.op == Op::Fsqrt || self.op == Op::Fmv => (Some(self.rs1), None),
            _ if self.is_imm_alu() => (Some(self.rs1), None),
            _ => (Some(self.rs1), Some(self.rs2)),
        };
        a.into_iter().chain(b).filter(|r| !r.is_zero())
    }

    fn is_imm_alu(&self) -> bool {
        matches!(
            self.op,
            Op::Addi | Op::Andi | Op::Ori | Op::Xori | Op::Slli | Op::Srli | Op::Srai | Op::Slti
        )
    }
}

impl Default for Inst {
    fn default() -> Self {
        Inst::nop()
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.op.mnemonic();
        match self.op.class() {
            OpClass::Load => write!(f, "{m} {}, {}({})", self.rd, self.imm, self.rs1),
            OpClass::Store => write!(f, "{m} {}, {}({})", self.rs2, self.imm, self.rs1),
            OpClass::Branch => write!(f, "{m} {}, {}, {:+}", self.rs1, self.rs2, self.imm),
            OpClass::Jump => match self.op {
                Op::Jal => write!(f, "{m} {}, {:+}", self.rd, self.imm),
                _ => write!(f, "{m} {}, {}({})", self.rd, self.imm, self.rs1),
            },
            OpClass::System => f.write_str(m),
            _ => match self.op {
                Op::Lui => write!(f, "{m} {}, {}", self.rd, self.imm),
                Op::Fsqrt | Op::Fmv | Op::Fcvt | Op::Fcvtz => {
                    write!(f, "{m} {}, {}", self.rd, self.rs1)
                }
                _ if self.is_imm_alu() => {
                    write!(f, "{m} {}, {}, {}", self.rd, self.rs1, self.imm)
                }
                _ => write!(f, "{m} {}, {}, {}", self.rd, self.rs1, self.rs2),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dest_hides_zero_register_writes() {
        let inst = Inst::rri(Op::Addi, Reg::ZERO, Reg::x(1), 4);
        assert_eq!(inst.dest(), None);
        let inst = Inst::rri(Op::Addi, Reg::x(2), Reg::x(1), 4);
        assert_eq!(inst.dest(), Some(Reg::x(2)));
    }

    #[test]
    fn stores_and_branches_have_no_dest() {
        assert_eq!(Inst::store(Op::Sd, Reg::x(3), Reg::SP, 0).dest(), None);
        assert_eq!(Inst::branch(Op::Beq, Reg::x(1), Reg::x(2), 8).dest(), None);
        assert_eq!(Inst::system(Op::Halt).dest(), None);
    }

    #[test]
    fn jumps_write_their_link_register() {
        assert_eq!(Inst::jal(Reg::RA, 16).dest(), Some(Reg::RA));
        assert_eq!(Inst::jalr(Reg::ZERO, Reg::RA, 0).dest(), None);
    }

    #[test]
    fn sources_reflect_format() {
        let store = Inst::store(Op::Sd, Reg::x(3), Reg::SP, 0);
        let srcs: Vec<_> = store.sources().collect();
        assert_eq!(srcs, vec![Reg::SP, Reg::x(3)]);

        let load = Inst::load(Op::Ld, Reg::x(4), Reg::SP, 8);
        let srcs: Vec<_> = load.sources().collect();
        assert_eq!(srcs, vec![Reg::SP]);

        let lui = Inst::rri(Op::Lui, Reg::x(4), Reg::ZERO, 0x12);
        assert_eq!(lui.sources().count(), 0);

        let addi = Inst::rri(Op::Addi, Reg::x(4), Reg::x(5), 1);
        let srcs: Vec<_> = addi.sources().collect();
        assert_eq!(srcs, vec![Reg::x(5)]);
    }

    #[test]
    fn zero_register_sources_are_suppressed() {
        let add = Inst::rrr(Op::Add, Reg::x(1), Reg::ZERO, Reg::x(2));
        let srcs: Vec<_> = add.sources().collect();
        assert_eq!(srcs, vec![Reg::x(2)]);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(Inst::nop().to_string(), "addi x0, x0, 0");
        assert_eq!(
            Inst::branch(Op::Bne, Reg::x(1), Reg::ZERO, -8).to_string(),
            "bne x1, x0, -8"
        );
        assert_eq!(Inst::jal(Reg::RA, 32).to_string(), "jal x1, +32");
        assert_eq!(Inst::system(Op::Syscall).to_string(), "syscall");
        assert_eq!(
            Inst::store(Op::Fsd, Reg::f(2), Reg::x(9), -16).to_string(),
            "fsd f2, -16(x9)"
        );
    }

    #[test]
    fn fp_unary_sources() {
        let sqrt = Inst {
            op: Op::Fsqrt,
            rd: Reg::f(1),
            rs1: Reg::f(2),
            rs2: Reg::ZERO,
            imm: 0,
        };
        let srcs: Vec<_> = sqrt.sources().collect();
        assert_eq!(srcs, vec![Reg::f(2)]);
    }
}
