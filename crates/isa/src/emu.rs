//! The functional emulator: architectural execution of `cpe-isa` programs.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::{DynInst, Mode, Op, Program, Reg, DATA_BASE, INST_BYTES, STACK_TOP};

const PAGE_BYTES: u64 = 4096;

/// Byte-addressable sparse memory backed by 4 KiB pages.
///
/// ```
/// use cpe_isa::SparseMem;
///
/// let mut mem = SparseMem::new();
/// mem.write_u64(0x1000, 0xdead_beef);
/// assert_eq!(mem.read_u64(0x1000), 0xdead_beef);
/// assert_eq!(mem.read_u64(0x2000), 0, "untouched memory reads as zero");
/// ```
/// Multiplicative hasher for page numbers: the keys are small dense
/// integers, so a single Fibonacci multiply beats the default SipHash by
/// a wide margin on the emulator's per-access page lookup.
#[derive(Debug, Clone, Default)]
struct PageHasher(u64);

impl std::hash::Hasher for PageHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u64 keys (unused by the page map).
        for &byte in bytes {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

#[derive(Debug, Clone, Default)]
pub struct SparseMem {
    pages: HashMap<u64, Box<[u8]>, std::hash::BuildHasherDefault<PageHasher>>,
}

impl SparseMem {
    /// Empty memory; every byte reads as zero until written.
    pub fn new() -> SparseMem {
        SparseMem::default()
    }

    /// Read one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr / PAGE_BYTES)) {
            Some(page) => page[(addr % PAGE_BYTES) as usize],
            None => 0,
        }
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr / PAGE_BYTES)
            .or_insert_with(|| vec![0u8; PAGE_BYTES as usize].into_boxed_slice());
        page[(addr % PAGE_BYTES) as usize] = value;
    }

    /// Read `N` little-endian bytes starting at `addr`. An access within
    /// a single page (the overwhelmingly common case) costs one page
    /// lookup; a page-straddling access falls back to the byte loop.
    pub fn read_bytes<const N: usize>(&self, addr: u64) -> [u8; N] {
        let mut out = [0u8; N];
        let offset = (addr % PAGE_BYTES) as usize;
        if offset + N <= PAGE_BYTES as usize {
            if let Some(page) = self.pages.get(&(addr / PAGE_BYTES)) {
                out.copy_from_slice(&page[offset..offset + N]);
            }
            return out;
        }
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = self.read_u8(addr + i as u64);
        }
        out
    }

    /// Write bytes starting at `addr`, one page lookup per touched page.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let offset = (addr % PAGE_BYTES) as usize;
        if offset + bytes.len() <= PAGE_BYTES as usize {
            let page = self
                .pages
                .entry(addr / PAGE_BYTES)
                .or_insert_with(|| vec![0u8; PAGE_BYTES as usize].into_boxed_slice());
            page[offset..offset + bytes.len()].copy_from_slice(bytes);
            return;
        }
        for (i, &byte) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, byte);
        }
    }

    /// Read a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_bytes::<8>(addr))
    }

    /// Write a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Number of resident pages (for footprint checks in tests).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

/// A functional-execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// The program counter left the text segment.
    BadPc(u64),
    /// The instruction budget was exhausted before `halt`.
    Runaway(u64),
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::BadPc(pc) => write!(f, "program counter {pc:#x} is outside the text segment"),
            EmuError::Runaway(n) => write!(f, "no halt after {n} instructions"),
        }
    }
}

impl Error for EmuError {}

/// Syscall service numbers understood by the emulator (placed in `a7`).
pub mod syscalls {
    /// Stop the program (same effect as `halt`).
    pub const EXIT: u64 = 0;
    /// Write/print — architecturally a no-op here.
    pub const WRITE: u64 = 1;
    /// Grow the heap by `a0` bytes; the old break is returned in `a0`.
    pub const BRK: u64 = 2;
    /// Returns a fixed process id in `a0`.
    pub const GETPID: u64 = 3;
    /// Returns the executed-instruction count in `a0`.
    pub const TIME: u64 = 4;
}

/// Architectural interpreter producing the committed path.
///
/// Iterate it to obtain [`DynInst`]s. The iterator ends after the `halt`
/// instruction (inclusive) or panics on a wild program counter — use
/// [`Emulator::step`] for error-returning execution.
#[derive(Debug, Clone)]
pub struct Emulator {
    program: Program,
    regs: [u64; Reg::COUNT],
    mem: SparseMem,
    pc: u64,
    halted: bool,
    executed: u64,
    brk: u64,
}

impl Emulator {
    /// Load a program: data at [`DATA_BASE`], stack pointer at
    /// [`STACK_TOP`], program counter at the entry label.
    pub fn new(program: Program) -> Emulator {
        let mut mem = SparseMem::new();
        mem.write_bytes(DATA_BASE, &program.data);
        let brk = (DATA_BASE + program.data.len() as u64).next_multiple_of(PAGE_BYTES);
        let mut regs = [0u64; Reg::COUNT];
        regs[Reg::SP.index()] = STACK_TOP;
        let pc = program.entry;
        Emulator {
            program,
            regs,
            mem,
            pc,
            halted: false,
            executed: 0,
            brk,
        }
    }

    /// Read a register (x0 reads as zero).
    pub fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Write a register (writes to x0 are discarded).
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// A float register as `f64`.
    pub fn freg(&self, r: Reg) -> f64 {
        f64::from_bits(self.reg(r))
    }

    /// The architectural memory (for inspecting program results).
    pub fn mem(&self) -> &SparseMem {
        &self.mem
    }

    /// Mutable access to architectural memory (for seeding inputs).
    pub fn mem_mut(&mut self) -> &mut SparseMem {
        &mut self.mem
    }

    /// `true` once `halt` (or `syscall` exit) has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Instructions executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// The loaded program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Execute one instruction.
    ///
    /// Returns `Ok(None)` once halted.
    ///
    /// # Errors
    ///
    /// [`EmuError::BadPc`] when the program counter leaves the text
    /// segment.
    pub fn step(&mut self) -> Result<Option<DynInst>, EmuError> {
        if self.halted {
            return Ok(None);
        }
        let pc = self.pc;
        let inst = *self.program.fetch(pc).ok_or(EmuError::BadPc(pc))?;
        let mut next_pc = pc.wrapping_add(INST_BYTES);
        let mut mem_addr = None;
        let mut taken = false;

        let rs1 = self.reg(inst.rs1);
        let rs2 = self.reg(inst.rs2);
        let f1 = f64::from_bits(rs1);
        let f2 = f64::from_bits(rs2);
        let imm = inst.imm;

        match inst.op {
            Op::Add => self.set_reg(inst.rd, rs1.wrapping_add(rs2)),
            Op::Sub => self.set_reg(inst.rd, rs1.wrapping_sub(rs2)),
            Op::And => self.set_reg(inst.rd, rs1 & rs2),
            Op::Or => self.set_reg(inst.rd, rs1 | rs2),
            Op::Xor => self.set_reg(inst.rd, rs1 ^ rs2),
            Op::Sll => self.set_reg(inst.rd, rs1.wrapping_shl(rs2 as u32 & 63)),
            Op::Srl => self.set_reg(inst.rd, rs1.wrapping_shr(rs2 as u32 & 63)),
            Op::Sra => self.set_reg(inst.rd, ((rs1 as i64).wrapping_shr(rs2 as u32 & 63)) as u64),
            Op::Slt => self.set_reg(inst.rd, u64::from((rs1 as i64) < (rs2 as i64))),
            Op::Sltu => self.set_reg(inst.rd, u64::from(rs1 < rs2)),
            Op::Mul => self.set_reg(inst.rd, rs1.wrapping_mul(rs2)),
            Op::Div => {
                let value = if rs2 == 0 {
                    -1i64 as u64
                } else {
                    (rs1 as i64).wrapping_div(rs2 as i64) as u64
                };
                self.set_reg(inst.rd, value);
            }
            Op::Rem => {
                let value = if rs2 == 0 {
                    rs1
                } else {
                    (rs1 as i64).wrapping_rem(rs2 as i64) as u64
                };
                self.set_reg(inst.rd, value);
            }
            Op::Addi => self.set_reg(inst.rd, rs1.wrapping_add(imm as u64)),
            Op::Andi => self.set_reg(inst.rd, rs1 & imm as u64),
            Op::Ori => self.set_reg(inst.rd, rs1 | imm as u64),
            Op::Xori => self.set_reg(inst.rd, rs1 ^ imm as u64),
            Op::Slli => self.set_reg(inst.rd, rs1.wrapping_shl(imm as u32 & 63)),
            Op::Srli => self.set_reg(inst.rd, rs1.wrapping_shr(imm as u32 & 63)),
            Op::Srai => self.set_reg(inst.rd, ((rs1 as i64).wrapping_shr(imm as u32 & 63)) as u64),
            Op::Slti => self.set_reg(inst.rd, u64::from((rs1 as i64) < imm)),
            Op::Lui => self.set_reg(inst.rd, (imm as u64) << 12),

            Op::Lb | Op::Lbu | Op::Lh | Op::Lhu | Op::Lw | Op::Lwu | Op::Ld | Op::Fld => {
                let addr = rs1.wrapping_add(imm as u64);
                mem_addr = Some(addr);
                let value = match inst.op {
                    Op::Lb => self.mem.read_u8(addr) as i8 as i64 as u64,
                    Op::Lbu => u64::from(self.mem.read_u8(addr)),
                    Op::Lh => i64::from(i16::from_le_bytes(self.mem.read_bytes::<2>(addr))) as u64,
                    Op::Lhu => u64::from(u16::from_le_bytes(self.mem.read_bytes::<2>(addr))),
                    Op::Lw => i64::from(i32::from_le_bytes(self.mem.read_bytes::<4>(addr))) as u64,
                    Op::Lwu => u64::from(u32::from_le_bytes(self.mem.read_bytes::<4>(addr))),
                    Op::Ld | Op::Fld => self.mem.read_u64(addr),
                    _ => unreachable!(),
                };
                self.set_reg(inst.rd, value);
            }
            Op::Sb | Op::Sh | Op::Sw | Op::Sd | Op::Fsd => {
                let addr = rs1.wrapping_add(imm as u64);
                mem_addr = Some(addr);
                match inst.op {
                    Op::Sb => self.mem.write_u8(addr, rs2 as u8),
                    Op::Sh => self.mem.write_bytes(addr, &(rs2 as u16).to_le_bytes()),
                    Op::Sw => self.mem.write_bytes(addr, &(rs2 as u32).to_le_bytes()),
                    Op::Sd | Op::Fsd => self.mem.write_u64(addr, rs2),
                    _ => unreachable!(),
                }
            }

            Op::Fadd => self.set_reg(inst.rd, (f1 + f2).to_bits()),
            Op::Fsub => self.set_reg(inst.rd, (f1 - f2).to_bits()),
            Op::Fmul => self.set_reg(inst.rd, (f1 * f2).to_bits()),
            Op::Fdiv => self.set_reg(inst.rd, (f1 / f2).to_bits()),
            Op::Fsqrt => self.set_reg(inst.rd, f1.sqrt().to_bits()),
            Op::Fcvt => self.set_reg(inst.rd, ((rs1 as i64) as f64).to_bits()),
            Op::Fcvtz => self.set_reg(inst.rd, (f1 as i64) as u64),
            Op::Flt => self.set_reg(inst.rd, u64::from(f1 < f2)),
            Op::Fmv => self.set_reg(inst.rd, rs1),

            Op::Beq => taken = rs1 == rs2,
            Op::Bne => taken = rs1 != rs2,
            Op::Blt => taken = (rs1 as i64) < (rs2 as i64),
            Op::Bge => taken = (rs1 as i64) >= (rs2 as i64),
            Op::Bltu => taken = rs1 < rs2,
            Op::Bgeu => taken = rs1 >= rs2,
            Op::Jal => {
                self.set_reg(inst.rd, next_pc);
                next_pc = pc.wrapping_add(imm as u64);
            }
            Op::Jalr => {
                self.set_reg(inst.rd, next_pc);
                next_pc = rs1.wrapping_add(imm as u64);
            }

            Op::Syscall => self.syscall(),
            Op::Eret => {} // meaningful only in synthesized kernel streams
            Op::Halt => {
                self.halted = true;
                next_pc = pc;
            }
        }
        if taken {
            next_pc = pc.wrapping_add(imm as u64);
        }
        if self.halted {
            next_pc = pc;
        }
        self.pc = next_pc;
        self.executed += 1;
        Ok(Some(DynInst {
            pc,
            inst,
            mem_addr,
            taken,
            next_pc,
            mode: Mode::User,
        }))
    }

    fn syscall(&mut self) {
        let service = self.reg(Reg::x(17)); // a7
        let a0 = Reg::a(0);
        match service {
            syscalls::EXIT => self.halted = true,
            syscalls::WRITE => {}
            syscalls::BRK => {
                let grow = self.reg(a0);
                let old = self.brk;
                self.brk = self.brk.wrapping_add(grow);
                self.set_reg(a0, old);
            }
            syscalls::GETPID => self.set_reg(a0, 42),
            syscalls::TIME => self.set_reg(a0, self.executed),
            _ => self.set_reg(a0, 0),
        }
    }

    /// Run to completion (or `max` instructions), discarding the trace.
    ///
    /// # Errors
    ///
    /// [`EmuError::BadPc`] on a wild program counter, or
    /// [`EmuError::Runaway`] when `max` is hit first.
    pub fn run_to_halt(&mut self, max: u64) -> Result<u64, EmuError> {
        while !self.halted {
            if self.executed >= max {
                return Err(EmuError::Runaway(max));
            }
            self.step()?;
        }
        Ok(self.executed)
    }
}

impl Iterator for Emulator {
    type Item = DynInst;

    /// # Panics
    ///
    /// Panics when the program counter leaves the text segment (use
    /// [`Emulator::step`] to handle that as an error instead).
    fn next(&mut self) -> Option<DynInst> {
        self.step().expect("functional execution failed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run(src: &str) -> Emulator {
        let mut emu = Emulator::new(assemble(src).expect("assembles"));
        emu.run_to_halt(1_000_000).expect("halts");
        emu
    }

    #[test]
    fn arithmetic_loop_sums_correctly() {
        let emu = run(
            "main: li a0, 10\n li a1, 0\nloop: add a1, a1, a0\n addi a0, a0, -1\n bnez a0, loop\n halt\n",
        );
        assert_eq!(emu.reg(Reg::a(1)), 55);
    }

    #[test]
    fn loads_and_stores_roundtrip_all_widths() {
        let emu = run(r#"
            .data
            buf: .space 64
            .text
            main:
                la   t0, buf
                li   t1, -2
                sb   t1, 0(t0)
                sh   t1, 8(t0)
                sw   t1, 16(t0)
                sd   t1, 24(t0)
                lb   a0, 0(t0)
                lbu  a1, 0(t0)
                lh   a2, 8(t0)
                lhu  a3, 8(t0)
                lw   a4, 16(t0)
                lwu  a5, 16(t0)
                ld   a6, 24(t0)
                halt
            "#);
        assert_eq!(emu.reg(Reg::a(0)) as i64, -2);
        assert_eq!(emu.reg(Reg::a(1)), 0xfe);
        assert_eq!(emu.reg(Reg::a(2)) as i64, -2);
        assert_eq!(emu.reg(Reg::a(3)), 0xfffe);
        assert_eq!(emu.reg(Reg::a(4)) as i64, -2);
        assert_eq!(emu.reg(Reg::a(5)), 0xffff_fffe);
        assert_eq!(emu.reg(Reg::a(6)) as i64, -2);
    }

    #[test]
    fn floating_point_pipeline() {
        let emu = run(r#"
            .data
            v: .double 9.0, 0.25
            .text
            main:
                la    t0, v
                fld   f0, 0(t0)
                fld   f1, 8(t0)
                fsqrt f2, f0          # 3.0
                fmul  f3, f2, f1      # 0.75
                fadd  f4, f3, f2      # 3.75
                fdiv  f5, f4, f1      # 15.0
                fcvtz a0, f5
                li    t1, 2
                fcvt  f6, t1
                flt   a1, f1, f6      # 0.25 < 2.0
                halt
            "#);
        assert_eq!(emu.reg(Reg::a(0)), 15);
        assert_eq!(emu.reg(Reg::a(1)), 1);
        assert_eq!(emu.freg(Reg::f(4)), 3.75);
    }

    #[test]
    fn calls_returns_and_stack() {
        let emu = run(r#"
            main:
                li   a0, 5
                call double
                mv   s0, a0
                li   a0, 7
                call double
                add  a0, a0, s0
                halt
            double:
                addi sp, sp, -8
                sd   ra, 0(sp)
                add  a0, a0, a0
                ld   ra, 0(sp)
                addi sp, sp, 8
                ret
            "#);
        assert_eq!(emu.reg(Reg::a(0)), 24);
    }

    #[test]
    fn division_edge_cases_match_spec() {
        let emu = run(
            "main: li t0, 7\n li t1, 0\n div a0, t0, t1\n rem a1, t0, t1\n li t2, -8\n li t3, 3\n div a2, t2, t3\n rem a3, t2, t3\n halt\n",
        );
        assert_eq!(emu.reg(Reg::a(0)) as i64, -1);
        assert_eq!(emu.reg(Reg::a(1)), 7);
        assert_eq!(emu.reg(Reg::a(2)) as i64, -2);
        assert_eq!(emu.reg(Reg::a(3)) as i64, -2);
    }

    #[test]
    fn trace_records_addresses_and_branches() {
        let program = assemble(
            "main: li t0, 2\nloop: addi t0, t0, -1\n bnez t0, loop\n sd t0, 0(sp)\n halt\n",
        )
        .unwrap();
        let trace: Vec<DynInst> = Emulator::new(program).collect();
        // li, addi, bnez(taken), addi, bnez(not), sd, halt
        assert_eq!(trace.len(), 7);
        assert!(trace[2].taken);
        assert!(trace[2].diverted());
        assert!(!trace[4].taken);
        assert_eq!(trace[5].mem_addr, Some(STACK_TOP));
        assert_eq!(trace[6].inst.op, Op::Halt);
        assert!(trace.iter().all(|d| d.mode == Mode::User));
    }

    #[test]
    fn syscalls_brk_and_time() {
        let emu = run(r#"
            main:
                li a7, 2      # BRK
                li a0, 4096
                syscall
                mv s0, a0     # old break
                li a7, 3      # GETPID
                syscall
                mv s1, a0
                li a7, 0      # EXIT
                syscall
                halt          # never reached
            "#);
        assert!(emu.is_halted());
        assert!(emu.reg(Reg::s(0)) >= DATA_BASE);
        assert_eq!(emu.reg(Reg::s(1)), 42);
        // EXIT stops before the trailing halt executes.
        assert_eq!(emu.executed(), 9);
    }

    #[test]
    fn bad_pc_is_an_error_not_a_hang() {
        let program = assemble("main: jr zero\n halt\n").unwrap();
        let mut emu = Emulator::new(program);
        emu.step().unwrap(); // jr to address 0
        assert_eq!(emu.step(), Err(EmuError::BadPc(0)));
    }

    #[test]
    fn runaway_guard_fires() {
        let program = assemble("main: j main\n halt\n").unwrap();
        let mut emu = Emulator::new(program);
        assert_eq!(emu.run_to_halt(100), Err(EmuError::Runaway(100)));
    }

    #[test]
    fn shift_and_convert_edge_cases() {
        let emu = run(r#"
            main:
                li   t0, -8
                li   t1, 1
                sra  a0, t0, t1       # -4
                srl  a1, t0, t1       # huge positive
                li   t2, 70
                sll  a2, t1, t2       # shift amount masked to 6 (70 & 63)
                # float conversions
                li   t3, -3
                fcvt f0, t3
                fcvtz a3, f0          # back to -3
                fsub f1, f0, f0       # 0.0
                fcvtz a4, f1
                halt
            "#);
        assert_eq!(emu.reg(Reg::a(0)) as i64, -4);
        assert_eq!(emu.reg(Reg::a(1)), (-8i64 as u64) >> 1);
        assert_eq!(emu.reg(Reg::a(2)), 1u64 << 6);
        assert_eq!(emu.reg(Reg::a(3)) as i64, -3);
        assert_eq!(emu.reg(Reg::a(4)), 0);
    }

    #[test]
    fn time_and_write_syscalls() {
        let emu = run("main: nop
 nop
 li a7, 4
 syscall
 mv s0, a0
 li a7, 1
 li a0, 77
 syscall
 halt
");
        // TIME returns the instruction count at the moment of the syscall
        // (nop, nop, li = 3 executed before it; the syscall itself counts
        // after returning).
        assert_eq!(emu.reg(Reg::s(0)), 3);
        // WRITE is an architectural no-op: a0 keeps its value.
        assert_eq!(emu.reg(Reg::a(0)), 77);
    }

    #[test]
    fn unknown_syscall_returns_zero() {
        let emu = run("main: li a7, 99
 li a0, 5
 syscall
 halt
");
        assert_eq!(emu.reg(Reg::a(0)), 0);
    }

    #[test]
    fn mem_mut_seeds_program_inputs() {
        let program = assemble(
            ".data
v: .space 8
.text
main: la t0, v
 ld a0, 0(t0)
 halt
",
        )
        .unwrap();
        let v = program.symbol("v").unwrap();
        let mut emu = Emulator::new(program);
        emu.mem_mut().write_u64(v, 424242);
        emu.run_to_halt(100).unwrap();
        assert_eq!(emu.reg(Reg::a(0)), 424242);
    }

    #[test]
    fn resident_pages_track_footprint() {
        let mut mem = SparseMem::new();
        assert_eq!(mem.resident_pages(), 0);
        mem.write_u8(0, 1);
        mem.write_u8(4095, 1);
        assert_eq!(mem.resident_pages(), 1, "same page");
        mem.write_u8(4096, 1);
        assert_eq!(mem.resident_pages(), 2);
        // Cross-page u64 write touches both pages.
        mem.write_u64(2 * 4096 - 4, u64::MAX);
        assert_eq!(mem.resident_pages(), 3);
        assert_eq!(mem.read_u64(2 * 4096 - 4), u64::MAX);
    }

    #[test]
    fn x0_is_immutable() {
        let emu = run("main: li t0, 5\n add zero, t0, t0\n mv a0, zero\n halt\n");
        assert_eq!(emu.reg(Reg::ZERO), 0);
        assert_eq!(emu.reg(Reg::a(0)), 0);
    }
}
