//! Binary serialisation of [`DynInst`] streams.
//!
//! Functional execution is cheap but not free; long traces (or traces
//! produced by external tools) can be recorded once and replayed through
//! the timing model many times. The format is a fixed little-endian
//! record stream with a magic/version header — no external dependencies.
//!
//! ```text
//! header : "CPET" u8×4, version u32
//! record : flags u8           bit0 = taken, bit1 = kernel, bit2 = has mem_addr
//!          pc u64, inst u64 (the binary encoding), next_pc u64
//!          [mem_addr u64]     present when bit2 set
//! ```

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use crate::encode::{decode, encode, DecodeError};
use crate::trace::{DynInst, Mode};

const MAGIC: [u8; 4] = *b"CPET";
const VERSION: u32 = 1;

const FLAG_TAKEN: u8 = 1 << 0;
const FLAG_KERNEL: u8 = 1 << 1;
const FLAG_MEM: u8 = 1 << 2;

/// A trace-file failure.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The header is missing or from a different format/version.
    BadHeader,
    /// A record's instruction word failed to decode.
    BadInst(DecodeError),
    /// A record carried undefined flag bits.
    BadFlags(u8),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(error) => write!(f, "trace i/o failed: {error}"),
            TraceIoError::BadHeader => f.write_str("not a cpe trace file (bad magic/version)"),
            TraceIoError::BadInst(error) => write!(f, "corrupt trace record: {error}"),
            TraceIoError::BadFlags(flags) => {
                write!(f, "corrupt trace record: undefined flags {flags:#04x}")
            }
        }
    }
}

impl Error for TraceIoError {}

impl From<io::Error> for TraceIoError {
    fn from(error: io::Error) -> TraceIoError {
        TraceIoError::Io(error)
    }
}

/// Write a trace header followed by every record of `trace`.
///
/// Returns the number of records written.
///
/// # Errors
///
/// Propagates I/O failures from the writer.
pub fn write_trace<W, I>(mut writer: W, trace: I) -> Result<u64, TraceIoError>
where
    W: Write,
    I: IntoIterator<Item = DynInst>,
{
    writer.write_all(&MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    let mut written = 0;
    for di in trace {
        let mut flags = 0u8;
        if di.taken {
            flags |= FLAG_TAKEN;
        }
        if di.mode.is_kernel() {
            flags |= FLAG_KERNEL;
        }
        if di.mem_addr.is_some() {
            flags |= FLAG_MEM;
        }
        writer.write_all(&[flags])?;
        writer.write_all(&di.pc.to_le_bytes())?;
        writer.write_all(&encode(&di.inst).to_le_bytes())?;
        writer.write_all(&di.next_pc.to_le_bytes())?;
        if let Some(addr) = di.mem_addr {
            writer.write_all(&addr.to_le_bytes())?;
        }
        written += 1;
    }
    Ok(written)
}

/// An iterator decoding records from a reader.
///
/// Yields `Err` once on the first malformed record, then ends.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    reader: R,
    failed: bool,
}

impl<R: Read> TraceReader<R> {
    /// Validate the header and position the reader at the first record.
    ///
    /// # Errors
    ///
    /// [`TraceIoError::BadHeader`] when the magic or version mismatch.
    pub fn new(mut reader: R) -> Result<TraceReader<R>, TraceIoError> {
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        let mut version = [0u8; 4];
        reader.read_exact(&mut version)?;
        if magic != MAGIC || u32::from_le_bytes(version) != VERSION {
            return Err(TraceIoError::BadHeader);
        }
        Ok(TraceReader {
            reader,
            failed: false,
        })
    }

    fn read_u64(&mut self) -> io::Result<u64> {
        let mut bytes = [0u8; 8];
        self.reader.read_exact(&mut bytes)?;
        Ok(u64::from_le_bytes(bytes))
    }

    fn read_record(&mut self) -> Result<Option<DynInst>, TraceIoError> {
        let mut flags = [0u8; 1];
        match self.reader.read_exact(&mut flags) {
            Ok(()) => {}
            Err(error) if error.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(error) => return Err(error.into()),
        }
        let flags = flags[0];
        if flags & !(FLAG_TAKEN | FLAG_KERNEL | FLAG_MEM) != 0 {
            return Err(TraceIoError::BadFlags(flags));
        }
        let pc = self.read_u64()?;
        let word = self.read_u64()?;
        let next_pc = self.read_u64()?;
        let mem_addr = if flags & FLAG_MEM != 0 {
            Some(self.read_u64()?)
        } else {
            None
        };
        let inst = decode(word).map_err(TraceIoError::BadInst)?;
        Ok(Some(DynInst {
            pc,
            inst,
            mem_addr,
            taken: flags & FLAG_TAKEN != 0,
            next_pc,
            mode: if flags & FLAG_KERNEL != 0 {
                Mode::Kernel
            } else {
                Mode::User
            },
        }))
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<DynInst, TraceIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.read_record() {
            Ok(Some(di)) => Some(Ok(di)),
            Ok(None) => None,
            Err(error) => {
                self.failed = true;
                Some(Err(error))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::emu::Emulator;

    fn sample_trace() -> Vec<DynInst> {
        let program = assemble(
            ".data\nv: .quad 1, 2, 3\n.text\nmain: la t0, v\n ld a0, 0(t0)\n sd a0, 16(t0)\n li t1, 2\nloop: addi t1, t1, -1\n bnez t1, loop\n halt\n",
        )
        .unwrap();
        Emulator::new(program).collect()
    }

    #[test]
    fn roundtrip_preserves_every_record() {
        let trace = sample_trace();
        let mut buffer = Vec::new();
        let written = write_trace(&mut buffer, trace.iter().copied()).unwrap();
        assert_eq!(written as usize, trace.len());
        let back: Vec<DynInst> = TraceReader::new(buffer.as_slice())
            .unwrap()
            .map(|record| record.unwrap())
            .collect();
        assert_eq!(back, trace);
    }

    #[test]
    fn kernel_mode_and_flags_roundtrip() {
        let mut di = sample_trace()[1];
        di.mode = Mode::Kernel;
        di.taken = true;
        let mut buffer = Vec::new();
        write_trace(&mut buffer, [di]).unwrap();
        let back = TraceReader::new(buffer.as_slice())
            .unwrap()
            .next()
            .unwrap()
            .unwrap();
        assert_eq!(back, di);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let buffer = b"NOPE\x01\x00\x00\x00".to_vec();
        assert!(matches!(
            TraceReader::new(buffer.as_slice()),
            Err(TraceIoError::BadHeader)
        ));
    }

    #[test]
    fn truncated_records_surface_as_errors() {
        let mut buffer = Vec::new();
        write_trace(&mut buffer, sample_trace()).unwrap();
        buffer.truncate(buffer.len() - 3);
        let results: Vec<_> = TraceReader::new(buffer.as_slice()).unwrap().collect();
        assert!(
            results.last().unwrap().is_err(),
            "truncation must not pass silently"
        );
        // And the iterator fuses after the error.
        assert_eq!(results.iter().filter(|r| r.is_err()).count(), 1);
    }

    #[test]
    fn undefined_flag_bits_are_rejected() {
        let mut buffer = Vec::new();
        write_trace(&mut buffer, [sample_trace()[0]]).unwrap();
        buffer[8] |= 0x80; // first record's flags byte
        let results: Vec<_> = TraceReader::new(buffer.as_slice()).unwrap().collect();
        assert!(matches!(results[0], Err(TraceIoError::BadFlags(_))));
    }
}
