//! Opcodes and opcode classification.

use std::fmt;

/// Width in bytes of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemWidth {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes.
    B8,
}

impl MemWidth {
    /// Number of bytes transferred.
    #[inline]
    pub const fn bytes(self) -> u64 {
        match self {
            MemWidth::B1 => 1,
            MemWidth::B2 => 2,
            MemWidth::B4 => 4,
            MemWidth::B8 => 8,
        }
    }
}

impl fmt::Display for MemWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.bytes())
    }
}

/// Broad classification of an opcode, used by the pipeline model to select a
/// functional unit and by the memory model to route references.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer ALU operation (1-cycle).
    IntAlu,
    /// Integer multiply (pipelined, multi-cycle).
    IntMul,
    /// Integer divide (unpipelined, multi-cycle).
    IntDiv,
    /// Floating-point add/subtract/compare/convert.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide / square root (unpipelined).
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional jump / call / return.
    Jump,
    /// System instruction (`syscall`, `eret`, `halt`).
    System,
}

macro_rules! ops {
    ($( $(#[$meta:meta])* $name:ident = ($code:expr, $class:expr, $mnem:expr) ),+ $(,)?) => {
        /// An opcode of the miniature RISC machine.
        ///
        /// Use [`Op::class`] to find the functional-unit class, and
        /// [`Op::mem_width`] for the access width of loads and stores.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(u8)]
        pub enum Op {
            $( $(#[$meta])* $name = $code, )+
        }

        impl Op {
            /// All opcodes, in encoding order.
            pub const ALL: &'static [Op] = &[ $(Op::$name),+ ];

            /// The functional-unit class of this opcode.
            #[inline]
            pub const fn class(self) -> OpClass {
                match self {
                    $( Op::$name => $class, )+
                }
            }

            /// The assembler mnemonic.
            #[inline]
            pub const fn mnemonic(self) -> &'static str {
                match self {
                    $( Op::$name => $mnem, )+
                }
            }

            /// Reconstruct an opcode from its encoding byte.
            ///
            /// Returns `None` for bytes that encode no opcode.
            #[inline]
            pub const fn from_code(code: u8) -> Option<Op> {
                match code {
                    $( $code => Some(Op::$name), )+
                    _ => None,
                }
            }

            /// Look an opcode up by mnemonic.
            pub fn from_mnemonic(mnem: &str) -> Option<Op> {
                match mnem {
                    $( $mnem => Some(Op::$name), )+
                    _ => None,
                }
            }

            /// The encoding byte.
            #[inline]
            pub const fn code(self) -> u8 {
                self as u8
            }
        }
    };
}

ops! {
    // --- Integer register-register ---------------------------------------
    /// `add rd, rs1, rs2` — 64-bit wrapping add.
    Add = (0x00, OpClass::IntAlu, "add"),
    /// `sub rd, rs1, rs2` — 64-bit wrapping subtract.
    Sub = (0x01, OpClass::IntAlu, "sub"),
    /// `and rd, rs1, rs2` — bitwise AND.
    And = (0x02, OpClass::IntAlu, "and"),
    /// `or rd, rs1, rs2` — bitwise OR.
    Or = (0x03, OpClass::IntAlu, "or"),
    /// `xor rd, rs1, rs2` — bitwise XOR.
    Xor = (0x04, OpClass::IntAlu, "xor"),
    /// `sll rd, rs1, rs2` — shift left logical by `rs2 & 63`.
    Sll = (0x05, OpClass::IntAlu, "sll"),
    /// `srl rd, rs1, rs2` — shift right logical by `rs2 & 63`.
    Srl = (0x06, OpClass::IntAlu, "srl"),
    /// `sra rd, rs1, rs2` — shift right arithmetic by `rs2 & 63`.
    Sra = (0x07, OpClass::IntAlu, "sra"),
    /// `slt rd, rs1, rs2` — set `rd` to 1 when `rs1 < rs2` (signed).
    Slt = (0x08, OpClass::IntAlu, "slt"),
    /// `sltu rd, rs1, rs2` — set `rd` to 1 when `rs1 < rs2` (unsigned).
    Sltu = (0x09, OpClass::IntAlu, "sltu"),
    /// `mul rd, rs1, rs2` — low 64 bits of the product.
    Mul = (0x0a, OpClass::IntMul, "mul"),
    /// `div rd, rs1, rs2` — signed quotient; division by zero yields -1.
    Div = (0x0b, OpClass::IntDiv, "div"),
    /// `rem rd, rs1, rs2` — signed remainder; division by zero yields `rs1`.
    Rem = (0x0c, OpClass::IntDiv, "rem"),

    // --- Integer register-immediate ---------------------------------------
    /// `addi rd, rs1, imm` — add sign-extended immediate.
    Addi = (0x10, OpClass::IntAlu, "addi"),
    /// `andi rd, rs1, imm` — AND immediate.
    Andi = (0x11, OpClass::IntAlu, "andi"),
    /// `ori rd, rs1, imm` — OR immediate.
    Ori = (0x12, OpClass::IntAlu, "ori"),
    /// `xori rd, rs1, imm` — XOR immediate.
    Xori = (0x13, OpClass::IntAlu, "xori"),
    /// `slli rd, rs1, imm` — shift left logical by `imm & 63`.
    Slli = (0x14, OpClass::IntAlu, "slli"),
    /// `srli rd, rs1, imm` — shift right logical by `imm & 63`.
    Srli = (0x15, OpClass::IntAlu, "srli"),
    /// `srai rd, rs1, imm` — shift right arithmetic by `imm & 63`.
    Srai = (0x16, OpClass::IntAlu, "srai"),
    /// `slti rd, rs1, imm` — set on less-than immediate (signed).
    Slti = (0x17, OpClass::IntAlu, "slti"),
    /// `lui rd, imm` — load `imm << 12` into `rd`.
    Lui = (0x18, OpClass::IntAlu, "lui"),

    // --- Loads -------------------------------------------------------------
    /// `lb rd, imm(rs1)` — load byte, sign-extended.
    Lb = (0x20, OpClass::Load, "lb"),
    /// `lbu rd, imm(rs1)` — load byte, zero-extended.
    Lbu = (0x21, OpClass::Load, "lbu"),
    /// `lh rd, imm(rs1)` — load half-word, sign-extended.
    Lh = (0x22, OpClass::Load, "lh"),
    /// `lhu rd, imm(rs1)` — load half-word, zero-extended.
    Lhu = (0x23, OpClass::Load, "lhu"),
    /// `lw rd, imm(rs1)` — load word, sign-extended.
    Lw = (0x24, OpClass::Load, "lw"),
    /// `lwu rd, imm(rs1)` — load word, zero-extended.
    Lwu = (0x25, OpClass::Load, "lwu"),
    /// `ld rd, imm(rs1)` — load double-word.
    Ld = (0x26, OpClass::Load, "ld"),
    /// `fld fd, imm(rs1)` — load double-precision float.
    Fld = (0x27, OpClass::Load, "fld"),

    // --- Stores ------------------------------------------------------------
    /// `sb rs2, imm(rs1)` — store byte.
    Sb = (0x28, OpClass::Store, "sb"),
    /// `sh rs2, imm(rs1)` — store half-word.
    Sh = (0x29, OpClass::Store, "sh"),
    /// `sw rs2, imm(rs1)` — store word.
    Sw = (0x2a, OpClass::Store, "sw"),
    /// `sd rs2, imm(rs1)` — store double-word.
    Sd = (0x2b, OpClass::Store, "sd"),
    /// `fsd fs2, imm(rs1)` — store double-precision float.
    Fsd = (0x2c, OpClass::Store, "fsd"),

    // --- Floating point -----------------------------------------------------
    /// `fadd fd, fs1, fs2` — double-precision add.
    Fadd = (0x30, OpClass::FpAdd, "fadd"),
    /// `fsub fd, fs1, fs2` — double-precision subtract.
    Fsub = (0x31, OpClass::FpAdd, "fsub"),
    /// `fmul fd, fs1, fs2` — double-precision multiply.
    Fmul = (0x32, OpClass::FpMul, "fmul"),
    /// `fdiv fd, fs1, fs2` — double-precision divide.
    Fdiv = (0x33, OpClass::FpDiv, "fdiv"),
    /// `fsqrt fd, fs1` — double-precision square root.
    Fsqrt = (0x34, OpClass::FpDiv, "fsqrt"),
    /// `fcvt fd, rs1` — convert signed integer to double.
    Fcvt = (0x35, OpClass::FpAdd, "fcvt"),
    /// `fcvtz rd, fs1` — convert double to signed integer, truncating.
    Fcvtz = (0x36, OpClass::FpAdd, "fcvtz"),
    /// `flt rd, fs1, fs2` — set `rd` to 1 when `fs1 < fs2`.
    Flt = (0x37, OpClass::FpAdd, "flt"),
    /// `fmv fd, fs1` — move between float registers.
    Fmv = (0x38, OpClass::FpAdd, "fmv"),

    // --- Control transfer ----------------------------------------------------
    /// `beq rs1, rs2, target` — branch when equal.
    Beq = (0x40, OpClass::Branch, "beq"),
    /// `bne rs1, rs2, target` — branch when not equal.
    Bne = (0x41, OpClass::Branch, "bne"),
    /// `blt rs1, rs2, target` — branch when less-than (signed).
    Blt = (0x42, OpClass::Branch, "blt"),
    /// `bge rs1, rs2, target` — branch when greater-or-equal (signed).
    Bge = (0x43, OpClass::Branch, "bge"),
    /// `bltu rs1, rs2, target` — branch when less-than (unsigned).
    Bltu = (0x44, OpClass::Branch, "bltu"),
    /// `bgeu rs1, rs2, target` — branch when greater-or-equal (unsigned).
    Bgeu = (0x45, OpClass::Branch, "bgeu"),
    /// `jal rd, target` — jump and link.
    Jal = (0x46, OpClass::Jump, "jal"),
    /// `jalr rd, imm(rs1)` — indirect jump and link.
    Jalr = (0x47, OpClass::Jump, "jalr"),

    // --- System ---------------------------------------------------------------
    /// `syscall` — trap into the (modelled) kernel; service in `a7`.
    Syscall = (0x50, OpClass::System, "syscall"),
    /// `eret` — return from kernel mode to the interrupted user PC.
    Eret = (0x51, OpClass::System, "eret"),
    /// `halt` — stop the machine; end of program.
    Halt = (0x52, OpClass::System, "halt"),
}

impl Op {
    /// Memory access width for loads and stores; `None` otherwise.
    #[inline]
    pub const fn mem_width(self) -> Option<MemWidth> {
        match self {
            Op::Lb | Op::Lbu | Op::Sb => Some(MemWidth::B1),
            Op::Lh | Op::Lhu | Op::Sh => Some(MemWidth::B2),
            Op::Lw | Op::Lwu | Op::Sw => Some(MemWidth::B4),
            Op::Ld | Op::Sd | Op::Fld | Op::Fsd => Some(MemWidth::B8),
            _ => None,
        }
    }

    /// `true` for [`OpClass::Load`] opcodes.
    #[inline]
    pub const fn is_load(self) -> bool {
        matches!(self.class(), OpClass::Load)
    }

    /// `true` for [`OpClass::Store`] opcodes.
    #[inline]
    pub const fn is_store(self) -> bool {
        matches!(self.class(), OpClass::Store)
    }

    /// `true` for memory-referencing opcodes (loads and stores).
    #[inline]
    pub const fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// `true` for conditional branches.
    #[inline]
    pub const fn is_branch(self) -> bool {
        matches!(self.class(), OpClass::Branch)
    }

    /// `true` for any control transfer (branch or jump).
    #[inline]
    pub const fn is_control(self) -> bool {
        matches!(self.class(), OpClass::Branch | OpClass::Jump)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip_covers_every_opcode() {
        for &op in Op::ALL {
            assert_eq!(Op::from_code(op.code()), Some(op), "{op}");
        }
    }

    #[test]
    fn mnemonic_roundtrip_covers_every_opcode() {
        for &op in Op::ALL {
            assert_eq!(Op::from_mnemonic(op.mnemonic()), Some(op), "{op}");
        }
    }

    #[test]
    fn codes_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &op in Op::ALL {
            assert!(seen.insert(op.code()), "duplicate code for {op}");
        }
    }

    #[test]
    fn unknown_codes_and_mnemonics_are_rejected() {
        assert_eq!(Op::from_code(0xff), None);
        assert_eq!(Op::from_mnemonic("bogus"), None);
    }

    #[test]
    fn mem_width_only_for_memory_ops() {
        for &op in Op::ALL {
            assert_eq!(op.mem_width().is_some(), op.is_mem(), "{op}");
        }
        assert_eq!(Op::Ld.mem_width(), Some(MemWidth::B8));
        assert_eq!(Op::Sb.mem_width(), Some(MemWidth::B1));
        assert_eq!(Op::Lh.mem_width(), Some(MemWidth::B2));
        assert_eq!(Op::Sw.mem_width(), Some(MemWidth::B4));
    }

    #[test]
    fn classification_predicates_are_mutually_consistent() {
        for &op in Op::ALL {
            assert!(!(op.is_load() && op.is_store()), "{op}");
            if op.is_branch() {
                assert!(op.is_control(), "{op}");
            }
        }
        assert!(Op::Jal.is_control());
        assert!(!Op::Jal.is_branch());
        assert!(Op::Beq.is_branch());
        assert!(Op::Fld.is_load());
        assert!(Op::Fsd.is_store());
    }
}
