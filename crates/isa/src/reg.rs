//! Register names.

use std::fmt;

/// A register in the unified 64-entry register name space.
///
/// Indices `0..=31` name the integer registers `x0`..`x31` and indices
/// `32..=63` name the floating-point registers `f0`..`f31`. Integer register
/// `x0` reads as zero and ignores writes, as in most RISC architectures.
///
/// The assembler also accepts the conventional ABI aliases (`zero`, `ra`,
/// `sp`, `a0`–`a7`, `t0`–`t6`, `s0`–`s11`) — see [`Reg::parse`].
///
/// ```
/// use cpe_isa::Reg;
///
/// assert_eq!(Reg::x(5).index(), 5);
/// assert_eq!(Reg::f(5).index(), 37);
/// assert!(Reg::ZERO.is_zero());
/// assert_eq!(Reg::parse("a0"), Some(Reg::x(10)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Number of registers in the unified name space.
    pub const COUNT: usize = 64;

    /// The hard-wired zero register (`x0`).
    pub const ZERO: Reg = Reg(0);
    /// Return-address register (`x1`, alias `ra`).
    pub const RA: Reg = Reg(1);
    /// Stack pointer (`x2`, alias `sp`).
    pub const SP: Reg = Reg(2);
    /// Global pointer (`x3`, alias `gp`).
    pub const GP: Reg = Reg(3);

    /// Integer register `xN`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[inline]
    pub const fn x(n: u8) -> Reg {
        assert!(n < 32, "integer register index out of range");
        Reg(n)
    }

    /// Floating-point register `fN`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[inline]
    pub const fn f(n: u8) -> Reg {
        assert!(n < 32, "float register index out of range");
        Reg(32 + n)
    }

    /// Argument register `aN` (`a0`..`a7` map to `x10`..`x17`).
    ///
    /// # Panics
    ///
    /// Panics if `n >= 8`.
    #[inline]
    pub const fn a(n: u8) -> Reg {
        assert!(n < 8, "argument register index out of range");
        Reg(10 + n)
    }

    /// Temporary register `tN` (`t0`..`t6` map to `x5`..`x7`, `x28`..`x31`).
    ///
    /// # Panics
    ///
    /// Panics if `n >= 7`.
    #[inline]
    pub const fn t(n: u8) -> Reg {
        assert!(n < 7, "temporary register index out of range");
        if n < 3 {
            Reg(5 + n)
        } else {
            Reg(28 + (n - 3))
        }
    }

    /// Saved register `sN` (`s0`..`s1` map to `x8`..`x9`, `s2`..`s11` to
    /// `x18`..`x27`).
    ///
    /// # Panics
    ///
    /// Panics if `n >= 12`.
    #[inline]
    pub const fn s(n: u8) -> Reg {
        assert!(n < 12, "saved register index out of range");
        if n < 2 {
            Reg(8 + n)
        } else {
            Reg(18 + (n - 2))
        }
    }

    /// Construct a register from its raw unified index.
    ///
    /// Returns `None` when `index >= Reg::COUNT`.
    #[inline]
    pub const fn from_index(index: u8) -> Option<Reg> {
        if (index as usize) < Reg::COUNT {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// The raw unified index (`0..64`).
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// `true` when this is the hard-wired zero register `x0`.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `true` for integer registers `x0`..`x31`.
    #[inline]
    pub const fn is_int(self) -> bool {
        self.0 < 32
    }

    /// `true` for floating-point registers `f0`..`f31`.
    #[inline]
    pub const fn is_float(self) -> bool {
        self.0 >= 32
    }

    /// Parse a register name: `xN`, `fN`, or an ABI alias.
    ///
    /// Returns `None` when the name is not a register.
    pub fn parse(name: &str) -> Option<Reg> {
        let numbered = |prefix: &str, max: u8| -> Option<u8> {
            let rest = name.strip_prefix(prefix)?;
            let n: u8 = rest.parse().ok()?;
            (n < max).then_some(n)
        };
        if let Some(n) = numbered("x", 32) {
            return Some(Reg::x(n));
        }
        if let Some(n) = numbered("f", 32) {
            return Some(Reg::f(n));
        }
        if let Some(n) = numbered("a", 8) {
            return Some(Reg::a(n));
        }
        if let Some(n) = numbered("t", 7) {
            return Some(Reg::t(n));
        }
        if let Some(n) = numbered("s", 12) {
            return Some(Reg::s(n));
        }
        match name {
            "zero" => Some(Reg::ZERO),
            "ra" => Some(Reg::RA),
            "sp" => Some(Reg::SP),
            "gp" => Some(Reg::GP),
            "tp" => Some(Reg(4)),
            "fp" => Some(Reg(8)),
            _ => None,
        }
    }

    /// Iterator over every register in the unified name space.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..Reg::COUNT as u8).map(Reg)
    }
}

impl Default for Reg {
    fn default() -> Self {
        Reg::ZERO
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_int() {
            write!(f, "x{}", self.0)
        } else {
            write!(f, "f{}", self.0 - 32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_names_roundtrip_through_parse() {
        for reg in Reg::all() {
            assert_eq!(Reg::parse(&reg.to_string()), Some(reg));
        }
    }

    #[test]
    fn abi_aliases_map_to_documented_indices() {
        assert_eq!(Reg::parse("zero"), Some(Reg::x(0)));
        assert_eq!(Reg::parse("ra"), Some(Reg::x(1)));
        assert_eq!(Reg::parse("sp"), Some(Reg::x(2)));
        assert_eq!(Reg::parse("gp"), Some(Reg::x(3)));
        assert_eq!(Reg::parse("tp"), Some(Reg::x(4)));
        assert_eq!(Reg::parse("fp"), Some(Reg::x(8)));
        assert_eq!(Reg::parse("a0"), Some(Reg::x(10)));
        assert_eq!(Reg::parse("a7"), Some(Reg::x(17)));
        assert_eq!(Reg::parse("t0"), Some(Reg::x(5)));
        assert_eq!(Reg::parse("t2"), Some(Reg::x(7)));
        assert_eq!(Reg::parse("t3"), Some(Reg::x(28)));
        assert_eq!(Reg::parse("t6"), Some(Reg::x(31)));
        assert_eq!(Reg::parse("s0"), Some(Reg::x(8)));
        assert_eq!(Reg::parse("s1"), Some(Reg::x(9)));
        assert_eq!(Reg::parse("s2"), Some(Reg::x(18)));
        assert_eq!(Reg::parse("s11"), Some(Reg::x(27)));
    }

    #[test]
    fn rejects_out_of_range_and_junk() {
        assert_eq!(Reg::parse("x32"), None);
        assert_eq!(Reg::parse("f32"), None);
        assert_eq!(Reg::parse("a8"), None);
        assert_eq!(Reg::parse("t7"), None);
        assert_eq!(Reg::parse("s12"), None);
        assert_eq!(Reg::parse("pc"), None);
        assert_eq!(Reg::parse(""), None);
        assert_eq!(Reg::parse("x-1"), None);
        assert_eq!(Reg::from_index(64), None);
    }

    #[test]
    fn classification_is_consistent() {
        assert!(Reg::x(31).is_int());
        assert!(!Reg::x(31).is_float());
        assert!(Reg::f(0).is_float());
        assert!(!Reg::f(0).is_int());
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::f(0).is_zero());
    }

    #[test]
    fn float_registers_offset_by_32() {
        for n in 0..32 {
            assert_eq!(Reg::f(n).index(), 32 + n as usize);
        }
    }
}
