//! Assembled programs and the canonical address-space layout.

use std::collections::BTreeMap;
use std::fmt;

use crate::inst::Inst;

/// Bytes of address space occupied by one instruction.
///
/// The binary encoding is 64 bits, but for cache purposes each instruction
/// occupies four bytes of the text segment, matching the density of the
/// 32-bit RISC machines the paper modelled.
pub const INST_BYTES: u64 = 4;

/// Base address of the user text segment.
pub const TEXT_BASE: u64 = 0x0000_1000;

/// Base address of the user data segment (static data + heap grows up).
pub const DATA_BASE: u64 = 0x0010_0000;

/// Initial stack pointer (stack grows down).
pub const STACK_TOP: u64 = 0x7fff_f000;

/// Base address of kernel text. Kernel-mode instruction fetches live here so
/// that OS activity has a distinct instruction-cache footprint, as it did in
/// the paper's SimOS runs.
pub const KERNEL_TEXT_BASE: u64 = 0x8000_0000;

/// Base address of kernel data (kernel stacks, tables, buffers).
pub const KERNEL_DATA_BASE: u64 = 0x9000_0000;

/// An assembled program: text, initialised data, and symbols.
///
/// Produced by [`crate::asm::assemble`]; consumed by the functional emulator
/// in `cpe-cpu`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Instructions, in text order. Instruction `i` lives at address
    /// [`TEXT_BASE`]` + i * `[`INST_BYTES`].
    pub text: Vec<Inst>,
    /// Initialised data image, loaded at [`DATA_BASE`].
    pub data: Vec<u8>,
    /// Label name → absolute address (text labels and data labels).
    pub symbols: BTreeMap<String, u64>,
    /// Entry point address. Defaults to [`TEXT_BASE`]; the `main` label
    /// overrides it.
    pub entry: u64,
}

impl Program {
    /// An empty program (no text, no data, entry at [`TEXT_BASE`]).
    pub fn new() -> Program {
        Program {
            entry: TEXT_BASE,
            ..Program::default()
        }
    }

    /// Address of instruction `index`.
    #[inline]
    pub fn inst_addr(index: usize) -> u64 {
        TEXT_BASE + index as u64 * INST_BYTES
    }

    /// Index of the instruction at `addr`, when `addr` falls in text.
    #[inline]
    pub fn inst_index(&self, addr: u64) -> Option<usize> {
        if addr < TEXT_BASE || !(addr - TEXT_BASE).is_multiple_of(INST_BYTES) {
            return None;
        }
        let index = ((addr - TEXT_BASE) / INST_BYTES) as usize;
        (index < self.text.len()).then_some(index)
    }

    /// The instruction at `addr`, when `addr` falls in text.
    #[inline]
    pub fn fetch(&self, addr: u64) -> Option<&Inst> {
        self.inst_index(addr).map(|i| &self.text[i])
    }

    /// Look up a symbol's address.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Total size of the text segment in address-space bytes.
    pub fn text_bytes(&self) -> u64 {
        self.text.len() as u64 * INST_BYTES
    }
}

impl fmt::Display for Program {
    /// Disassembly listing with addresses and labels.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut label_at: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
        for (name, &addr) in &self.symbols {
            label_at.entry(addr).or_default().push(name);
        }
        for (i, inst) in self.text.iter().enumerate() {
            let addr = Program::inst_addr(i);
            if let Some(labels) = label_at.get(&addr) {
                for label in labels {
                    writeln!(f, "{label}:")?;
                }
            }
            writeln!(f, "  {addr:#010x}:  {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use crate::reg::Reg;

    #[test]
    fn inst_addressing_roundtrips() {
        let mut p = Program::new();
        p.text = vec![Inst::nop(); 10];
        for i in 0..10 {
            let addr = Program::inst_addr(i);
            assert_eq!(p.inst_index(addr), Some(i));
        }
        assert_eq!(p.inst_index(TEXT_BASE + 10 * INST_BYTES), None);
        assert_eq!(p.inst_index(TEXT_BASE + 2), None);
        assert_eq!(p.inst_index(0), None);
    }

    #[test]
    fn fetch_returns_the_right_instruction() {
        let mut p = Program::new();
        p.text = vec![Inst::nop(), Inst::rri(Op::Addi, Reg::x(1), Reg::ZERO, 7)];
        assert_eq!(p.fetch(TEXT_BASE + INST_BYTES).unwrap().imm, 7);
        assert_eq!(p.fetch(TEXT_BASE + 2 * INST_BYTES), None);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the layout invariant
    fn segments_do_not_overlap() {
        assert!(TEXT_BASE < DATA_BASE);
        assert!(DATA_BASE < STACK_TOP);
        assert!(STACK_TOP < KERNEL_TEXT_BASE);
        assert!(KERNEL_TEXT_BASE < KERNEL_DATA_BASE);
    }

    #[test]
    fn display_lists_labels_and_addresses() {
        let mut p = Program::new();
        p.text = vec![Inst::nop()];
        p.symbols.insert("main".into(), TEXT_BASE);
        let listing = p.to_string();
        assert!(listing.contains("main:"));
        assert!(listing.contains("0x00001000"));
    }
}
