//! Record-once / replay-many trace storage ("CPER").
//!
//! [`trace_io`](crate::trace_io) serialises [`DynInst`] streams as fixed
//! 25–33 byte records — simple, but too fat to hold a whole sweep's
//! functional execution in memory. This module is the compact sibling
//! behind the replay execution backend: the committed path is recorded
//! **once** per workload into a [`RecordedTrace`] and replayed through
//! every timing configuration of a sweep without re-executing semantics.
//!
//! The encoding exploits the shape of a committed path:
//!
//! * most instructions start where the previous one ended (`pc ==
//!   prev.next_pc`) and fall through (`next_pc == pc + 4`) — both
//!   collapse into flag bits;
//! * the instruction *words* repeat heavily (a program's static text is
//!   tiny next to its dynamic path), so each record stores a varint
//!   index into a dictionary of distinct words;
//! * effective addresses are delta-encoded (zigzag varint) against the
//!   previous memory reference, which keeps strided access patterns in
//!   one or two bytes. Access *sizes* are not stored: they are a
//!   property of the opcode ([`DynInst::mem_bytes`]).
//!
//! ```text
//! header : "CPER" u8×4, format u32
//!          records u64, complete u8, window u64 (u64::MAX = none)
//!          dict_len u32, dict u64 × dict_len (encoded instruction words)
//!          payload_len u64, payload u8 × payload_len
//! record : flags u8    bit0 = taken, bit1 = kernel, bit2 = has mem_addr
//!                      bit3 = pc == prev.next_pc, bit4 = next_pc == pc+4
//!          [pc delta]      zigzag varint vs prev.next_pc, unless bit3
//!          dict index      varint
//!          [next_pc delta] zigzag varint vs pc+4, unless bit4
//!          [mem delta]     zigzag varint vs previous mem_addr, when bit2
//! ```
//!
//! Everything is little-endian and dependency-free. [`parse_recorded`]
//! validates a file eagerly — walking every record and diagnosing
//! corruption with its byte offset — so [`RecordedTrace::iter`] is
//! infallible.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use crate::encode::{decode, encode, DecodeError};
use crate::inst::Inst;
use crate::program::INST_BYTES;
use crate::trace::{DynInst, Mode};

/// File magic of the recorded-trace format.
pub const REPLAY_MAGIC: [u8; 4] = *b"CPER";
/// Version of the recorded-trace format, folded into result-cache keys:
/// bump it and every replay-path entry misses cleanly.
pub const REPLAY_FORMAT: u32 = 1;

const FLAG_TAKEN: u8 = 1 << 0;
const FLAG_KERNEL: u8 = 1 << 1;
const FLAG_MEM: u8 = 1 << 2;
const FLAG_PC_SEQ: u8 = 1 << 3;
const FLAG_FALLTHROUGH: u8 = 1 << 4;
const KNOWN_FLAGS: u8 = FLAG_TAKEN | FLAG_KERNEL | FLAG_MEM | FLAG_PC_SEQ | FLAG_FALLTHROUGH;

/// `window` header value encoding "recorded to the end of the stream".
const WINDOW_NONE: u64 = u64::MAX;

/// A recorded-trace failure. Offsets are byte positions in the parsed
/// input (for [`parse_recorded`], absolute file offsets).
#[derive(Debug)]
pub enum ReplayError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The magic bytes are missing or foreign.
    BadMagic,
    /// The format version is from a different build.
    BadFormat {
        /// Version found in the header.
        found: u32,
    },
    /// The input ended mid-structure.
    Truncated {
        /// Byte offset where more input was required.
        offset: u64,
    },
    /// A record carried undefined flag bits.
    BadFlags {
        /// Byte offset of the flags byte.
        offset: u64,
        /// The offending value.
        flags: u8,
    },
    /// A record referenced a dictionary entry that does not exist.
    BadDictIndex {
        /// Byte offset of the index varint.
        offset: u64,
        /// The out-of-range index.
        index: u64,
        /// Dictionary size.
        entries: usize,
    },
    /// A dictionary word failed to decode as an instruction.
    BadInst {
        /// Dictionary slot of the bad word.
        slot: u32,
        /// The decode failure.
        error: DecodeError,
    },
    /// The payload decoded to a different record count than the header
    /// promised.
    CountMismatch {
        /// Record count from the header.
        expected: u64,
        /// Records actually present in the payload.
        found: u64,
    },
}

impl ReplayError {
    /// The byte offset this error points at, when it has one — for
    /// `file:offset` diagnostics.
    pub fn offset(&self) -> Option<u64> {
        match self {
            ReplayError::Truncated { offset }
            | ReplayError::BadFlags { offset, .. }
            | ReplayError::BadDictIndex { offset, .. } => Some(*offset),
            _ => None,
        }
    }
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Io(error) => write!(f, "recorded-trace i/o failed: {error}"),
            ReplayError::BadMagic => f.write_str("not a cpe recorded trace (bad magic)"),
            ReplayError::BadFormat { found } => write!(
                f,
                "recorded-trace format {found} is not supported (this build reads format {REPLAY_FORMAT})"
            ),
            ReplayError::Truncated { offset } => {
                write!(f, "truncated at byte offset {offset}")
            }
            ReplayError::BadFlags { offset, flags } => write!(
                f,
                "undefined flag bits {flags:#04x} at byte offset {offset}"
            ),
            ReplayError::BadDictIndex {
                offset,
                index,
                entries,
            } => write!(
                f,
                "dictionary index {index} out of range ({entries} entries) at byte offset {offset}"
            ),
            ReplayError::BadInst { slot, error } => {
                write!(f, "dictionary slot {slot} does not decode: {error}")
            }
            ReplayError::CountMismatch { expected, found } => write!(
                f,
                "header promises {expected} record(s) but the payload holds {found}"
            ),
        }
    }
}

impl Error for ReplayError {}

impl From<io::Error> for ReplayError {
    fn from(error: io::Error) -> ReplayError {
        ReplayError::Io(error)
    }
}

fn put_varint(buf: &mut Vec<u8>, mut value: u64) {
    while value >= 0x80 {
        buf.push((value as u8) | 0x80);
        value >>= 7;
    }
    buf.push(value as u8);
}

fn put_zigzag(buf: &mut Vec<u8>, delta: u64) {
    let signed = delta as i64;
    put_varint(buf, ((signed << 1) ^ (signed >> 63)) as u64);
}

/// Header-shape summary of a recorded trace (what `cpe trace info`
/// prints).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayInfo {
    /// Committed-path records stored.
    pub records: u64,
    /// `true` when the recording reached the end of the stream; `false`
    /// when it stopped at the record cap.
    pub complete: bool,
    /// The record cap the recording ran under, when one was set.
    pub window: Option<u64>,
    /// Distinct instruction words in the dictionary.
    pub dict_entries: usize,
    /// Delta-encoded payload size.
    pub payload_bytes: usize,
}

impl ReplayInfo {
    /// Mean payload bytes per record (the compression headline).
    pub fn bytes_per_record(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.payload_bytes as f64 / self.records as f64
        }
    }
}

/// One workload's committed path, recorded once and replayable any
/// number of times (cheaply clonable iterators, shareable behind an
/// `Arc` across sweep cells).
#[derive(Debug, Clone)]
pub struct RecordedTrace {
    dict: Vec<Inst>,
    payload: Vec<u8>,
    records: u64,
    complete: bool,
    window: Option<u64>,
}

impl RecordedTrace {
    /// Drain `trace`, recording up to `cap` records (`None` records to
    /// the end of the stream). When the cap fires with the stream still
    /// producing, the trace is marked incomplete — replay consumers must
    /// not request more instructions than were recorded.
    pub fn record<I>(trace: I, cap: Option<u64>) -> RecordedTrace
    where
        I: IntoIterator<Item = DynInst>,
    {
        let mut iter = trace.into_iter();
        let mut dict: Vec<Inst> = Vec::new();
        let mut index_of: HashMap<u64, u32> = HashMap::new();
        let mut payload = Vec::new();
        let mut records = 0u64;
        let mut complete = true;
        let mut prev_next_pc = 0u64;
        let mut prev_mem = 0u64;
        loop {
            if cap.is_some_and(|cap| records >= cap) {
                complete = iter.next().is_none();
                break;
            }
            let Some(di) = iter.next() else { break };
            let mut flags = 0u8;
            if di.taken {
                flags |= FLAG_TAKEN;
            }
            if di.mode.is_kernel() {
                flags |= FLAG_KERNEL;
            }
            if di.mem_addr.is_some() {
                flags |= FLAG_MEM;
            }
            let sequential = di.pc == prev_next_pc;
            if sequential {
                flags |= FLAG_PC_SEQ;
            }
            let fallthrough = !di.diverted();
            if fallthrough {
                flags |= FLAG_FALLTHROUGH;
            }
            payload.push(flags);
            if !sequential {
                put_zigzag(&mut payload, di.pc.wrapping_sub(prev_next_pc));
            }
            let word = encode(&di.inst);
            let index = *index_of.entry(word).or_insert_with(|| {
                dict.push(di.inst);
                u32::try_from(dict.len() - 1).expect("dictionary outgrew u32 indices")
            });
            put_varint(&mut payload, u64::from(index));
            if !fallthrough {
                put_zigzag(
                    &mut payload,
                    di.next_pc.wrapping_sub(di.pc.wrapping_add(INST_BYTES)),
                );
            }
            if let Some(addr) = di.mem_addr {
                put_zigzag(&mut payload, addr.wrapping_sub(prev_mem));
                prev_mem = addr;
            }
            prev_next_pc = di.next_pc;
            records += 1;
        }
        RecordedTrace {
            dict,
            payload,
            records,
            complete,
            window: cap,
        }
    }

    /// Records stored.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// `true` when the recording captured the stream to its end.
    pub fn complete(&self) -> bool {
        self.complete
    }

    /// The record cap the recording ran under, when one was set.
    pub fn window(&self) -> Option<u64> {
        self.window
    }

    /// The header-shape summary.
    pub fn info(&self) -> ReplayInfo {
        ReplayInfo {
            records: self.records,
            complete: self.complete,
            window: self.window,
            dict_entries: self.dict.len(),
            payload_bytes: self.payload.len(),
        }
    }

    /// Replay the recording from the start. Decoding cannot fail: traces
    /// built by [`RecordedTrace::record`] are correct by construction and
    /// traces from [`parse_recorded`] were validated record by record.
    pub fn iter(&self) -> ReplayIter<'_> {
        ReplayIter {
            trace: self,
            cursor: Cursor::new(&self.payload),
        }
    }
}

/// Decode state over a payload slice; offsets are payload-relative.
struct Cursor<'a> {
    payload: &'a [u8],
    pos: usize,
    prev_next_pc: u64,
    prev_mem: u64,
}

impl<'a> Cursor<'a> {
    fn new(payload: &'a [u8]) -> Cursor<'a> {
        Cursor {
            payload,
            pos: 0,
            prev_next_pc: 0,
            prev_mem: 0,
        }
    }

    fn varint(&mut self) -> Result<u64, ReplayError> {
        let start = self.pos;
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let Some(&byte) = self.payload.get(self.pos) else {
                return Err(ReplayError::Truncated {
                    offset: start as u64,
                });
            };
            self.pos += 1;
            value |= u64::from(byte & 0x7f) << shift;
            if byte < 0x80 {
                return Ok(value);
            }
            shift += 7;
            if shift >= 64 {
                // An over-long varint can only come from corruption.
                return Err(ReplayError::Truncated {
                    offset: start as u64,
                });
            }
        }
    }

    fn zigzag(&mut self) -> Result<u64, ReplayError> {
        let raw = self.varint()?;
        Ok((((raw >> 1) as i64) ^ -((raw & 1) as i64)) as u64)
    }

    fn next_record(&mut self, dict: &[Inst]) -> Result<Option<DynInst>, ReplayError> {
        if self.pos >= self.payload.len() {
            return Ok(None);
        }
        let at = self.pos as u64;
        let flags = self.payload[self.pos];
        self.pos += 1;
        if flags & !KNOWN_FLAGS != 0 {
            return Err(ReplayError::BadFlags { offset: at, flags });
        }
        let pc = if flags & FLAG_PC_SEQ != 0 {
            self.prev_next_pc
        } else {
            self.prev_next_pc.wrapping_add(self.zigzag()?)
        };
        let index_at = self.pos as u64;
        let index = self.varint()?;
        let inst = *dict
            .get(usize::try_from(index).unwrap_or(usize::MAX))
            .ok_or(ReplayError::BadDictIndex {
                offset: index_at,
                index,
                entries: dict.len(),
            })?;
        let fallthrough_pc = pc.wrapping_add(INST_BYTES);
        let next_pc = if flags & FLAG_FALLTHROUGH != 0 {
            fallthrough_pc
        } else {
            fallthrough_pc.wrapping_add(self.zigzag()?)
        };
        let mem_addr = if flags & FLAG_MEM != 0 {
            let addr = self.prev_mem.wrapping_add(self.zigzag()?);
            self.prev_mem = addr;
            Some(addr)
        } else {
            None
        };
        self.prev_next_pc = next_pc;
        Ok(Some(DynInst {
            pc,
            inst,
            mem_addr,
            taken: flags & FLAG_TAKEN != 0,
            next_pc,
            mode: if flags & FLAG_KERNEL != 0 {
                Mode::Kernel
            } else {
                Mode::User
            },
        }))
    }
}

/// Iterator replaying a [`RecordedTrace`] from the start.
pub struct ReplayIter<'a> {
    trace: &'a RecordedTrace,
    cursor: Cursor<'a>,
}

impl Iterator for ReplayIter<'_> {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        self.cursor
            .next_record(&self.trace.dict)
            .expect("recorded traces are validated before replay")
    }
}

impl fmt::Debug for ReplayIter<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplayIter")
            .field("records", &self.trace.records)
            .finish_non_exhaustive()
    }
}

/// Serialise a recording. Returns the total bytes written.
///
/// # Errors
///
/// Propagates I/O failures from the writer.
pub fn write_recorded<W: Write>(mut writer: W, trace: &RecordedTrace) -> io::Result<u64> {
    writer.write_all(&REPLAY_MAGIC)?;
    writer.write_all(&REPLAY_FORMAT.to_le_bytes())?;
    writer.write_all(&trace.records.to_le_bytes())?;
    writer.write_all(&[u8::from(trace.complete)])?;
    writer.write_all(&trace.window.unwrap_or(WINDOW_NONE).to_le_bytes())?;
    let dict_len = u32::try_from(trace.dict.len()).expect("dictionary fits u32");
    writer.write_all(&dict_len.to_le_bytes())?;
    for inst in &trace.dict {
        writer.write_all(&encode(inst).to_le_bytes())?;
    }
    writer.write_all(&(trace.payload.len() as u64).to_le_bytes())?;
    writer.write_all(&trace.payload)?;
    Ok(37 + 8 * u64::from(dict_len) + trace.payload.len() as u64)
}

/// Parse and **fully validate** a serialised recording: header, every
/// dictionary word, and every payload record (so corruption is diagnosed
/// here, with a byte offset, and replay itself cannot fail).
///
/// # Errors
///
/// Any [`ReplayError`] variant; [`ReplayError::offset`] gives the file
/// offset where one applies.
pub fn parse_recorded(bytes: &[u8]) -> Result<RecordedTrace, ReplayError> {
    let need = |at: usize, len: usize| -> Result<&[u8], ReplayError> {
        bytes
            .get(at..at + len)
            .ok_or(ReplayError::Truncated { offset: at as u64 })
    };
    let magic = need(0, 4)?;
    if magic != REPLAY_MAGIC {
        return Err(ReplayError::BadMagic);
    }
    let format = u32::from_le_bytes(need(4, 4)?.try_into().expect("4 bytes"));
    if format != REPLAY_FORMAT {
        return Err(ReplayError::BadFormat { found: format });
    }
    let records = u64::from_le_bytes(need(8, 8)?.try_into().expect("8 bytes"));
    let complete = need(16, 1)?[0] != 0;
    let window = match u64::from_le_bytes(need(17, 8)?.try_into().expect("8 bytes")) {
        WINDOW_NONE => None,
        cap => Some(cap),
    };
    let dict_len = u32::from_le_bytes(need(25, 4)?.try_into().expect("4 bytes"));
    let mut dict = Vec::with_capacity(dict_len as usize);
    let mut at = 29usize;
    for slot in 0..dict_len {
        let word = u64::from_le_bytes(need(at, 8)?.try_into().expect("8 bytes"));
        dict.push(decode(word).map_err(|error| ReplayError::BadInst { slot, error })?);
        at += 8;
    }
    let payload_len = u64::from_le_bytes(need(at, 8)?.try_into().expect("8 bytes"));
    at += 8;
    let payload_base = at as u64;
    let payload = need(
        at,
        usize::try_from(payload_len).map_err(|_| ReplayError::Truncated {
            offset: payload_base,
        })?,
    )?
    .to_vec();

    // Walk the whole payload now so iter() can promise infallibility.
    let rebase = |error: ReplayError| match error {
        ReplayError::Truncated { offset } => ReplayError::Truncated {
            offset: offset + payload_base,
        },
        ReplayError::BadFlags { offset, flags } => ReplayError::BadFlags {
            offset: offset + payload_base,
            flags,
        },
        ReplayError::BadDictIndex {
            offset,
            index,
            entries,
        } => ReplayError::BadDictIndex {
            offset: offset + payload_base,
            index,
            entries,
        },
        other => other,
    };
    let mut cursor = Cursor::new(&payload);
    let mut found = 0u64;
    while cursor.next_record(&dict).map_err(rebase)?.is_some() {
        found += 1;
    }
    if found != records {
        return Err(ReplayError::CountMismatch {
            expected: records,
            found,
        });
    }
    Ok(RecordedTrace {
        dict,
        payload,
        records,
        complete,
        window,
    })
}

/// [`parse_recorded`] over a reader (the file is read fully first; the
/// format keeps whole recordings in memory by design).
///
/// # Errors
///
/// I/O failures from the reader, then anything [`parse_recorded`] rejects.
pub fn read_recorded<R: Read>(mut reader: R) -> Result<RecordedTrace, ReplayError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    parse_recorded(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::emu::Emulator;

    fn sample_program() -> crate::program::Program {
        assemble(
            ".data\nv: .quad 1, 2, 3, 4\n.text\nmain: la t0, v\n li t1, 3\nloop: ld a0, 0(t0)\n addi a0, a0, 7\n sd a0, 8(t0)\n sb a0, 25(t0)\n addi t0, t0, 8\n addi t1, t1, -1\n bnez t1, loop\n halt\n",
        )
        .expect("sample assembles")
    }

    fn sample_trace() -> Vec<DynInst> {
        Emulator::new(sample_program()).collect()
    }

    #[test]
    fn replay_matches_the_recorded_stream_exactly() {
        let trace = sample_trace();
        let recorded = RecordedTrace::record(trace.iter().copied(), None);
        assert_eq!(recorded.records(), trace.len() as u64);
        assert!(recorded.complete());
        assert_eq!(recorded.window(), None);
        let replayed: Vec<DynInst> = recorded.iter().collect();
        assert_eq!(replayed, trace);
        // And again: iterators are independent replays of one recording.
        let again: Vec<DynInst> = recorded.iter().collect();
        assert_eq!(again, trace);
    }

    #[test]
    fn compact_beats_the_fixed_record_format() {
        let trace = sample_trace();
        let recorded = RecordedTrace::record(trace.iter().copied(), None);
        let mut fixed = Vec::new();
        crate::trace_io::write_trace(&mut fixed, trace.iter().copied()).unwrap();
        let info = recorded.info();
        assert!(
            info.payload_bytes * 4 < fixed.len(),
            "delta encoding should be ≥4× smaller: {} vs {}",
            info.payload_bytes,
            fixed.len()
        );
        assert!(info.bytes_per_record() < 5.0, "{}", info.bytes_per_record());
        assert!(info.dict_entries < trace.len());
    }

    #[test]
    fn a_cap_truncates_and_marks_the_recording_incomplete() {
        let trace = sample_trace();
        let recorded = RecordedTrace::record(trace.iter().copied(), Some(5));
        assert_eq!(recorded.records(), 5);
        assert!(!recorded.complete());
        assert_eq!(recorded.window(), Some(5));
        let replayed: Vec<DynInst> = recorded.iter().collect();
        assert_eq!(replayed, trace[..5]);
        // A cap beyond the stream's end still records everything.
        let all = RecordedTrace::record(trace.iter().copied(), Some(1_000_000));
        assert!(all.complete());
        assert_eq!(all.records(), trace.len() as u64);
    }

    #[test]
    fn file_roundtrip_preserves_everything() {
        let trace = sample_trace();
        let recorded = RecordedTrace::record(trace.iter().copied(), Some(1_000_000));
        let mut bytes = Vec::new();
        let written = write_recorded(&mut bytes, &recorded).unwrap();
        assert_eq!(written as usize, bytes.len());
        let back = read_recorded(bytes.as_slice()).unwrap();
        assert_eq!(back.info(), recorded.info());
        let replayed: Vec<DynInst> = back.iter().collect();
        assert_eq!(replayed, trace);
    }

    #[test]
    fn kernel_taken_and_wild_addresses_roundtrip() {
        // Exercise every flag bit and deltas that wrap the u64 space.
        let mut trace = sample_trace();
        trace[2].mode = Mode::Kernel;
        trace[2].taken = true;
        if let Some(addr) = &mut trace[2].mem_addr {
            *addr = u64::MAX - 3;
        }
        let recorded = RecordedTrace::record(trace.iter().copied(), None);
        let replayed: Vec<DynInst> = recorded.iter().collect();
        assert_eq!(replayed, trace);
    }

    #[test]
    fn bad_magic_and_format_are_rejected() {
        assert!(matches!(
            parse_recorded(b"NOPE\x01\x00\x00\x00"),
            Err(ReplayError::BadMagic)
        ));
        let recorded = RecordedTrace::record(sample_trace(), None);
        let mut bytes = Vec::new();
        write_recorded(&mut bytes, &recorded).unwrap();
        bytes[4] = 99;
        assert!(matches!(
            parse_recorded(&bytes),
            Err(ReplayError::BadFormat { found: 99 })
        ));
    }

    #[test]
    fn truncation_is_diagnosed_with_a_byte_offset() {
        let recorded = RecordedTrace::record(sample_trace(), None);
        let mut bytes = Vec::new();
        write_recorded(&mut bytes, &recorded).unwrap();
        bytes.truncate(bytes.len() - 2);
        let error = parse_recorded(&bytes).expect_err("truncation must not pass");
        match &error {
            // Chopping payload bytes either cuts a record mid-field
            // (Truncated) or removes whole records (CountMismatch).
            ReplayError::Truncated { offset } => {
                assert!(*offset > 0 && *offset <= bytes.len() as u64)
            }
            ReplayError::CountMismatch { expected, found } => assert!(found < expected),
            other => panic!("unexpected diagnosis: {other:?}"),
        }
        // Header truncation names the offset it needed.
        let error = parse_recorded(&bytes[..10]).expect_err("header cut");
        assert!(error.offset().is_some() || matches!(error, ReplayError::Truncated { .. }));
    }

    #[test]
    fn corrupt_flags_and_dict_indices_are_rejected() {
        let recorded = RecordedTrace::record(sample_trace(), None);
        let mut bytes = Vec::new();
        write_recorded(&mut bytes, &recorded).unwrap();
        let payload_base = (bytes.len() - recorded.payload.len()) as u64;
        // First record's flags byte: set an undefined bit.
        let flags_at = payload_base as usize;
        let mut corrupt = bytes.clone();
        corrupt[flags_at] |= 0x80;
        match parse_recorded(&corrupt) {
            Err(ReplayError::BadFlags { offset, .. }) => assert_eq!(offset, payload_base),
            other => panic!("expected BadFlags, got {other:?}"),
        }
        // An empty dictionary with a non-empty payload: index 0 misses.
        let no_dict = RecordedTrace {
            dict: Vec::new(),
            payload: recorded.payload.clone(),
            records: recorded.records,
            complete: true,
            window: None,
        };
        let mut bytes = Vec::new();
        write_recorded(&mut bytes, &no_dict).unwrap();
        assert!(matches!(
            parse_recorded(&bytes),
            Err(ReplayError::BadDictIndex { .. })
        ));
    }

    #[test]
    fn count_mismatch_is_rejected() {
        let recorded = RecordedTrace::record(sample_trace(), None);
        let mut bytes = Vec::new();
        write_recorded(&mut bytes, &recorded).unwrap();
        bytes[8..16].copy_from_slice(&(recorded.records() + 1).to_le_bytes());
        assert!(matches!(
            parse_recorded(&bytes),
            Err(ReplayError::CountMismatch { .. })
        ));
    }

    #[test]
    fn empty_recording_roundtrips() {
        let recorded = RecordedTrace::record(std::iter::empty(), None);
        assert_eq!(recorded.records(), 0);
        assert!(recorded.complete());
        assert_eq!(recorded.iter().count(), 0);
        let mut bytes = Vec::new();
        write_recorded(&mut bytes, &recorded).unwrap();
        let back = read_recorded(bytes.as_slice()).unwrap();
        assert_eq!(back.records(), 0);
    }
}
