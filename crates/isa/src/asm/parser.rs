//! Parsing token lines into assembler statements.

use crate::reg::Reg;

use super::lexer::Token;
use super::{AsmErrorKind, Result};

/// One parsed statement. A source line may yield several (labels followed by
/// an instruction, for example).
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `name:` — a label definition.
    Label(String),
    /// A segment or data directive.
    Directive(Directive),
    /// An instruction or pseudo-instruction with its operands.
    Inst {
        /// Mnemonic as written.
        mnemonic: String,
        /// Operands, in source order.
        operands: Vec<Operand>,
    },
}

/// A data or segment directive.
#[derive(Debug, Clone, PartialEq)]
pub enum Directive {
    /// `.text` — switch to the text segment.
    Text,
    /// `.data` — switch to the data segment.
    Data,
    /// `.byte v, ...` — emit 1-byte values.
    Byte(Vec<i64>),
    /// `.half v, ...` — emit 2-byte values.
    Half(Vec<i64>),
    /// `.word v, ...` — emit 4-byte values.
    Word(Vec<i64>),
    /// `.quad v, ...` — emit 8-byte values.
    Quad(Vec<i64>),
    /// `.double v, ...` — emit IEEE-754 doubles.
    Double(Vec<f64>),
    /// `.space n` — emit `n` zero bytes.
    Space(u64),
    /// `.align n` — pad the data segment to a 2^n boundary.
    Align(u32),
}

/// One instruction operand.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A register.
    Reg(Reg),
    /// An integer immediate.
    Imm(i64),
    /// A memory operand `offset(base)`.
    Mem {
        /// Byte displacement.
        offset: i64,
        /// Base register.
        base: Reg,
    },
    /// A symbol reference (label).
    Sym(String),
}

/// Parse the tokens of one line into statements.
pub fn parse_line(tokens: &[Token]) -> Result<Vec<Stmt>, AsmErrorKind> {
    let mut stmts = Vec::new();
    let mut rest = tokens;

    // Leading `name:` labels, possibly several.
    while let [Token::Ident(name), Token::Colon, tail @ ..] = rest {
        stmts.push(Stmt::Label(name.clone()));
        rest = tail;
    }

    match rest {
        [] => {}
        [Token::Directive(name), args @ ..] => {
            stmts.push(Stmt::Directive(parse_directive(name, args)?));
        }
        [Token::Ident(mnemonic), args @ ..] => {
            stmts.push(Stmt::Inst {
                mnemonic: mnemonic.clone(),
                operands: parse_operands(args)?,
            });
        }
        [token, ..] => return Err(AsmErrorKind::UnexpectedToken(token.to_string())),
    }
    Ok(stmts)
}

fn parse_directive(name: &str, args: &[Token]) -> Result<Directive, AsmErrorKind> {
    let int_list = |args: &[Token]| -> Result<Vec<i64>, AsmErrorKind> {
        comma_separated(args)?
            .into_iter()
            .map(|t| match t {
                Token::Int(v) => Ok(*v),
                other => Err(AsmErrorKind::UnexpectedToken(other.to_string())),
            })
            .collect()
    };
    match name {
        ".text" if args.is_empty() => Ok(Directive::Text),
        ".data" if args.is_empty() => Ok(Directive::Data),
        ".byte" => Ok(Directive::Byte(int_list(args)?)),
        ".half" => Ok(Directive::Half(int_list(args)?)),
        ".word" => Ok(Directive::Word(int_list(args)?)),
        ".quad" => Ok(Directive::Quad(int_list(args)?)),
        ".double" => {
            let values = comma_separated(args)?
                .into_iter()
                .map(|t| match t {
                    Token::Float(v) => Ok(*v),
                    Token::Int(v) => Ok(*v as f64),
                    other => Err(AsmErrorKind::UnexpectedToken(other.to_string())),
                })
                .collect::<Result<Vec<f64>, _>>()?;
            Ok(Directive::Double(values))
        }
        ".space" => match args {
            [Token::Int(n)] if *n >= 0 => Ok(Directive::Space(*n as u64)),
            _ => Err(AsmErrorKind::BadDirective(name.to_string())),
        },
        ".align" => match args {
            [Token::Int(n)] if (0..=16).contains(n) => Ok(Directive::Align(*n as u32)),
            _ => Err(AsmErrorKind::BadDirective(name.to_string())),
        },
        // Accepted and ignored for familiarity with common assemblers.
        ".global" | ".globl" => match args {
            [Token::Ident(_)] => Ok(Directive::Text),
            _ => Err(AsmErrorKind::BadDirective(name.to_string())),
        },
        _ => Err(AsmErrorKind::UnknownDirective(name.to_string())),
    }
}

/// Split `args` on commas, requiring exactly one token between commas
/// except for memory operands which are reassembled by the caller.
fn comma_separated(args: &[Token]) -> Result<Vec<&Token>, AsmErrorKind> {
    let mut out = Vec::new();
    let mut expect_value = true;
    for token in args {
        match (expect_value, token) {
            (true, Token::Comma) => return Err(AsmErrorKind::UnexpectedToken(token.to_string())),
            (true, value) => {
                out.push(value);
                expect_value = false;
            }
            (false, Token::Comma) => expect_value = true,
            (false, other) => return Err(AsmErrorKind::UnexpectedToken(other.to_string())),
        }
    }
    if expect_value && !out.is_empty() {
        return Err(AsmErrorKind::UnexpectedToken("trailing `,`".into()));
    }
    Ok(out)
}

fn parse_operands(args: &[Token]) -> Result<Vec<Operand>, AsmErrorKind> {
    let mut operands = Vec::new();
    let mut rest = args;
    loop {
        match rest {
            [] => break,
            // `offset(base)`
            [Token::Int(offset), Token::LParen, Token::Ident(base), Token::RParen, tail @ ..] => {
                let base =
                    Reg::parse(base).ok_or_else(|| AsmErrorKind::UnknownRegister(base.clone()))?;
                operands.push(Operand::Mem {
                    offset: *offset,
                    base,
                });
                rest = tail;
            }
            // `(base)` with implicit zero offset
            [Token::LParen, Token::Ident(base), Token::RParen, tail @ ..] => {
                let base =
                    Reg::parse(base).ok_or_else(|| AsmErrorKind::UnknownRegister(base.clone()))?;
                operands.push(Operand::Mem { offset: 0, base });
                rest = tail;
            }
            [Token::Ident(name), tail @ ..] => {
                operands.push(match Reg::parse(name) {
                    Some(reg) => Operand::Reg(reg),
                    None => Operand::Sym(name.clone()),
                });
                rest = tail;
            }
            [Token::Int(value), tail @ ..] => {
                operands.push(Operand::Imm(*value));
                rest = tail;
            }
            [token, ..] => return Err(AsmErrorKind::UnexpectedToken(token.to_string())),
        }
        match rest {
            [] => break,
            [Token::Comma, tail @ ..] => {
                if tail.is_empty() {
                    return Err(AsmErrorKind::UnexpectedToken("trailing `,`".into()));
                }
                rest = tail;
            }
            [token, ..] => return Err(AsmErrorKind::UnexpectedToken(token.to_string())),
        }
    }
    Ok(operands)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::lexer::tokenize_line;

    fn parse(src: &str) -> Vec<Stmt> {
        parse_line(&tokenize_line(src).unwrap()).unwrap()
    }

    #[test]
    fn labels_then_instruction_on_one_line() {
        let stmts = parse("loop: inner: add a0, a0, a1");
        assert_eq!(stmts.len(), 3);
        assert_eq!(stmts[0], Stmt::Label("loop".into()));
        assert_eq!(stmts[1], Stmt::Label("inner".into()));
        assert!(matches!(&stmts[2], Stmt::Inst { mnemonic, .. } if mnemonic == "add"));
    }

    #[test]
    fn memory_operands_parse_with_and_without_offset() {
        let stmts = parse("ld a0, 16(sp)");
        let Stmt::Inst { operands, .. } = &stmts[0] else {
            panic!()
        };
        assert_eq!(
            operands[1],
            Operand::Mem {
                offset: 16,
                base: Reg::SP
            }
        );

        let stmts = parse("ld a0, (sp)");
        let Stmt::Inst { operands, .. } = &stmts[0] else {
            panic!()
        };
        assert_eq!(
            operands[1],
            Operand::Mem {
                offset: 0,
                base: Reg::SP
            }
        );
    }

    #[test]
    fn symbols_versus_registers() {
        let stmts = parse("bne a0, zero, loop");
        let Stmt::Inst { operands, .. } = &stmts[0] else {
            panic!()
        };
        assert_eq!(operands[0], Operand::Reg(Reg::a(0)));
        assert_eq!(operands[1], Operand::Reg(Reg::ZERO));
        assert_eq!(operands[2], Operand::Sym("loop".into()));
    }

    #[test]
    fn directives_parse() {
        assert_eq!(parse(".text"), vec![Stmt::Directive(Directive::Text)]);
        assert_eq!(
            parse(".word 1, 2, 3"),
            vec![Stmt::Directive(Directive::Word(vec![1, 2, 3]))]
        );
        assert_eq!(
            parse(".double 1.5, -2"),
            vec![Stmt::Directive(Directive::Double(vec![1.5, -2.0]))]
        );
        assert_eq!(
            parse(".space 64"),
            vec![Stmt::Directive(Directive::Space(64))]
        );
        assert_eq!(
            parse(".align 3"),
            vec![Stmt::Directive(Directive::Align(3))]
        );
    }

    #[test]
    fn bad_syntax_is_rejected() {
        let t = tokenize_line("add a0,, a1").unwrap();
        assert!(parse_line(&t).is_err());
        let t = tokenize_line("add a0, a1,").unwrap();
        assert!(parse_line(&t).is_err());
        let t = tokenize_line(".bogus 1").unwrap();
        assert!(parse_line(&t).is_err());
        let t = tokenize_line(".space -1").unwrap();
        assert!(parse_line(&t).is_err());
        let t = tokenize_line("ld a0, 8(notareg)").unwrap();
        assert!(parse_line(&t).is_err());
    }

    #[test]
    fn empty_line_yields_nothing() {
        assert!(parse("").is_empty());
        assert_eq!(parse("label_only:"), vec![Stmt::Label("label_only".into())]);
    }
}
