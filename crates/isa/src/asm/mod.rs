//! The two-pass assembler.
//!
//! Source syntax is deliberately close to RISC-V assembler conventions:
//!
//! ```text
//! .data
//! table:  .quad 1, 2, 3, 4
//! buf:    .space 256
//!
//! .text
//! main:
//!     la   t0, table
//!     ld   a0, 0(t0)
//!     addi a0, a0, 1
//!     sd   a0, 8(t0)
//!     halt
//! ```
//!
//! Pass 1 sizes every statement and collects label addresses; pass 2 expands
//! mnemonics (including pseudo-instructions such as `li`, `la`, `mv`, `j`,
//! `call`, `ret`, `beqz`) into [`Inst`]s with resolved immediates.

mod lexer;
mod parser;

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::inst::Inst;
use crate::op::Op;
use crate::program::{Program, DATA_BASE, INST_BYTES, TEXT_BASE};
use crate::reg::Reg;

pub use lexer::{LexError, Token};
pub use parser::{Directive, Operand, Stmt};

pub(crate) type Result<T, E = AsmError> = std::result::Result<T, E>;

/// An assembly failure, with the 1-based source line where it occurred.
#[derive(Debug, Clone, PartialEq)]
pub struct AsmError {
    /// 1-based source line number.
    pub line: usize,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.kind)
    }
}

impl Error for AsmError {}

/// The kinds of assembly failure.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AsmErrorKind {
    /// The tokenizer rejected the line.
    Lex(LexError),
    /// A token appeared where it makes no sense.
    UnexpectedToken(String),
    /// An unknown directive.
    UnknownDirective(String),
    /// A directive with malformed arguments.
    BadDirective(String),
    /// A mnemonic that names no instruction or pseudo-instruction.
    UnknownMnemonic(String),
    /// A register name that names no register.
    UnknownRegister(String),
    /// Operands do not match the mnemonic's format.
    WrongOperands {
        /// The mnemonic.
        mnemonic: String,
        /// Human-readable description of the expected operands.
        expected: &'static str,
    },
    /// A referenced label was never defined.
    UndefinedSymbol(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// An immediate does not fit its encoding field.
    ImmOutOfRange(i64),
    /// A data directive appeared in the text segment.
    DataInText,
    /// An instruction appeared in the data segment.
    InstInData,
}

impl fmt::Display for AsmErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmErrorKind::Lex(e) => e.fmt(f),
            AsmErrorKind::UnexpectedToken(t) => write!(f, "unexpected {t}"),
            AsmErrorKind::UnknownDirective(d) => write!(f, "unknown directive `{d}`"),
            AsmErrorKind::BadDirective(d) => write!(f, "malformed arguments for `{d}`"),
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic `{m}`"),
            AsmErrorKind::UnknownRegister(r) => write!(f, "unknown register `{r}`"),
            AsmErrorKind::WrongOperands { mnemonic, expected } => {
                write!(f, "`{mnemonic}` expects {expected}")
            }
            AsmErrorKind::UndefinedSymbol(s) => write!(f, "undefined symbol `{s}`"),
            AsmErrorKind::DuplicateLabel(s) => write!(f, "duplicate label `{s}`"),
            AsmErrorKind::ImmOutOfRange(v) => {
                write!(f, "immediate {v} does not fit a signed 32-bit field")
            }
            AsmErrorKind::DataInText => f.write_str("data directive in the text segment"),
            AsmErrorKind::InstInData => f.write_str("instruction in the data segment"),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Text,
    Data,
}

/// Number of [`Inst`]s a mnemonic expands to. Pseudo-instruction sizes must
/// be known before symbol resolution, so they may not depend on operand
/// values.
fn expansion_size(mnemonic: &str) -> usize {
    match mnemonic {
        "la" => 2,
        _ => 1,
    }
}

struct PendingInst {
    line: usize,
    addr: u64,
    mnemonic: String,
    operands: Vec<Operand>,
}

/// Assemble source text into a [`Program`].
///
/// The entry point is the `main` label when defined, otherwise the first
/// text address.
///
/// # Errors
///
/// Returns an [`AsmError`] carrying the source line and failure kind for
/// any lexical, syntactic, or semantic problem.
///
/// ```
/// use cpe_isa::asm::assemble;
///
/// # fn main() -> Result<(), cpe_isa::asm::AsmError> {
/// let p = assemble(".text\nmain: li a0, 1\n halt\n")?;
/// assert_eq!(p.entry, p.symbol("main").unwrap());
/// # Ok(())
/// # }
/// ```
pub fn assemble(source: &str) -> Result<Program> {
    let mut segment = Segment::Text;
    let mut symbols: BTreeMap<String, u64> = BTreeMap::new();
    let mut data: Vec<u8> = Vec::new();
    let mut pending: Vec<PendingInst> = Vec::new();
    let mut text_len: usize = 0;

    // Pass 1: size statements, build data image, collect symbols.
    for (line_idx, line) in source.lines().enumerate() {
        let line_no = line_idx + 1;
        let err = |kind| AsmError {
            line: line_no,
            kind,
        };
        let tokens = lexer::tokenize_line(line).map_err(|e| err(AsmErrorKind::Lex(e)))?;
        let stmts = parser::parse_line(&tokens).map_err(err)?;
        for stmt in stmts {
            match stmt {
                Stmt::Label(name) => {
                    let addr = match segment {
                        Segment::Text => TEXT_BASE + text_len as u64 * INST_BYTES,
                        Segment::Data => DATA_BASE + data.len() as u64,
                    };
                    if symbols.insert(name.clone(), addr).is_some() {
                        return Err(err(AsmErrorKind::DuplicateLabel(name)));
                    }
                }
                Stmt::Directive(Directive::Text) => segment = Segment::Text,
                Stmt::Directive(Directive::Data) => segment = Segment::Data,
                Stmt::Directive(directive) => {
                    if segment != Segment::Data {
                        return Err(err(AsmErrorKind::DataInText));
                    }
                    emit_data(&mut data, &directive);
                }
                Stmt::Inst { mnemonic, operands } => {
                    if segment != Segment::Text {
                        return Err(err(AsmErrorKind::InstInData));
                    }
                    let addr = TEXT_BASE + text_len as u64 * INST_BYTES;
                    text_len += expansion_size(&mnemonic);
                    pending.push(PendingInst {
                        line: line_no,
                        addr,
                        mnemonic,
                        operands,
                    });
                }
            }
        }
    }

    // Pass 2: expand instructions with resolved symbols.
    let mut text = Vec::with_capacity(text_len);
    for p in &pending {
        let expanded = expand(p, &symbols).map_err(|kind| AsmError { line: p.line, kind })?;
        debug_assert_eq!(expanded.len(), expansion_size(&p.mnemonic));
        text.extend(expanded);
    }

    let entry = symbols.get("main").copied().unwrap_or(TEXT_BASE);
    Ok(Program {
        text,
        data,
        symbols,
        entry,
    })
}

fn emit_data(data: &mut Vec<u8>, directive: &Directive) {
    match directive {
        Directive::Byte(vs) => data.extend(vs.iter().map(|v| *v as u8)),
        Directive::Half(vs) => {
            for v in vs {
                data.extend_from_slice(&(*v as u16).to_le_bytes());
            }
        }
        Directive::Word(vs) => {
            for v in vs {
                data.extend_from_slice(&(*v as u32).to_le_bytes());
            }
        }
        Directive::Quad(vs) => {
            for v in vs {
                data.extend_from_slice(&v.to_le_bytes());
            }
        }
        Directive::Double(vs) => {
            for v in vs {
                data.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        Directive::Space(n) => data.resize(data.len() + *n as usize, 0),
        Directive::Align(n) => {
            let align = 1usize << *n;
            let padded = data.len().div_ceil(align) * align;
            data.resize(padded, 0);
        }
        Directive::Text | Directive::Data => unreachable!("segment switches handled by caller"),
    }
}

fn check_imm(v: i64) -> Result<i64, AsmErrorKind> {
    i32::try_from(v)
        .map(i64::from)
        .map_err(|_| AsmErrorKind::ImmOutOfRange(v))
}

fn expand(p: &PendingInst, symbols: &BTreeMap<String, u64>) -> Result<Vec<Inst>, AsmErrorKind> {
    use Operand as O;

    let wrong = |expected: &'static str| AsmErrorKind::WrongOperands {
        mnemonic: p.mnemonic.clone(),
        expected,
    };
    let resolve = |name: &str| -> Result<u64, AsmErrorKind> {
        symbols
            .get(name)
            .copied()
            .ok_or_else(|| AsmErrorKind::UndefinedSymbol(name.to_string()))
    };
    // Branch/jump targets accept either a label or a literal byte offset.
    let target = |operand: &Operand| -> Result<i64, AsmErrorKind> {
        match operand {
            O::Sym(name) => check_imm(resolve(name)? as i64 - p.addr as i64),
            O::Imm(offset) => check_imm(*offset),
            _ => Err(wrong("a label or byte offset target")),
        }
    };

    let ops = p.operands.as_slice();
    let m = p.mnemonic.as_str();

    if let Some(op) = Op::from_mnemonic(m) {
        let inst = match op.class() {
            crate::op::OpClass::Load => match ops {
                [O::Reg(rd), O::Mem { offset, base }] => {
                    Inst::load(op, *rd, *base, check_imm(*offset)?)
                }
                _ => return Err(wrong("`rd, offset(base)`")),
            },
            crate::op::OpClass::Store => match ops {
                [O::Reg(rs2), O::Mem { offset, base }] => {
                    Inst::store(op, *rs2, *base, check_imm(*offset)?)
                }
                _ => return Err(wrong("`rs, offset(base)`")),
            },
            crate::op::OpClass::Branch => match ops {
                [O::Reg(rs1), O::Reg(rs2), t] => Inst::branch(op, *rs1, *rs2, target(t)?),
                _ => return Err(wrong("`rs1, rs2, target`")),
            },
            crate::op::OpClass::Jump => match (op, ops) {
                (Op::Jal, [O::Reg(rd), t]) => Inst::jal(*rd, target(t)?),
                (Op::Jal, [t]) => Inst::jal(Reg::RA, target(t)?),
                (Op::Jalr, [O::Reg(rd), O::Mem { offset, base }]) => {
                    Inst::jalr(*rd, *base, check_imm(*offset)?)
                }
                (Op::Jalr, [O::Reg(rd), O::Reg(base)]) => Inst::jalr(*rd, *base, 0),
                _ => return Err(wrong("`rd, target` / `rd, offset(base)`")),
            },
            crate::op::OpClass::System => match ops {
                [] => Inst::system(op),
                _ => return Err(wrong("no operands")),
            },
            _ => match (op, ops) {
                (Op::Lui, [O::Reg(rd), O::Imm(imm)]) => {
                    Inst::rri(op, *rd, Reg::ZERO, check_imm(*imm)?)
                }
                (Op::Fsqrt | Op::Fmv | Op::Fcvt | Op::Fcvtz, [O::Reg(rd), O::Reg(rs1)]) => Inst {
                    op,
                    rd: *rd,
                    rs1: *rs1,
                    rs2: Reg::ZERO,
                    imm: 0,
                },
                (_, [O::Reg(rd), O::Reg(rs1), O::Reg(rs2)]) => Inst::rrr(op, *rd, *rs1, *rs2),
                (
                    Op::Addi
                    | Op::Andi
                    | Op::Ori
                    | Op::Xori
                    | Op::Slli
                    | Op::Srli
                    | Op::Srai
                    | Op::Slti,
                    [O::Reg(rd), O::Reg(rs1), O::Imm(imm)],
                ) => Inst::rri(op, *rd, *rs1, check_imm(*imm)?),
                _ => return Err(wrong("register/immediate operands matching the format")),
            },
        };
        return Ok(vec![inst]);
    }

    // Pseudo-instructions.
    let inst = match (m, ops) {
        ("nop", []) => Inst::nop(),
        ("li", [O::Reg(rd), O::Imm(imm)]) => Inst::rri(Op::Addi, *rd, Reg::ZERO, check_imm(*imm)?),
        ("la", [O::Reg(rd), O::Sym(name)]) => {
            let addr = resolve(name)?;
            let hi = (addr >> 12) as i64;
            let lo = (addr & 0xfff) as i64;
            return Ok(vec![
                Inst::rri(Op::Lui, *rd, Reg::ZERO, check_imm(hi)?),
                Inst::rri(Op::Ori, *rd, *rd, lo),
            ]);
        }
        ("mv", [O::Reg(rd), O::Reg(rs)]) => Inst::rri(Op::Addi, *rd, *rs, 0),
        ("not", [O::Reg(rd), O::Reg(rs)]) => Inst::rri(Op::Xori, *rd, *rs, -1),
        ("neg", [O::Reg(rd), O::Reg(rs)]) => Inst::rrr(Op::Sub, *rd, Reg::ZERO, *rs),
        ("b" | "j", [t]) => match m {
            "b" => Inst::branch(Op::Beq, Reg::ZERO, Reg::ZERO, target(t)?),
            _ => Inst::jal(Reg::ZERO, target(t)?),
        },
        ("beqz", [O::Reg(rs), t]) => Inst::branch(Op::Beq, *rs, Reg::ZERO, target(t)?),
        ("bnez", [O::Reg(rs), t]) => Inst::branch(Op::Bne, *rs, Reg::ZERO, target(t)?),
        ("bltz", [O::Reg(rs), t]) => Inst::branch(Op::Blt, *rs, Reg::ZERO, target(t)?),
        ("bgez", [O::Reg(rs), t]) => Inst::branch(Op::Bge, *rs, Reg::ZERO, target(t)?),
        ("bgtz", [O::Reg(rs), t]) => Inst::branch(Op::Blt, Reg::ZERO, *rs, target(t)?),
        ("blez", [O::Reg(rs), t]) => Inst::branch(Op::Bge, Reg::ZERO, *rs, target(t)?),
        ("call", [t]) => Inst::jal(Reg::RA, target(t)?),
        ("ret", []) => Inst::jalr(Reg::ZERO, Reg::RA, 0),
        ("jr", [O::Reg(rs)]) => Inst::jalr(Reg::ZERO, *rs, 0),
        _ if Op::from_mnemonic(m).is_none()
            && !matches!(
                m,
                "nop"
                    | "li"
                    | "la"
                    | "mv"
                    | "not"
                    | "neg"
                    | "b"
                    | "j"
                    | "beqz"
                    | "bnez"
                    | "bltz"
                    | "bgez"
                    | "bgtz"
                    | "blez"
                    | "call"
                    | "ret"
                    | "jr"
            ) =>
        {
            return Err(AsmErrorKind::UnknownMnemonic(m.to_string()))
        }
        _ => return Err(wrong("operands matching the pseudo-instruction format")),
    };
    Ok(vec![inst])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    #[test]
    fn assembles_a_loop_with_backward_branch() {
        let p = assemble(
            r#"
            .text
            main:
                li   a0, 4
            loop:
                addi a0, a0, -1
                bnez a0, loop
                halt
            "#,
        )
        .unwrap();
        assert_eq!(p.text.len(), 4);
        let branch = &p.text[2];
        assert_eq!(branch.op, Op::Bne);
        // `loop` is one instruction behind the branch.
        assert_eq!(branch.imm, -(INST_BYTES as i64));
    }

    #[test]
    fn la_expands_to_lui_ori_resolving_data_labels() {
        let p = assemble(
            r#"
            .data
            pad:   .space 24
            table: .quad 7
            .text
            main:
                la  t0, table
                ld  a0, 0(t0)
                halt
            "#,
        )
        .unwrap();
        let addr = p.symbol("table").unwrap();
        assert_eq!(addr, DATA_BASE + 24);
        let hi = &p.text[0];
        let lo = &p.text[1];
        assert_eq!(hi.op, Op::Lui);
        assert_eq!(lo.op, Op::Ori);
        assert_eq!(((hi.imm as u64) << 12) | lo.imm as u64, addr);
    }

    #[test]
    fn data_directives_build_the_image_little_endian() {
        let p = assemble(
            r#"
            .data
            a: .byte 1, 2
            b: .half 0x0304
            c: .word 0x05060708
            d: .quad -1
            e: .double 1.0
            .text
            halt
            "#,
        )
        .unwrap();
        assert_eq!(&p.data[0..2], &[1, 2]);
        assert_eq!(&p.data[2..4], &[0x04, 0x03]);
        assert_eq!(&p.data[4..8], &[0x08, 0x07, 0x06, 0x05]);
        assert_eq!(&p.data[8..16], &[0xff; 8]);
        assert_eq!(&p.data[16..24], &1.0f64.to_bits().to_le_bytes());
    }

    #[test]
    fn align_pads_to_power_of_two() {
        let p = assemble(".data\n.byte 1\n.align 3\nx: .quad 9\n.text\nhalt\n").unwrap();
        assert_eq!(p.symbol("x").unwrap(), DATA_BASE + 8);
        assert_eq!(p.data.len(), 16);
    }

    #[test]
    fn entry_defaults_and_main_overrides() {
        let p = assemble("nop\nhalt\n").unwrap();
        assert_eq!(p.entry, TEXT_BASE);
        let p = assemble("nop\nmain: halt\n").unwrap();
        assert_eq!(p.entry, TEXT_BASE + INST_BYTES);
    }

    #[test]
    fn forward_references_resolve() {
        let p = assemble("main: j end\nnop\nend: halt\n").unwrap();
        assert_eq!(p.text[0].imm, 2 * INST_BYTES as i64);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("nop\nbogus a0\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, AsmErrorKind::UnknownMnemonic(_)));
    }

    #[test]
    fn undefined_and_duplicate_symbols_are_errors() {
        let err = assemble("j nowhere\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::UndefinedSymbol(_)));
        let err = assemble("x: nop\nx: nop\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::DuplicateLabel(_)));
    }

    #[test]
    fn segment_confusion_is_an_error() {
        let err = assemble(".text\n.word 1\n").unwrap_err();
        assert_eq!(err.kind, AsmErrorKind::DataInText);
        let err = assemble(".data\nnop\n").unwrap_err();
        assert_eq!(err.kind, AsmErrorKind::InstInData);
    }

    #[test]
    fn wrong_operand_shapes_are_errors() {
        for src in [
            "add a0, a1\n",
            "ld a0, a1, a2\n",
            "beq a0, loop\n",
            "halt 3\n",
            "li a0, a1\n",
            "la a0, 5\n",
        ] {
            let err = assemble(src).unwrap_err();
            assert!(
                matches!(err.kind, AsmErrorKind::WrongOperands { .. }),
                "{src:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn out_of_range_immediates_are_rejected() {
        let err = assemble("li a0, 0x100000000\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::ImmOutOfRange(_)));
    }

    #[test]
    fn jal_and_jalr_forms() {
        let p = assemble("main: call f\nj main\njalr ra, 8(t0)\njalr zero, (ra)\nf: ret\nhalt\n")
            .unwrap();
        assert_eq!(p.text[0].op, Op::Jal);
        assert_eq!(p.text[0].rd, Reg::RA);
        assert_eq!(p.text[1].rd, Reg::ZERO);
        assert_eq!(p.text[2].imm, 8);
        assert_eq!(p.text[4].op, Op::Jalr);
    }

    #[test]
    fn pseudo_expansions_are_canonical() {
        let p =
            assemble("mv a0, a1\nnot a2, a3\nneg a4, a5\nbeqz a0, 8\nbgtz a1, 8\nhalt\n").unwrap();
        assert_eq!(p.text[0], Inst::rri(Op::Addi, Reg::a(0), Reg::a(1), 0));
        assert_eq!(p.text[1], Inst::rri(Op::Xori, Reg::a(2), Reg::a(3), -1));
        assert_eq!(
            p.text[2],
            Inst::rrr(Op::Sub, Reg::a(4), Reg::ZERO, Reg::a(5))
        );
        assert_eq!(p.text[3], Inst::branch(Op::Beq, Reg::a(0), Reg::ZERO, 8));
        assert_eq!(p.text[4], Inst::branch(Op::Blt, Reg::ZERO, Reg::a(1), 8));
    }

    #[test]
    fn fp_instructions_assemble() {
        let p = assemble(
            ".data\nv: .double 2.0\n.text\nmain: la t0, v\nfld f0, 0(t0)\nfsqrt f1, f0\nfadd f2, f1, f0\nfsd f2, 8(t0)\nfcvtz a0, f2\nhalt\n",
        )
        .unwrap();
        assert_eq!(p.text[2].op, Op::Fld);
        assert_eq!(p.text[3].op, Op::Fsqrt);
        assert_eq!(p.text[4].op, Op::Fadd);
        assert_eq!(p.text[5].op, Op::Fsd);
        assert_eq!(p.text[6].op, Op::Fcvtz);
    }
}
