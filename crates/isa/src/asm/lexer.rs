//! Line-oriented tokenizer for the assembler.

use std::fmt;

/// One token of assembly source.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// An identifier: mnemonic, register name, or label reference.
    Ident(String),
    /// A directive, including the leading dot (`.text`, `.word`, ...).
    Directive(String),
    /// An integer literal (decimal, `0x` hex, or `0b` binary; optionally
    /// negated).
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `(`
    LParen,
    /// `)`
    RParen,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "identifier `{s}`"),
            Token::Directive(s) => write!(f, "directive `{s}`"),
            Token::Int(v) => write!(f, "integer `{v}`"),
            Token::Float(v) => write!(f, "float `{v}`"),
            Token::Comma => f.write_str("`,`"),
            Token::Colon => f.write_str("`:`"),
            Token::LParen => f.write_str("`(`"),
            Token::RParen => f.write_str("`)`"),
        }
    }
}

/// A tokenization failure, reported with the offending text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// The text that could not be tokenized.
    pub text: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unrecognised token starting at `{}`", self.text)
    }
}

impl std::error::Error for LexError {}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.'
}

/// Tokenize one source line. Comments (`#` or `//` to end of line) are
/// stripped.
///
/// # Errors
///
/// Returns [`LexError`] when a character sequence forms no token.
pub fn tokenize_line(line: &str) -> Result<Vec<Token>, LexError> {
    let line = strip_comment(line);
    let mut tokens = Vec::new();
    let mut chars = line.char_indices().peekable();
    while let Some(&(start, c)) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            ',' => {
                chars.next();
                tokens.push(Token::Comma);
            }
            ':' => {
                chars.next();
                tokens.push(Token::Colon);
            }
            '(' => {
                chars.next();
                tokens.push(Token::LParen);
            }
            ')' => {
                chars.next();
                tokens.push(Token::RParen);
            }
            '.' => {
                chars.next();
                let mut name = String::from(".");
                while let Some(&(_, c)) = chars.peek() {
                    if is_ident_continue(c) {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if name.len() == 1 {
                    return Err(LexError {
                        text: line[start..].to_string(),
                    });
                }
                tokens.push(Token::Directive(name));
            }
            c if is_ident_start(c) => {
                let mut name = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if is_ident_continue(c) {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(name));
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' => {
                let rest = &line[start..];
                let (token, consumed) = scan_number(rest).ok_or_else(|| LexError {
                    text: rest.to_string(),
                })?;
                for _ in 0..consumed {
                    chars.next();
                }
                tokens.push(token);
            }
            _ => {
                return Err(LexError {
                    text: line[start..].to_string(),
                })
            }
        }
    }
    Ok(tokens)
}

fn strip_comment(line: &str) -> &str {
    let cut = line
        .find('#')
        .into_iter()
        .chain(line.find("//"))
        .min()
        .unwrap_or(line.len());
    &line[..cut]
}

/// Scan a numeric literal at the start of `text`. Returns the token and the
/// number of characters consumed.
fn scan_number(text: &str) -> Option<(Token, usize)> {
    let bytes = text.as_bytes();
    let mut i = 0;
    let negative = match bytes.first() {
        Some(b'-') => {
            i += 1;
            true
        }
        Some(b'+') => {
            i += 1;
            false
        }
        _ => false,
    };
    let digits_start = i;
    let radix = if text[i..].starts_with("0x") || text[i..].starts_with("0X") {
        i += 2;
        16
    } else if text[i..].starts_with("0b") || text[i..].starts_with("0B") {
        i += 2;
        2
    } else {
        10
    };
    let body_start = i;
    let mut saw_dot = false;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_digit(radix) || c == '_' {
            i += 1;
        } else if radix == 10 && c == '.' && !saw_dot {
            saw_dot = true;
            i += 1;
        } else {
            break;
        }
    }
    if i == body_start {
        return None;
    }
    let body: String = text[body_start..i].chars().filter(|&c| c != '_').collect();
    if saw_dot {
        let mut value: f64 = body.parse().ok()?;
        if negative {
            value = -value;
        }
        Some((Token::Float(value), i))
    } else {
        let magnitude = u64::from_str_radix(&body, radix).ok()?;
        let value = if negative {
            i64::try_from(magnitude).ok()?.checked_neg()?
        } else {
            // Allow full u64 hex constants to wrap into i64 bit patterns.
            magnitude as i64
        };
        let _ = digits_start;
        Some((Token::Int(value), i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_typical_instruction_line() {
        let tokens = tokenize_line("  ld a0, 16(sp)  # load slot").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("ld".into()),
                Token::Ident("a0".into()),
                Token::Comma,
                Token::Int(16),
                Token::LParen,
                Token::Ident("sp".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn tokenizes_labels_and_directives() {
        assert_eq!(
            tokenize_line("main:").unwrap(),
            vec![Token::Ident("main".into()), Token::Colon]
        );
        assert_eq!(
            tokenize_line(".word 1, -2, 0x10").unwrap(),
            vec![
                Token::Directive(".word".into()),
                Token::Int(1),
                Token::Comma,
                Token::Int(-2),
                Token::Comma,
                Token::Int(16),
            ]
        );
    }

    #[test]
    fn numeric_radixes_and_underscores() {
        assert_eq!(tokenize_line("0xff").unwrap(), vec![Token::Int(255)]);
        assert_eq!(tokenize_line("0b1010").unwrap(), vec![Token::Int(10)]);
        assert_eq!(
            tokenize_line("1_000_000").unwrap(),
            vec![Token::Int(1_000_000)]
        );
        assert_eq!(tokenize_line("-42").unwrap(), vec![Token::Int(-42)]);
        assert_eq!(tokenize_line("+7").unwrap(), vec![Token::Int(7)]);
    }

    #[test]
    fn floats_are_distinguished_from_ints() {
        assert_eq!(tokenize_line("3.5").unwrap(), vec![Token::Float(3.5)]);
        assert_eq!(tokenize_line("-0.25").unwrap(), vec![Token::Float(-0.25)]);
    }

    #[test]
    fn comments_are_stripped_in_both_styles() {
        assert_eq!(tokenize_line("# whole line").unwrap(), vec![]);
        assert_eq!(
            tokenize_line("nop // tail").unwrap(),
            vec![Token::Ident("nop".into())]
        );
        assert_eq!(tokenize_line("").unwrap(), vec![]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize_line("@@@").is_err());
        assert!(tokenize_line("ld a0, 16(sp) @").is_err());
        assert!(tokenize_line(". lonely-dot").is_err());
        assert!(tokenize_line("-").is_err());
    }

    #[test]
    fn full_u64_hex_wraps_to_bit_pattern() {
        assert_eq!(
            tokenize_line("0xffffffffffffffff").unwrap(),
            vec![Token::Int(-1)]
        );
    }
}
