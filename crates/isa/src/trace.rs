//! Dynamic (executed) instruction records.
//!
//! The functional emulator in `cpe-cpu` produces a stream of [`DynInst`]s —
//! the committed execution path with resolved effective addresses and branch
//! outcomes. The OS-activity injector in `cpe-workloads` splices
//! kernel-mode records into the same stream, and the timing model consumes
//! the result. Keeping the type here lets both crates share it without a
//! dependency cycle.

use crate::inst::Inst;

/// Privilege mode of an executed instruction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Application code.
    #[default]
    User,
    /// Operating-system code (trap handlers, scheduler, interrupts).
    Kernel,
}

impl Mode {
    /// `true` for [`Mode::Kernel`].
    #[inline]
    pub const fn is_kernel(self) -> bool {
        matches!(self, Mode::Kernel)
    }
}

/// One executed instruction on the committed path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynInst {
    /// Address the instruction was fetched from.
    pub pc: u64,
    /// The instruction itself.
    pub inst: Inst,
    /// Effective address for loads and stores.
    pub mem_addr: Option<u64>,
    /// Whether a conditional branch was taken (`false` for everything
    /// else).
    pub taken: bool,
    /// Address of the next committed instruction.
    pub next_pc: u64,
    /// Privilege mode.
    pub mode: Mode,
}

impl DynInst {
    /// Bytes accessed by this instruction's memory reference (0 when it is
    /// not a memory instruction).
    pub fn mem_bytes(&self) -> u64 {
        self.inst.op.mem_width().map_or(0, |w| w.bytes())
    }

    /// `true` when control did not fall through to `pc + 4`.
    pub fn diverted(&self) -> bool {
        self.next_pc != self.pc.wrapping_add(crate::program::INST_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use crate::reg::Reg;

    fn dyn_inst(inst: Inst, pc: u64, next_pc: u64) -> DynInst {
        DynInst {
            pc,
            inst,
            mem_addr: None,
            taken: false,
            next_pc,
            mode: Mode::User,
        }
    }

    #[test]
    fn mem_bytes_follow_the_opcode() {
        let load = dyn_inst(Inst::load(Op::Lw, Reg::x(1), Reg::SP, 0), 0x1000, 0x1004);
        assert_eq!(load.mem_bytes(), 4);
        let alu = dyn_inst(Inst::nop(), 0x1000, 0x1004);
        assert_eq!(alu.mem_bytes(), 0);
    }

    #[test]
    fn divergence_detection() {
        assert!(!dyn_inst(Inst::nop(), 0x1000, 0x1004).diverted());
        assert!(dyn_inst(Inst::nop(), 0x1000, 0x2000).diverted());
        assert!(dyn_inst(Inst::nop(), 0x1000, 0x1000).diverted());
    }

    #[test]
    fn kernel_mode_flag() {
        assert!(Mode::Kernel.is_kernel());
        assert!(!Mode::User.is_kernel());
        assert_eq!(Mode::default(), Mode::User);
    }
}
