//! Fixed 64-bit binary encoding.
//!
//! Layout (most significant byte first):
//!
//! ```text
//! bits 63..56   opcode byte
//! bits 55..50   rd   (unified register index)
//! bits 49..44   rs1
//! bits 43..38   rs2
//! bits 37..32   reserved (zero)
//! bits 31..0    immediate, two's-complement 32-bit
//! ```
//!
//! Immediates outside the signed 32-bit range cannot be represented; the
//! assembler rejects them and [`encode`] panics in debug builds.

use std::error::Error;
use std::fmt;

use crate::inst::Inst;
use crate::op::Op;
use crate::reg::Reg;

/// Error returned by [`decode`] for malformed instruction words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte names no opcode.
    UnknownOpcode(u8),
    /// A reserved field held a nonzero value.
    ReservedBits(u64),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode(code) => write!(f, "unknown opcode byte {code:#04x}"),
            DecodeError::ReservedBits(word) => {
                write!(f, "reserved bits set in instruction word {word:#018x}")
            }
        }
    }
}

impl Error for DecodeError {}

/// Encode an instruction into its 64-bit word.
///
/// # Panics
///
/// Panics (in all builds) when the immediate does not fit in a signed
/// 32-bit field; the assembler guarantees this for assembled programs.
pub fn encode(inst: &Inst) -> u64 {
    assert!(
        i32::try_from(inst.imm).is_ok(),
        "immediate {} does not fit the 32-bit encoding field",
        inst.imm
    );
    let imm = (inst.imm as i32) as u32;
    (u64::from(inst.op.code()) << 56)
        | ((inst.rd.index() as u64) << 50)
        | ((inst.rs1.index() as u64) << 44)
        | ((inst.rs2.index() as u64) << 38)
        | u64::from(imm)
}

/// Decode a 64-bit instruction word.
///
/// # Errors
///
/// Returns [`DecodeError::UnknownOpcode`] when the opcode byte is
/// unassigned and [`DecodeError::ReservedBits`] when bits 37..32 are not
/// zero.
pub fn decode(word: u64) -> Result<Inst, DecodeError> {
    let code = (word >> 56) as u8;
    let op = Op::from_code(code).ok_or(DecodeError::UnknownOpcode(code))?;
    if (word >> 32) & 0x3f != 0 {
        return Err(DecodeError::ReservedBits(word));
    }
    let reg = |shift: u32| {
        // Six-bit fields always fit the 64-entry register space.
        Reg::from_index(((word >> shift) & 0x3f) as u8).expect("6-bit register field")
    };
    Ok(Inst {
        op,
        rd: reg(50),
        rs1: reg(44),
        rs2: reg(38),
        imm: i64::from(word as u32 as i32),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpClass;
    use proptest::prelude::*;

    fn arb_reg() -> impl Strategy<Value = Reg> {
        (0u8..64).prop_map(|i| Reg::from_index(i).unwrap())
    }

    fn arb_inst() -> impl Strategy<Value = Inst> {
        let ops = prop::sample::select(Op::ALL.to_vec());
        (ops, arb_reg(), arb_reg(), arb_reg(), any::<i32>()).prop_map(|(op, rd, rs1, rs2, imm)| {
            Inst {
                op,
                rd,
                rs1,
                rs2,
                imm: i64::from(imm),
            }
        })
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(inst in arb_inst()) {
            let word = encode(&inst);
            let back = decode(word).expect("decode of freshly encoded word");
            prop_assert_eq!(inst, back);
        }

        #[test]
        fn distinct_insts_encode_distinct_words(a in arb_inst(), b in arb_inst()) {
            prop_assume!(a != b);
            prop_assert_ne!(encode(&a), encode(&b));
        }
    }

    #[test]
    fn unknown_opcode_is_rejected() {
        assert_eq!(decode(0xff << 56), Err(DecodeError::UnknownOpcode(0xff)));
    }

    #[test]
    fn reserved_bits_are_rejected() {
        let word = encode(&Inst::nop()) | (1 << 35);
        assert!(matches!(decode(word), Err(DecodeError::ReservedBits(_))));
    }

    #[test]
    fn negative_immediates_sign_extend() {
        let inst = Inst::rri(Op::Addi, Reg::x(1), Reg::x(1), -1);
        let back = decode(encode(&inst)).unwrap();
        assert_eq!(back.imm, -1);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_immediate_panics() {
        let inst = Inst::rri(Op::Addi, Reg::x(1), Reg::x(1), 1 << 40);
        let _ = encode(&inst);
    }

    #[test]
    fn decode_error_display_is_nonempty() {
        assert!(!DecodeError::UnknownOpcode(0xab).to_string().is_empty());
        assert!(!DecodeError::ReservedBits(0).to_string().is_empty());
    }

    #[test]
    fn every_class_is_reachable_from_some_op() {
        // Guards against opcode-table edits that orphan a class.
        use std::collections::HashSet;
        let classes: HashSet<_> = Op::ALL.iter().map(|op| op.class()).collect();
        for class in [
            OpClass::IntAlu,
            OpClass::IntMul,
            OpClass::IntDiv,
            OpClass::FpAdd,
            OpClass::FpMul,
            OpClass::FpDiv,
            OpClass::Load,
            OpClass::Store,
            OpClass::Branch,
            OpClass::Jump,
            OpClass::System,
        ] {
            assert!(classes.contains(&class), "{class:?} unreachable");
        }
    }
}
