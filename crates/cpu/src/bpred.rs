//! Branch prediction: direction predictors, the branch target buffer, and
//! the return-address stack.

use crate::config::DirPredictorKind;

/// A 2-bit saturating counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Counter2(u8);

impl Counter2 {
    const WEAKLY_TAKEN: Counter2 = Counter2(2);

    fn predict(self) -> bool {
        self.0 >= 2
    }

    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// A conditional-branch direction predictor.
///
/// ```
/// use cpe_cpu::bpred::DirectionPredictor;
/// use cpe_cpu::DirPredictorKind;
///
/// let mut p = DirectionPredictor::new(DirPredictorKind::Bimodal { entries: 64 });
/// for _ in 0..4 {
///     p.update(0x1000, true);
/// }
/// assert!(p.predict(0x1000));
/// ```
#[derive(Debug, Clone)]
pub struct DirectionPredictor {
    kind: DirPredictorKind,
    table: Vec<Counter2>,
    history: u64,
    history_mask: u64,
    /// Per-branch history registers (local predictor only).
    local_histories: Vec<u64>,
}

impl DirectionPredictor {
    /// Build the predictor described by `kind`.
    pub fn new(kind: DirPredictorKind) -> DirectionPredictor {
        let (entries, history_bits, local_entries) = match kind {
            DirPredictorKind::Btfn => (0, 0, 0),
            DirPredictorKind::Bimodal { entries } => (entries, 0, 0),
            DirPredictorKind::Gshare {
                entries,
                history_bits,
            } => (entries, history_bits, 0),
            DirPredictorKind::Local {
                history_entries,
                history_bits,
            } => (1usize << history_bits, history_bits, history_entries),
        };
        DirectionPredictor {
            kind,
            table: vec![Counter2::WEAKLY_TAKEN; entries],
            history: 0,
            history_mask: (1u64 << history_bits).saturating_sub(1),
            local_histories: vec![0; local_entries],
        }
    }

    fn local_slot(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.local_histories.len() - 1)
    }

    fn index(&self, pc: u64) -> usize {
        let base = pc >> 2;
        let idx = match self.kind {
            DirPredictorKind::Gshare { .. } => base ^ self.history,
            DirPredictorKind::Local { .. } => self.local_histories[self.local_slot(pc)],
            _ => base,
        };
        (idx as usize) & (self.table.len() - 1)
    }

    /// Predict the direction of the conditional branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        match self.kind {
            // Backward taken, forward not-taken — needs the target to
            // decide, which the caller resolves; here we approximate with
            // "taken" for negative-displacement encodings via the sign the
            // caller passes. The caller uses `predict_btfn` instead.
            DirPredictorKind::Btfn => true,
            _ => self.table[self.index(pc)].predict(),
        }
    }

    /// Static BTFN prediction given the branch displacement.
    pub fn predict_btfn(offset: i64) -> bool {
        offset < 0
    }

    /// Record the actual outcome of the branch at `pc`.
    pub fn update(&mut self, pc: u64, taken: bool) {
        if !self.table.is_empty() {
            let index = self.index(pc);
            self.table[index].update(taken);
        }
        match self.kind {
            DirPredictorKind::Local { .. } => {
                let slot = self.local_slot(pc);
                self.local_histories[slot] =
                    ((self.local_histories[slot] << 1) | u64::from(taken)) & self.history_mask;
            }
            _ if self.history_mask != 0 => {
                self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;
            }
            _ => {}
        }
    }

    /// The predictor kind.
    pub fn kind(&self) -> DirPredictorKind {
        self.kind
    }
}

/// A direct-mapped branch target buffer.
///
/// A taken control transfer whose target misses the BTB costs the frontend
/// a misfetch bubble even when the direction was predicted correctly.
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<Option<(u64, u64)>>,
}

impl Btb {
    /// A BTB with `entries` slots (0 disables it: every lookup misses).
    ///
    /// # Panics
    ///
    /// Panics when `entries` is nonzero and not a power of two.
    pub fn new(entries: usize) -> Btb {
        assert!(
            entries == 0 || entries.is_power_of_two(),
            "BTB entries must be zero or a power of two"
        );
        Btb {
            entries: vec![None; entries],
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.entries.len() - 1)
    }

    /// The predicted target for the control transfer at `pc`, if cached.
    pub fn lookup(&self, pc: u64) -> Option<u64> {
        if self.entries.is_empty() {
            return None;
        }
        match self.entries[self.index(pc)] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Install/refresh the target for `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        if self.entries.is_empty() {
            return;
        }
        let index = self.index(pc);
        self.entries[index] = Some((pc, target));
    }
}

/// The return-address stack, predicting `jalr`-through-`ra` returns.
#[derive(Debug, Clone)]
pub struct Ras {
    stack: Vec<u64>,
    capacity: usize,
}

impl Ras {
    /// A stack holding up to `capacity` return addresses.
    pub fn new(capacity: usize) -> Ras {
        Ras {
            stack: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Push the return address of a call. On overflow the oldest entry is
    /// discarded (as hardware does).
    pub fn push(&mut self, return_addr: u64) {
        if self.capacity == 0 {
            return;
        }
        if self.stack.len() == self.capacity {
            self.stack.remove(0);
        }
        self.stack.push(return_addr);
    }

    /// Pop the predicted return target.
    pub fn pop(&mut self) -> Option<u64> {
        self.stack.pop()
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_learns_a_bias() {
        let mut p = DirectionPredictor::new(DirPredictorKind::Bimodal { entries: 16 });
        for _ in 0..3 {
            p.update(0x1000, false);
        }
        assert!(!p.predict(0x1000));
        // Hysteresis: one taken outcome must not flip a strong not-taken.
        p.update(0x1000, true);
        assert!(!p.predict(0x1000));
        p.update(0x1000, true);
        assert!(p.predict(0x1000));
    }

    #[test]
    fn gshare_separates_history_contexts() {
        let mut p = DirectionPredictor::new(DirPredictorKind::Gshare {
            entries: 1024,
            history_bits: 4,
        });
        // Alternating pattern on one branch: TNTN...  Bimodal oscillates
        // around the weakly states; gshare learns each history context.
        let mut correct = 0;
        let mut outcome = false;
        for i in 0..400 {
            outcome = !outcome;
            if p.predict(0x2000) == outcome {
                correct += 1;
            }
            p.update(0x2000, outcome);
            let _ = i;
        }
        assert!(
            correct > 350,
            "gshare should learn alternation, got {correct}/400"
        );
    }

    #[test]
    fn bimodal_aliases_but_gshare_tables_are_masked() {
        let p = DirectionPredictor::new(DirPredictorKind::Bimodal { entries: 16 });
        // Two PCs 16 slots apart alias to the same counter; index math must
        // stay in range.
        assert_eq!(p.predict(0x1000), p.predict(0x1000 + 16 * 4));
    }

    #[test]
    fn local_learns_per_branch_patterns() {
        let mut p = DirectionPredictor::new(DirPredictorKind::Local {
            history_entries: 64,
            history_bits: 6,
        });
        // Branch A alternates, branch B is always taken; a local
        // predictor learns both without cross-pollution.
        let mut correct_a = 0;
        let mut correct_b = 0;
        let mut outcome_a = false;
        for i in 0..400 {
            outcome_a = !outcome_a;
            if p.predict(0x1000) == outcome_a {
                correct_a += 1;
            }
            p.update(0x1000, outcome_a);
            if p.predict(0x2000) {
                correct_b += 1;
            }
            p.update(0x2000, true);
            let _ = i;
        }
        assert!(
            correct_a > 350,
            "local must learn alternation: {correct_a}/400"
        );
        assert!(
            correct_b > 390,
            "local must learn always-taken: {correct_b}/400"
        );
    }

    #[test]
    fn btfn_is_backward_taken() {
        assert!(DirectionPredictor::predict_btfn(-8));
        assert!(!DirectionPredictor::predict_btfn(8));
    }

    #[test]
    fn btb_hits_only_on_matching_pc() {
        let mut btb = Btb::new(8);
        assert_eq!(btb.lookup(0x1000), None);
        btb.update(0x1000, 0x2000);
        assert_eq!(btb.lookup(0x1000), Some(0x2000));
        // An aliasing PC (same slot, different tag) misses and can evict.
        let alias = 0x1000 + 8 * 4;
        assert_eq!(btb.lookup(alias), None);
        btb.update(alias, 0x3000);
        assert_eq!(btb.lookup(0x1000), None);
    }

    #[test]
    fn zero_entry_btb_is_disabled() {
        let mut btb = Btb::new(0);
        btb.update(0x1000, 0x2000);
        assert_eq!(btb.lookup(0x1000), None);
    }

    #[test]
    fn ras_predicts_nested_returns() {
        let mut ras = Ras::new(4);
        ras.push(0x1004);
        ras.push(0x2004);
        assert_eq!(ras.pop(), Some(0x2004));
        assert_eq!(ras.pop(), Some(0x1004));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn ras_overflow_drops_the_oldest() {
        let mut ras = Ras::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3);
        assert_eq!(ras.depth(), 2);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None, "entry 1 was displaced");
    }
}
