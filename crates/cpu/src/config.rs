//! Processor-core configuration.

use std::fmt;

/// Which direction predictor drives fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirPredictorKind {
    /// Static backward-taken/forward-not-taken (no state).
    Btfn,
    /// Per-PC 2-bit saturating counters.
    Bimodal {
        /// Table entries (a power of two).
        entries: usize,
    },
    /// Global history XOR PC indexing a 2-bit counter table.
    Gshare {
        /// Table entries (a power of two).
        entries: usize,
        /// Global-history bits.
        history_bits: u32,
    },
    /// Two-level local (PAg): a per-branch history table indexing a
    /// shared pattern table of 2-bit counters.
    Local {
        /// Per-branch history registers (a power of two).
        history_entries: usize,
        /// Bits of local history per branch (the pattern table has
        /// `2^history_bits` counters).
        history_bits: u32,
    },
}

/// How loads order against older stores with unresolved addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Disambiguation {
    /// A load waits until every older store's address is known, then
    /// issues unless one overlaps (R10000 address-queue style).
    Conservative,
    /// Oracle memory-dependence resolution: a load waits only for older
    /// stores that actually overlap it. This is the default, matching the
    /// MXS-class simulators of the paper's era, and it is what exposes
    /// cache-port bandwidth as the bottleneck under study rather than
    /// address-resolution serialisation.
    #[default]
    Perfect,
    /// No ordering enforcement at all: loads never wait on older stores
    /// and never forward from them — every load goes to the cache as soon
    /// as its address is ready. An upper bound that isolates what
    /// memory-ordering hazards cost; with the event-driven scheduler it is
    /// simply the store-index query that always answers "go".
    None,
}

/// One functional-unit class: how many units, their latency, and whether
/// they accept a new operation every cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuSpec {
    /// Number of identical units.
    pub count: u32,
    /// Cycles from issue to result.
    pub latency: u64,
    /// `true` when a unit can start a new operation each cycle.
    pub pipelined: bool,
}

impl FuSpec {
    /// Shorthand constructor.
    pub const fn new(count: u32, latency: u64, pipelined: bool) -> FuSpec {
        FuSpec {
            count,
            latency,
            pipelined,
        }
    }
}

/// Latency/bandwidth of every functional-unit class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuConfig {
    /// Integer ALUs.
    pub int_alu: FuSpec,
    /// Integer multiplier.
    pub int_mul: FuSpec,
    /// Integer divider.
    pub int_div: FuSpec,
    /// FP adder.
    pub fp_add: FuSpec,
    /// FP multiplier.
    pub fp_mul: FuSpec,
    /// FP divide/sqrt.
    pub fp_div: FuSpec,
    /// Address-generation units (loads and stores compute addresses here).
    pub agu: FuSpec,
}

impl Default for FuConfig {
    /// R10000-flavoured latencies.
    fn default() -> FuConfig {
        FuConfig {
            int_alu: FuSpec::new(4, 1, true),
            int_mul: FuSpec::new(1, 4, true),
            int_div: FuSpec::new(1, 20, false),
            fp_add: FuSpec::new(1, 2, true),
            fp_mul: FuSpec::new(1, 3, true),
            fp_div: FuSpec::new(1, 18, false),
            agu: FuSpec::new(2, 1, true),
        }
    }
}

/// The dynamic superscalar core's parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuConfig {
    /// Instructions fetched per cycle (fetch stops at a taken branch).
    pub fetch_width: u32,
    /// Instructions renamed/dispatched into the window per cycle.
    pub dispatch_width: u32,
    /// Instructions issued to functional units per cycle.
    pub issue_width: u32,
    /// Instructions committed per cycle.
    pub commit_width: u32,
    /// Reorder-buffer entries (the instruction window).
    pub rob_entries: usize,
    /// Load-queue entries.
    pub load_queue: usize,
    /// Store-queue entries (pre-commit).
    pub store_queue: usize,
    /// Bytes per instruction-fetch block.
    pub fetch_bytes: u64,
    /// Direction predictor.
    pub predictor: DirPredictorKind,
    /// Branch-target-buffer entries (a power of two; 0 disables).
    pub btb_entries: usize,
    /// Return-address-stack depth.
    pub ras_entries: usize,
    /// Cycles from a mispredicted branch's resolution to useful fetch.
    pub mispredict_penalty: u64,
    /// Fetch bubble for a taken branch whose target missed the BTB.
    pub misfetch_penalty: u64,
    /// Extra serialisation cycles charged to `syscall`/`eret`.
    pub trap_penalty: u64,
    /// Functional units.
    pub fu: FuConfig,
    /// Load/store ordering policy.
    pub disambiguation: Disambiguation,
    /// Cycles for a load forwarded from the pre-commit store queue.
    pub lsq_forward_latency: u64,
    /// Model wrong-path instruction fetch: while a mispredicted transfer
    /// resolves, the frontend keeps fetching down the wrong path (whose
    /// start is known for direction mispredicts and RAS/BTB-predicted
    /// indirections), polluting the instruction cache and occupying fill
    /// bandwidth. Off by default — the recorded experiments in
    /// `EXPERIMENTS.md` were run without it.
    pub wrong_path_fetch: bool,
    /// Livelock watchdog: abort the run with a diagnostic snapshot if no
    /// instruction commits for this many consecutive cycles (0 disables
    /// the watchdog). A healthy machine's longest possible commit gap is
    /// bounded by a few DRAM round-trips, so the default of 100k cycles
    /// only fires on a genuine modelling deadlock or a pathological
    /// configuration.
    pub watchdog_cycles: u64,
}

impl Default for CpuConfig {
    /// The paper-class 4-issue dynamic superscalar machine.
    fn default() -> CpuConfig {
        CpuConfig {
            // The frontend fetches ahead of the 4-wide core (up to 8
            // instructions from one 32-byte block per cycle), as the
            // MXS-class frontends of the paper's era did; otherwise taken
            // branches cap fetch below the core's width and mask the
            // cache-port effects under study.
            fetch_width: 8,
            dispatch_width: 4,
            issue_width: 4,
            commit_width: 4,
            rob_entries: 64,
            load_queue: 16,
            store_queue: 16,
            fetch_bytes: 32,
            predictor: DirPredictorKind::Gshare {
                entries: 4096,
                history_bits: 8,
            },
            btb_entries: 512,
            ras_entries: 8,
            mispredict_penalty: 3,
            misfetch_penalty: 1,
            trap_penalty: 8,
            fu: FuConfig::default(),
            disambiguation: Disambiguation::default(),
            lsq_forward_latency: 1,
            wrong_path_fetch: false,
            watchdog_cycles: 100_000,
        }
    }
}

impl CpuConfig {
    /// Validate cross-field constraints, returning the first violation as
    /// a message suitable for a typed error.
    pub fn try_validate(&self) -> Result<(), String> {
        fn check(ok: bool, message: &str) -> Result<(), String> {
            if ok {
                Ok(())
            } else {
                Err(message.to_string())
            }
        }
        check(self.fetch_width >= 1, "fetch width must be at least 1")?;
        check(
            self.dispatch_width >= 1,
            "dispatch width must be at least 1",
        )?;
        check(self.issue_width >= 1, "issue width must be at least 1")?;
        check(self.commit_width >= 1, "commit width must be at least 1")?;
        check(self.rob_entries >= 1, "the ROB needs at least one entry")?;
        check(
            self.load_queue >= 1,
            "the load queue needs at least one entry",
        )?;
        check(
            self.store_queue >= 1,
            "the store queue needs at least one entry",
        )?;
        check(
            self.fetch_bytes.is_power_of_two(),
            "fetch block must be a power of two",
        )?;
        match self.predictor {
            DirPredictorKind::Btfn => {}
            DirPredictorKind::Bimodal { entries } | DirPredictorKind::Gshare { entries, .. } => {
                check(
                    entries.is_power_of_two(),
                    "predictor table must be a power of two",
                )?;
            }
            DirPredictorKind::Local {
                history_entries,
                history_bits,
            } => {
                check(
                    history_entries.is_power_of_two(),
                    "predictor table must be a power of two",
                )?;
                check(history_bits <= 16, "local history limited to 16 bits")?;
            }
        }
        if self.btb_entries > 0 {
            check(
                self.btb_entries.is_power_of_two(),
                "BTB must be a power of two",
            )?;
        }
        Ok(())
    }

    /// Validate cross-field constraints.
    ///
    /// # Panics
    ///
    /// Panics on zero widths, a zero-entry ROB, or a non-power-of-two
    /// fetch block. [`CpuConfig::try_validate`] is the non-panicking form.
    pub fn validate(&self) {
        if let Err(message) = self.try_validate() {
            panic!("{message}");
        }
    }
}

impl fmt::Display for CpuConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-wide OoO, {}-entry ROB, {}/{} LQ/SQ",
            self.issue_width, self.rob_entries, self.load_queue, self.store_queue
        )
    }
}

#[cfg(test)]
mod tests {
    // Tests tweak one field of a default config at a time; the
    // struct-update suggestion reads worse there.
    #![allow(clippy::field_reassign_with_default)]

    use super::*;

    #[test]
    fn default_validates() {
        CpuConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "fetch block")]
    fn bad_fetch_block_rejected() {
        let mut c = CpuConfig::default();
        c.fetch_bytes = 12;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_predictor_table_rejected() {
        let mut c = CpuConfig::default();
        c.predictor = DirPredictorKind::Gshare {
            entries: 1000,
            history_bits: 8,
        };
        c.validate();
    }

    #[test]
    fn try_validate_reports_instead_of_panicking() {
        let mut c = CpuConfig::default();
        assert!(c.try_validate().is_ok());
        c.issue_width = 0;
        let message = c.try_validate().unwrap_err();
        assert!(message.contains("issue width"), "{message}");
    }

    #[test]
    fn display_mentions_the_window() {
        let text = CpuConfig::default().to_string();
        assert!(text.contains("64-entry ROB"), "{text}");
    }
}
