//! Event-driven wakeup/select scheduling structures.
//!
//! The classic way to pick issue candidates is a broadcast scan: every
//! cycle, walk the whole reorder buffer and re-check every waiting
//! instruction's operands. That is O(window) per cycle whether or not
//! anything changed, and it is what the paper's large-window
//! configurations spend most of their host time doing.
//!
//! This module holds the bookkeeping that replaces the scan:
//!
//! * a **candidate set** — the sequence numbers of instructions whose
//!   operands (address operand, for memory ops) are ready, kept in age
//!   order so select examines exactly what the broadcast scan would have
//!   examined, in the same order;
//! * a **completion event queue** — each issued instruction schedules one
//!   wakeup at its `ready_at` cycle, at which point its waiters (recorded
//!   on the producer's ROB entry) are re-evaluated;
//! * a **store-address index** — in-flight stores bucketed by 8-byte
//!   address chunk, plus the set of stores whose effective address is
//!   still unknown, so load/store disambiguation is a point query instead
//!   of a backwards walk over the window.
//!
//! The invariant throughout: the candidate set *over-approximates* the
//! instructions the broadcast scan would have acted on, and every entry
//! whose examination has an architecturally visible side effect (a stat,
//! a cache access, an issue) is present. Examining an entry that turns
//! out not to be ready replays the scan's silent `continue`, so
//! over-approximation is free; missing an entry would change behaviour.
//! The simulated machine is bit-identical to the broadcast version —
//! only the host work changes.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::BuildHasherDefault;

use cpe_mem::Cycle;

use crate::lsq::ranges_overlap;

/// log2 of the store-index chunk width. Chunks are 8 bytes — the widest
/// access — so any byte overlap between two accesses implies they share
/// at least one chunk, which makes the index complete: a chunk query can
/// over-report (same chunk, disjoint bytes — filtered by an exact range
/// check) but never miss an overlap.
const CHUNK_SHIFT: u64 = 3;

/// Multiplicative hasher for chunk numbers: one Fibonacci multiply per
/// lookup on the disambiguation fast path, where the default SipHash
/// would dominate the query cost.
#[derive(Debug, Clone, Default)]
struct ChunkHasher(u64);

impl std::hash::Hasher for ChunkHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u64 keys (unused by the chunk map).
        for &byte in bytes {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// The stores indexed under one address chunk: `(seq, byte range)`.
type ChunkStores = Vec<(u64, (u64, u64))>;
/// Chunk number → the in-flight stores touching that chunk.
type ChunkMap = HashMap<u64, ChunkStores, BuildHasherDefault<ChunkHasher>>;

/// The scheduler state riding alongside the reorder buffer.
///
/// The candidate set is a ring bitmap in sequence-number space: bit
/// `seq & mask` stands for instruction `seq`. The window holds at most
/// `rob_entries` consecutive live sequence numbers and the bitmap is at
/// least that large, so no two live instructions share a bit, and
/// scanning positions upward from any live sequence number visits live
/// candidates in age order. For the paper's 128-entry window the whole
/// set is two machine words — select's walk is a couple of
/// trailing-zero counts instead of a tree traversal per step.
#[derive(Debug, Clone)]
pub(crate) struct Scheduler {
    /// Issue-candidate ring bitmap, one bit per in-flight seq.
    cand_words: Vec<u64>,
    /// Bitmap capacity minus one (capacity is a power of two).
    cand_mask: u64,
    /// Number of set bits, so emptiness checks are O(1).
    cand_count: u32,
    /// Pending completion wakeups as `(ready_at, producer seq)`.
    events: BinaryHeap<Reverse<(Cycle, u64)>>,
    /// In-flight stores by address chunk: `(seq, byte range)` per entry.
    store_chunks: ChunkMap,
    /// In-flight stores whose effective address is not yet known, in
    /// dispatch (= age) order, so the conservative gate's "any
    /// unresolved store older than this load?" is a front probe.
    unresolved_stores: Vec<u64>,
}

fn chunks(range: (u64, u64)) -> std::ops::RangeInclusive<u64> {
    debug_assert!(range.1 > range.0, "memory accesses cover at least a byte");
    (range.0 >> CHUNK_SHIFT)..=((range.1 - 1) >> CHUNK_SHIFT)
}

impl Scheduler {
    /// Build a scheduler for a window of `rob_entries` instructions.
    pub(crate) fn new(rob_entries: usize) -> Scheduler {
        let capacity = (rob_entries as u64).next_power_of_two().max(64);
        Scheduler {
            cand_words: vec![0; (capacity / 64) as usize],
            cand_mask: capacity - 1,
            cand_count: 0,
            events: BinaryHeap::new(),
            store_chunks: HashMap::default(),
            unresolved_stores: Vec::new(),
        }
    }

    // --- candidate set ----------------------------------------------------

    pub(crate) fn add_candidate(&mut self, seq: u64) {
        let pos = seq & self.cand_mask;
        let word = &mut self.cand_words[(pos >> 6) as usize];
        let bit = 1u64 << (pos & 63);
        self.cand_count += u32::from(*word & bit == 0);
        *word |= bit;
    }

    pub(crate) fn remove_candidate(&mut self, seq: u64) {
        let pos = seq & self.cand_mask;
        let word = &mut self.cand_words[(pos >> 6) as usize];
        let bit = 1u64 << (pos & 63);
        self.cand_count -= u32::from(*word & bit != 0);
        *word &= !bit;
    }

    pub(crate) fn has_candidates(&self) -> bool {
        self.cand_count != 0
    }

    /// The oldest candidate in `start..end` (sequence numbers), letting
    /// select walk the set in age order while it mutates it. `end - start`
    /// must not exceed the window (callers pass live ROB bounds), so the
    /// position scan visits each bit at most once and in age order.
    pub(crate) fn next_candidate_in(&self, start: u64, end: u64) -> Option<u64> {
        if self.cand_count == 0 {
            return None;
        }
        let mut seq = start;
        while seq < end {
            let pos = seq & self.cand_mask;
            // Bits at or above `pos` in this word are the candidates in
            // `seq .. next word boundary`, in order.
            let pending = self.cand_words[(pos >> 6) as usize] >> (pos & 63);
            if pending != 0 {
                let found = seq + u64::from(pending.trailing_zeros());
                return (found < end).then_some(found);
            }
            seq = (seq | 63) + 1;
        }
        None
    }

    // --- completion events ------------------------------------------------

    pub(crate) fn push_event(&mut self, ready_at: Cycle, seq: u64) {
        self.events.push(Reverse((ready_at, seq)));
    }

    /// The cycle of the earliest pending wakeup, if any.
    pub(crate) fn next_event_at(&self) -> Option<Cycle> {
        self.events.peek().map(|&Reverse((t, _))| t)
    }

    /// Pop the next producer whose result is available by `now`.
    pub(crate) fn pop_due(&mut self, now: Cycle) -> Option<u64> {
        match self.events.peek() {
            Some(&Reverse((t, _))) if t <= now => {
                let Reverse((_, seq)) = self.events.pop().expect("peeked above");
                Some(seq)
            }
            _ => None,
        }
    }

    /// Outstanding wakeups (the quantity `sched_events_peak` tracks).
    pub(crate) fn pending_events(&self) -> usize {
        self.events.len()
    }

    // --- store-address index ----------------------------------------------

    /// Track a dispatched store: index its (oracle) byte range by chunk
    /// and mark its address unresolved until address generation fires.
    pub(crate) fn add_store(&mut self, seq: u64, range: (u64, u64)) {
        for chunk in chunks(range) {
            self.store_chunks
                .entry(chunk)
                .or_default()
                .push((seq, range));
        }
        debug_assert!(self.unresolved_stores.last().is_none_or(|&s| s < seq));
        self.unresolved_stores.push(seq);
    }

    /// Address generation fired for store `seq`.
    pub(crate) fn resolve_store(&mut self, seq: u64) {
        if let Ok(at) = self.unresolved_stores.binary_search(&seq) {
            self.unresolved_stores.remove(at);
        }
    }

    /// Remove a committing store from the index. Emptied chunk buckets are
    /// deliberately kept: workloads hammer the same chunks, and retaining
    /// the bucket (and its `Vec` capacity) avoids a tree-node and
    /// allocation churn cycle on every store commit.
    pub(crate) fn retire_store(&mut self, seq: u64, range: (u64, u64)) {
        for chunk in chunks(range) {
            if let Some(stores) = self.store_chunks.get_mut(&chunk) {
                stores.retain(|&(s, _)| s != seq);
            }
        }
        self.resolve_store(seq);
    }

    /// Is any store older than `load_seq` still awaiting its address?
    /// (The conservative disambiguation gate.) The list is age-ordered,
    /// so this is a probe of its oldest element.
    pub(crate) fn has_unresolved_store_before(&self, load_seq: u64) -> bool {
        self.unresolved_stores
            .first()
            .is_some_and(|&s| s < load_seq)
    }

    /// The youngest store older than `load_seq` whose byte range overlaps
    /// `load_range` — the store a backwards window walk would find first.
    pub(crate) fn youngest_overlapping_store_before(
        &self,
        load_seq: u64,
        load_range: (u64, u64),
    ) -> Option<u64> {
        let mut youngest: Option<u64> = None;
        for chunk in chunks(load_range) {
            if let Some(stores) = self.store_chunks.get(&chunk) {
                for &(seq, range) in stores {
                    if seq < load_seq && ranges_overlap(range, load_range) {
                        youngest = Some(youngest.map_or(seq, |y| y.max(seq)));
                    }
                }
            }
        }
        youngest
    }

    /// Drop any bookkeeping for a committed instruction. The event-driven
    /// path never needs this (issue removed the candidate and the
    /// completion event has fired); it bounds growth when the broadcast
    /// oracle drives issue without consuming the queues, so it only
    /// exists alongside the oracle.
    #[cfg(test)]
    pub(crate) fn retire(&mut self, seq: u64) {
        self.remove_candidate(seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_walk_in_age_order_under_mutation() {
        let mut s = Scheduler::new(16);
        for seq in [9, 3, 7, 1] {
            s.add_candidate(seq);
        }
        assert_eq!(s.next_candidate_in(0, 12), Some(1));
        s.remove_candidate(1);
        assert_eq!(s.next_candidate_in(2, 12), Some(3));
        // An insertion ahead of the cursor is visited later in the same
        // walk — the zero-latency wakeup case.
        s.add_candidate(5);
        assert_eq!(s.next_candidate_in(4, 12), Some(5));
        assert_eq!(s.next_candidate_in(6, 12), Some(7));
        assert_eq!(s.next_candidate_in(10, 12), None);
        // The walk respects the live-window bound.
        assert_eq!(s.next_candidate_in(8, 9), None);
    }

    #[test]
    fn candidates_survive_sequence_wraparound_of_the_ring() {
        let mut s = Scheduler::new(64);
        // A window whose sequence numbers straddle a multiple of the
        // bitmap capacity: positions wrap but age order must not.
        s.add_candidate(60);
        s.add_candidate(65);
        s.add_candidate(70);
        assert_eq!(s.next_candidate_in(58, 100), Some(60));
        assert_eq!(s.next_candidate_in(61, 100), Some(65));
        assert_eq!(s.next_candidate_in(66, 100), Some(70));
        // A lingering older candidate (seq 60, bit at a high position)
        // must not alias into a younger scan range after the wrap.
        s.remove_candidate(65);
        s.remove_candidate(70);
        assert_eq!(s.next_candidate_in(66, 110), None);
        assert_eq!(s.next_candidate_in(58, 100), Some(60));
    }

    #[test]
    fn events_pop_in_time_order_and_only_when_due() {
        let mut s = Scheduler::new(8);
        s.push_event(12, 2);
        s.push_event(10, 1);
        s.push_event(12, 0);
        assert_eq!(s.next_event_at(), Some(10));
        assert_eq!(s.pending_events(), 3);
        assert_eq!(s.pop_due(9), None);
        assert_eq!(s.pop_due(10), Some(1));
        assert_eq!(s.pop_due(11), None);
        // Same-cycle ties break by age.
        assert_eq!(s.pop_due(12), Some(0));
        assert_eq!(s.pop_due(12), Some(2));
        assert_eq!(s.pop_due(12), None);
    }

    #[test]
    fn store_index_finds_the_youngest_older_overlap() {
        let mut s = Scheduler::new(8);
        s.add_store(1, (0x100, 0x108));
        s.add_store(3, (0x104, 0x106));
        s.add_store(5, (0x200, 0x208));
        // Both older stores overlap; the youngest wins.
        assert_eq!(
            s.youngest_overlapping_store_before(4, (0x104, 0x108)),
            Some(3)
        );
        // Only stores older than the load count.
        assert_eq!(
            s.youngest_overlapping_store_before(2, (0x104, 0x108)),
            Some(1)
        );
        // Same chunk, disjoint bytes: the exact range check filters it.
        assert_eq!(
            s.youngest_overlapping_store_before(4, (0x106, 0x108)),
            Some(1)
        );
        assert_eq!(s.youngest_overlapping_store_before(6, (0x300, 0x308)), None);
        s.retire_store(1, (0x100, 0x108));
        assert_eq!(s.youngest_overlapping_store_before(2, (0x104, 0x108)), None);
    }

    #[test]
    fn unaligned_ranges_index_across_chunk_boundaries() {
        let mut s = Scheduler::new(8);
        // Bytes [0x106, 0x10a) straddle chunks 0x20 and 0x21.
        s.add_store(1, (0x106, 0x10a));
        assert_eq!(
            s.youngest_overlapping_store_before(9, (0x108, 0x110)),
            Some(1)
        );
        assert_eq!(
            s.youngest_overlapping_store_before(9, (0x100, 0x107)),
            Some(1)
        );
        s.retire_store(1, (0x106, 0x10a));
        assert_eq!(s.youngest_overlapping_store_before(9, (0x108, 0x110)), None);
    }

    #[test]
    fn unresolved_stores_gate_by_age() {
        let mut s = Scheduler::new(8);
        s.add_store(4, (0x100, 0x108));
        assert!(s.has_unresolved_store_before(5));
        assert!(!s.has_unresolved_store_before(4));
        s.resolve_store(4);
        assert!(!s.has_unresolved_store_before(5));
    }
}
