//! `cpe-cpu` — the dynamic superscalar processor model.
//!
//! This crate supplies the two halves of a trace-driven simulation of an
//! MXS-class out-of-order machine (the processor model of the reproduced
//! ISCA '96 paper):
//!
//! * [`Emulator`] — a **functional** interpreter of `cpe-isa` programs that
//!   produces the committed execution path as a stream of
//!   [`cpe_isa::DynInst`] records (effective addresses, branch outcomes,
//!   privilege mode);
//! * [`Core`] — a **cycle-level timing model** that consumes such a stream:
//!   fetch with branch prediction (bimodal/gshare + BTB + return-address
//!   stack) and instruction-cache timing, register renaming into a reorder
//!   buffer, an issue window with per-class functional units, a load/store
//!   queue with store-to-load forwarding and conservative memory
//!   disambiguation, and in-order commit that retires stores into the
//!   memory system's store buffer.
//!
//! The memory side lives in `cpe-mem`; the [`Core`] owns a
//! [`cpe_mem::MemSystem`] and drives its per-cycle port protocol, which is
//! where the paper's single-port techniques earn their keep.
//!
//! # Example
//!
//! ```
//! use cpe_cpu::{Core, CpuConfig, Emulator};
//! use cpe_isa::asm::assemble;
//! use cpe_mem::{MemConfig, MemSystem};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(
//!     "main: li a0, 100\n li a1, 0\nloop: add a1, a1, a0\n addi a0, a0, -1\n bnez a0, loop\n halt\n",
//! )?;
//! let trace = Emulator::new(program);
//! let core = Core::new(CpuConfig::default(), MemSystem::new(MemConfig::default()), trace);
//! let result = core.run(None);
//! assert!(result.committed > 300);
//! assert!(result.ipc() > 0.5);
//! # Ok(())
//! # }
//! ```

mod backend;
pub mod bpred;
mod config;
mod core;
mod cpi;
mod fu;
mod lsq;
mod rob;
mod sched;
mod stats;
mod watchdog;

pub use backend::ExecBackend;
pub use config::{CpuConfig, DirPredictorKind, Disambiguation, FuConfig, FuSpec};
pub use core::{Core, SimResult};
pub use cpi::{CpiStack, StallCause};
// The functional emulator lives with the ISA semantics in `cpe-isa`;
// re-exported here because it is one half of every simulation.
pub use cpe_isa::{EmuError, Emulator, SparseMem};
pub use fu::FuPool;
pub use rob::{EntryState, RobEntry, WaitKind};
pub use stats::CpuStats;
pub use watchdog::WatchdogReport;
