//! Reorder-buffer entries.

use cpe_isa::DynInst;
use cpe_mem::Cycle;

/// Why an entry is not making progress — recorded each time the issue
/// stage examines it (and, once issued, what is serving it), so commit
/// can attribute the head's stalled cycles to a cause without replaying
/// the issue logic. See `cpe_cpu::cpi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitKind {
    /// Operands (or a store's address/data) not yet ready. The dispatch
    /// default: an entry the issue stage has never examined waits here.
    Deps,
    /// A load held back by the memory-ordering disambiguation gate.
    Order,
    /// A functional unit (or AGU) was busy.
    Fu,
    /// A load lost data-cache port arbitration (no slot, or a bank
    /// conflict) and will retry.
    NoPort,
    /// A load needed a fresh MSHR and none was free.
    MshrFull,
    /// Issued; an ALU/branch/L1-class latency is in flight.
    Exec,
    /// Issued; the load is being served by an outstanding miss.
    ExecMiss,
    /// Issued; the load is being served from a line buffer.
    ExecLineBuffer,
}

/// Progress of one in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// Waiting in the issue window for operands, a functional unit, or (for
    /// memory ops) a cache port.
    Waiting,
    /// Issued; the result is available at [`RobEntry::ready_at`].
    Issued,
}

/// One reorder-buffer slot.
///
/// Rename is seq-based: each dispatched instruction receives a
/// monotonically increasing sequence number, and operands record the
/// sequence numbers of their producers. A producer older than the ROB head
/// has retired and is architecturally ready.
#[derive(Debug, Clone)]
pub struct RobEntry {
    /// This instruction's sequence number.
    pub seq: u64,
    /// The executed-path record.
    pub di: DynInst,
    /// Pipeline progress.
    pub state: EntryState,
    /// Producers of the register sources (excluding memory/data, below).
    pub src_seqs: [Option<u64>; 2],
    /// For loads/stores: producer of the base (address) register.
    pub addr_seq: Option<u64>,
    /// For stores: producer of the data register.
    pub data_seq: Option<u64>,
    /// Result availability (valid once [`EntryState::Issued`]).
    pub ready_at: Cycle,
    /// For stores: cycle the effective address became known (address
    /// generation fired), used for load/store disambiguation.
    pub addr_known_at: Option<Cycle>,
    /// Fetch-time annotation: the direction/target prediction was wrong,
    /// so fetch is blocked until this entry resolves.
    pub mispredicted: bool,
    /// Latest stall reason observed by the issue stage (execution-service
    /// class once issued). Feeds commit-slot attribution.
    pub wait: WaitKind,
    /// Wakeup list: sequence numbers of younger consumers to re-evaluate
    /// when this entry's result becomes available. Maintained by the
    /// event-driven scheduler; drained exactly once, at `ready_at`.
    pub waiters: Vec<u64>,
}

impl RobEntry {
    /// A freshly dispatched entry with no resolved operands.
    pub fn new(seq: u64, di: DynInst) -> RobEntry {
        RobEntry {
            seq,
            di,
            state: EntryState::Waiting,
            src_seqs: [None, None],
            addr_seq: None,
            data_seq: None,
            ready_at: 0,
            addr_known_at: None,
            mispredicted: false,
            wait: WaitKind::Deps,
            waiters: Vec::new(),
        }
    }

    /// `true` once the result is available at cycle `now`.
    pub fn done(&self, now: Cycle) -> bool {
        self.state == EntryState::Issued && self.ready_at <= now
    }

    /// `true` for load instructions.
    pub fn is_load(&self) -> bool {
        self.di.inst.op.is_load()
    }

    /// `true` for store instructions.
    pub fn is_store(&self) -> bool {
        self.di.inst.op.is_store()
    }

    /// Byte range `[start, end)` of the memory access, when any.
    pub fn mem_range(&self) -> Option<(u64, u64)> {
        let addr = self.di.mem_addr?;
        Some((addr, addr + self.di.mem_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpe_isa::{Inst, Mode, Op, Reg};

    fn entry(op: Op) -> RobEntry {
        let inst = match op.class() {
            cpe_isa::OpClass::Load => Inst::load(op, Reg::x(1), Reg::SP, 0),
            cpe_isa::OpClass::Store => Inst::store(op, Reg::x(1), Reg::SP, 0),
            _ => Inst::nop(),
        };
        let di = DynInst {
            pc: 0x1000,
            inst,
            mem_addr: op.is_mem().then_some(0x2000),
            taken: false,
            next_pc: 0x1004,
            mode: Mode::User,
        };
        RobEntry::new(7, di)
    }

    #[test]
    fn done_requires_issue_and_elapsed_latency() {
        let mut e = entry(Op::Add);
        assert!(!e.done(100));
        e.state = EntryState::Issued;
        e.ready_at = 10;
        assert!(!e.done(9));
        assert!(e.done(10));
    }

    #[test]
    fn classification_and_ranges() {
        assert!(entry(Op::Ld).is_load());
        assert!(entry(Op::Sw).is_store());
        assert!(!entry(Op::Add).is_load());
        assert_eq!(entry(Op::Ld).mem_range(), Some((0x2000, 0x2008)));
        assert_eq!(entry(Op::Sw).mem_range(), Some((0x2000, 0x2004)));
        assert_eq!(entry(Op::Add).mem_range(), None);
    }
}
