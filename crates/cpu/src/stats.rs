//! Processor-core statistics.

use crate::cpi::CpiStack;
use cpe_stats::{Counter, Histogram, Ratio};

/// Counters maintained by the timing core.
#[derive(Debug, Clone)]
pub struct CpuStats {
    /// Total simulated cycles.
    pub cycles: Counter,
    /// Cycles whose oldest in-flight instruction was user code.
    pub user_cycles: Counter,
    /// Cycles whose oldest in-flight instruction was kernel code.
    pub kernel_cycles: Counter,
    /// Instructions committed.
    pub committed: Counter,
    /// User-mode instructions committed.
    pub committed_user: Counter,
    /// Kernel-mode instructions committed.
    pub committed_kernel: Counter,
    /// Loads committed.
    pub loads: Counter,
    /// Stores committed.
    pub stores: Counter,

    // --- Control flow -----------------------------------------------------
    /// Conditional branches fetched.
    pub branches: Counter,
    /// Conditional branches whose direction was mispredicted.
    pub mispredicts: Counter,
    /// Indirect jumps whose target was mispredicted (RAS/BTB miss).
    pub indirect_mispredicts: Counter,
    /// Correct-direction taken transfers that missed the BTB (fetch
    /// bubble).
    pub misfetches: Counter,

    // --- Pipeline friction ----------------------------------------------------
    /// Loads forwarded from the pre-commit store queue.
    pub lsq_forwards: Counter,
    /// Load issue attempts blocked by memory-ordering hazards.
    pub lsq_order_stalls: Counter,
    /// Cycles fetch waited on the instruction cache.
    pub fetch_icache_stall_cycles: Counter,
    /// Cycles fetch waited on a branch redirect or trap serialisation.
    pub fetch_redirect_stall_cycles: Counter,
    /// Dispatch halts because the ROB was full.
    pub dispatch_rob_full: Counter,
    /// Dispatch halts because the load or store queue was full.
    pub dispatch_lsq_full: Counter,
    /// Cycles commit was blocked by a rejected store (memory back-pressure
    /// — the signature of an under-ported cache).
    pub commit_store_stall_cycles: Counter,
    /// Wrong-path instruction blocks fetched while mispredictions resolved
    /// (only when `wrong_path_fetch` is enabled).
    pub wrong_path_blocks: Counter,
    /// Longest observed run of consecutive cycles without a commit — the
    /// quantity the livelock watchdog bounds.
    pub max_commit_gap: Counter,
    /// High-water mark of the scheduler's pending wakeup-event queue
    /// (in-flight completions awaiting their ready cycle). A wakeup-side
    /// capacity figure: it bounds how much completion traffic the
    /// event-driven scheduler buffers at once. Reported by `cpe bench`;
    /// deliberately absent from the architectural metrics exports, which
    /// must stay bit-identical across scheduler implementations.
    pub sched_events_peak: Counter,
    /// Distribution of ROB occupancy per cycle.
    pub rob_occupancy: Histogram,
    /// Distribution of combined load+store queue occupancy per cycle.
    pub lsq_occupancy: Histogram,
    /// Instructions committed per cycle.
    pub commits_per_cycle: Histogram,
    /// Commit-slot cycle accounting: every slot of every cycle attributed
    /// to exactly one cause. Components sum to `cycles × commit_width`.
    pub cpi_stack: CpiStack,
    /// Maximum commits per cycle — the slot width of the conservation
    /// contract above.
    pub commit_width: u64,
}

impl CpuStats {
    /// Zeroed statistics for a machine with `rob_entries` window slots,
    /// `commit_width` maximum commits per cycle, and `lsq_entries`
    /// combined load+store queue slots.
    pub fn new(rob_entries: usize, commit_width: usize, lsq_entries: usize) -> CpuStats {
        CpuStats {
            cycles: Counter::new(),
            user_cycles: Counter::new(),
            kernel_cycles: Counter::new(),
            committed: Counter::new(),
            committed_user: Counter::new(),
            committed_kernel: Counter::new(),
            loads: Counter::new(),
            stores: Counter::new(),
            branches: Counter::new(),
            mispredicts: Counter::new(),
            indirect_mispredicts: Counter::new(),
            misfetches: Counter::new(),
            lsq_forwards: Counter::new(),
            lsq_order_stalls: Counter::new(),
            fetch_icache_stall_cycles: Counter::new(),
            fetch_redirect_stall_cycles: Counter::new(),
            dispatch_rob_full: Counter::new(),
            dispatch_lsq_full: Counter::new(),
            commit_store_stall_cycles: Counter::new(),
            wrong_path_blocks: Counter::new(),
            max_commit_gap: Counter::new(),
            sched_events_peak: Counter::new(),
            rob_occupancy: Histogram::new(rob_entries),
            lsq_occupancy: Histogram::new(lsq_entries),
            commits_per_cycle: Histogram::new(commit_width),
            cpi_stack: CpiStack::new(),
            commit_width: commit_width as u64,
        }
    }

    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles.get() == 0 {
            0.0
        } else {
            self.committed.as_f64() / self.cycles.as_f64()
        }
    }

    /// Conditional-branch misprediction rate.
    pub fn mispredict_ratio(&self) -> Ratio {
        self.mispredicts.ratio(self.branches)
    }

    /// Fraction of committed instructions that were kernel-mode.
    pub fn kernel_fraction(&self) -> Ratio {
        self.committed_kernel.ratio(self.committed)
    }
}

impl Default for CpuStats {
    fn default() -> CpuStats {
        CpuStats::new(64, 4, 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_ratios() {
        let mut s = CpuStats::default();
        s.cycles.add(100);
        s.committed.add(250);
        s.committed_kernel.add(50);
        s.branches.add(40);
        s.mispredicts.add(4);
        assert_eq!(s.ipc(), 2.5);
        assert_eq!(s.mispredict_ratio().percent(), 10.0);
        assert_eq!(s.kernel_fraction().percent(), 20.0);
    }

    #[test]
    fn zeroed_stats_are_safe() {
        let s = CpuStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mispredict_ratio().percent(), 0.0);
    }
}
