//! Load/store-queue ordering helpers.
//!
//! The byte-range predicates here decide when a load may leave for the
//! cache and when it can take its data from an older, still-uncommitted
//! store (store-to-load forwarding inside the LSQ — distinct from the
//! *post-commit* store-buffer forwarding modelled in `cpe-mem`).

/// `true` when byte ranges `[a_start, a_end)` and `[b_start, b_end)` share
/// any byte.
#[inline]
pub(crate) fn ranges_overlap(a: (u64, u64), b: (u64, u64)) -> bool {
    a.0 < b.1 && b.0 < a.1
}

/// `true` when range `outer` covers every byte of `inner`.
#[inline]
pub(crate) fn range_covers(outer: (u64, u64), inner: (u64, u64)) -> bool {
    outer.0 <= inner.0 && inner.1 <= outer.1
}

/// The verdict for a load consulting the older stores in the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LoadGate {
    /// No ordering hazard: the load may access the cache.
    Go,
    /// An older store fully covers the load and its data is ready: forward
    /// within the LSQ.
    Forward,
    /// The load must wait (unknown older address under conservative
    /// ordering, partial overlap, or data not yet ready).
    Wait,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_cases() {
        assert!(ranges_overlap((0, 8), (4, 12)));
        assert!(ranges_overlap((4, 12), (0, 8)));
        assert!(ranges_overlap((0, 8), (0, 8)));
        assert!(ranges_overlap((0, 8), (7, 8)));
        assert!(!ranges_overlap((0, 8), (8, 16)));
        assert!(!ranges_overlap((8, 16), (0, 8)));
        assert!(
            !ranges_overlap((0, 0), (0, 8)),
            "empty range touches nothing"
        );
    }

    #[test]
    fn coverage_cases() {
        assert!(range_covers((0, 8), (0, 8)));
        assert!(range_covers((0, 8), (2, 6)));
        assert!(!range_covers((0, 8), (2, 10)));
        assert!(!range_covers((2, 6), (0, 8)));
    }
}
