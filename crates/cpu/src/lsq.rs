//! Load/store-queue ordering helpers.
//!
//! The byte-range predicates here decide when a load may leave for the
//! cache and when it can take its data from an older, still-uncommitted
//! store (store-to-load forwarding inside the LSQ — distinct from the
//! *post-commit* store-buffer forwarding modelled in `cpe-mem`).

/// `true` when byte ranges `[a_start, a_end)` and `[b_start, b_end)` share
/// any byte.
#[inline]
pub(crate) fn ranges_overlap(a: (u64, u64), b: (u64, u64)) -> bool {
    a.0 < b.1 && b.0 < a.1
}

/// `true` when range `outer` covers every byte of `inner`.
#[inline]
pub(crate) fn range_covers(outer: (u64, u64), inner: (u64, u64)) -> bool {
    outer.0 <= inner.0 && inner.1 <= outer.1
}

/// The verdict for a load consulting the older stores in the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LoadGate {
    /// No ordering hazard: the load may access the cache.
    Go,
    /// An older store fully covers the load and its data is ready: forward
    /// within the LSQ.
    Forward,
    /// The load must wait (unknown older address under conservative
    /// ordering, partial overlap, or data not yet ready).
    Wait,
}

/// Occupancy tracking for the split load/store queues.
///
/// Entries are claimed at dispatch and released at commit; the core
/// samples [`LsqTracker::total`] once per cycle into the
/// `lsq_occupancy` histogram.
#[derive(Debug, Clone)]
pub(crate) struct LsqTracker {
    loads: usize,
    stores: usize,
    load_capacity: usize,
    store_capacity: usize,
}

impl LsqTracker {
    /// Empty queues with the given per-queue capacities.
    pub(crate) fn new(load_capacity: usize, store_capacity: usize) -> LsqTracker {
        LsqTracker {
            loads: 0,
            stores: 0,
            load_capacity,
            store_capacity,
        }
    }

    /// `true` when a load can be dispatched this cycle.
    pub(crate) fn can_accept_load(&self) -> bool {
        self.loads < self.load_capacity
    }

    /// `true` when a store can be dispatched this cycle.
    pub(crate) fn can_accept_store(&self) -> bool {
        self.stores < self.store_capacity
    }

    /// Claim a load-queue entry at dispatch.
    pub(crate) fn add_load(&mut self) {
        debug_assert!(self.can_accept_load(), "dispatch past load-queue capacity");
        self.loads += 1;
    }

    /// Claim a store-queue entry at dispatch.
    pub(crate) fn add_store(&mut self) {
        debug_assert!(
            self.can_accept_store(),
            "dispatch past store-queue capacity"
        );
        self.stores += 1;
    }

    /// Release a load-queue entry at commit.
    pub(crate) fn retire_load(&mut self) {
        debug_assert!(self.loads > 0, "retiring a load that was never dispatched");
        self.loads -= 1;
    }

    /// Release a store-queue entry at commit.
    pub(crate) fn retire_store(&mut self) {
        debug_assert!(
            self.stores > 0,
            "retiring a store that was never dispatched"
        );
        self.stores -= 1;
    }

    /// Loads currently in flight.
    pub(crate) fn loads(&self) -> usize {
        self.loads
    }

    /// Stores currently in flight.
    pub(crate) fn stores(&self) -> usize {
        self.stores
    }

    /// Combined occupancy across both queues.
    pub(crate) fn total(&self) -> usize {
        self.loads + self.stores
    }

    /// Combined capacity across both queues.
    pub(crate) fn capacity(&self) -> usize {
        self.load_capacity + self.store_capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_cases() {
        assert!(ranges_overlap((0, 8), (4, 12)));
        assert!(ranges_overlap((4, 12), (0, 8)));
        assert!(ranges_overlap((0, 8), (0, 8)));
        assert!(ranges_overlap((0, 8), (7, 8)));
        assert!(!ranges_overlap((0, 8), (8, 16)));
        assert!(!ranges_overlap((8, 16), (0, 8)));
        assert!(
            !ranges_overlap((0, 0), (0, 8)),
            "empty range touches nothing"
        );
    }

    #[test]
    fn coverage_cases() {
        assert!(range_covers((0, 8), (0, 8)));
        assert!(range_covers((0, 8), (2, 6)));
        assert!(!range_covers((0, 8), (2, 10)));
        assert!(!range_covers((2, 6), (0, 8)));
    }

    #[test]
    fn tracker_enforces_split_capacities() {
        let mut lsq = LsqTracker::new(2, 1);
        assert_eq!(lsq.capacity(), 3);
        lsq.add_load();
        lsq.add_load();
        assert!(!lsq.can_accept_load(), "load queue is full");
        assert!(lsq.can_accept_store(), "store queue is independent");
        lsq.add_store();
        assert!(!lsq.can_accept_store());
        assert_eq!((lsq.loads(), lsq.stores(), lsq.total()), (2, 1, 3));
        lsq.retire_load();
        assert!(lsq.can_accept_load());
        lsq.retire_load();
        lsq.retire_store();
        assert_eq!(lsq.total(), 0);
    }
}
