//! The execution-backend abstraction between functional execution and
//! the timing model.
//!
//! [`Core`](crate::Core) does not care *where* its committed-path
//! [`DynInst`] stream comes from — live functional emulation (the direct
//! backend), a replayed [`cpe_isa::replay::RecordedTrace`] (the replay
//! backend), a trace file, or a synthetic generator. [`ExecBackend`] is
//! that seam: one pull method, no iterator machinery required of
//! implementors, object-safe so heterogeneous backends can be boxed.
//!
//! Every `Iterator<Item = DynInst>` is an `ExecBackend` for free, which
//! keeps the existing emulator/injector/synthetic call sites untouched.

use cpe_isa::DynInst;

/// A source of committed-path instructions for the timing model.
pub trait ExecBackend {
    /// The next committed instruction, or `None` at end of stream.
    ///
    /// The stream must be deterministic: the timing model's byte-identity
    /// contract (replay vs direct, worker counts, cache states) rests on
    /// every backend handing over the exact same records in the exact
    /// same order on every run.
    fn next_inst(&mut self) -> Option<DynInst>;
}

impl<I: Iterator<Item = DynInst>> ExecBackend for I {
    fn next_inst(&mut self) -> Option<DynInst> {
        self.next()
    }
}

impl ExecBackend for Box<dyn ExecBackend + '_> {
    fn next_inst(&mut self) -> Option<DynInst> {
        (**self).next_inst()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpe_isa::{Inst, Mode};

    fn di(pc: u64) -> DynInst {
        DynInst {
            pc,
            inst: Inst::nop(),
            mem_addr: None,
            taken: false,
            next_pc: pc + 4,
            mode: Mode::User,
        }
    }

    #[test]
    fn iterators_are_backends_for_free() {
        let mut backend = vec![di(0x1000), di(0x1004)].into_iter();
        assert_eq!(backend.next_inst().unwrap().pc, 0x1000);
        assert_eq!(backend.next_inst().unwrap().pc, 0x1004);
        assert!(backend.next_inst().is_none());
    }

    #[test]
    fn boxed_backends_dispatch_dynamically() {
        let mut boxed: Box<dyn ExecBackend> = Box::new(vec![di(0x2000)].into_iter());
        assert_eq!(boxed.next_inst().unwrap().pc, 0x2000);
        assert!(boxed.next_inst().is_none());
    }
}
