//! Commit-slot cycle accounting: the CPI stack.
//!
//! Every simulated cycle offers `commit_width` commit slots. Each slot
//! either retires an instruction ([`StallCause::Base`]) or is lost to
//! exactly one cause in the fixed taxonomy below — attributed at the
//! ROB head, the top-down way: *why did the oldest instruction not
//! retire this cycle?* The resulting [`CpiStack`] obeys a hard
//! conservation invariant,
//!
//! ```text
//! sum(slots per cause) == cycles × commit_width
//! ```
//!
//! enforced by a `debug_assert!` after every step (including the
//! scheduler's cycle-skipping bulk path) and by property tests across
//! random programs, window sizes and disambiguation policies. Dividing
//! each component by `commit_width × instructions` decomposes CPI into
//! additive per-cause terms, so two configurations' stacks subtract
//! into an explanation ("the 1-port machine loses 0.21 CPI to port
//! conflicts") — the `cpe explain` view.

/// Where a commit slot went. One cause per slot, no overlaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum StallCause {
    /// The slot committed an instruction — the useful-work component.
    Base,
    /// The frontend had nothing ready: fetch latency, a decode gap, or
    /// an instruction-cache stall starved the window.
    FetchStarved,
    /// Fetch was squashed behind an unresolved mispredicted branch or a
    /// redirect/trap penalty.
    BranchRecovery,
    /// The head was waiting on operands while dispatch was blocked by a
    /// full reorder buffer (window pressure, not a memory event).
    RobFull,
    /// The head was waiting on operands while dispatch was blocked by a
    /// full load or store queue.
    LsqFull,
    /// The head was executing (or waiting for) a functional unit: ALU
    /// latency, a busy AGU, or an L1-class access in flight.
    FuBusy,
    /// The head load lost data-cache port arbitration (no free slot, or
    /// a bank conflict) and retries next cycle — the paper's subject.
    DcachePortConflict,
    /// The head load was in flight serving from a line buffer.
    LineBufferWait,
    /// The head load needed a new MSHR and none was free.
    MshrFull,
    /// The head load was in flight waiting on an outstanding miss (a new
    /// miss or one it merged into).
    MshrWait,
    /// Commit stalled behind a store the memory system rejected (store
    /// buffer full / no drain slot).
    StoreBufferFull,
    /// The head was waiting on operands or memory ordering with no more
    /// specific backend cause.
    DependencyWait,
    /// The machine was draining: no instruction anywhere in flight (the
    /// cycle-skipped quiesce tail).
    Idle,
}

impl StallCause {
    /// Number of causes in the taxonomy.
    pub const COUNT: usize = 13;

    /// Every cause, in declaration (and export) order.
    pub const ALL: [StallCause; StallCause::COUNT] = [
        StallCause::Base,
        StallCause::FetchStarved,
        StallCause::BranchRecovery,
        StallCause::RobFull,
        StallCause::LsqFull,
        StallCause::FuBusy,
        StallCause::DcachePortConflict,
        StallCause::LineBufferWait,
        StallCause::MshrFull,
        StallCause::MshrWait,
        StallCause::StoreBufferFull,
        StallCause::DependencyWait,
        StallCause::Idle,
    ];

    /// Stable snake_case name, used verbatim by the report, the JSON
    /// export and `cpe explain`.
    pub fn name(self) -> &'static str {
        match self {
            StallCause::Base => "base",
            StallCause::FetchStarved => "fetch_starved",
            StallCause::BranchRecovery => "branch_recovery",
            StallCause::RobFull => "rob_full",
            StallCause::LsqFull => "lsq_full",
            StallCause::FuBusy => "fu_busy",
            StallCause::DcachePortConflict => "dcache_port_conflict",
            StallCause::LineBufferWait => "line_buffer_wait",
            StallCause::MshrFull => "mshr_full",
            StallCause::MshrWait => "mshr_wait",
            StallCause::StoreBufferFull => "store_buffer_full",
            StallCause::DependencyWait => "dependency_wait",
            StallCause::Idle => "idle",
        }
    }

    /// One-line description for tables and docs.
    pub fn describe(self) -> &'static str {
        match self {
            StallCause::Base => "slot committed an instruction",
            StallCause::FetchStarved => "frontend starved (fetch/decode/icache)",
            StallCause::BranchRecovery => "mispredict or redirect recovery",
            StallCause::RobFull => "operand wait under a full ROB",
            StallCause::LsqFull => "operand wait under a full LSQ",
            StallCause::FuBusy => "functional unit latency or contention",
            StallCause::DcachePortConflict => "d-cache port/bank conflict retry",
            StallCause::LineBufferWait => "load in flight from a line buffer",
            StallCause::MshrFull => "load blocked: no free MSHR",
            StallCause::MshrWait => "load waiting on an outstanding miss",
            StallCause::StoreBufferFull => "commit blocked on a rejected store",
            StallCause::DependencyWait => "operand or ordering wait",
            StallCause::Idle => "machine drained (quiesce tail)",
        }
    }

    /// Position of this cause in [`StallCause::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for StallCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-cause commit-slot totals. Pure bookkeeping: recording can never
/// change timing, so the stack is always on (no feature gate).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CpiStack {
    slots: [u64; StallCause::COUNT],
}

impl CpiStack {
    /// A zeroed stack.
    pub fn new() -> CpiStack {
        CpiStack::default()
    }

    /// Attribute `slots` commit slots to `cause`.
    #[inline]
    pub fn record(&mut self, cause: StallCause, slots: u64) {
        self.slots[cause.index()] += slots;
    }

    /// Slots attributed to `cause` so far.
    pub fn get(&self, cause: StallCause) -> u64 {
        self.slots[cause.index()]
    }

    /// Total slots attributed — equals `cycles × commit_width` by the
    /// conservation invariant.
    pub fn total(&self) -> u64 {
        self.slots.iter().sum()
    }

    /// `(cause, slots)` in [`StallCause::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (StallCause, u64)> + '_ {
        StallCause::ALL
            .iter()
            .map(move |&c| (c, self.slots[c.index()]))
    }

    /// The raw per-cause array, in [`StallCause::ALL`] order.
    pub fn slots(&self) -> [u64; StallCause::COUNT] {
        self.slots
    }

    /// Component-wise difference against an earlier snapshot, for epoch
    /// deltas.
    pub fn delta(&self, earlier: &CpiStack) -> CpiStack {
        let mut out = CpiStack::new();
        for (i, slot) in out.slots.iter_mut().enumerate() {
            *slot = self.slots[i] - earlier.slots[i];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_snake_case() {
        let mut seen = std::collections::HashSet::new();
        for cause in StallCause::ALL {
            let name = cause.name();
            assert!(seen.insert(name), "duplicate name {name}");
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "{name}"
            );
        }
        assert_eq!(seen.len(), StallCause::COUNT);
    }

    #[test]
    fn all_is_in_index_order() {
        for (position, cause) in StallCause::ALL.iter().enumerate() {
            assert_eq!(cause.index(), position);
        }
    }

    #[test]
    fn record_and_total() {
        let mut stack = CpiStack::new();
        stack.record(StallCause::Base, 7);
        stack.record(StallCause::DcachePortConflict, 3);
        stack.record(StallCause::Base, 2);
        assert_eq!(stack.get(StallCause::Base), 9);
        assert_eq!(stack.get(StallCause::DcachePortConflict), 3);
        assert_eq!(stack.get(StallCause::Idle), 0);
        assert_eq!(stack.total(), 12);
        assert_eq!(stack.iter().count(), StallCause::COUNT);
    }

    #[test]
    fn delta_subtracts_componentwise() {
        let mut early = CpiStack::new();
        early.record(StallCause::Base, 4);
        let mut late = early.clone();
        late.record(StallCause::Base, 6);
        late.record(StallCause::MshrWait, 2);
        let delta = late.delta(&early);
        assert_eq!(delta.get(StallCause::Base), 6);
        assert_eq!(delta.get(StallCause::MshrWait), 2);
        assert_eq!(delta.total(), 8);
    }
}
