//! The cycle-level out-of-order core.

use std::collections::VecDeque;

use cpe_isa::{DynInst, Mode, Op, OpClass, Reg, INST_BYTES};
use cpe_mem::{Addr, Cycle, LoadOutcome, LoadSource, MemStats, MemSystem, StoreOutcome};
use cpe_trace::{EventKind, TraceHandle};

use crate::backend::ExecBackend;
use crate::bpred::{Btb, DirectionPredictor, Ras};
use crate::config::{CpuConfig, DirPredictorKind, Disambiguation};
use crate::cpi::StallCause;
use crate::fu::FuPool;
#[cfg(test)]
use crate::lsq::ranges_overlap;
use crate::lsq::{range_covers, LoadGate, LsqTracker};
use crate::rob::{EntryState, RobEntry, WaitKind};
use crate::sched::Scheduler;
use crate::stats::CpuStats;
use crate::watchdog::WatchdogReport;

/// A simulation's outputs: cycle count, instruction count, and the full
/// processor/memory statistics.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Core-side counters.
    pub cpu: CpuStats,
    /// Memory-side counters.
    pub mem: MemStats,
}

impl SimResult {
    /// Committed instructions per cycle — the paper's figure of merit.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Fetched {
    di: DynInst,
    mispredicted: bool,
    available_at: Cycle,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StallReason {
    Redirect,
    ICache,
}

/// One-slot lookahead over an [`ExecBackend`]. The backend trait is a
/// bare pull interface (no `peek`), and `Peekable` would demand a full
/// `Iterator`; this adapter gives the frontend the single instruction of
/// lookahead it needs for block-boundary and end-of-stream decisions.
struct Feed<B> {
    backend: B,
    slot: Option<DynInst>,
}

impl<B: ExecBackend> Feed<B> {
    fn new(backend: B) -> Feed<B> {
        Feed {
            backend,
            slot: None,
        }
    }

    fn peek(&mut self) -> Option<&DynInst> {
        if self.slot.is_none() {
            self.slot = self.backend.next_inst();
        }
        self.slot.as_ref()
    }

    fn next(&mut self) -> Option<DynInst> {
        self.slot.take().or_else(|| self.backend.next_inst())
    }
}

// Manual so `Core<Box<dyn ExecBackend>>` stays Debug (trait objects
// carry no Debug bound).
impl<B> std::fmt::Debug for Feed<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Feed").field("slot", &self.slot).finish()
    }
}

/// The dynamic superscalar timing model.
///
/// Consumes a committed-path [`DynInst`] stream through an
/// [`ExecBackend`] — usually an [`crate::Emulator`] (possibly wrapped by
/// the OS-activity injector from `cpe-workloads`) on the direct path, or
/// a replayed recording on the replay path — and owns the [`MemSystem`]
/// whose data-cache port behaviour is under study. See the crate docs
/// for an end-to-end example.
#[derive(Debug)]
pub struct Core<B: ExecBackend> {
    config: CpuConfig,
    mem: MemSystem,
    trace: Feed<B>,
    now: Cycle,
    next_seq: u64,
    rob: VecDeque<RobEntry>,
    fetch_buffer: VecDeque<Fetched>,
    /// Architectural register → sequence number of its latest in-flight
    /// producer.
    map: [Option<u64>; Reg::COUNT],
    predictor: DirectionPredictor,
    btb: Btb,
    ras: Ras,
    fu: FuPool,
    /// Fetch produces nothing before this cycle.
    fetch_resume_at: Cycle,
    stall_reason: StallReason,
    /// Fetch halted until an in-flight mispredicted transfer resolves.
    fetch_blocked_on_branch: bool,
    /// Next wrong-path fetch address and blocks remaining, while blocked
    /// on a misprediction (only with `wrong_path_fetch`).
    wrong_path: Option<(u64, u32)>,
    /// A serialising instruction (syscall/eret) is in flight.
    serialize: bool,
    /// Load/store-queue occupancy: claimed at dispatch, released at
    /// commit, sampled into `stats.lsq_occupancy` each cycle.
    lsq: LsqTracker,
    stats: CpuStats,
    last_mode: Mode,
    /// Deadlock detector: cycles since the last commit or dispatch.
    stuck_cycles: u64,
    /// Event-driven wakeup/select state: issue candidates, completion
    /// wakeups, and the store-address index for disambiguation.
    sched: Scheduler,
    /// Spare waiter-list allocations, recycled between ROB entries so
    /// wakeup registration stays allocation-free in steady state.
    waiter_pool: Vec<Vec<u64>>,
    /// Cycle-skipping never jumps past a multiple of this count of
    /// `stats.cycles` (0 = unbounded); see [`Core::set_step_quantum`].
    step_quantum: u64,
    /// Observability: pipeline-stage events flow through here. Detached
    /// (a no-op) unless [`Core::set_trace`] attaches a ring.
    tracer: TraceHandle,
    /// Drive issue with the legacy per-cycle broadcast scan instead of
    /// the event-driven candidate walk — the reference oracle the
    /// property tests compare against.
    #[cfg(test)]
    oracle: bool,
    /// Every `(cycle, seq)` issue, in order — for oracle comparison.
    #[cfg(test)]
    issue_log: Vec<(Cycle, u64)>,
    /// Every `(cycle, seq)` commit, in order — for oracle comparison.
    #[cfg(test)]
    commit_log: Vec<(Cycle, u64)>,
}

impl<B: ExecBackend> Core<B> {
    /// Build a core over a memory system and an instruction stream (any
    /// [`ExecBackend`]; plain `Iterator<Item = DynInst>`s qualify).
    ///
    /// # Panics
    ///
    /// Panics when `config` fails [`CpuConfig::validate`].
    pub fn new(config: CpuConfig, mem: MemSystem, trace: B) -> Core<B> {
        config.validate();
        let lsq = LsqTracker::new(config.load_queue, config.store_queue);
        let sched = Scheduler::new(config.rob_entries);
        Core {
            predictor: DirectionPredictor::new(config.predictor),
            btb: Btb::new(config.btb_entries),
            ras: Ras::new(config.ras_entries),
            fu: FuPool::new(config.fu),
            stats: CpuStats::new(
                config.rob_entries,
                config.commit_width as usize,
                lsq.capacity(),
            ),
            lsq,
            config,
            mem,
            trace: Feed::new(trace),
            now: 0,
            next_seq: 0,
            rob: VecDeque::new(),
            fetch_buffer: VecDeque::new(),
            map: [None; Reg::COUNT],
            fetch_resume_at: 0,
            stall_reason: StallReason::Redirect,
            fetch_blocked_on_branch: false,
            wrong_path: None,
            serialize: false,
            last_mode: Mode::User,
            stuck_cycles: 0,
            sched,
            waiter_pool: Vec::new(),
            step_quantum: 0,
            tracer: TraceHandle::off(),
            #[cfg(test)]
            oracle: false,
            #[cfg(test)]
            issue_log: Vec::new(),
            #[cfg(test)]
            commit_log: Vec::new(),
        }
    }

    /// Bound cycle-skipping so `stats.cycles` lands exactly on every
    /// multiple of `quantum` (0, the default, leaves it unbounded). The
    /// profiler sets this to its sampling interval so epoch snapshots
    /// observe the same cycle boundaries as per-cycle stepping.
    pub fn set_step_quantum(&mut self, quantum: u64) {
        self.step_quantum = quantum;
    }

    /// Attach a trace handle. The core emits fetch/issue/commit and
    /// watchdog events through it, and a clone is forwarded to the
    /// memory system for the port-attribution events. With the `trace`
    /// feature off (or a detached handle) every emission is a no-op.
    pub fn set_trace(&mut self, handle: TraceHandle) {
        self.mem.set_trace(handle.clone());
        self.tracer = handle;
    }

    /// Run until the stream is drained and the machine quiesces, or until
    /// `max_insts` instructions have committed.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline makes no progress for
    /// [`CpuConfig::watchdog_cycles`] cycles (which would indicate a
    /// modelling bug, not a program property). [`Core::try_run`] returns
    /// the watchdog report as an error instead.
    pub fn run(self, max_insts: Option<u64>) -> SimResult {
        self.run_warmed(0, max_insts)
    }

    /// Like [`Core::run`], but the livelock watchdog aborts the run with
    /// a diagnostic [`WatchdogReport`] instead of panicking.
    pub fn try_run(self, max_insts: Option<u64>) -> Result<SimResult, Box<WatchdogReport>> {
        self.try_run_warmed(0, max_insts)
    }

    /// Like [`Core::run`], but zero every statistic once `warmup_insts`
    /// instructions have committed — caches, predictors and TLBs stay
    /// warm, so the reported window measures steady-state behaviour.
    /// `max_insts` (when given) bounds the *measured* instructions.
    ///
    /// # Panics
    ///
    /// Panics if the watchdog fires; see [`Core::try_run_warmed`].
    pub fn run_warmed(self, warmup_insts: u64, max_insts: Option<u64>) -> SimResult {
        match self.try_run_warmed(warmup_insts, max_insts) {
            Ok(result) => result,
            Err(report) => panic!("{report}"),
        }
    }

    /// The non-panicking form of [`Core::run_warmed`]: a watchdog abort
    /// surfaces as an `Err` carrying the machine-state snapshot.
    pub fn try_run_warmed(
        mut self,
        warmup_insts: u64,
        max_insts: Option<u64>,
    ) -> Result<SimResult, Box<WatchdogReport>> {
        let limit = max_insts.unwrap_or(u64::MAX);
        let mut warming = warmup_insts > 0;
        while self.try_step()? {
            if warming && self.stats.committed.get() >= warmup_insts {
                warming = false;
                self.stats = CpuStats::new(
                    self.config.rob_entries,
                    self.config.commit_width as usize,
                    self.lsq.capacity(),
                );
                self.mem.reset_stats();
            }
            if !warming && self.stats.committed.get() >= limit {
                break;
            }
        }
        Ok(SimResult {
            cycles: self.stats.cycles.get(),
            committed: self.stats.committed.get(),
            cpu: self.stats,
            mem: self.mem.stats().clone(),
        })
    }

    /// `true` when nothing remains anywhere in the machine.
    fn finished(&mut self) -> bool {
        self.trace.peek().is_none()
            && self.fetch_buffer.is_empty()
            && self.rob.is_empty()
            && self.mem.is_quiesced()
    }

    /// Simulate one cycle. Returns `false` once the machine has finished.
    ///
    /// # Panics
    ///
    /// Panics when the livelock watchdog fires; [`Core::try_step`] is the
    /// non-panicking form.
    pub fn step(&mut self) -> bool {
        match self.try_step() {
            Ok(more) => more,
            Err(report) => panic!("{report}"),
        }
    }

    /// Simulate one cycle. `Ok(false)` once the machine has finished;
    /// `Err` with a diagnostic snapshot when no instruction has committed
    /// for [`CpuConfig::watchdog_cycles`] consecutive cycles (0 disables
    /// the watchdog).
    pub fn try_step(&mut self) -> Result<bool, Box<WatchdogReport>> {
        if self.finished() {
            return Ok(false);
        }
        let now = self.now;
        #[cfg(test)]
        let event_driven = !self.oracle;
        #[cfg(not(test))]
        let event_driven = true;
        if event_driven {
            self.wake(now);
            if self.try_skip_idle(now)? {
                self.assert_cpi_conservation();
                return Ok(true);
            }
        }
        self.mem.begin_cycle(now);
        self.fu.begin_cycle(now);

        let committed_before = self.stats.committed.get();
        self.commit(now);
        self.issue(now);
        self.dispatch(now);
        self.fetch(now);
        self.mem.end_cycle(now);

        // Bookkeeping.
        self.stats.cycles.inc();
        self.stats.rob_occupancy.record(self.rob.len() as u64);
        self.stats.lsq_occupancy.record(self.lsq.total() as u64);
        let mode = self
            .rob
            .front()
            .map(|e| e.di.mode)
            .or_else(|| self.fetch_buffer.front().map(|f| f.di.mode))
            .unwrap_or(self.last_mode);
        self.last_mode = mode;
        match mode {
            Mode::User => self.stats.user_cycles.inc(),
            Mode::Kernel => self.stats.kernel_cycles.inc(),
        }

        if self.stats.committed.get() == committed_before {
            self.stuck_cycles += 1;
            self.stats.max_commit_gap.record_max(self.stuck_cycles);
            let limit = self.config.watchdog_cycles;
            if limit > 0 && self.stuck_cycles >= limit {
                return Err(Box::new(self.watchdog_report(now, limit)));
            }
        } else {
            self.stuck_cycles = 0;
        }
        self.assert_cpi_conservation();
        self.now += 1;
        Ok(true)
    }

    /// Snapshot everything the stalled machine could be waiting on.
    fn watchdog_report(&mut self, now: Cycle, limit: u64) -> WatchdogReport {
        self.tracer.emit(
            now,
            EventKind::WatchdogSnapshot,
            self.rob.front().map_or(0, |head| head.di.pc),
            self.rob.len() as u32,
        );
        WatchdogReport {
            cycle: now,
            committed: self.stats.committed.get(),
            limit,
            rob_len: self.rob.len(),
            rob_head: self.rob.front().map(|head| {
                (
                    head.di.pc,
                    head.di.inst.op.to_string(),
                    format!("{:?}", head.state),
                )
            }),
            fetch_buffer_len: self.fetch_buffer.len(),
            fetch_pc: self
                .fetch_buffer
                .front()
                .map(|fetched| fetched.di.pc)
                .or_else(|| self.trace.peek().map(|di| di.pc)),
            loads_in_flight: self.lsq.loads(),
            stores_in_flight: self.lsq.stores(),
            serialize: self.serialize,
            fetch_blocked_on_branch: self.fetch_blocked_on_branch,
            mem: self.mem.diagnostics(),
        }
    }

    // --- dependency plumbing -------------------------------------------------

    /// Is the producer with sequence number `seq` ready at `now`?
    fn seq_ready(rob: &VecDeque<RobEntry>, seq: u64, now: Cycle) -> bool {
        let front = match rob.front() {
            Some(front) => front.seq,
            None => return true,
        };
        if seq < front {
            return true; // retired
        }
        rob[(seq - front) as usize].done(now)
    }

    fn dep_ready(rob: &VecDeque<RobEntry>, dep: Option<u64>, now: Cycle) -> bool {
        dep.is_none_or(|seq| Self::seq_ready(rob, seq, now))
    }

    // --- event-driven wakeup ----------------------------------------------

    /// ROB index of the in-flight instruction `seq`.
    fn rob_index(&self, seq: u64) -> usize {
        let front = self.rob.front().expect("seq is in flight").seq;
        (seq - front) as usize
    }

    /// Process every completion wakeup due by `now`: drain the producer's
    /// waiter list and reconsider each waiter for the candidate set.
    /// Runs before commit, so a producer committing this very cycle still
    /// holds its waiters when its event fires.
    fn wake(&mut self, now: Cycle) {
        while let Some(seq) = self.sched.pop_due(now) {
            let idx = self.rob_index(seq);
            debug_assert_eq!(self.rob[idx].seq, seq);
            let waiters = std::mem::take(&mut self.rob[idx].waiters);
            for &waiter in &waiters {
                self.reconsider(waiter, now);
            }
            self.recycle_waiters(waiters);
        }
    }

    /// Return a drained waiter list's allocation to the pool.
    fn recycle_waiters(&mut self, mut waiters: Vec<u64>) {
        if waiters.capacity() > 0 && self.waiter_pool.len() < 64 {
            waiters.clear();
            self.waiter_pool.push(waiters);
        }
    }

    /// Re-evaluate a woken instruction's candidacy. Deliberately an
    /// over-approximation of "the broadcast scan would act on it":
    /// operands are re-checked against ROB ground truth, so firing order
    /// within a cycle cannot matter, and a not-yet-eligible waiter simply
    /// stays parked on its remaining producers.
    fn reconsider(&mut self, seq: u64, now: Cycle) {
        let Some(front) = self.rob.front().map(|e| e.seq) else {
            return;
        };
        if seq < front {
            return; // already retired
        }
        let entry = &self.rob[(seq - front) as usize];
        debug_assert_eq!(entry.seq, seq);
        if entry.state != EntryState::Waiting {
            return;
        }
        let eligible = match entry.di.inst.op.class() {
            // Memory ops enter the window on address-operand readiness;
            // data readiness (stores) and ordering (loads) are checked at
            // examination, exactly as the broadcast scan did.
            OpClass::Load | OpClass::Store => Self::dep_ready(&self.rob, entry.addr_seq, now),
            _ => entry
                .src_seqs
                .iter()
                .all(|&dep| Self::dep_ready(&self.rob, dep, now)),
        };
        if eligible {
            self.sched.add_candidate(seq);
        }
    }

    /// Bookkeeping common to every issue: leave the candidate set and
    /// schedule the completion wakeup. A result already available (a
    /// zero-latency completion) short-circuits: waiters drain inline, and
    /// since consumers are always younger than their producer, the
    /// ongoing candidate walk still visits them this cycle — exactly when
    /// the broadcast scan would have seen the result.
    fn finish_issue(&mut self, idx: usize, seq: u64, now: Cycle) {
        #[cfg(test)]
        self.issue_log.push((now, seq));
        self.sched.remove_candidate(seq);
        let ready_at = self.rob[idx].ready_at;
        // Future-dated: stamped with the completion cycle at issue time.
        self.tracer.emit(
            ready_at,
            EventKind::Complete,
            self.rob[idx].di.pc,
            seq as u32,
        );
        if ready_at <= now {
            let waiters = std::mem::take(&mut self.rob[idx].waiters);
            for &waiter in &waiters {
                self.reconsider(waiter, now);
            }
            self.recycle_waiters(waiters);
        } else {
            self.sched.push_event(ready_at, seq);
            self.stats
                .sched_events_peak
                .record_max(self.sched.pending_events() as u64);
        }
    }

    // --- cycle skipping ---------------------------------------------------

    /// When no pipeline stage can act at `now`, jump the clock to the
    /// next cycle something happens, bulk-recording exactly the
    /// statistics the idle cycles would have recorded one by one.
    /// Returns `true` when a skip was taken (the step is complete).
    ///
    /// Eligibility mirrors each stage's first-exit path: commit needs an
    /// undone head, select an empty candidate set, the store buffer must
    /// be empty (else `end_cycle` would drain it), and fetch/dispatch
    /// must be blocked for a reason that cannot clear by itself. The skip
    /// is bounded by every externally scheduled event: completion
    /// wakeups, MSHR fills, the fetch-resume cycle, fetch-buffer
    /// availability, the profiler's step quantum, and the watchdog.
    fn try_skip_idle(&mut self, now: Cycle) -> Result<bool, Box<WatchdogReport>> {
        if self.sched.has_candidates() || self.mem.store_buffer_len() != 0 {
            return Ok(false);
        }
        if self.rob.front().is_some_and(|head| head.done(now)) {
            return Ok(false); // commit would act
        }

        // Mirror fetch()'s cascade: where would it bail out, and does
        // that path record a stall statistic?
        enum FetchIdle {
            Busy,
            Silent,
            Stalled,
        }
        let fetch_idle = if self.trace.peek().is_none() {
            FetchIdle::Silent
        } else if self.fetch_blocked_on_branch {
            if self.wrong_path.is_some() {
                FetchIdle::Busy // wrong-path fetch touches the icache
            } else {
                FetchIdle::Silent
            }
        } else if now < self.fetch_resume_at {
            FetchIdle::Stalled
        } else if self.fetch_buffer.len() >= 2 * self.config.fetch_width as usize {
            FetchIdle::Silent
        } else {
            FetchIdle::Busy
        };
        if matches!(fetch_idle, FetchIdle::Busy) {
            return Ok(false);
        }

        // Mirror dispatch()'s first-iteration cascade likewise.
        enum DispatchIdle {
            Busy,
            Silent,
            RobFull,
            LsqFull,
        }
        let mut dispatch_ready_at = None;
        let dispatch_idle = if self.serialize {
            DispatchIdle::Silent
        } else if let Some(front) = self.fetch_buffer.front() {
            if front.available_at > now {
                dispatch_ready_at = Some(front.available_at);
                DispatchIdle::Silent
            } else {
                let op = front.di.inst.op;
                if matches!(op, Op::Syscall | Op::Eret) && !self.rob.is_empty() {
                    DispatchIdle::Silent
                } else if self.rob.len() >= self.config.rob_entries {
                    DispatchIdle::RobFull
                } else if (op.is_load() && !self.lsq.can_accept_load())
                    || (op.is_store() && !self.lsq.can_accept_store())
                {
                    DispatchIdle::LsqFull
                } else {
                    DispatchIdle::Busy
                }
            }
        } else {
            DispatchIdle::Silent
        };
        if matches!(dispatch_idle, DispatchIdle::Busy) {
            return Ok(false);
        }

        // The machine is provably idle until the earliest external event.
        let mut until: Option<Cycle> = None;
        let mut bound = |t: Option<Cycle>| {
            if let Some(t) = t {
                until = Some(until.map_or(t, |u| u.min(t)));
            }
        };
        bound(self.sched.next_event_at());
        bound(self.mem.next_event_at());
        if matches!(fetch_idle, FetchIdle::Stalled) {
            bound(Some(self.fetch_resume_at));
        }
        bound(dispatch_ready_at);
        let Some(until) = until else {
            return Ok(false); // nothing scheduled: step normally
        };
        let mut n = until.saturating_sub(now);
        if self.step_quantum > 0 {
            let done = self.stats.cycles.get() % self.step_quantum;
            n = n.min(self.step_quantum - done);
        }
        let limit = self.config.watchdog_cycles;
        if limit > 0 {
            n = n.min(limit - self.stuck_cycles);
        }
        if n == 0 {
            return Ok(false);
        }

        // Bulk-record what n idle cycles would have recorded.
        self.stats.cycles.add(n);
        self.stats.rob_occupancy.record_n(self.rob.len() as u64, n);
        self.stats
            .lsq_occupancy
            .record_n(self.lsq.total() as u64, n);
        self.stats.commits_per_cycle.record_n(0, n);
        // The skip preconditions freeze everything the slot-cause
        // function reads (head state and wait reason, fetch/dispatch
        // blockage, the skip bounds), so each skipped cycle would have
        // attributed its commit_width empty slots to this same cause.
        let cause = self.stall_slot_cause(now, false);
        self.stats
            .cpi_stack
            .record(cause, n * u64::from(self.config.commit_width));
        let mode = self
            .rob
            .front()
            .map(|e| e.di.mode)
            .or_else(|| self.fetch_buffer.front().map(|f| f.di.mode))
            .unwrap_or(self.last_mode);
        self.last_mode = mode;
        match mode {
            Mode::User => self.stats.user_cycles.add(n),
            Mode::Kernel => self.stats.kernel_cycles.add(n),
        }
        if matches!(fetch_idle, FetchIdle::Stalled) {
            match self.stall_reason {
                StallReason::Redirect => self.stats.fetch_redirect_stall_cycles.add(n),
                StallReason::ICache => self.stats.fetch_icache_stall_cycles.add(n),
            }
        }
        match dispatch_idle {
            DispatchIdle::RobFull => self.stats.dispatch_rob_full.add(n),
            DispatchIdle::LsqFull => self.stats.dispatch_lsq_full.add(n),
            _ => {}
        }
        self.mem.record_idle_cycles(n);
        self.stuck_cycles += n;
        self.stats.max_commit_gap.record_max(self.stuck_cycles);
        if limit > 0 && self.stuck_cycles >= limit {
            // The report cycle is the one the per-cycle watchdog would
            // have aborted on; like the stepped path, `self.now` stays.
            return Err(Box::new(self.watchdog_report(now + n - 1, limit)));
        }
        self.now = now + n;
        Ok(true)
    }

    /// May the load at ROB index `load_idx` leave for the cache? The
    /// legacy backwards window walk, kept as the oracle the event-driven
    /// [`Core::gate_load_indexed`] is property-tested against.
    #[cfg(test)]
    fn gate_load(
        rob: &VecDeque<RobEntry>,
        load_idx: usize,
        now: Cycle,
        policy: Disambiguation,
    ) -> LoadGate {
        let load_range = rob[load_idx].mem_range().expect("loads have addresses");
        if policy == Disambiguation::None {
            return LoadGate::Go;
        }
        // Under conservative ordering, any older store with an unresolved
        // address blocks the load outright.
        if policy == Disambiguation::Conservative {
            for entry in rob.iter().take(load_idx) {
                if entry.is_store() && entry.addr_known_at.is_none_or(|t| t > now) {
                    return LoadGate::Wait;
                }
            }
        }
        // Youngest older store that overlaps decides forwarding.
        for j in (0..load_idx).rev() {
            let store = &rob[j];
            if !store.is_store() {
                continue;
            }
            let store_range = store.mem_range().expect("stores have addresses");
            if !ranges_overlap(store_range, load_range) {
                continue;
            }
            if policy == Disambiguation::Perfect && store.addr_known_at.is_none_or(|t| t > now) {
                return LoadGate::Wait;
            }
            if range_covers(store_range, load_range) && Self::dep_ready(rob, store.data_seq, now) {
                return LoadGate::Forward;
            }
            return LoadGate::Wait;
        }
        LoadGate::Go
    }

    /// May the load `seq` at ROB index `load_idx` leave for the cache?
    ///
    /// Same decision as the backwards window walk, answered from the
    /// store-address index: the conservative pre-check is an age-range
    /// probe of the unresolved-store set, and the youngest older
    /// overlapping store comes from the chunk index (highest sequence
    /// number = first hit of the backwards walk). Stores examined earlier
    /// this cycle have already resolved in both structures, so
    /// within-cycle ordering matches the scan exactly.
    fn gate_load_indexed(&self, load_idx: usize, seq: u64, now: Cycle) -> LoadGate {
        let policy = self.config.disambiguation;
        if policy == Disambiguation::None {
            return LoadGate::Go;
        }
        if policy == Disambiguation::Conservative && self.sched.has_unresolved_store_before(seq) {
            return LoadGate::Wait;
        }
        let load_range = self.rob[load_idx]
            .mem_range()
            .expect("loads have addresses");
        let Some(store_seq) = self
            .sched
            .youngest_overlapping_store_before(seq, load_range)
        else {
            return LoadGate::Go;
        };
        let store = &self.rob[self.rob_index(store_seq)];
        debug_assert!(store.is_store());
        let store_range = store.mem_range().expect("stores have addresses");
        if policy == Disambiguation::Perfect && store.addr_known_at.is_none_or(|t| t > now) {
            return LoadGate::Wait;
        }
        if range_covers(store_range, load_range) && Self::dep_ready(&self.rob, store.data_seq, now)
        {
            return LoadGate::Forward;
        }
        LoadGate::Wait
    }

    // --- pipeline stages ---------------------------------------------------------

    fn commit(&mut self, now: Cycle) {
        let mut committed = 0u64;
        let mut store_rejected = false;
        while committed < u64::from(self.config.commit_width) {
            let Some(head) = self.rob.front() else { break };
            if !head.done(now) {
                break;
            }
            if head.is_store() {
                let addr = Addr::new(head.di.mem_addr.expect("stores have addresses"));
                let bytes = head.di.mem_bytes();
                if self.mem.commit_store(now, addr, bytes) == StoreOutcome::Rejected {
                    self.stats.commit_store_stall_cycles.inc();
                    store_rejected = true;
                    break;
                }
            }
            let entry = self.rob.pop_front().expect("checked above");
            let op = entry.di.inst.op;
            self.tracer
                .emit(now, EventKind::Commit, entry.di.pc, entry.seq as u32);
            #[cfg(test)]
            self.commit_log.push((now, entry.seq));
            if op.is_load() {
                self.lsq.retire_load();
                self.stats.loads.inc();
            }
            if op.is_store() {
                self.lsq.retire_store();
                self.stats.stores.inc();
                self.sched
                    .retire_store(entry.seq, entry.mem_range().expect("stores have addresses"));
            }
            // In the event-driven path a committed instruction has issued,
            // which already removed it from the candidate set; only the
            // broadcast oracle (which bypasses select's bookkeeping) needs
            // the cleanup.
            #[cfg(test)]
            if self.oracle {
                self.sched.retire(entry.seq);
            }
            if matches!(op, Op::Syscall | Op::Eret) {
                self.serialize = false;
            }
            self.stats.committed.inc();
            match entry.di.mode {
                Mode::User => self.stats.committed_user.inc(),
                Mode::Kernel => self.stats.committed_kernel.inc(),
            }
            committed += 1;
        }
        self.stats.commits_per_cycle.record(committed);

        // Commit-slot accounting: every one of this cycle's
        // `commit_width` slots gets a cause — committed slots are Base,
        // and all empty slots share the one cause the ROB head (or the
        // frontend) presents. The per-cause totals therefore sum to
        // `cycles × commit_width` exactly (the conservation invariant).
        let width = u64::from(self.config.commit_width);
        self.stats.cpi_stack.record(StallCause::Base, committed);
        if committed < width {
            let cause = self.stall_slot_cause(now, store_rejected);
            self.stats.cpi_stack.record(cause, width - committed);
        }
    }

    /// Why this cycle's empty commit slots went unused: one cause for
    /// all of them, read top-down at the ROB head. Pure with respect to
    /// machine state, so the cycle-skipping bulk path can evaluate it
    /// once and scale by the skip length — which is what keeps skipped
    /// and stepped runs' stacks identical.
    fn stall_slot_cause(&mut self, now: Cycle, store_rejected: bool) -> StallCause {
        if store_rejected {
            return StallCause::StoreBufferFull;
        }
        let Some(head) = self.rob.front() else {
            return self.frontend_cause(now);
        };
        debug_assert!(!head.done(now));
        // Specific memory causes pass through unrefined; only the
        // generic waits (operands, FU latency) are re-attributed to
        // window pressure when dispatch is simultaneously blocked by a
        // full ROB/LSQ — so port conflicts stay visible as themselves.
        let generic = match head.wait {
            WaitKind::NoPort => return StallCause::DcachePortConflict,
            WaitKind::MshrFull => return StallCause::MshrFull,
            WaitKind::ExecMiss => return StallCause::MshrWait,
            WaitKind::ExecLineBuffer => return StallCause::LineBufferWait,
            WaitKind::Order => return StallCause::DependencyWait,
            WaitKind::Fu | WaitKind::Exec => StallCause::FuBusy,
            WaitKind::Deps => StallCause::DependencyWait,
        };
        self.dispatch_blocked_by(now).unwrap_or(generic)
    }

    /// The empty-ROB half of [`Core::stall_slot_cause`]: nothing is in
    /// flight, so the lost slots belong to whatever is holding the
    /// frontend back.
    fn frontend_cause(&mut self, now: Cycle) -> StallCause {
        if self.fetch_buffer.front().is_some() {
            // Fetched but not yet dispatchable: decode latency.
            return StallCause::FetchStarved;
        }
        if self.trace.peek().is_none() {
            return StallCause::Idle;
        }
        if self.fetch_blocked_on_branch {
            return StallCause::BranchRecovery;
        }
        if now < self.fetch_resume_at {
            return match self.stall_reason {
                StallReason::Redirect => StallCause::BranchRecovery,
                StallReason::ICache => StallCause::FetchStarved,
            };
        }
        StallCause::FetchStarved
    }

    /// Would dispatch refuse the fetch-buffer front this cycle because
    /// the window or the load/store queue is full? A read-only mirror of
    /// [`Core::dispatch`]'s first-exit cascade (and of the cycle
    /// skipper's `DispatchIdle` classification), used to refine generic
    /// head waits into window-pressure causes.
    fn dispatch_blocked_by(&self, now: Cycle) -> Option<StallCause> {
        if self.serialize {
            return None;
        }
        let front = self.fetch_buffer.front()?;
        if front.available_at > now {
            return None;
        }
        let op = front.di.inst.op;
        if matches!(op, Op::Syscall | Op::Eret) && !self.rob.is_empty() {
            return None;
        }
        if self.rob.len() >= self.config.rob_entries {
            return Some(StallCause::RobFull);
        }
        if (op.is_load() && !self.lsq.can_accept_load())
            || (op.is_store() && !self.lsq.can_accept_store())
        {
            return Some(StallCause::LsqFull);
        }
        None
    }

    /// Conservation check, compiled to nothing in release builds.
    #[inline]
    fn assert_cpi_conservation(&self) {
        debug_assert_eq!(
            self.stats.cpi_stack.total(),
            self.stats.cycles.get() * u64::from(self.config.commit_width),
            "CPI-stack conservation violated at cycle {}",
            self.now,
        );
    }

    /// Select: walk the candidate set in age order — the same entries the
    /// broadcast scan would have acted on, in the same order — and issue
    /// up to `issue_width` instructions. Candidates whose examination
    /// comes up empty (gated load, busy functional unit, rejected cache
    /// access) linger and are re-examined next cycle, replaying the
    /// scan's per-cycle retries and statistics exactly.
    fn issue(&mut self, now: Cycle) {
        #[cfg(test)]
        if self.oracle {
            self.issue_broadcast(now);
            return;
        }
        let Some(front_seq) = self.rob.front().map(|e| e.seq) else {
            return;
        };
        // The walk's live bounds are fixed for the whole cycle: dispatch
        // runs after issue, and commit ran before it.
        let end_seq = front_seq + self.rob.len() as u64;
        let mut issued = 0u32;
        let mut cursor = front_seq;
        while issued < self.config.issue_width {
            let Some(seq) = self.sched.next_candidate_in(cursor, end_seq) else {
                break;
            };
            cursor = seq + 1;
            let i = self.rob_index(seq);
            debug_assert_eq!(self.rob[i].seq, seq);
            debug_assert_eq!(self.rob[i].state, EntryState::Waiting);
            let op = self.rob[i].di.inst.op;
            match op.class() {
                OpClass::Load => {
                    if !Self::dep_ready(&self.rob, self.rob[i].addr_seq, now) {
                        self.rob[i].wait = WaitKind::Deps;
                        continue;
                    }
                    // Address generation needs an AGU whichever path the
                    // data takes.
                    if !self.fu.can_start(OpClass::Load, now) {
                        self.rob[i].wait = WaitKind::Fu;
                        continue;
                    }
                    match self.gate_load_indexed(i, seq, now) {
                        LoadGate::Wait => {
                            self.rob[i].wait = WaitKind::Order;
                            self.stats.lsq_order_stalls.inc();
                            continue;
                        }
                        LoadGate::Forward => {
                            self.fu
                                .try_start(OpClass::Load, now)
                                .expect("can_start checked");
                            let entry = &mut self.rob[i];
                            entry.state = EntryState::Issued;
                            entry.ready_at = now + self.config.lsq_forward_latency;
                            entry.wait = WaitKind::Exec;
                            self.stats.lsq_forwards.inc();
                            self.tracer
                                .emit(now, EventKind::Issue, self.rob[i].di.pc, seq as u32);
                            issued += 1;
                            self.finish_issue(i, seq, now);
                        }
                        LoadGate::Go => {
                            let addr = Addr::new(self.rob[i].di.mem_addr.expect("load address"));
                            let bytes = self.rob[i].di.mem_bytes();
                            match self.mem.try_load(now, addr, bytes) {
                                LoadOutcome::Ready { at, source } => {
                                    self.fu
                                        .try_start(OpClass::Load, now)
                                        .expect("can_start checked");
                                    let entry = &mut self.rob[i];
                                    entry.state = EntryState::Issued;
                                    entry.ready_at = at;
                                    entry.wait = Self::serving_wait(source);
                                    self.tracer.emit(
                                        now,
                                        EventKind::Issue,
                                        self.rob[i].di.pc,
                                        seq as u32,
                                    );
                                    issued += 1;
                                    self.finish_issue(i, seq, now);
                                }
                                LoadOutcome::MshrFull => {
                                    self.rob[i].wait = WaitKind::MshrFull;
                                    self.tracer.emit(
                                        now,
                                        EventKind::PortRetry,
                                        self.rob[i].di.pc,
                                        seq as u32,
                                    );
                                    continue;
                                }
                                LoadOutcome::NoPort | LoadOutcome::Conflict => {
                                    self.rob[i].wait = WaitKind::NoPort;
                                    self.tracer.emit(
                                        now,
                                        EventKind::PortRetry,
                                        self.rob[i].di.pc,
                                        seq as u32,
                                    );
                                    continue;
                                }
                            }
                        }
                    }
                }
                OpClass::Store => {
                    let addr_ok = Self::dep_ready(&self.rob, self.rob[i].addr_seq, now);
                    if addr_ok && self.rob[i].addr_known_at.is_none() {
                        // Address generation fires as soon as the base
                        // register is ready, independent of the data.
                        self.rob[i].addr_known_at = Some(now);
                        self.sched.resolve_store(seq);
                    }
                    if !addr_ok {
                        self.rob[i].wait = WaitKind::Deps;
                        continue;
                    }
                    if !Self::dep_ready(&self.rob, self.rob[i].data_seq, now) {
                        // Address generation has fired; nothing further
                        // happens until the data arrives. Park on the
                        // data producer (registered at dispatch — the
                        // data was unready then too), whose wakeup
                        // re-adds this store.
                        self.rob[i].wait = WaitKind::Deps;
                        self.sched.remove_candidate(seq);
                        continue;
                    }
                    if let Some(done_at) = self.fu.try_start(OpClass::Store, now) {
                        let entry = &mut self.rob[i];
                        entry.state = EntryState::Issued;
                        entry.ready_at = done_at;
                        entry.wait = WaitKind::Exec;
                        self.tracer
                            .emit(now, EventKind::Issue, self.rob[i].di.pc, seq as u32);
                        issued += 1;
                        self.finish_issue(i, seq, now);
                    } else {
                        self.rob[i].wait = WaitKind::Fu;
                    }
                }
                _ => {
                    let deps = self.rob[i].src_seqs;
                    if !deps.iter().all(|&dep| Self::dep_ready(&self.rob, dep, now)) {
                        self.rob[i].wait = WaitKind::Deps;
                        continue;
                    }
                    if let Some(done_at) = self.fu.try_start(op.class(), now) {
                        let mispredicted = self.rob[i].mispredicted;
                        let entry = &mut self.rob[i];
                        entry.state = EntryState::Issued;
                        entry.ready_at = done_at;
                        entry.wait = WaitKind::Exec;
                        self.tracer
                            .emit(now, EventKind::Issue, self.rob[i].di.pc, seq as u32);
                        issued += 1;
                        if mispredicted {
                            // The redirect leaves when the branch resolves.
                            self.fetch_resume_at = self
                                .fetch_resume_at
                                .max(done_at + self.config.mispredict_penalty);
                            self.stall_reason = StallReason::Redirect;
                            self.fetch_blocked_on_branch = false;
                            self.wrong_path = None;
                        }
                        self.finish_issue(i, seq, now);
                    } else {
                        self.rob[i].wait = WaitKind::Fu;
                    }
                }
            }
        }
    }

    /// The in-flight service class a just-issued load settles into,
    /// read from where the memory system said it would be served.
    fn serving_wait(source: LoadSource) -> WaitKind {
        match source {
            LoadSource::Miss | LoadSource::MissMerged => WaitKind::ExecMiss,
            LoadSource::LineBuffer => WaitKind::ExecLineBuffer,
            _ => WaitKind::Exec,
        }
    }

    /// The legacy issue stage: a full broadcast scan of the reorder
    /// buffer every cycle. Kept verbatim (plus issue-log bookkeeping) as
    /// the oracle the property tests run against the event-driven path.
    #[cfg(test)]
    fn issue_broadcast(&mut self, now: Cycle) {
        let mut issued = 0u32;
        for i in 0..self.rob.len() {
            if issued >= self.config.issue_width {
                break;
            }
            if self.rob[i].state != EntryState::Waiting {
                continue;
            }
            let op = self.rob[i].di.inst.op;
            match op.class() {
                OpClass::Load => {
                    if !Self::dep_ready(&self.rob, self.rob[i].addr_seq, now) {
                        self.rob[i].wait = WaitKind::Deps;
                        continue;
                    }
                    // Address generation needs an AGU whichever path the
                    // data takes.
                    if !self.fu.can_start(OpClass::Load, now) {
                        self.rob[i].wait = WaitKind::Fu;
                        continue;
                    }
                    match Self::gate_load(&self.rob, i, now, self.config.disambiguation) {
                        LoadGate::Wait => {
                            self.rob[i].wait = WaitKind::Order;
                            self.stats.lsq_order_stalls.inc();
                            continue;
                        }
                        LoadGate::Forward => {
                            self.fu
                                .try_start(OpClass::Load, now)
                                .expect("can_start checked");
                            let entry = &mut self.rob[i];
                            entry.state = EntryState::Issued;
                            entry.ready_at = now + self.config.lsq_forward_latency;
                            entry.wait = WaitKind::Exec;
                            self.stats.lsq_forwards.inc();
                            let seq = self.rob[i].seq;
                            self.tracer
                                .emit(now, EventKind::Issue, self.rob[i].di.pc, seq as u32);
                            issued += 1;
                            self.issue_log.push((now, seq));
                        }
                        LoadGate::Go => {
                            let addr = Addr::new(self.rob[i].di.mem_addr.expect("load address"));
                            let bytes = self.rob[i].di.mem_bytes();
                            match self.mem.try_load(now, addr, bytes) {
                                LoadOutcome::Ready { at, source } => {
                                    self.fu
                                        .try_start(OpClass::Load, now)
                                        .expect("can_start checked");
                                    let entry = &mut self.rob[i];
                                    entry.state = EntryState::Issued;
                                    entry.ready_at = at;
                                    entry.wait = Self::serving_wait(source);
                                    let seq = self.rob[i].seq;
                                    self.tracer.emit(
                                        now,
                                        EventKind::Issue,
                                        self.rob[i].di.pc,
                                        seq as u32,
                                    );
                                    issued += 1;
                                    self.issue_log.push((now, seq));
                                }
                                LoadOutcome::MshrFull => {
                                    self.rob[i].wait = WaitKind::MshrFull;
                                    continue;
                                }
                                LoadOutcome::NoPort | LoadOutcome::Conflict => {
                                    self.rob[i].wait = WaitKind::NoPort;
                                    continue;
                                }
                            }
                        }
                    }
                }
                OpClass::Store => {
                    let addr_ok = Self::dep_ready(&self.rob, self.rob[i].addr_seq, now);
                    if addr_ok && self.rob[i].addr_known_at.is_none() {
                        // Address generation fires as soon as the base
                        // register is ready, independent of the data.
                        self.rob[i].addr_known_at = Some(now);
                    }
                    if !addr_ok || !Self::dep_ready(&self.rob, self.rob[i].data_seq, now) {
                        self.rob[i].wait = WaitKind::Deps;
                        continue;
                    }
                    if let Some(done_at) = self.fu.try_start(OpClass::Store, now) {
                        let entry = &mut self.rob[i];
                        entry.state = EntryState::Issued;
                        entry.ready_at = done_at;
                        entry.wait = WaitKind::Exec;
                        let seq = self.rob[i].seq;
                        self.tracer
                            .emit(now, EventKind::Issue, self.rob[i].di.pc, seq as u32);
                        issued += 1;
                        self.issue_log.push((now, seq));
                    } else {
                        self.rob[i].wait = WaitKind::Fu;
                    }
                }
                _ => {
                    let deps = self.rob[i].src_seqs;
                    if !deps.iter().all(|&dep| Self::dep_ready(&self.rob, dep, now)) {
                        self.rob[i].wait = WaitKind::Deps;
                        continue;
                    }
                    if let Some(done_at) = self.fu.try_start(op.class(), now) {
                        let mispredicted = self.rob[i].mispredicted;
                        let entry = &mut self.rob[i];
                        entry.state = EntryState::Issued;
                        entry.ready_at = done_at;
                        entry.wait = WaitKind::Exec;
                        let seq = self.rob[i].seq;
                        self.tracer
                            .emit(now, EventKind::Issue, self.rob[i].di.pc, seq as u32);
                        issued += 1;
                        self.issue_log.push((now, seq));
                        if mispredicted {
                            // The redirect leaves when the branch resolves.
                            self.fetch_resume_at = self
                                .fetch_resume_at
                                .max(done_at + self.config.mispredict_penalty);
                            self.stall_reason = StallReason::Redirect;
                            self.fetch_blocked_on_branch = false;
                            self.wrong_path = None;
                        }
                    } else {
                        self.rob[i].wait = WaitKind::Fu;
                    }
                }
            }
        }
    }

    fn dispatch(&mut self, now: Cycle) {
        let mut dispatched = 0u32;
        while dispatched < self.config.dispatch_width {
            if self.serialize {
                break;
            }
            let Some(front) = self.fetch_buffer.front() else {
                break;
            };
            if front.available_at > now {
                break;
            }
            let op = front.di.inst.op;
            let serializing = matches!(op, Op::Syscall | Op::Eret);
            if serializing && !self.rob.is_empty() {
                break;
            }
            if self.rob.len() >= self.config.rob_entries {
                self.stats.dispatch_rob_full.inc();
                break;
            }
            if op.is_load() && !self.lsq.can_accept_load() {
                self.stats.dispatch_lsq_full.inc();
                break;
            }
            if op.is_store() && !self.lsq.can_accept_store() {
                self.stats.dispatch_lsq_full.inc();
                break;
            }

            let fetched = self.fetch_buffer.pop_front().expect("checked above");
            let seq = self.next_seq;
            self.next_seq += 1;
            self.tracer
                .emit(now, EventKind::Dispatch, fetched.di.pc, seq as u32);
            let mut entry = RobEntry::new(seq, fetched.di);
            entry.mispredicted = fetched.mispredicted;

            // Rename.
            let inst = fetched.di.inst;
            match op.class() {
                OpClass::Load => {
                    entry.addr_seq = self.producer(inst.rs1);
                }
                OpClass::Store => {
                    entry.addr_seq = self.producer(inst.rs1);
                    entry.data_seq = self.producer(inst.rs2);
                }
                _ => {
                    for (slot, reg) in inst.sources().enumerate().take(2) {
                        entry.src_seqs[slot] = self.producer(reg);
                    }
                }
            }
            if let Some(dest) = inst.dest() {
                self.map[dest.index()] = Some(seq);
            }
            if op.is_load() {
                self.lsq.add_load();
            }
            if op.is_store() {
                self.lsq.add_store();
                self.sched
                    .add_store(seq, entry.mem_range().expect("stores have addresses"));
            }
            if serializing {
                self.serialize = true;
            }

            // Wakeup registration: park this instruction on each producer
            // that is not yet done; its completion event re-evaluates the
            // consumer. Producers of unready operands are necessarily
            // still in flight (retired sequence numbers count as ready).
            let deps = [
                entry.src_seqs[0],
                entry.src_seqs[1],
                entry.addr_seq,
                entry.data_seq,
            ];
            for dep in deps.into_iter().flatten() {
                if !Self::seq_ready(&self.rob, dep, now) {
                    let idx = self.rob_index(dep);
                    let waiters = &mut self.rob[idx].waiters;
                    if waiters.capacity() == 0 {
                        if let Some(spare) = self.waiter_pool.pop() {
                            *waiters = spare;
                        }
                    }
                    waiters.push(seq);
                }
            }
            let eligible = match op.class() {
                OpClass::Load | OpClass::Store => Self::dep_ready(&self.rob, entry.addr_seq, now),
                _ => entry
                    .src_seqs
                    .iter()
                    .all(|&dep| Self::dep_ready(&self.rob, dep, now)),
            };
            if eligible {
                self.sched.add_candidate(seq);
            }

            self.rob.push_back(entry);
            dispatched += 1;
            self.stuck_cycles = 0;
        }
    }

    fn producer(&self, reg: Reg) -> Option<u64> {
        if reg.is_zero() {
            return None;
        }
        self.map[reg.index()]
    }

    fn fetch(&mut self, now: Cycle) {
        if self.trace.peek().is_none() {
            return;
        }
        if self.fetch_blocked_on_branch {
            // The real frontend does not idle on a misprediction: it runs
            // down the wrong path until the redirect, dragging wrong-path
            // blocks through the instruction cache.
            if let Some((pc, blocks_left)) = self.wrong_path.take() {
                let block = pc & !(self.config.fetch_bytes - 1);
                let _ = self.mem.fetch(now, Addr::new(block));
                self.stats.wrong_path_blocks.inc();
                if blocks_left > 1 {
                    self.wrong_path = Some((block + self.config.fetch_bytes, blocks_left - 1));
                }
            }
            return;
        }
        if now < self.fetch_resume_at {
            match self.stall_reason {
                StallReason::Redirect => self.stats.fetch_redirect_stall_cycles.inc(),
                StallReason::ICache => self.stats.fetch_icache_stall_cycles.inc(),
            }
            return;
        }
        let capacity = 2 * self.config.fetch_width as usize;
        if self.fetch_buffer.len() >= capacity {
            return;
        }

        // One instruction block per cycle through the instruction cache.
        let block_mask = !(self.config.fetch_bytes - 1);
        let first_pc = self.trace.peek().expect("checked above").pc;
        let block = first_pc & block_mask;
        let outcome = self.mem.fetch(now, Addr::new(block));
        if outcome.ready_at > now {
            self.fetch_resume_at = outcome.ready_at;
            self.stall_reason = StallReason::ICache;
            self.stats.fetch_icache_stall_cycles.inc();
            return;
        }

        let mut fetched = 0;
        while fetched < self.config.fetch_width && self.fetch_buffer.len() < capacity {
            let Some(peek) = self.trace.peek() else { break };
            if peek.pc & block_mask != block {
                break; // the next block waits for the next cycle
            }
            let di = self.trace.next().expect("peeked above");
            // Fetch buffer and dispatch are strictly FIFO, so the seq
            // this instruction will receive is already determined:
            // next_seq plus everything fetched ahead of it.
            let will_be_seq = self.next_seq + self.fetch_buffer.len() as u64;
            self.tracer
                .emit(now, EventKind::Fetch, di.pc, will_be_seq as u32);
            fetched += 1;
            let misprediction = self.predict(now, &di);
            let mispredicted = misprediction.is_some();
            let stop = mispredicted
                || di.diverted()
                || matches!(di.inst.op, Op::Syscall | Op::Eret | Op::Halt);
            self.fetch_buffer.push_back(Fetched {
                di,
                mispredicted,
                available_at: now + 1,
            });
            if let Some(wrong_start) = misprediction {
                self.fetch_blocked_on_branch = true;
                if self.config.wrong_path_fetch {
                    // Run ahead a bounded number of blocks, as a real
                    // fetch queue would.
                    self.wrong_path = wrong_start.map(|pc| (pc, 8));
                }
            }
            if stop {
                break;
            }
        }
    }

    /// Consult and train the predictors for a fetched instruction.
    ///
    /// Returns `None` for a correct prediction, and
    /// `Some(wrong_path_start)` for a misprediction that blocks fetch
    /// until resolve — where `wrong_path_start` is the address the
    /// frontend *would* have fetched next (`None` when unknowable, e.g.
    /// an indirect jump with no prediction at all).
    fn predict(&mut self, now: Cycle, di: &DynInst) -> Option<Option<u64>> {
        let pc = di.pc;
        match di.inst.op.class() {
            OpClass::Branch => {
                self.stats.branches.inc();
                let predicted = match self.predictor.kind() {
                    DirPredictorKind::Btfn => DirectionPredictor::predict_btfn(di.inst.imm),
                    _ => self.predictor.predict(pc),
                };
                self.predictor.update(pc, di.taken);
                if predicted != di.taken {
                    self.stats.mispredicts.inc();
                    // Predicted taken → the frontend ran to the branch
                    // target; predicted not-taken → it fell through.
                    let wrong = if predicted {
                        pc.wrapping_add(di.inst.imm as u64)
                    } else {
                        pc + INST_BYTES
                    };
                    return Some(Some(wrong));
                }
                if di.taken {
                    if self.btb.lookup(pc) != Some(di.next_pc) {
                        self.stats.misfetches.inc();
                        self.fetch_resume_at = now + 1 + self.config.misfetch_penalty;
                        self.stall_reason = StallReason::Redirect;
                    }
                    self.btb.update(pc, di.next_pc);
                }
                None
            }
            OpClass::Jump => match di.inst.op {
                Op::Jal => {
                    if di.inst.rd == Reg::RA {
                        self.ras.push(pc + INST_BYTES);
                    }
                    if self.btb.lookup(pc) != Some(di.next_pc) {
                        self.stats.misfetches.inc();
                        self.fetch_resume_at = now + 1 + self.config.misfetch_penalty;
                        self.stall_reason = StallReason::Redirect;
                        self.btb.update(pc, di.next_pc);
                    }
                    None
                }
                _ => {
                    // jalr: returns predict through the RAS, other
                    // indirections through the BTB.
                    let is_return = di.inst.rd.is_zero() && di.inst.rs1 == Reg::RA;
                    let predicted = if is_return {
                        self.ras.pop()
                    } else {
                        self.btb.lookup(pc)
                    };
                    if di.inst.rd == Reg::RA {
                        self.ras.push(pc + INST_BYTES);
                    }
                    if predicted == Some(di.next_pc) {
                        None
                    } else {
                        self.stats.indirect_mispredicts.inc();
                        self.btb.update(pc, di.next_pc);
                        // The frontend ran down the *predicted* indirect
                        // target, when it had one.
                        Some(predicted)
                    }
                }
            },
            OpClass::System if matches!(di.inst.op, Op::Syscall | Op::Eret) => {
                // Pipeline drain + vectoring latency.
                self.fetch_resume_at = now + 1 + self.config.trap_penalty;
                self.stall_reason = StallReason::Redirect;
                None
            }
            _ => None,
        }
    }

    /// The memory system (for inspection mid-run in tests).
    pub fn mem(&self) -> &MemSystem {
        &self.mem
    }

    /// Core statistics so far.
    pub fn stats(&self) -> &CpuStats {
        &self.stats
    }

    /// The configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    // Tests tweak one field of a default config at a time; the
    // struct-update suggestion reads worse there.
    #![allow(clippy::field_reassign_with_default)]

    use super::*;
    use cpe_isa::asm::assemble;
    use cpe_mem::MemConfig;

    use cpe_isa::Emulator;

    fn run_src(src: &str, cpu: CpuConfig, mem: MemConfig) -> SimResult {
        let program = assemble(src).expect("assembles");
        let core = Core::new(cpu, MemSystem::new(mem), Emulator::new(program));
        core.run(None)
    }

    const SUM_LOOP: &str = "main: li a0, 200\n li a1, 0\nloop: add a1, a1, a0\n addi a0, a0, -1\n bnez a0, loop\n halt\n";

    #[test]
    fn commits_every_instruction_exactly_once() {
        let program = assemble(SUM_LOOP).unwrap();
        let expected = Emulator::new(program).count() as u64;
        let result = run_src(SUM_LOOP, CpuConfig::default(), MemConfig::default());
        assert_eq!(result.committed, expected);
        assert!(result.cycles > 0);
    }

    #[test]
    fn watchdog_trips_on_an_impossible_progress_bound() {
        // A 4-cycle no-commit limit is shorter than the cold-start
        // instruction-cache miss, so the very first fetch stall must trip
        // the watchdog and surface a diagnosable report instead of
        // spinning or asserting.
        let mut cpu = CpuConfig::default();
        cpu.watchdog_cycles = 4;
        let program = assemble(SUM_LOOP).expect("assembles");
        let core = Core::new(
            cpu,
            MemSystem::new(MemConfig::default()),
            Emulator::new(program),
        );
        let report = core
            .try_run(None)
            .expect_err("cold-start miss exceeds 4 cycles");
        assert_eq!(report.limit, 4);
        assert_eq!(report.committed, 0);
        let text = report.to_string();
        assert!(text.contains("no progress for 4 cycles"), "{text}");
    }

    #[test]
    fn watchdog_zero_disables_the_limit() {
        let mut cpu = CpuConfig::default();
        cpu.watchdog_cycles = 0;
        let result = run_src(SUM_LOOP, cpu, MemConfig::default());
        assert!(result.committed > 0);
    }

    #[test]
    fn tight_loop_reaches_reasonable_ipc() {
        let result = run_src(SUM_LOOP, CpuConfig::default(), MemConfig::default());
        // The loop carries a serial add chain; anything near 1+ IPC means
        // fetch/branch prediction are not pathological.
        assert!(result.ipc() > 0.8, "ipc = {}", result.ipc());
        assert!(
            result.cpu.mispredict_ratio().percent() < 10.0,
            "loop branch must become predictable: {}",
            result.cpu.mispredict_ratio()
        );
    }

    #[test]
    fn loads_and_stores_flow_through_the_memory_system() {
        let src = r#"
            .data
            buf: .space 4096
            .text
            main:
                la   t0, buf
                li   t1, 64
            fill:
                sd   t1, 0(t0)
                addi t0, t0, 8
                addi t1, t1, -1
                bnez t1, fill
                la   t0, buf
                li   t1, 64
                li   a0, 0
            sum:
                ld   t2, 0(t0)
                add  a0, a0, t2
                addi t0, t0, 8
                addi t1, t1, -1
                bnez t1, sum
                halt
        "#;
        let result = run_src(src, CpuConfig::default(), MemConfig::default());
        assert_eq!(result.cpu.stores.get(), 64);
        assert_eq!(result.cpu.loads.get(), 64);
        assert_eq!(result.mem.stores.get(), 64);
        assert!(result.mem.loads.get() >= 64);
    }

    #[test]
    fn ipc_improves_with_a_second_cache_port() {
        // A cache-resident working set with four independent loads per
        // iteration: the single port is the only bottleneck.
        let src = r#"
            .data
            buf: .space 1024
            .text
            main:
                li   s1, 20           # outer repeats (first pass warms L1)
            outer:
                la   t0, buf
                li   t1, 32           # 32 iterations x 32B = 1KB
            loop:
                ld   a0, 0(t0)
                ld   a1, 8(t0)
                ld   a2, 16(t0)
                ld   a3, 24(t0)
                addi t0, t0, 32
                addi t1, t1, -1
                bnez t1, loop
                addi s1, s1, -1
                bnez s1, outer
                halt
        "#;
        let one = run_src(src, CpuConfig::default(), MemConfig::default());
        let mut dual = MemConfig::default();
        dual.ports.count = 2;
        let two = run_src(src, CpuConfig::default(), dual);
        assert!(
            two.ipc() > one.ipc() * 1.2,
            "dual-ported should clearly win: {} vs {}",
            two.ipc(),
            one.ipc()
        );
    }

    #[test]
    fn store_to_load_forwarding_in_the_lsq() {
        // A store immediately followed by a covering load of the same slot.
        let src = r#"
            .data
            buf: .space 64
            .text
            main:
                la   t0, buf
                li   t1, 100
            loop:
                sd   t1, 0(t0)
                ld   a0, 0(t0)
                addi t1, t1, -1
                bnez t1, loop
                halt
        "#;
        let result = run_src(src, CpuConfig::default(), MemConfig::default());
        // Whether a given iteration forwards depends on whether the store
        // is still in flight when the load issues; a healthy LSQ forwards a
        // substantial fraction.
        assert!(
            result.cpu.lsq_forwards.get() > 20,
            "forwarding should satisfy a sizable share of these loads: {}",
            result.cpu.lsq_forwards.get()
        );
    }

    #[test]
    fn conservative_ordering_stalls_more_than_perfect() {
        // The store's *address* is computed by a multiply, so it resolves
        // late; the loads target a disjoint array. Conservative ordering
        // makes every load wait for the store address; perfect
        // disambiguation (no actual overlap) never waits.
        let src = r#"
            .data
            a: .space 1024
            b: .space 8192
            .text
            main:
                la   s0, a
                la   s1, b
                li   t2, 300
            loop:
                mul  t3, t2, t2
                andi t3, t3, 1016     # 8-byte-aligned offset within a
                add  t3, t3, s0
                sd   t2, 0(t3)        # store address known late
                ld   a0, 0(s1)
                ld   a1, 8(s1)
                addi s1, s1, 16
                addi t2, t2, -1
                bnez t2, loop
                halt
        "#;
        let mut cons_cfg = CpuConfig::default();
        cons_cfg.disambiguation = Disambiguation::Conservative;
        let conservative = run_src(src, cons_cfg, MemConfig::default());
        let mut cfg = CpuConfig::default();
        cfg.disambiguation = Disambiguation::Perfect;
        let perfect = run_src(src, cfg, MemConfig::default());
        assert_eq!(perfect.cpu.lsq_order_stalls.get(), 0, "arrays never alias");
        assert!(
            conservative.cpu.lsq_order_stalls.get() > 200,
            "every iteration's loads wait on the multiply: {}",
            conservative.cpu.lsq_order_stalls.get()
        );
        assert!(perfect.ipc() > conservative.ipc());
    }

    #[test]
    fn function_calls_exercise_the_ras() {
        let src = r#"
            main:
                li   s0, 50
            loop:
                li   a0, 3
                call work
                addi s0, s0, -1
                bnez s0, loop
                halt
            work:
                add  a0, a0, a0
                ret
        "#;
        let result = run_src(src, CpuConfig::default(), MemConfig::default());
        // After warm-up, returns predict through the RAS; only the first
        // couple of iterations may miss.
        assert!(
            result.cpu.indirect_mispredicts.get() <= 3,
            "RAS should predict returns: {}",
            result.cpu.indirect_mispredicts.get()
        );
    }

    #[test]
    fn syscalls_serialize_but_complete() {
        let src =
            "main: li t0, 10\nloop: li a7, 3\n syscall\n addi t0, t0, -1\n bnez t0, loop\n halt\n";
        let result = run_src(src, CpuConfig::default(), MemConfig::default());
        let baseline = run_src(
            "main: li t0, 10\nloop: li a7, 3\n nop\n addi t0, t0, -1\n bnez t0, loop\n halt\n",
            CpuConfig::default(),
            MemConfig::default(),
        );
        assert!(
            result.cycles > baseline.cycles + 50,
            "{} vs {}",
            result.cycles,
            baseline.cycles
        );
    }

    #[test]
    fn narrow_machine_is_slower() {
        let mut narrow = CpuConfig::default();
        narrow.fetch_width = 1;
        narrow.dispatch_width = 1;
        narrow.issue_width = 1;
        narrow.commit_width = 1;
        let slow = run_src(SUM_LOOP, narrow, MemConfig::default());
        let fast = run_src(SUM_LOOP, CpuConfig::default(), MemConfig::default());
        assert!(
            slow.cycles > fast.cycles,
            "{} vs {}",
            slow.cycles,
            fast.cycles
        );
    }

    #[test]
    fn rob_occupancy_never_exceeds_capacity() {
        let mut cfg = CpuConfig::default();
        cfg.rob_entries = 16;
        let result = run_src(SUM_LOOP, cfg, MemConfig::default());
        assert!(result.cpu.rob_occupancy.max_seen() <= 16);
        assert!(result.cpu.rob_occupancy.overflow() == 0);
    }

    #[test]
    fn lsq_occupancy_never_exceeds_capacity() {
        let src = r#"
            .data
            buf: .space 1024
            .text
            main:
                la   t0, buf
                li   t1, 64
            fill:
                sd   t1, 0(t0)
                ld   t2, 0(t0)
                addi t0, t0, 8
                addi t1, t1, -1
                bnez t1, fill
                halt
        "#;
        let mut cfg = CpuConfig::default();
        cfg.load_queue = 4;
        cfg.store_queue = 4;
        let result = run_src(src, cfg, MemConfig::default());
        assert!(result.cpu.lsq_occupancy.max_seen() <= 8);
        assert_eq!(result.cpu.lsq_occupancy.overflow(), 0);
        assert_eq!(
            result.cpu.lsq_occupancy.total(),
            result.cycles,
            "one occupancy sample per cycle"
        );
        assert!(
            result.cpu.lsq_occupancy.max_seen() > 0,
            "a memory-heavy loop must occupy the LSQ"
        );
    }

    #[test]
    fn commit_width_bounds_per_cycle_commits() {
        let result = run_src(SUM_LOOP, CpuConfig::default(), MemConfig::default());
        assert!(result.cpu.commits_per_cycle.max_seen() <= 4);
        let total: u64 = result
            .cpu
            .commits_per_cycle
            .iter()
            .map(|(value, count)| value as u64 * count)
            .sum();
        assert_eq!(total, result.committed);
    }

    #[test]
    fn btfn_predictor_wins_on_backward_loops_only() {
        // SUM_LOOP's only branch is backward-taken: BTFN predicts it
        // perfectly except the final fall-through.
        let mut cfg = CpuConfig::default();
        cfg.predictor = DirPredictorKind::Btfn;
        let result = run_src(SUM_LOOP, cfg, MemConfig::default());
        assert_eq!(result.cpu.mispredicts.get(), 1, "only the loop exit");
    }

    #[test]
    fn local_predictor_runs_end_to_end() {
        let mut cfg = CpuConfig::default();
        cfg.predictor = DirPredictorKind::Local {
            history_entries: 256,
            history_bits: 6,
        };
        let result = run_src(SUM_LOOP, cfg, MemConfig::default());
        assert!(result.cpu.mispredict_ratio().percent() < 10.0);
    }

    #[test]
    fn misfetches_happen_once_per_cold_taken_target() {
        // A chain of calls to distinct targets: each first-taken transfer
        // misses the BTB once, then hits.
        let src = r#"
            main:
                li   s0, 20
            loop:
                call fn_a
                call fn_b
                addi s0, s0, -1
                bnez s0, loop
                halt
            fn_a: ret
            fn_b: ret
        "#;
        let result = run_src(src, CpuConfig::default(), MemConfig::default());
        // jal targets and the loop backedge warm up quickly; the
        // misfetch count stays far below the transfer count.
        assert!(
            result.cpu.misfetches.get() <= 8,
            "misfetches: {}",
            result.cpu.misfetches.get()
        );
    }

    #[test]
    fn serialization_drains_the_window_before_traps() {
        // A syscall must not dispatch alongside older instructions.
        let src = "main: li a7, 3
 li t0, 5
 li t1, 6
 syscall
 add t2, t0, t1
 halt
";
        let result = run_src(src, CpuConfig::default(), MemConfig::default());
        assert_eq!(result.committed, 6);
        // The trap penalty plus drain makes this far slower than 6/4 cycles.
        assert!(result.cycles > 10, "{}", result.cycles);
    }

    #[test]
    fn zero_latency_forwarding_does_not_exist() {
        // A chain of dependent adds commits at most one per cycle after
        // warmup: cycles >= chain length.
        let src = "main: li a0, 1
 add a0, a0, a0
 add a0, a0, a0
 add a0, a0, a0
 add a0, a0, a0
 add a0, a0, a0
 add a0, a0, a0
 halt
";
        let result = run_src(src, CpuConfig::default(), MemConfig::default());
        assert!(
            result.cycles >= 6,
            "dependent chain must serialise: {}",
            result.cycles
        );
    }

    #[test]
    fn wrong_path_fetch_pollutes_the_icache() {
        // A data-dependent unpredictable branch selecting between two far
        // code paths: wrong-path fetch drags the untaken side through the
        // i-cache.
        let src = r#"
            .data
            keys: .space 8192
            .text
            main:
                # pseudo-random keys
                la   t0, keys
                li   t1, 1024
                li   t2, 998877
            gen:
                slli t3, t2, 13
                xor  t2, t2, t3
                srli t3, t2, 7
                xor  t2, t2, t3
                slli t3, t2, 17
                xor  t2, t2, t3
                sd   t2, 0(t0)
                addi t0, t0, 8
                addi t1, t1, -1
                bnez t1, gen
                la   t0, keys
                li   t1, 1024
                li   a0, 0
            loop:
                ld   t2, 0(t0)
                andi t2, t2, 1
                bnez t2, odd
                addi a0, a0, 1
                j    next
            odd:
                addi a0, a0, 3
            next:
                addi t0, t0, 8
                addi t1, t1, -1
                bnez t1, loop
                halt
        "#;
        let without = run_src(src, CpuConfig::default(), MemConfig::default());
        let mut cfg = CpuConfig::default();
        cfg.wrong_path_fetch = true;
        let with = run_src(src, cfg, MemConfig::default());
        assert_eq!(without.cpu.wrong_path_blocks.get(), 0);
        assert!(
            with.cpu.wrong_path_blocks.get() > 100,
            "unpredictable branches must trigger wrong-path runs: {}",
            with.cpu.wrong_path_blocks.get()
        );
        // Same architectural work either way.
        assert_eq!(with.committed, without.committed);
        // Wrong-path fetch adds i-cache traffic (fetches counter includes
        // the wrong-path blocks).
        assert!(with.mem.fetches.get() > without.mem.fetches.get());
    }

    #[test]
    fn wrong_path_fetch_off_by_default_and_deterministic() {
        let mut cfg = CpuConfig::default();
        cfg.wrong_path_fetch = true;
        let a = run_src(SUM_LOOP, cfg, MemConfig::default());
        let b = run_src(SUM_LOOP, cfg, MemConfig::default());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.cpu.wrong_path_blocks.get(), b.cpu.wrong_path_blocks.get());
    }

    #[test]
    fn determinism_end_to_end() {
        let a = run_src(SUM_LOOP, CpuConfig::default(), MemConfig::default());
        let b = run_src(SUM_LOOP, CpuConfig::default(), MemConfig::default());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.mem.loads.get(), b.mem.loads.get());
    }

    #[test]
    fn cpi_stack_conserves_commit_slots() {
        let result = run_src(SUM_LOOP, CpuConfig::default(), MemConfig::default());
        let width = u64::from(CpuConfig::default().commit_width);
        assert_eq!(result.cpu.cpi_stack.total(), result.cycles * width);
        assert_eq!(
            result.cpu.cpi_stack.get(crate::StallCause::Base),
            result.committed,
            "one Base slot per committed instruction"
        );
    }

    #[test]
    fn port_conflicts_show_up_in_the_cpi_stack() {
        // Four independent cache-resident loads per iteration against a
        // single port: the conflict retries must be attributed.
        let src = r#"
            .data
            buf: .space 1024
            .text
            main:
                li   s1, 20
            outer:
                la   t0, buf
                li   t1, 32
            loop:
                ld   a0, 0(t0)
                ld   a1, 8(t0)
                ld   a2, 16(t0)
                ld   a3, 24(t0)
                addi t0, t0, 32
                addi t1, t1, -1
                bnez t1, loop
                addi s1, s1, -1
                bnez s1, outer
                halt
        "#;
        let one = run_src(src, CpuConfig::default(), MemConfig::default());
        let mut dual = MemConfig::default();
        dual.ports.count = 2;
        let two = run_src(src, CpuConfig::default(), dual);
        let cause = crate::StallCause::DcachePortConflict;
        assert!(
            one.cpu.cpi_stack.get(cause) > 0,
            "a single port under four loads/iteration must conflict"
        );
        assert!(
            one.cpu.cpi_stack.get(cause) > two.cpu.cpi_stack.get(cause),
            "the second port must absorb conflict slots: {} vs {}",
            one.cpu.cpi_stack.get(cause),
            two.cpu.cpi_stack.get(cause)
        );
    }

    #[test]
    fn max_inst_cap_stops_early() {
        let program = assemble(SUM_LOOP).unwrap();
        let core = Core::new(
            CpuConfig::default(),
            MemSystem::new(MemConfig::default()),
            Emulator::new(program),
        );
        let result = core.run(Some(100));
        assert!(result.committed >= 100);
        assert!(result.committed < 200);
    }
}

/// Property tests pitting the event-driven scheduler against the
/// per-cycle broadcast oracle ([`Core::issue_broadcast`] and
/// [`Core::gate_load`]): on random programs, across window sizes and
/// every disambiguation policy, the two paths must produce identical
/// per-cycle issue and commit sequences — not just the same end state.
#[cfg(test)]
mod oracle_props {
    use super::*;
    use cpe_isa::asm::assemble;
    use cpe_isa::Emulator;
    use cpe_mem::MemConfig;
    use proptest::prelude::*;

    /// Operand pool for generated programs. `t0` holds the data-buffer
    /// base and `s1` the loop counter, so neither appears here.
    const POOL: [&str; 12] = [
        "t1", "t2", "t3", "t4", "t5", "t6", "a0", "a1", "a2", "a3", "a4", "a5",
    ];

    /// One generated instruction, rendered to assembler text later.
    #[derive(Debug, Clone)]
    pub(super) enum GenInst {
        /// Register-register ALU op.
        Rrr(&'static str, u8, u8, u8),
        /// Register-immediate ALU op.
        Rri(&'static str, u8, u8, i64),
        /// Load of the given mnemonic at `offset(t0)`.
        Load(&'static str, u8, u64),
        /// Store of the given mnemonic at `offset(t0)`.
        Store(&'static str, u8, u64),
    }

    fn render(inst: &GenInst, src: &mut String) {
        use std::fmt::Write;
        match *inst {
            GenInst::Rrr(op, rd, rs1, rs2) => writeln!(
                src,
                "    {op} {}, {}, {}",
                POOL[rd as usize], POOL[rs1 as usize], POOL[rs2 as usize]
            ),
            GenInst::Rri(op, rd, rs1, imm) => {
                writeln!(
                    src,
                    "    {op} {}, {}, {imm}",
                    POOL[rd as usize], POOL[rs1 as usize]
                )
            }
            GenInst::Load(op, rd, offset) => {
                writeln!(src, "    {op} {}, {offset}(t0)", POOL[rd as usize])
            }
            GenInst::Store(op, rs, offset) => {
                writeln!(src, "    {op} {}, {offset}(t0)", POOL[rs as usize])
            }
        }
        .expect("writing to a String cannot fail");
    }

    /// A random instruction: ALU traffic for dependency chains, a rare
    /// long-latency divide to stretch the event queue, and loads/stores
    /// of every width packed into 64 bytes so partial overlaps (the
    /// store-index chunk walk) are common.
    pub(super) fn arb_inst() -> impl Strategy<Value = GenInst> {
        let reg = 0u8..POOL.len() as u8;
        prop_oneof![
            3 => (
                prop::sample::select(vec!["add", "sub", "and", "or", "xor", "mul"]),
                reg.clone(), reg.clone(), reg.clone()
            ).prop_map(|(op, rd, rs1, rs2)| GenInst::Rrr(op, rd, rs1, rs2)),
            2 => (reg.clone(), reg.clone(), -64i64..64)
                .prop_map(|(rd, rs1, imm)| GenInst::Rri("addi", rd, rs1, imm)),
            1 => (reg.clone(), reg.clone(), reg.clone())
                .prop_map(|(rd, rs1, rs2)| GenInst::Rrr("div", rd, rs1, rs2)),
            2 => (
                prop::sample::select(vec![("ld", 8u64), ("lw", 4), ("lh", 2), ("lb", 1)]),
                reg.clone(), prop::sample::select(vec![0u64, 1, 2, 3, 4, 5, 6, 7])
            ).prop_map(|((op, size), rd, slot)| GenInst::Load(op, rd, slot * size)),
            2 => (
                prop::sample::select(vec![("sd", 8u64), ("sw", 4), ("sh", 2), ("sb", 1)]),
                reg, prop::sample::select(vec![0u64, 1, 2, 3, 4, 5, 6, 7])
            ).prop_map(|((op, size), rs, slot)| GenInst::Store(op, rs, slot * size)),
        ]
    }

    /// Wrap a generated body in a self-contained program: seed the pool,
    /// then run the body three times around a backward branch (redirects
    /// and re-dispatch exercise candidate-set teardown across the loop).
    pub(super) fn program_text(seeds: &[i64], body: &[GenInst]) -> String {
        use std::fmt::Write;
        let mut src = String::from(".data\nbuf: .space 256\n.text\nmain:\n    la t0, buf\n");
        for (slot, &seed) in seeds.iter().enumerate() {
            writeln!(src, "    li {}, {seed}", POOL[slot]).expect("infallible");
        }
        src.push_str("    li s1, 3\nouter:\n");
        for inst in body {
            render(inst, &mut src);
        }
        src.push_str("    addi s1, s1, -1\n    bnez s1, outer\n    halt\n");
        src
    }

    /// Everything the two paths must agree on. The CPI stack rides
    /// along: the oracle path never cycle-skips while the event path
    /// does, so stack equality proves the bulk-record attribution is
    /// exactly what per-cycle stepping would have produced.
    #[derive(Debug, PartialEq, Eq)]
    pub(super) struct RunLog {
        issues: Vec<(Cycle, u64)>,
        commits: Vec<(Cycle, u64)>,
        cycles: u64,
        committed: u64,
        order_stalls: u64,
        forwards: u64,
        cpi: crate::cpi::CpiStack,
    }

    fn run_mode(src: &str, window: usize, policy: Disambiguation, oracle: bool) -> RunLog {
        let program = assemble(src).expect("generated programs assemble");
        run_stream(Emulator::new(program), window, policy, oracle)
    }

    /// Run any committed-path stream through a fresh core and log what
    /// the equivalence suites compare ([`run_mode`] for source text; the
    /// replay properties feed recorded traces through here directly).
    pub(super) fn run_stream<B: crate::ExecBackend>(
        trace: B,
        window: usize,
        policy: Disambiguation,
        oracle: bool,
    ) -> RunLog {
        let cpu = CpuConfig {
            rob_entries: window,
            disambiguation: policy,
            ..CpuConfig::default()
        };
        let mut core = Core::new(cpu, MemSystem::new(MemConfig::default()), trace);
        core.oracle = oracle;
        while core.step() {}
        // The conservation invariant, on every generated program.
        assert_eq!(
            core.stats.cpi_stack.total(),
            core.stats.cycles.get() * u64::from(core.config.commit_width),
            "CPI stack must sum to cycles × commit_width"
        );
        assert_eq!(
            core.stats.cpi_stack.get(StallCause::Base),
            core.stats.committed.get(),
            "every committed instruction is one Base slot"
        );
        RunLog {
            issues: core.issue_log,
            commits: core.commit_log,
            cycles: core.stats.cycles.get(),
            committed: core.stats.committed.get(),
            order_stalls: core.stats.lsq_order_stalls.get(),
            forwards: core.stats.lsq_forwards.get(),
            cpi: core.stats.cpi_stack.clone(),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn event_driven_select_matches_the_broadcast_oracle(
            seeds in prop::collection::vec(-1000i64..1000, 12),
            body in prop::collection::vec(arb_inst(), 1..40),
        ) {
            let src = program_text(&seeds, &body);
            for window in [8usize, 32, 128] {
                for policy in [
                    Disambiguation::Conservative,
                    Disambiguation::Perfect,
                    Disambiguation::None,
                ] {
                    let event = run_mode(&src, window, policy, false);
                    let oracle = run_mode(&src, window, policy, true);
                    prop_assert!(
                        !event.issues.is_empty() && !event.commits.is_empty(),
                        "the logs must see traffic for the comparison to mean anything"
                    );
                    prop_assert_eq!(
                        &event, &oracle,
                        "window {} under {:?}", window, policy
                    );
                }
            }
        }
    }
}

/// Property tests pitting the replay backend against direct functional
/// execution: on random programs, for every window size and
/// disambiguation policy, a core fed a [`cpe_isa::replay::RecordedTrace`]
/// must produce the identical per-cycle issue and commit sequences — and
/// the identical CPI stack — as a core driving the emulator live. One
/// recording serves all nine timing configurations, which is exactly the
/// record-once / replay-many contract the sweep relies on.
#[cfg(test)]
mod replay_props {
    use super::oracle_props::{arb_inst, program_text, run_stream};
    use super::*;
    use cpe_isa::asm::assemble;
    use cpe_isa::replay::RecordedTrace;
    use cpe_isa::Emulator;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn replay_matches_direct_execution_per_cycle(
            seeds in prop::collection::vec(-1000i64..1000, 12),
            body in prop::collection::vec(arb_inst(), 1..40),
        ) {
            let src = program_text(&seeds, &body);
            let program = assemble(&src).expect("generated programs assemble");
            // Record once; replay through every timing configuration.
            let recorded = RecordedTrace::record(Emulator::new(program.clone()), None);
            prop_assert!(recorded.complete());
            for window in [8usize, 32, 128] {
                for policy in [
                    Disambiguation::Conservative,
                    Disambiguation::Perfect,
                    Disambiguation::None,
                ] {
                    let direct = run_stream(Emulator::new(program.clone()), window, policy, false);
                    let replay = run_stream(recorded.iter(), window, policy, false);
                    prop_assert_eq!(
                        &direct, &replay,
                        "window {} under {:?}", window, policy
                    );
                }
            }
        }
    }
}
