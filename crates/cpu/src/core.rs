//! The cycle-level out-of-order core.

use std::collections::VecDeque;

use cpe_isa::{DynInst, Mode, Op, OpClass, Reg, INST_BYTES};
use cpe_mem::{Addr, Cycle, LoadOutcome, MemStats, MemSystem, StoreOutcome};
use cpe_trace::{EventKind, TraceHandle};

use crate::bpred::{Btb, DirectionPredictor, Ras};
use crate::config::{CpuConfig, DirPredictorKind, Disambiguation};
use crate::fu::FuPool;
use crate::lsq::{range_covers, ranges_overlap, LoadGate, LsqTracker};
use crate::rob::{EntryState, RobEntry};
use crate::stats::CpuStats;
use crate::watchdog::WatchdogReport;

/// A simulation's outputs: cycle count, instruction count, and the full
/// processor/memory statistics.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Core-side counters.
    pub cpu: CpuStats,
    /// Memory-side counters.
    pub mem: MemStats,
}

impl SimResult {
    /// Committed instructions per cycle — the paper's figure of merit.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Fetched {
    di: DynInst,
    mispredicted: bool,
    available_at: Cycle,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StallReason {
    Redirect,
    ICache,
}

/// The dynamic superscalar timing model.
///
/// Consumes a committed-path [`DynInst`] stream (usually an
/// [`crate::Emulator`], possibly wrapped by the OS-activity injector from
/// `cpe-workloads`) and owns the [`MemSystem`] whose data-cache port
/// behaviour is under study. See the crate docs for an end-to-end example.
#[derive(Debug)]
pub struct Core<I: Iterator<Item = DynInst>> {
    config: CpuConfig,
    mem: MemSystem,
    trace: std::iter::Peekable<I>,
    now: Cycle,
    next_seq: u64,
    rob: VecDeque<RobEntry>,
    fetch_buffer: VecDeque<Fetched>,
    /// Architectural register → sequence number of its latest in-flight
    /// producer.
    map: [Option<u64>; Reg::COUNT],
    predictor: DirectionPredictor,
    btb: Btb,
    ras: Ras,
    fu: FuPool,
    /// Fetch produces nothing before this cycle.
    fetch_resume_at: Cycle,
    stall_reason: StallReason,
    /// Fetch halted until an in-flight mispredicted transfer resolves.
    fetch_blocked_on_branch: bool,
    /// Next wrong-path fetch address and blocks remaining, while blocked
    /// on a misprediction (only with `wrong_path_fetch`).
    wrong_path: Option<(u64, u32)>,
    /// A serialising instruction (syscall/eret) is in flight.
    serialize: bool,
    /// Load/store-queue occupancy: claimed at dispatch, released at
    /// commit, sampled into `stats.lsq_occupancy` each cycle.
    lsq: LsqTracker,
    stats: CpuStats,
    last_mode: Mode,
    /// Deadlock detector: cycles since the last commit or dispatch.
    stuck_cycles: u64,
    /// Observability: pipeline-stage events flow through here. Detached
    /// (a no-op) unless [`Core::set_trace`] attaches a ring.
    tracer: TraceHandle,
}

impl<I: Iterator<Item = DynInst>> Core<I> {
    /// Build a core over a memory system and an instruction stream.
    ///
    /// # Panics
    ///
    /// Panics when `config` fails [`CpuConfig::validate`].
    pub fn new(config: CpuConfig, mem: MemSystem, trace: I) -> Core<I> {
        config.validate();
        let lsq = LsqTracker::new(config.load_queue, config.store_queue);
        Core {
            predictor: DirectionPredictor::new(config.predictor),
            btb: Btb::new(config.btb_entries),
            ras: Ras::new(config.ras_entries),
            fu: FuPool::new(config.fu),
            stats: CpuStats::new(
                config.rob_entries,
                config.commit_width as usize,
                lsq.capacity(),
            ),
            lsq,
            config,
            mem,
            trace: trace.peekable(),
            now: 0,
            next_seq: 0,
            rob: VecDeque::new(),
            fetch_buffer: VecDeque::new(),
            map: [None; Reg::COUNT],
            fetch_resume_at: 0,
            stall_reason: StallReason::Redirect,
            fetch_blocked_on_branch: false,
            wrong_path: None,
            serialize: false,
            last_mode: Mode::User,
            stuck_cycles: 0,
            tracer: TraceHandle::off(),
        }
    }

    /// Attach a trace handle. The core emits fetch/issue/commit and
    /// watchdog events through it, and a clone is forwarded to the
    /// memory system for the port-attribution events. With the `trace`
    /// feature off (or a detached handle) every emission is a no-op.
    pub fn set_trace(&mut self, handle: TraceHandle) {
        self.mem.set_trace(handle.clone());
        self.tracer = handle;
    }

    /// Run until the stream is drained and the machine quiesces, or until
    /// `max_insts` instructions have committed.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline makes no progress for
    /// [`CpuConfig::watchdog_cycles`] cycles (which would indicate a
    /// modelling bug, not a program property). [`Core::try_run`] returns
    /// the watchdog report as an error instead.
    pub fn run(self, max_insts: Option<u64>) -> SimResult {
        self.run_warmed(0, max_insts)
    }

    /// Like [`Core::run`], but the livelock watchdog aborts the run with
    /// a diagnostic [`WatchdogReport`] instead of panicking.
    pub fn try_run(self, max_insts: Option<u64>) -> Result<SimResult, Box<WatchdogReport>> {
        self.try_run_warmed(0, max_insts)
    }

    /// Like [`Core::run`], but zero every statistic once `warmup_insts`
    /// instructions have committed — caches, predictors and TLBs stay
    /// warm, so the reported window measures steady-state behaviour.
    /// `max_insts` (when given) bounds the *measured* instructions.
    ///
    /// # Panics
    ///
    /// Panics if the watchdog fires; see [`Core::try_run_warmed`].
    pub fn run_warmed(self, warmup_insts: u64, max_insts: Option<u64>) -> SimResult {
        match self.try_run_warmed(warmup_insts, max_insts) {
            Ok(result) => result,
            Err(report) => panic!("{report}"),
        }
    }

    /// The non-panicking form of [`Core::run_warmed`]: a watchdog abort
    /// surfaces as an `Err` carrying the machine-state snapshot.
    pub fn try_run_warmed(
        mut self,
        warmup_insts: u64,
        max_insts: Option<u64>,
    ) -> Result<SimResult, Box<WatchdogReport>> {
        let limit = max_insts.unwrap_or(u64::MAX);
        let mut warming = warmup_insts > 0;
        while self.try_step()? {
            if warming && self.stats.committed.get() >= warmup_insts {
                warming = false;
                self.stats = CpuStats::new(
                    self.config.rob_entries,
                    self.config.commit_width as usize,
                    self.lsq.capacity(),
                );
                self.mem.reset_stats();
            }
            if !warming && self.stats.committed.get() >= limit {
                break;
            }
        }
        Ok(SimResult {
            cycles: self.stats.cycles.get(),
            committed: self.stats.committed.get(),
            cpu: self.stats,
            mem: self.mem.stats().clone(),
        })
    }

    /// `true` when nothing remains anywhere in the machine.
    fn finished(&mut self) -> bool {
        self.trace.peek().is_none()
            && self.fetch_buffer.is_empty()
            && self.rob.is_empty()
            && self.mem.is_quiesced()
    }

    /// Simulate one cycle. Returns `false` once the machine has finished.
    ///
    /// # Panics
    ///
    /// Panics when the livelock watchdog fires; [`Core::try_step`] is the
    /// non-panicking form.
    pub fn step(&mut self) -> bool {
        match self.try_step() {
            Ok(more) => more,
            Err(report) => panic!("{report}"),
        }
    }

    /// Simulate one cycle. `Ok(false)` once the machine has finished;
    /// `Err` with a diagnostic snapshot when no instruction has committed
    /// for [`CpuConfig::watchdog_cycles`] consecutive cycles (0 disables
    /// the watchdog).
    pub fn try_step(&mut self) -> Result<bool, Box<WatchdogReport>> {
        if self.finished() {
            return Ok(false);
        }
        let now = self.now;
        self.mem.begin_cycle(now);
        self.fu.begin_cycle(now);

        let committed_before = self.stats.committed.get();
        self.commit(now);
        self.issue(now);
        self.dispatch(now);
        self.fetch(now);
        self.mem.end_cycle(now);

        // Bookkeeping.
        self.stats.cycles.inc();
        self.stats.rob_occupancy.record(self.rob.len() as u64);
        self.stats.lsq_occupancy.record(self.lsq.total() as u64);
        let mode = self
            .rob
            .front()
            .map(|e| e.di.mode)
            .or_else(|| self.fetch_buffer.front().map(|f| f.di.mode))
            .unwrap_or(self.last_mode);
        self.last_mode = mode;
        match mode {
            Mode::User => self.stats.user_cycles.inc(),
            Mode::Kernel => self.stats.kernel_cycles.inc(),
        }

        if self.stats.committed.get() == committed_before {
            self.stuck_cycles += 1;
            self.stats.max_commit_gap.record_max(self.stuck_cycles);
            let limit = self.config.watchdog_cycles;
            if limit > 0 && self.stuck_cycles >= limit {
                return Err(Box::new(self.watchdog_report(now, limit)));
            }
        } else {
            self.stuck_cycles = 0;
        }
        self.now += 1;
        Ok(true)
    }

    /// Snapshot everything the stalled machine could be waiting on.
    fn watchdog_report(&mut self, now: Cycle, limit: u64) -> WatchdogReport {
        self.tracer.emit(
            now,
            EventKind::WatchdogSnapshot,
            self.rob.front().map_or(0, |head| head.di.pc),
            self.rob.len() as u32,
        );
        WatchdogReport {
            cycle: now,
            committed: self.stats.committed.get(),
            limit,
            rob_len: self.rob.len(),
            rob_head: self.rob.front().map(|head| {
                (
                    head.di.pc,
                    head.di.inst.op.to_string(),
                    format!("{:?}", head.state),
                )
            }),
            fetch_buffer_len: self.fetch_buffer.len(),
            fetch_pc: self
                .fetch_buffer
                .front()
                .map(|fetched| fetched.di.pc)
                .or_else(|| self.trace.peek().map(|di| di.pc)),
            loads_in_flight: self.lsq.loads(),
            stores_in_flight: self.lsq.stores(),
            serialize: self.serialize,
            fetch_blocked_on_branch: self.fetch_blocked_on_branch,
            mem: self.mem.diagnostics(),
        }
    }

    // --- dependency plumbing -------------------------------------------------

    /// Is the producer with sequence number `seq` ready at `now`?
    fn seq_ready(rob: &VecDeque<RobEntry>, seq: u64, now: Cycle) -> bool {
        let front = match rob.front() {
            Some(front) => front.seq,
            None => return true,
        };
        if seq < front {
            return true; // retired
        }
        rob[(seq - front) as usize].done(now)
    }

    fn dep_ready(rob: &VecDeque<RobEntry>, dep: Option<u64>, now: Cycle) -> bool {
        dep.is_none_or(|seq| Self::seq_ready(rob, seq, now))
    }

    /// May the load at ROB index `load_idx` leave for the cache?
    fn gate_load(
        rob: &VecDeque<RobEntry>,
        load_idx: usize,
        now: Cycle,
        policy: Disambiguation,
    ) -> LoadGate {
        let load_range = rob[load_idx].mem_range().expect("loads have addresses");
        // Under conservative ordering, any older store with an unresolved
        // address blocks the load outright.
        if policy == Disambiguation::Conservative {
            for entry in rob.iter().take(load_idx) {
                if entry.is_store() && entry.addr_known_at.is_none_or(|t| t > now) {
                    return LoadGate::Wait;
                }
            }
        }
        // Youngest older store that overlaps decides forwarding.
        for j in (0..load_idx).rev() {
            let store = &rob[j];
            if !store.is_store() {
                continue;
            }
            let store_range = store.mem_range().expect("stores have addresses");
            if !ranges_overlap(store_range, load_range) {
                continue;
            }
            if policy == Disambiguation::Perfect && store.addr_known_at.is_none_or(|t| t > now) {
                return LoadGate::Wait;
            }
            if range_covers(store_range, load_range) && Self::dep_ready(rob, store.data_seq, now) {
                return LoadGate::Forward;
            }
            return LoadGate::Wait;
        }
        LoadGate::Go
    }

    // --- pipeline stages ---------------------------------------------------------

    fn commit(&mut self, now: Cycle) {
        let mut committed = 0u64;
        while committed < u64::from(self.config.commit_width) {
            let Some(head) = self.rob.front() else { break };
            if !head.done(now) {
                break;
            }
            if head.is_store() {
                let addr = Addr::new(head.di.mem_addr.expect("stores have addresses"));
                let bytes = head.di.mem_bytes();
                if self.mem.commit_store(now, addr, bytes) == StoreOutcome::Rejected {
                    self.stats.commit_store_stall_cycles.inc();
                    break;
                }
            }
            let entry = self.rob.pop_front().expect("checked above");
            let op = entry.di.inst.op;
            self.tracer.emit(now, EventKind::Commit, entry.di.pc, 0);
            if op.is_load() {
                self.lsq.retire_load();
                self.stats.loads.inc();
            }
            if op.is_store() {
                self.lsq.retire_store();
                self.stats.stores.inc();
            }
            if matches!(op, Op::Syscall | Op::Eret) {
                self.serialize = false;
            }
            self.stats.committed.inc();
            match entry.di.mode {
                Mode::User => self.stats.committed_user.inc(),
                Mode::Kernel => self.stats.committed_kernel.inc(),
            }
            committed += 1;
        }
        self.stats.commits_per_cycle.record(committed);
    }

    fn issue(&mut self, now: Cycle) {
        let mut issued = 0u32;
        for i in 0..self.rob.len() {
            if issued >= self.config.issue_width {
                break;
            }
            if self.rob[i].state != EntryState::Waiting {
                continue;
            }
            let op = self.rob[i].di.inst.op;
            match op.class() {
                OpClass::Load => {
                    if !Self::dep_ready(&self.rob, self.rob[i].addr_seq, now) {
                        continue;
                    }
                    // Address generation needs an AGU whichever path the
                    // data takes.
                    if !self.fu.can_start(OpClass::Load, now) {
                        continue;
                    }
                    match Self::gate_load(&self.rob, i, now, self.config.disambiguation) {
                        LoadGate::Wait => {
                            self.stats.lsq_order_stalls.inc();
                            continue;
                        }
                        LoadGate::Forward => {
                            self.fu
                                .try_start(OpClass::Load, now)
                                .expect("can_start checked");
                            let entry = &mut self.rob[i];
                            entry.state = EntryState::Issued;
                            entry.ready_at = now + self.config.lsq_forward_latency;
                            self.stats.lsq_forwards.inc();
                            self.tracer
                                .emit(now, EventKind::Issue, self.rob[i].di.pc, 0);
                            issued += 1;
                        }
                        LoadGate::Go => {
                            let addr = Addr::new(self.rob[i].di.mem_addr.expect("load address"));
                            let bytes = self.rob[i].di.mem_bytes();
                            match self.mem.try_load(now, addr, bytes) {
                                LoadOutcome::Ready { at, .. } => {
                                    self.fu
                                        .try_start(OpClass::Load, now)
                                        .expect("can_start checked");
                                    let entry = &mut self.rob[i];
                                    entry.state = EntryState::Issued;
                                    entry.ready_at = at;
                                    self.tracer
                                        .emit(now, EventKind::Issue, self.rob[i].di.pc, 0);
                                    issued += 1;
                                }
                                LoadOutcome::NoPort
                                | LoadOutcome::MshrFull
                                | LoadOutcome::Conflict => continue,
                            }
                        }
                    }
                }
                OpClass::Store => {
                    let addr_ok = Self::dep_ready(&self.rob, self.rob[i].addr_seq, now);
                    if addr_ok && self.rob[i].addr_known_at.is_none() {
                        // Address generation fires as soon as the base
                        // register is ready, independent of the data.
                        self.rob[i].addr_known_at = Some(now);
                    }
                    if !addr_ok || !Self::dep_ready(&self.rob, self.rob[i].data_seq, now) {
                        continue;
                    }
                    if let Some(done_at) = self.fu.try_start(OpClass::Store, now) {
                        let entry = &mut self.rob[i];
                        entry.state = EntryState::Issued;
                        entry.ready_at = done_at;
                        self.tracer
                            .emit(now, EventKind::Issue, self.rob[i].di.pc, 0);
                        issued += 1;
                    }
                }
                _ => {
                    let deps = self.rob[i].src_seqs;
                    if !deps.iter().all(|&dep| Self::dep_ready(&self.rob, dep, now)) {
                        continue;
                    }
                    if let Some(done_at) = self.fu.try_start(op.class(), now) {
                        let mispredicted = self.rob[i].mispredicted;
                        let entry = &mut self.rob[i];
                        entry.state = EntryState::Issued;
                        entry.ready_at = done_at;
                        self.tracer
                            .emit(now, EventKind::Issue, self.rob[i].di.pc, 0);
                        issued += 1;
                        if mispredicted {
                            // The redirect leaves when the branch resolves.
                            self.fetch_resume_at = self
                                .fetch_resume_at
                                .max(done_at + self.config.mispredict_penalty);
                            self.stall_reason = StallReason::Redirect;
                            self.fetch_blocked_on_branch = false;
                            self.wrong_path = None;
                        }
                    }
                }
            }
        }
    }

    fn dispatch(&mut self, now: Cycle) {
        let mut dispatched = 0u32;
        while dispatched < self.config.dispatch_width {
            if self.serialize {
                break;
            }
            let Some(front) = self.fetch_buffer.front() else {
                break;
            };
            if front.available_at > now {
                break;
            }
            let op = front.di.inst.op;
            let serializing = matches!(op, Op::Syscall | Op::Eret);
            if serializing && !self.rob.is_empty() {
                break;
            }
            if self.rob.len() >= self.config.rob_entries {
                self.stats.dispatch_rob_full.inc();
                break;
            }
            if op.is_load() && !self.lsq.can_accept_load() {
                self.stats.dispatch_lsq_full.inc();
                break;
            }
            if op.is_store() && !self.lsq.can_accept_store() {
                self.stats.dispatch_lsq_full.inc();
                break;
            }

            let fetched = self.fetch_buffer.pop_front().expect("checked above");
            let seq = self.next_seq;
            self.next_seq += 1;
            let mut entry = RobEntry::new(seq, fetched.di);
            entry.mispredicted = fetched.mispredicted;

            // Rename.
            let inst = fetched.di.inst;
            match op.class() {
                OpClass::Load => {
                    entry.addr_seq = self.producer(inst.rs1);
                }
                OpClass::Store => {
                    entry.addr_seq = self.producer(inst.rs1);
                    entry.data_seq = self.producer(inst.rs2);
                }
                _ => {
                    for (slot, reg) in inst.sources().enumerate().take(2) {
                        entry.src_seqs[slot] = self.producer(reg);
                    }
                }
            }
            if let Some(dest) = inst.dest() {
                self.map[dest.index()] = Some(seq);
            }
            if op.is_load() {
                self.lsq.add_load();
            }
            if op.is_store() {
                self.lsq.add_store();
            }
            if serializing {
                self.serialize = true;
            }
            self.rob.push_back(entry);
            dispatched += 1;
            self.stuck_cycles = 0;
        }
    }

    fn producer(&self, reg: Reg) -> Option<u64> {
        if reg.is_zero() {
            return None;
        }
        self.map[reg.index()]
    }

    fn fetch(&mut self, now: Cycle) {
        if self.trace.peek().is_none() {
            return;
        }
        if self.fetch_blocked_on_branch {
            // The real frontend does not idle on a misprediction: it runs
            // down the wrong path until the redirect, dragging wrong-path
            // blocks through the instruction cache.
            if let Some((pc, blocks_left)) = self.wrong_path.take() {
                let block = pc & !(self.config.fetch_bytes - 1);
                let _ = self.mem.fetch(now, Addr::new(block));
                self.stats.wrong_path_blocks.inc();
                if blocks_left > 1 {
                    self.wrong_path = Some((block + self.config.fetch_bytes, blocks_left - 1));
                }
            }
            return;
        }
        if now < self.fetch_resume_at {
            match self.stall_reason {
                StallReason::Redirect => self.stats.fetch_redirect_stall_cycles.inc(),
                StallReason::ICache => self.stats.fetch_icache_stall_cycles.inc(),
            }
            return;
        }
        let capacity = 2 * self.config.fetch_width as usize;
        if self.fetch_buffer.len() >= capacity {
            return;
        }

        // One instruction block per cycle through the instruction cache.
        let block_mask = !(self.config.fetch_bytes - 1);
        let first_pc = self.trace.peek().expect("checked above").pc;
        let block = first_pc & block_mask;
        let outcome = self.mem.fetch(now, Addr::new(block));
        if outcome.ready_at > now {
            self.fetch_resume_at = outcome.ready_at;
            self.stall_reason = StallReason::ICache;
            self.stats.fetch_icache_stall_cycles.inc();
            return;
        }

        let mut fetched = 0;
        while fetched < self.config.fetch_width && self.fetch_buffer.len() < capacity {
            let Some(peek) = self.trace.peek() else { break };
            if peek.pc & block_mask != block {
                break; // the next block waits for the next cycle
            }
            let di = self.trace.next().expect("peeked above");
            self.tracer.emit(now, EventKind::Fetch, di.pc, 0);
            fetched += 1;
            let misprediction = self.predict(now, &di);
            let mispredicted = misprediction.is_some();
            let stop = mispredicted
                || di.diverted()
                || matches!(di.inst.op, Op::Syscall | Op::Eret | Op::Halt);
            self.fetch_buffer.push_back(Fetched {
                di,
                mispredicted,
                available_at: now + 1,
            });
            if let Some(wrong_start) = misprediction {
                self.fetch_blocked_on_branch = true;
                if self.config.wrong_path_fetch {
                    // Run ahead a bounded number of blocks, as a real
                    // fetch queue would.
                    self.wrong_path = wrong_start.map(|pc| (pc, 8));
                }
            }
            if stop {
                break;
            }
        }
    }

    /// Consult and train the predictors for a fetched instruction.
    ///
    /// Returns `None` for a correct prediction, and
    /// `Some(wrong_path_start)` for a misprediction that blocks fetch
    /// until resolve — where `wrong_path_start` is the address the
    /// frontend *would* have fetched next (`None` when unknowable, e.g.
    /// an indirect jump with no prediction at all).
    fn predict(&mut self, now: Cycle, di: &DynInst) -> Option<Option<u64>> {
        let pc = di.pc;
        match di.inst.op.class() {
            OpClass::Branch => {
                self.stats.branches.inc();
                let predicted = match self.predictor.kind() {
                    DirPredictorKind::Btfn => DirectionPredictor::predict_btfn(di.inst.imm),
                    _ => self.predictor.predict(pc),
                };
                self.predictor.update(pc, di.taken);
                if predicted != di.taken {
                    self.stats.mispredicts.inc();
                    // Predicted taken → the frontend ran to the branch
                    // target; predicted not-taken → it fell through.
                    let wrong = if predicted {
                        pc.wrapping_add(di.inst.imm as u64)
                    } else {
                        pc + INST_BYTES
                    };
                    return Some(Some(wrong));
                }
                if di.taken {
                    if self.btb.lookup(pc) != Some(di.next_pc) {
                        self.stats.misfetches.inc();
                        self.fetch_resume_at = now + 1 + self.config.misfetch_penalty;
                        self.stall_reason = StallReason::Redirect;
                    }
                    self.btb.update(pc, di.next_pc);
                }
                None
            }
            OpClass::Jump => match di.inst.op {
                Op::Jal => {
                    if di.inst.rd == Reg::RA {
                        self.ras.push(pc + INST_BYTES);
                    }
                    if self.btb.lookup(pc) != Some(di.next_pc) {
                        self.stats.misfetches.inc();
                        self.fetch_resume_at = now + 1 + self.config.misfetch_penalty;
                        self.stall_reason = StallReason::Redirect;
                        self.btb.update(pc, di.next_pc);
                    }
                    None
                }
                _ => {
                    // jalr: returns predict through the RAS, other
                    // indirections through the BTB.
                    let is_return = di.inst.rd.is_zero() && di.inst.rs1 == Reg::RA;
                    let predicted = if is_return {
                        self.ras.pop()
                    } else {
                        self.btb.lookup(pc)
                    };
                    if di.inst.rd == Reg::RA {
                        self.ras.push(pc + INST_BYTES);
                    }
                    if predicted == Some(di.next_pc) {
                        None
                    } else {
                        self.stats.indirect_mispredicts.inc();
                        self.btb.update(pc, di.next_pc);
                        // The frontend ran down the *predicted* indirect
                        // target, when it had one.
                        Some(predicted)
                    }
                }
            },
            OpClass::System if matches!(di.inst.op, Op::Syscall | Op::Eret) => {
                // Pipeline drain + vectoring latency.
                self.fetch_resume_at = now + 1 + self.config.trap_penalty;
                self.stall_reason = StallReason::Redirect;
                None
            }
            _ => None,
        }
    }

    /// The memory system (for inspection mid-run in tests).
    pub fn mem(&self) -> &MemSystem {
        &self.mem
    }

    /// Core statistics so far.
    pub fn stats(&self) -> &CpuStats {
        &self.stats
    }

    /// The configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    // Tests tweak one field of a default config at a time; the
    // struct-update suggestion reads worse there.
    #![allow(clippy::field_reassign_with_default)]

    use super::*;
    use cpe_isa::asm::assemble;
    use cpe_mem::MemConfig;

    use cpe_isa::Emulator;

    fn run_src(src: &str, cpu: CpuConfig, mem: MemConfig) -> SimResult {
        let program = assemble(src).expect("assembles");
        let core = Core::new(cpu, MemSystem::new(mem), Emulator::new(program));
        core.run(None)
    }

    const SUM_LOOP: &str = "main: li a0, 200\n li a1, 0\nloop: add a1, a1, a0\n addi a0, a0, -1\n bnez a0, loop\n halt\n";

    #[test]
    fn commits_every_instruction_exactly_once() {
        let program = assemble(SUM_LOOP).unwrap();
        let expected = Emulator::new(program).count() as u64;
        let result = run_src(SUM_LOOP, CpuConfig::default(), MemConfig::default());
        assert_eq!(result.committed, expected);
        assert!(result.cycles > 0);
    }

    #[test]
    fn watchdog_trips_on_an_impossible_progress_bound() {
        // A 4-cycle no-commit limit is shorter than the cold-start
        // instruction-cache miss, so the very first fetch stall must trip
        // the watchdog and surface a diagnosable report instead of
        // spinning or asserting.
        let mut cpu = CpuConfig::default();
        cpu.watchdog_cycles = 4;
        let program = assemble(SUM_LOOP).expect("assembles");
        let core = Core::new(
            cpu,
            MemSystem::new(MemConfig::default()),
            Emulator::new(program),
        );
        let report = core
            .try_run(None)
            .expect_err("cold-start miss exceeds 4 cycles");
        assert_eq!(report.limit, 4);
        assert_eq!(report.committed, 0);
        let text = report.to_string();
        assert!(text.contains("no progress for 4 cycles"), "{text}");
    }

    #[test]
    fn watchdog_zero_disables_the_limit() {
        let mut cpu = CpuConfig::default();
        cpu.watchdog_cycles = 0;
        let result = run_src(SUM_LOOP, cpu, MemConfig::default());
        assert!(result.committed > 0);
    }

    #[test]
    fn tight_loop_reaches_reasonable_ipc() {
        let result = run_src(SUM_LOOP, CpuConfig::default(), MemConfig::default());
        // The loop carries a serial add chain; anything near 1+ IPC means
        // fetch/branch prediction are not pathological.
        assert!(result.ipc() > 0.8, "ipc = {}", result.ipc());
        assert!(
            result.cpu.mispredict_ratio().percent() < 10.0,
            "loop branch must become predictable: {}",
            result.cpu.mispredict_ratio()
        );
    }

    #[test]
    fn loads_and_stores_flow_through_the_memory_system() {
        let src = r#"
            .data
            buf: .space 4096
            .text
            main:
                la   t0, buf
                li   t1, 64
            fill:
                sd   t1, 0(t0)
                addi t0, t0, 8
                addi t1, t1, -1
                bnez t1, fill
                la   t0, buf
                li   t1, 64
                li   a0, 0
            sum:
                ld   t2, 0(t0)
                add  a0, a0, t2
                addi t0, t0, 8
                addi t1, t1, -1
                bnez t1, sum
                halt
        "#;
        let result = run_src(src, CpuConfig::default(), MemConfig::default());
        assert_eq!(result.cpu.stores.get(), 64);
        assert_eq!(result.cpu.loads.get(), 64);
        assert_eq!(result.mem.stores.get(), 64);
        assert!(result.mem.loads.get() >= 64);
    }

    #[test]
    fn ipc_improves_with_a_second_cache_port() {
        // A cache-resident working set with four independent loads per
        // iteration: the single port is the only bottleneck.
        let src = r#"
            .data
            buf: .space 1024
            .text
            main:
                li   s1, 20           # outer repeats (first pass warms L1)
            outer:
                la   t0, buf
                li   t1, 32           # 32 iterations x 32B = 1KB
            loop:
                ld   a0, 0(t0)
                ld   a1, 8(t0)
                ld   a2, 16(t0)
                ld   a3, 24(t0)
                addi t0, t0, 32
                addi t1, t1, -1
                bnez t1, loop
                addi s1, s1, -1
                bnez s1, outer
                halt
        "#;
        let one = run_src(src, CpuConfig::default(), MemConfig::default());
        let mut dual = MemConfig::default();
        dual.ports.count = 2;
        let two = run_src(src, CpuConfig::default(), dual);
        assert!(
            two.ipc() > one.ipc() * 1.2,
            "dual-ported should clearly win: {} vs {}",
            two.ipc(),
            one.ipc()
        );
    }

    #[test]
    fn store_to_load_forwarding_in_the_lsq() {
        // A store immediately followed by a covering load of the same slot.
        let src = r#"
            .data
            buf: .space 64
            .text
            main:
                la   t0, buf
                li   t1, 100
            loop:
                sd   t1, 0(t0)
                ld   a0, 0(t0)
                addi t1, t1, -1
                bnez t1, loop
                halt
        "#;
        let result = run_src(src, CpuConfig::default(), MemConfig::default());
        // Whether a given iteration forwards depends on whether the store
        // is still in flight when the load issues; a healthy LSQ forwards a
        // substantial fraction.
        assert!(
            result.cpu.lsq_forwards.get() > 20,
            "forwarding should satisfy a sizable share of these loads: {}",
            result.cpu.lsq_forwards.get()
        );
    }

    #[test]
    fn conservative_ordering_stalls_more_than_perfect() {
        // The store's *address* is computed by a multiply, so it resolves
        // late; the loads target a disjoint array. Conservative ordering
        // makes every load wait for the store address; perfect
        // disambiguation (no actual overlap) never waits.
        let src = r#"
            .data
            a: .space 1024
            b: .space 8192
            .text
            main:
                la   s0, a
                la   s1, b
                li   t2, 300
            loop:
                mul  t3, t2, t2
                andi t3, t3, 1016     # 8-byte-aligned offset within a
                add  t3, t3, s0
                sd   t2, 0(t3)        # store address known late
                ld   a0, 0(s1)
                ld   a1, 8(s1)
                addi s1, s1, 16
                addi t2, t2, -1
                bnez t2, loop
                halt
        "#;
        let mut cons_cfg = CpuConfig::default();
        cons_cfg.disambiguation = Disambiguation::Conservative;
        let conservative = run_src(src, cons_cfg, MemConfig::default());
        let mut cfg = CpuConfig::default();
        cfg.disambiguation = Disambiguation::Perfect;
        let perfect = run_src(src, cfg, MemConfig::default());
        assert_eq!(perfect.cpu.lsq_order_stalls.get(), 0, "arrays never alias");
        assert!(
            conservative.cpu.lsq_order_stalls.get() > 200,
            "every iteration's loads wait on the multiply: {}",
            conservative.cpu.lsq_order_stalls.get()
        );
        assert!(perfect.ipc() > conservative.ipc());
    }

    #[test]
    fn function_calls_exercise_the_ras() {
        let src = r#"
            main:
                li   s0, 50
            loop:
                li   a0, 3
                call work
                addi s0, s0, -1
                bnez s0, loop
                halt
            work:
                add  a0, a0, a0
                ret
        "#;
        let result = run_src(src, CpuConfig::default(), MemConfig::default());
        // After warm-up, returns predict through the RAS; only the first
        // couple of iterations may miss.
        assert!(
            result.cpu.indirect_mispredicts.get() <= 3,
            "RAS should predict returns: {}",
            result.cpu.indirect_mispredicts.get()
        );
    }

    #[test]
    fn syscalls_serialize_but_complete() {
        let src =
            "main: li t0, 10\nloop: li a7, 3\n syscall\n addi t0, t0, -1\n bnez t0, loop\n halt\n";
        let result = run_src(src, CpuConfig::default(), MemConfig::default());
        let baseline = run_src(
            "main: li t0, 10\nloop: li a7, 3\n nop\n addi t0, t0, -1\n bnez t0, loop\n halt\n",
            CpuConfig::default(),
            MemConfig::default(),
        );
        assert!(
            result.cycles > baseline.cycles + 50,
            "{} vs {}",
            result.cycles,
            baseline.cycles
        );
    }

    #[test]
    fn narrow_machine_is_slower() {
        let mut narrow = CpuConfig::default();
        narrow.fetch_width = 1;
        narrow.dispatch_width = 1;
        narrow.issue_width = 1;
        narrow.commit_width = 1;
        let slow = run_src(SUM_LOOP, narrow, MemConfig::default());
        let fast = run_src(SUM_LOOP, CpuConfig::default(), MemConfig::default());
        assert!(
            slow.cycles > fast.cycles,
            "{} vs {}",
            slow.cycles,
            fast.cycles
        );
    }

    #[test]
    fn rob_occupancy_never_exceeds_capacity() {
        let mut cfg = CpuConfig::default();
        cfg.rob_entries = 16;
        let result = run_src(SUM_LOOP, cfg, MemConfig::default());
        assert!(result.cpu.rob_occupancy.max_seen() <= 16);
        assert!(result.cpu.rob_occupancy.overflow() == 0);
    }

    #[test]
    fn lsq_occupancy_never_exceeds_capacity() {
        let src = r#"
            .data
            buf: .space 1024
            .text
            main:
                la   t0, buf
                li   t1, 64
            fill:
                sd   t1, 0(t0)
                ld   t2, 0(t0)
                addi t0, t0, 8
                addi t1, t1, -1
                bnez t1, fill
                halt
        "#;
        let mut cfg = CpuConfig::default();
        cfg.load_queue = 4;
        cfg.store_queue = 4;
        let result = run_src(src, cfg, MemConfig::default());
        assert!(result.cpu.lsq_occupancy.max_seen() <= 8);
        assert_eq!(result.cpu.lsq_occupancy.overflow(), 0);
        assert_eq!(
            result.cpu.lsq_occupancy.total(),
            result.cycles,
            "one occupancy sample per cycle"
        );
        assert!(
            result.cpu.lsq_occupancy.max_seen() > 0,
            "a memory-heavy loop must occupy the LSQ"
        );
    }

    #[test]
    fn commit_width_bounds_per_cycle_commits() {
        let result = run_src(SUM_LOOP, CpuConfig::default(), MemConfig::default());
        assert!(result.cpu.commits_per_cycle.max_seen() <= 4);
        let total: u64 = result
            .cpu
            .commits_per_cycle
            .iter()
            .map(|(value, count)| value as u64 * count)
            .sum();
        assert_eq!(total, result.committed);
    }

    #[test]
    fn btfn_predictor_wins_on_backward_loops_only() {
        // SUM_LOOP's only branch is backward-taken: BTFN predicts it
        // perfectly except the final fall-through.
        let mut cfg = CpuConfig::default();
        cfg.predictor = DirPredictorKind::Btfn;
        let result = run_src(SUM_LOOP, cfg, MemConfig::default());
        assert_eq!(result.cpu.mispredicts.get(), 1, "only the loop exit");
    }

    #[test]
    fn local_predictor_runs_end_to_end() {
        let mut cfg = CpuConfig::default();
        cfg.predictor = DirPredictorKind::Local {
            history_entries: 256,
            history_bits: 6,
        };
        let result = run_src(SUM_LOOP, cfg, MemConfig::default());
        assert!(result.cpu.mispredict_ratio().percent() < 10.0);
    }

    #[test]
    fn misfetches_happen_once_per_cold_taken_target() {
        // A chain of calls to distinct targets: each first-taken transfer
        // misses the BTB once, then hits.
        let src = r#"
            main:
                li   s0, 20
            loop:
                call fn_a
                call fn_b
                addi s0, s0, -1
                bnez s0, loop
                halt
            fn_a: ret
            fn_b: ret
        "#;
        let result = run_src(src, CpuConfig::default(), MemConfig::default());
        // jal targets and the loop backedge warm up quickly; the
        // misfetch count stays far below the transfer count.
        assert!(
            result.cpu.misfetches.get() <= 8,
            "misfetches: {}",
            result.cpu.misfetches.get()
        );
    }

    #[test]
    fn serialization_drains_the_window_before_traps() {
        // A syscall must not dispatch alongside older instructions.
        let src = "main: li a7, 3
 li t0, 5
 li t1, 6
 syscall
 add t2, t0, t1
 halt
";
        let result = run_src(src, CpuConfig::default(), MemConfig::default());
        assert_eq!(result.committed, 6);
        // The trap penalty plus drain makes this far slower than 6/4 cycles.
        assert!(result.cycles > 10, "{}", result.cycles);
    }

    #[test]
    fn zero_latency_forwarding_does_not_exist() {
        // A chain of dependent adds commits at most one per cycle after
        // warmup: cycles >= chain length.
        let src = "main: li a0, 1
 add a0, a0, a0
 add a0, a0, a0
 add a0, a0, a0
 add a0, a0, a0
 add a0, a0, a0
 add a0, a0, a0
 halt
";
        let result = run_src(src, CpuConfig::default(), MemConfig::default());
        assert!(
            result.cycles >= 6,
            "dependent chain must serialise: {}",
            result.cycles
        );
    }

    #[test]
    fn wrong_path_fetch_pollutes_the_icache() {
        // A data-dependent unpredictable branch selecting between two far
        // code paths: wrong-path fetch drags the untaken side through the
        // i-cache.
        let src = r#"
            .data
            keys: .space 8192
            .text
            main:
                # pseudo-random keys
                la   t0, keys
                li   t1, 1024
                li   t2, 998877
            gen:
                slli t3, t2, 13
                xor  t2, t2, t3
                srli t3, t2, 7
                xor  t2, t2, t3
                slli t3, t2, 17
                xor  t2, t2, t3
                sd   t2, 0(t0)
                addi t0, t0, 8
                addi t1, t1, -1
                bnez t1, gen
                la   t0, keys
                li   t1, 1024
                li   a0, 0
            loop:
                ld   t2, 0(t0)
                andi t2, t2, 1
                bnez t2, odd
                addi a0, a0, 1
                j    next
            odd:
                addi a0, a0, 3
            next:
                addi t0, t0, 8
                addi t1, t1, -1
                bnez t1, loop
                halt
        "#;
        let without = run_src(src, CpuConfig::default(), MemConfig::default());
        let mut cfg = CpuConfig::default();
        cfg.wrong_path_fetch = true;
        let with = run_src(src, cfg, MemConfig::default());
        assert_eq!(without.cpu.wrong_path_blocks.get(), 0);
        assert!(
            with.cpu.wrong_path_blocks.get() > 100,
            "unpredictable branches must trigger wrong-path runs: {}",
            with.cpu.wrong_path_blocks.get()
        );
        // Same architectural work either way.
        assert_eq!(with.committed, without.committed);
        // Wrong-path fetch adds i-cache traffic (fetches counter includes
        // the wrong-path blocks).
        assert!(with.mem.fetches.get() > without.mem.fetches.get());
    }

    #[test]
    fn wrong_path_fetch_off_by_default_and_deterministic() {
        let mut cfg = CpuConfig::default();
        cfg.wrong_path_fetch = true;
        let a = run_src(SUM_LOOP, cfg, MemConfig::default());
        let b = run_src(SUM_LOOP, cfg, MemConfig::default());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.cpu.wrong_path_blocks.get(), b.cpu.wrong_path_blocks.get());
    }

    #[test]
    fn determinism_end_to_end() {
        let a = run_src(SUM_LOOP, CpuConfig::default(), MemConfig::default());
        let b = run_src(SUM_LOOP, CpuConfig::default(), MemConfig::default());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.mem.loads.get(), b.mem.loads.get());
    }

    #[test]
    fn max_inst_cap_stops_early() {
        let program = assemble(SUM_LOOP).unwrap();
        let core = Core::new(
            CpuConfig::default(),
            MemSystem::new(MemConfig::default()),
            Emulator::new(program),
        );
        let result = core.run(Some(100));
        assert!(result.committed >= 100);
        assert!(result.committed < 200);
    }
}
