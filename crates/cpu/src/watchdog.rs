//! Livelock/deadlock watchdog report.
//!
//! The timing core promises forward progress: on a healthy machine the
//! gap between commits is bounded by a few DRAM round-trips. When no
//! instruction commits for [`crate::CpuConfig::watchdog_cycles`]
//! consecutive cycles, the run loop aborts and hands back this snapshot
//! of everything the machine could have been waiting on, so a modelling
//! deadlock (or a pathological configuration) is diagnosable from the
//! report alone instead of from a spinning process.

use std::fmt;

use cpe_mem::MemDiagnostics;

/// What the machine looked like when the watchdog fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogReport {
    /// Cycle at which the watchdog gave up.
    pub cycle: u64,
    /// Instructions committed before progress stopped.
    pub committed: u64,
    /// The configured no-commit limit that was exceeded.
    pub limit: u64,
    /// ROB occupancy at abort.
    pub rob_len: usize,
    /// The stalled ROB head: `(pc, op, state)` — the instruction the
    /// whole machine is waiting on — or `None` if the ROB was empty.
    pub rob_head: Option<(u64, String, String)>,
    /// Fetched-but-undispatched instructions.
    pub fetch_buffer_len: usize,
    /// The next program counter fetch would pursue, if known.
    pub fetch_pc: Option<u64>,
    /// Loads issued to the memory system and not yet committed.
    pub loads_in_flight: usize,
    /// Stores dispatched and not yet committed.
    pub stores_in_flight: usize,
    /// A serialising instruction (syscall/eret) was in flight.
    pub serialize: bool,
    /// Fetch was halted waiting for a mispredicted transfer to resolve.
    pub fetch_blocked_on_branch: bool,
    /// Occupancy of the memory hierarchy's transient structures.
    pub mem: MemDiagnostics,
}

impl fmt::Display for WatchdogReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pipeline made no progress for {} cycles (cycle {}, {} committed): ",
            self.limit, self.cycle, self.committed
        )?;
        match &self.rob_head {
            Some((pc, op, state)) => write!(
                f,
                "ROB head {op} @ {pc:#x} [{state}], {} entries",
                self.rob_len
            )?,
            None => write!(f, "ROB empty")?,
        }
        write!(
            f,
            "; fetch_buffer={} fetch_pc={} loads={} stores={} serialize={} \
             blocked_on_branch={}; mem: store_buffer={} outstanding_misses={} quiesced={}",
            self.fetch_buffer_len,
            self.fetch_pc
                .map_or_else(|| "-".to_string(), |pc| format!("{pc:#x}")),
            self.loads_in_flight,
            self.stores_in_flight,
            self.serialize,
            self.fetch_blocked_on_branch,
            self.mem.store_buffer_len,
            self.mem.outstanding_misses,
            self.mem.quiesced,
        )
    }
}

impl std::error::Error for WatchdogReport {}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> WatchdogReport {
        WatchdogReport {
            cycle: 123_456,
            committed: 42,
            limit: 1_000,
            rob_len: 3,
            rob_head: Some((0x1_0040, "ld".to_string(), "Issued".to_string())),
            fetch_buffer_len: 5,
            fetch_pc: Some(0x1_0080),
            loads_in_flight: 1,
            stores_in_flight: 2,
            serialize: false,
            fetch_blocked_on_branch: true,
            mem: MemDiagnostics {
                store_buffer_len: 4,
                outstanding_misses: 2,
                quiesced: false,
            },
        }
    }

    #[test]
    fn display_names_the_suspects() {
        let text = report().to_string();
        assert!(text.contains("no progress for 1000 cycles"), "{text}");
        assert!(text.contains("ld @ 0x10040"), "{text}");
        assert!(text.contains("outstanding_misses=2"), "{text}");
        assert!(text.contains("blocked_on_branch=true"), "{text}");
    }

    #[test]
    fn display_handles_an_empty_rob() {
        let mut r = report();
        r.rob_head = None;
        r.fetch_pc = None;
        let text = r.to_string();
        assert!(text.contains("ROB empty"), "{text}");
        assert!(text.contains("fetch_pc=-"), "{text}");
    }
}
