//! Functional-unit occupancy tracking.

use cpe_isa::OpClass;
use cpe_mem::Cycle;

use crate::config::{FuConfig, FuSpec};

#[derive(Debug, Clone)]
struct ClassState {
    spec: FuSpec,
    /// For unpipelined units: when each unit next accepts an operation.
    busy_until: Vec<Cycle>,
    /// For pipelined units: operations started this cycle.
    started_this_cycle: u32,
}

impl ClassState {
    fn new(spec: FuSpec) -> ClassState {
        ClassState {
            spec,
            busy_until: vec![0; spec.count as usize],
            started_this_cycle: 0,
        }
    }

    fn can_start(&self, now: Cycle) -> bool {
        if self.spec.pipelined {
            self.started_this_cycle < self.spec.count
        } else {
            self.busy_until.iter().any(|free_at| *free_at <= now)
        }
    }

    fn try_start(&mut self, now: Cycle) -> Option<Cycle> {
        if self.spec.pipelined {
            if self.started_this_cycle >= self.spec.count {
                return None;
            }
            self.started_this_cycle += 1;
            Some(now + self.spec.latency)
        } else {
            let unit = self
                .busy_until
                .iter_mut()
                .find(|free_at| **free_at <= now)?;
            *unit = now + self.spec.latency;
            Some(now + self.spec.latency)
        }
    }
}

/// The pool of functional units, one class per [`OpClass`].
///
/// Each cycle, [`FuPool::begin_cycle`] resets the pipelined-issue budget;
/// [`FuPool::try_start`] claims a unit and returns the completion cycle.
///
/// ```
/// use cpe_cpu::{FuPool, FuConfig};
/// use cpe_isa::OpClass;
///
/// let mut pool = FuPool::new(FuConfig::default());
/// pool.begin_cycle(10);
/// for _ in 0..4 {
///     assert_eq!(pool.try_start(OpClass::IntAlu, 10), Some(11));
/// }
/// assert_eq!(pool.try_start(OpClass::IntAlu, 10), None, "four ALUs only");
/// ```
#[derive(Debug, Clone)]
pub struct FuPool {
    int_alu: ClassState,
    int_mul: ClassState,
    int_div: ClassState,
    fp_add: ClassState,
    fp_mul: ClassState,
    fp_div: ClassState,
    agu: ClassState,
}

impl FuPool {
    /// Build the pool from its configuration.
    pub fn new(config: FuConfig) -> FuPool {
        FuPool {
            int_alu: ClassState::new(config.int_alu),
            int_mul: ClassState::new(config.int_mul),
            int_div: ClassState::new(config.int_div),
            fp_add: ClassState::new(config.fp_add),
            fp_mul: ClassState::new(config.fp_mul),
            fp_div: ClassState::new(config.fp_div),
            agu: ClassState::new(config.agu),
        }
    }

    fn class_mut(&mut self, class: OpClass) -> &mut ClassState {
        match class {
            OpClass::IntAlu | OpClass::Branch | OpClass::Jump | OpClass::System => {
                &mut self.int_alu
            }
            OpClass::IntMul => &mut self.int_mul,
            OpClass::IntDiv => &mut self.int_div,
            OpClass::FpAdd => &mut self.fp_add,
            OpClass::FpMul => &mut self.fp_mul,
            OpClass::FpDiv => &mut self.fp_div,
            // Memory ops use an AGU for address generation; the cache port
            // itself is modelled in cpe-mem.
            OpClass::Load | OpClass::Store => &mut self.agu,
        }
    }

    /// Start a new cycle: pipelined units accept a fresh batch.
    pub fn begin_cycle(&mut self, _now: Cycle) {
        for class in [
            &mut self.int_alu,
            &mut self.int_mul,
            &mut self.int_div,
            &mut self.fp_add,
            &mut self.fp_mul,
            &mut self.fp_div,
            &mut self.agu,
        ] {
            class.started_this_cycle = 0;
        }
    }

    /// Claim a unit of `class` at cycle `now`. Returns the cycle the result
    /// is available, or `None` when every unit is busy.
    pub fn try_start(&mut self, class: OpClass, now: Cycle) -> Option<Cycle> {
        self.class_mut(class).try_start(now)
    }

    /// `true` when [`FuPool::try_start`] would succeed for `class` at
    /// cycle `now` — useful to avoid committing other resources first.
    pub fn can_start(&self, class: OpClass, now: Cycle) -> bool {
        let state = match class {
            OpClass::IntAlu | OpClass::Branch | OpClass::Jump | OpClass::System => &self.int_alu,
            OpClass::IntMul => &self.int_mul,
            OpClass::IntDiv => &self.int_div,
            OpClass::FpAdd => &self.fp_add,
            OpClass::FpMul => &self.fp_mul,
            OpClass::FpDiv => &self.fp_div,
            OpClass::Load | OpClass::Store => &self.agu,
        };
        state.can_start(now)
    }
}

#[cfg(test)]
mod tests {
    // Tests tweak one field of a default config at a time; the
    // struct-update suggestion reads worse there.
    #![allow(clippy::field_reassign_with_default)]

    use super::*;

    #[test]
    fn unpipelined_divider_blocks_back_to_back() {
        let mut pool = FuPool::new(FuConfig::default());
        pool.begin_cycle(0);
        let done = pool.try_start(OpClass::IntDiv, 0).unwrap();
        assert_eq!(done, 20);
        assert_eq!(pool.try_start(OpClass::IntDiv, 0), None);
        // Still busy halfway through...
        pool.begin_cycle(10);
        assert_eq!(pool.try_start(OpClass::IntDiv, 10), None);
        // ...free once the operation completes.
        pool.begin_cycle(20);
        assert_eq!(pool.try_start(OpClass::IntDiv, 20), Some(40));
    }

    #[test]
    fn pipelined_units_accept_one_per_cycle_each() {
        let mut pool = FuPool::new(FuConfig::default());
        pool.begin_cycle(0);
        assert!(pool.try_start(OpClass::IntMul, 0).is_some());
        assert!(
            pool.try_start(OpClass::IntMul, 0).is_none(),
            "one multiplier"
        );
        pool.begin_cycle(1);
        assert_eq!(
            pool.try_start(OpClass::IntMul, 1),
            Some(5),
            "pipelined restart"
        );
    }

    #[test]
    fn branches_share_the_integer_alus() {
        let mut config = FuConfig::default();
        config.int_alu = FuSpec::new(2, 1, true);
        let mut pool = FuPool::new(config);
        pool.begin_cycle(0);
        assert!(pool.try_start(OpClass::Branch, 0).is_some());
        assert!(pool.try_start(OpClass::IntAlu, 0).is_some());
        assert!(pool.try_start(OpClass::IntAlu, 0).is_none());
    }

    #[test]
    fn memory_ops_use_the_agus() {
        let mut pool = FuPool::new(FuConfig::default());
        pool.begin_cycle(0);
        assert!(pool.try_start(OpClass::Load, 0).is_some());
        assert!(pool.try_start(OpClass::Store, 0).is_some());
        assert!(pool.try_start(OpClass::Load, 0).is_none(), "two AGUs");
        // ALUs unaffected.
        assert!(pool.try_start(OpClass::IntAlu, 0).is_some());
    }
}
