//! The handle the simulator threads through its hot paths.
//!
//! The cpu and mem crates store a [`TraceHandle`] and call
//! [`TraceHandle::emit`] unconditionally — no `cfg` noise at the
//! emission sites. The cost model:
//!
//! * feature `capture` off — the handle is a zero-sized unit and `emit`
//!   is an empty inline function: the whole mechanism compiles away and
//!   simulation output is bit-identical to a build that never heard of
//!   tracing;
//! * feature `capture` on, handle detached ([`TraceHandle::off`], the
//!   default) — `emit` is one branch on a `None`;
//! * feature `capture` on, handle attached — `emit` appends to the ring.
//!
//! Tracing never alters simulated timing in any mode; it only observes.

use crate::event::{EventKind, TraceEvent};
use crate::ring::RingStats;
#[cfg(feature = "capture")]
use crate::ring::Tracer;

#[cfg(feature = "capture")]
use std::cell::RefCell;
#[cfg(feature = "capture")]
use std::rc::Rc;

/// A cheap, clonable reference to a shared [`Tracer`] ring — or an inert
/// stand-in, depending on build mode and construction. Clones share the
/// same ring, which is how the cpu and mem sides interleave into one
/// chronological stream.
#[derive(Debug, Clone, Default)]
pub struct TraceHandle {
    #[cfg(feature = "capture")]
    tracer: Option<Rc<RefCell<Tracer>>>,
}

impl TraceHandle {
    /// `true` when this build can capture events (feature `capture`).
    pub const CAPTURE: bool = cfg!(feature = "capture");

    /// A detached handle: every `emit` is a no-op.
    pub fn off() -> TraceHandle {
        TraceHandle::default()
    }

    /// A handle backed by a fresh ring of `capacity` events. Without the
    /// `capture` feature this is indistinguishable from [`TraceHandle::off`].
    #[cfg(feature = "capture")]
    pub fn attached(capacity: usize) -> TraceHandle {
        TraceHandle {
            tracer: Some(Rc::new(RefCell::new(Tracer::new(capacity)))),
        }
    }

    /// A handle backed by a fresh ring of `capacity` events. Without the
    /// `capture` feature this is indistinguishable from [`TraceHandle::off`].
    #[cfg(not(feature = "capture"))]
    pub fn attached(_capacity: usize) -> TraceHandle {
        TraceHandle::default()
    }

    /// `true` when emissions actually land in a ring.
    #[cfg(feature = "capture")]
    pub fn is_active(&self) -> bool {
        self.tracer.is_some()
    }

    /// `true` when emissions actually land in a ring.
    #[cfg(not(feature = "capture"))]
    pub fn is_active(&self) -> bool {
        false
    }

    /// Record one event. Inlined to nothing when capture is compiled out.
    #[cfg(feature = "capture")]
    #[inline]
    pub fn emit(&self, cycle: u64, kind: EventKind, addr: u64, arg: u32) {
        if let Some(tracer) = &self.tracer {
            tracer
                .borrow_mut()
                .emit(TraceEvent::new(cycle, kind, addr, arg));
        }
    }

    /// Record one event. Inlined to nothing when capture is compiled out.
    #[cfg(not(feature = "capture"))]
    #[inline(always)]
    pub fn emit(&self, _cycle: u64, _kind: EventKind, _addr: u64, _arg: u32) {}

    /// The retained events, oldest first — `None` for a detached handle
    /// (or any handle in a capture-less build).
    #[cfg(feature = "capture")]
    pub fn snapshot(&self) -> Option<Vec<TraceEvent>> {
        self.tracer.as_ref().map(|t| t.borrow().events())
    }

    /// The retained events, oldest first — `None` for a detached handle
    /// (or any handle in a capture-less build).
    #[cfg(not(feature = "capture"))]
    pub fn snapshot(&self) -> Option<Vec<TraceEvent>> {
        None
    }

    /// Ring occupancy/loss accounting — `None` when detached.
    #[cfg(feature = "capture")]
    pub fn ring_stats(&self) -> Option<RingStats> {
        self.tracer.as_ref().map(|t| t.borrow().stats())
    }

    /// Ring occupancy/loss accounting — `None` when detached.
    #[cfg(not(feature = "capture"))]
    pub fn ring_stats(&self) -> Option<RingStats> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_handles_swallow_events() {
        let h = TraceHandle::off();
        h.emit(1, EventKind::Fetch, 0x40, 0);
        assert!(!h.is_active());
        assert!(h.snapshot().is_none());
        assert!(h.ring_stats().is_none());
    }

    #[cfg(feature = "capture")]
    #[test]
    fn clones_share_one_ring() {
        let a = TraceHandle::attached(16);
        let b = a.clone();
        a.emit(1, EventKind::Fetch, 0x40, 0);
        b.emit(2, EventKind::Commit, 0x44, 0);
        let events = a.snapshot().expect("attached");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::Fetch);
        assert_eq!(events[1].kind, EventKind::Commit);
        assert!(a.is_active() && TraceHandle::CAPTURE);
    }

    #[cfg(not(feature = "capture"))]
    #[test]
    fn captureless_builds_have_inert_attached_handles() {
        let h = TraceHandle::attached(16);
        h.emit(1, EventKind::Fetch, 0x40, 0);
        assert!(!h.is_active());
        assert!(h.snapshot().is_none());
        assert!(!TraceHandle::CAPTURE);
    }
}
