//! Pluggable trace sinks.
//!
//! A sink turns a slice of retained [`TraceEvent`]s into bytes on some
//! writer. Three are provided:
//!
//! * [`ChromeTraceSink`] — the Chrome `trace_event` JSON array format,
//!   loadable in `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)
//!   (one simulated cycle maps to one microsecond of timeline);
//! * [`JsonlSink`] — one JSON object per line, for `jq`/scripting;
//! * [`NullSink`] — discards everything; with the `capture` feature off
//!   this completes the zero-cost story end to end.
//!
//! All JSON is hand-assembled: the event vocabulary is a closed set of
//! static names and integers, so no serialization dependency is needed.

use std::io::{self, Write};

use crate::event::TraceEvent;

/// Serialize a batch of retained events to a writer.
pub trait TraceSink {
    /// Write every event (and any surrounding framing) to `out`.
    fn write_events(&mut self, events: &[TraceEvent], out: &mut dyn Write) -> io::Result<()>;

    /// The file extension this sink's output conventionally takes.
    fn extension(&self) -> &'static str;
}

/// Chrome `trace_event` JSON ("JSON object format" with a `traceEvents`
/// array). Each event becomes a 1µs-per-cycle complete slice on a lane
/// per category, plus metadata records naming the lanes.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChromeTraceSink;

/// One compact JSON object per line.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonlSink;

/// Swallows everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for ChromeTraceSink {
    fn write_events(&mut self, events: &[TraceEvent], out: &mut dyn Write) -> io::Result<()> {
        out.write_all(chrome_trace_json(events).as_bytes())
    }

    fn extension(&self) -> &'static str {
        "json"
    }
}

impl TraceSink for JsonlSink {
    fn write_events(&mut self, events: &[TraceEvent], out: &mut dyn Write) -> io::Result<()> {
        for event in events {
            writeln!(out, "{}", jsonl_record(event))?;
        }
        Ok(())
    }

    fn extension(&self) -> &'static str {
        "jsonl"
    }
}

impl TraceSink for NullSink {
    fn write_events(&mut self, _events: &[TraceEvent], _out: &mut dyn Write) -> io::Result<()> {
        Ok(())
    }

    fn extension(&self) -> &'static str {
        "none"
    }
}

/// The lane (`tid`) names shown in the timeline, indexed by
/// [`EventKind::lane`].
const LANE_NAMES: [&str; 6] = ["pipeline", "port", "portless", "store", "mshr", "diag"];

/// Render events as a complete Chrome `trace_event` JSON document.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for (lane, name) in LANE_NAMES.iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{lane},\
             \"args\":{{\"name\":\"{name}\"}}}}"
        ));
    }
    for event in events {
        out.push(',');
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":1,\
             \"pid\":0,\"tid\":{},\"args\":{{\"addr\":\"{:#x}\",\"arg\":{}}}}}",
            event.kind.name(),
            event.kind.category(),
            event.cycle,
            event.kind.lane(),
            event.addr,
            event.arg
        ));
    }
    out.push_str("]}");
    out
}

/// Render one event as a single-line JSON object.
pub fn jsonl_record(event: &TraceEvent) -> String {
    format!(
        "{{\"cycle\":{},\"event\":\"{}\",\"cat\":\"{}\",\"addr\":\"{:#x}\",\"arg\":{}}}",
        event.cycle,
        event.kind.name(),
        event.kind.category(),
        event.addr,
        event.arg
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::new(10, EventKind::PortConflict, 0x2000, 0),
            TraceEvent::new(11, EventKind::PortGrant, 0x2000, 3),
            TraceEvent::new(12, EventKind::LineBufferHit, 0x2008, 0),
        ]
    }

    /// A structural JSON sanity check without a parser: balanced
    /// brackets/braces outside strings and no trailing garbage.
    fn assert_balanced(text: &str) {
        let mut depth_obj = 0i64;
        let mut depth_arr = 0i64;
        let mut in_string = false;
        let mut escaped = false;
        for c in text.chars() {
            if in_string {
                match c {
                    '\\' if !escaped => escaped = true,
                    '"' if !escaped => in_string = false,
                    _ => escaped = false,
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' => depth_obj += 1,
                '}' => depth_obj -= 1,
                '[' => depth_arr += 1,
                ']' => depth_arr -= 1,
                _ => {}
            }
            assert!(depth_obj >= 0 && depth_arr >= 0, "underflow in {text}");
        }
        assert_eq!(depth_obj, 0, "unbalanced braces in {text}");
        assert_eq!(depth_arr, 0, "unbalanced brackets in {text}");
        assert!(!in_string, "unterminated string in {text}");
    }

    #[test]
    fn chrome_output_is_structurally_sound() {
        let text = chrome_trace_json(&sample());
        assert_balanced(&text);
        assert!(text.starts_with('{') && text.ends_with('}'));
        assert!(text.contains("\"traceEvents\":["), "{text}");
        assert!(text.contains("\"name\":\"port_grant\""), "{text}");
        assert!(text.contains("\"ts\":11"), "{text}");
        assert!(
            text.contains("\"args\":{\"addr\":\"0x2000\",\"arg\":3}"),
            "{text}"
        );
        // Lane metadata names every track.
        for lane in LANE_NAMES {
            assert!(text.contains(&format!("\"name\":\"{lane}\"")), "{lane}");
        }
    }

    #[test]
    fn chrome_output_handles_an_empty_run() {
        let text = chrome_trace_json(&[]);
        assert_balanced(&text);
        assert!(text.contains("traceEvents"));
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let events = sample();
        let mut bytes = Vec::new();
        JsonlSink.write_events(&events, &mut bytes).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert_balanced(line);
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines[2].contains("\"event\":\"line_buffer_hit\""));
    }

    #[test]
    fn null_sink_writes_nothing() {
        let mut bytes = Vec::new();
        NullSink.write_events(&sample(), &mut bytes).unwrap();
        assert!(bytes.is_empty());
    }
}
