//! Per-instruction pipeline views: lifecycle reconstruction and the
//! Konata text format.
//!
//! The core stamps every pipeline event with the instruction's sequence
//! number (low 32 bits in [`TraceEvent::arg`]), so a captured event
//! window folds back into per-instruction lifecycle records —
//! fetch/dispatch/issue/complete/commit timestamps plus every
//! port-conflict retry in between. [`konata_text`] renders those records
//! in the Konata/Kanata O3-pipeview text format, loadable in the Konata
//! viewer (<https://github.com/shioyadan/Konata>); [`validate_konata`]
//! structurally checks such a file, for `cpe validate` and CI.
//!
//! Lifecycle stages, lane 0: `F` (fetch → dispatch), `Ds` (dispatch →
//! issue: rename plus the issue-window wait), `X` (issue → complete),
//! `Cm` (complete → commit). Lane 1 carries one `Rt` stage per cycle the
//! load was turned away at the cache port. Retirement is an `R` record
//! at the commit cycle.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{EventKind, TraceEvent};

/// The Konata header emitted and required by this module.
pub const KONATA_HEADER: &str = "Kanata\t0004";

/// One instruction's reconstructed lifecycle. Timestamps are `None`
/// when the corresponding event fell out of the capture ring (the ring
/// keeps the newest window), so records at the window edge are partial.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstRecord {
    /// Sequence number (low 32 bits — the ring never spans 4G
    /// instructions).
    pub seq: u64,
    /// Program counter.
    pub pc: u64,
    /// Cycle the instruction entered the fetch buffer.
    pub fetch: Option<u64>,
    /// Cycle it entered the reorder buffer.
    pub dispatch: Option<u64>,
    /// Cycle it left the window for a functional unit or the cache.
    pub issue: Option<u64>,
    /// Cycle its result became available.
    pub complete: Option<u64>,
    /// Cycle it retired.
    pub commit: Option<u64>,
    /// Cycles it was ready but turned away at the data-cache port
    /// (port/bank conflict or MSHR exhaustion).
    pub retries: Vec<u64>,
}

impl InstRecord {
    /// Earliest known timestamp — including retries, which can precede
    /// every surviving stage when the ring truncated the record: the `I`
    /// declaration is emitted at this cycle and must not follow any of
    /// the record's stage lines.
    fn first_cycle(&self) -> Option<u64> {
        [
            self.fetch,
            self.dispatch,
            self.issue,
            self.complete,
            self.commit,
        ]
        .into_iter()
        .flatten()
        .chain(self.retries.iter().copied())
        .min()
    }

    /// The cycle the last lane-0 stage ends.
    fn last_cycle(&self) -> Option<u64> {
        let first = self.first_cycle()?;
        let last = [
            self.commit,
            self.complete,
            self.issue,
            self.dispatch,
            self.fetch,
        ]
        .into_iter()
        .flatten()
        .max()
        .expect("first_cycle found one");
        Some(last.max(first + 1))
    }
}

/// Fold a captured event window into per-instruction lifecycle records,
/// ordered by sequence number. Events without a per-instruction meaning
/// (port arbitration, MSHR traffic, …) are ignored; records the ring
/// truncated mid-life come out partial rather than being dropped.
pub fn build_records(events: &[TraceEvent]) -> Vec<InstRecord> {
    let mut records: BTreeMap<u64, InstRecord> = BTreeMap::new();
    fn touch(records: &mut BTreeMap<u64, InstRecord>, seq: u64, pc: u64) -> &mut InstRecord {
        let record = records.entry(seq).or_default();
        record.seq = seq;
        if pc != 0 {
            record.pc = pc;
        }
        record
    }
    for event in events {
        let seq = u64::from(event.arg);
        match event.kind {
            EventKind::Fetch => touch(&mut records, seq, event.addr).fetch = Some(event.cycle),
            EventKind::Dispatch => {
                touch(&mut records, seq, event.addr).dispatch = Some(event.cycle)
            }
            EventKind::Issue => touch(&mut records, seq, event.addr).issue = Some(event.cycle),
            EventKind::Complete => {
                touch(&mut records, seq, event.addr).complete = Some(event.cycle)
            }
            EventKind::Commit => touch(&mut records, seq, event.addr).commit = Some(event.cycle),
            EventKind::PortRetry => touch(&mut records, seq, event.addr)
                .retries
                .push(event.cycle),
            _ => {}
        }
    }
    // A truncated ring can leave a Fetch mispaired with a recycled low-32
    // seq; drop records with no post-fetch life to keep the view honest.
    records
        .into_values()
        .filter(|r| r.dispatch.is_some() || r.issue.is_some() || r.commit.is_some())
        .collect()
}

/// Render lifecycle records as Konata/Kanata `0004` text.
pub fn konata_text(records: &[InstRecord]) -> String {
    // Collect (cycle, line) pairs, then emit sorted by cycle with C
    // deltas. The sort is stable, so same-cycle lines keep record order.
    let mut lines: Vec<(u64, String)> = Vec::new();
    for (id, record) in records.iter().enumerate() {
        let Some(first) = record.first_cycle() else {
            continue;
        };
        let end = record.last_cycle().expect("first_cycle known");
        lines.push((first, format!("I\t{id}\t{}\t0", record.seq)));
        lines.push((
            first,
            format!("L\t{id}\t0\t0x{:x} seq={}", record.pc, record.seq),
        ));
        if !record.retries.is_empty() {
            lines.push((
                first,
                format!("L\t{id}\t1\tport retries: {}", record.retries.len()),
            ));
        }
        let stages = [
            (record.fetch, "F"),
            (record.dispatch, "Ds"),
            (record.issue, "X"),
            (record.complete, "Cm"),
        ];
        let mut last_stage = None;
        for (start, name) in stages {
            if let Some(start) = start {
                lines.push((start, format!("S\t{id}\t0\t{name}")));
                last_stage = Some(name);
            }
        }
        if let Some(name) = last_stage {
            lines.push((end, format!("E\t{id}\t0\t{name}")));
        }
        for &retry in &record.retries {
            lines.push((retry, format!("S\t{id}\t1\tRt")));
            lines.push((retry + 1, format!("E\t{id}\t1\tRt")));
        }
        if let Some(commit) = record.commit {
            lines.push((commit, format!("R\t{id}\t{}\t0", record.seq)));
        }
    }
    lines.sort_by_key(|&(cycle, _)| cycle);

    let mut out = String::from(KONATA_HEADER);
    out.push('\n');
    let mut current: Option<u64> = None;
    for (cycle, line) in lines {
        match current {
            None => {
                let _ = writeln!(out, "C=\t{cycle}");
            }
            Some(at) if cycle > at => {
                let _ = writeln!(out, "C\t{}", cycle - at);
            }
            _ => {}
        }
        current = Some(cycle);
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// What a structurally valid Konata file contained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KonataSummary {
    /// `I` records (instructions declared).
    pub instructions: usize,
    /// `R` records (instructions retired).
    pub retired: usize,
    /// The final simulation cycle reached by `C=`/`C` commands.
    pub last_cycle: u64,
}

/// Structurally validate Konata text: header, per-command field counts
/// and numeric fields, ids declared (`I`) before use, and cycle commands
/// present before any stage activity. Returns what the file contained,
/// or the first offense as `line N: …`.
pub fn validate_konata(text: &str) -> Result<KonataSummary, String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| "empty file".to_string())?;
    if !header.starts_with("Kanata\t") {
        return Err(format!(
            "line 1: expected a 'Kanata\\t<version>' header, got {header:?}"
        ));
    }
    let mut ids = std::collections::HashSet::new();
    let mut cycle: Option<u64> = None;
    let mut summary = KonataSummary {
        instructions: 0,
        retired: 0,
        last_cycle: 0,
    };
    let number = |pos: usize, what: &str, field: Option<&str>| -> Result<u64, String> {
        let text = field.ok_or_else(|| format!("line {}: missing {what}", pos + 1))?;
        text.parse::<u64>()
            .map_err(|_| format!("line {}: {what} is not a number: {text:?}", pos + 1))
    };
    for (pos, line) in lines {
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split('\t');
        let command = fields.next().expect("split yields at least one field");
        match command {
            "C=" => {
                summary.last_cycle = number(pos, "cycle", fields.next())?;
                cycle = Some(summary.last_cycle);
            }
            "C" => {
                let base = cycle.ok_or_else(|| format!("line {}: C before any C=", pos + 1))?;
                summary.last_cycle = base + number(pos, "cycle delta", fields.next())?;
                cycle = Some(summary.last_cycle);
            }
            "I" => {
                let id = number(pos, "id", fields.next())?;
                number(pos, "instruction id", fields.next())?;
                number(pos, "thread id", fields.next())?;
                if !ids.insert(id) {
                    return Err(format!("line {}: id {id} declared twice", pos + 1));
                }
                summary.instructions += 1;
            }
            "L" => {
                let id = number(pos, "id", fields.next())?;
                if !ids.contains(&id) {
                    return Err(format!("line {}: label for undeclared id {id}", pos + 1));
                }
                number(pos, "label type", fields.next())?;
            }
            "S" | "E" => {
                if cycle.is_none() {
                    return Err(format!("line {}: {command} before any C=", pos + 1));
                }
                let id = number(pos, "id", fields.next())?;
                if !ids.contains(&id) {
                    return Err(format!("line {}: stage for undeclared id {id}", pos + 1));
                }
                number(pos, "lane", fields.next())?;
                match fields.next() {
                    Some(stage) if !stage.is_empty() => {}
                    _ => return Err(format!("line {}: missing stage name", pos + 1)),
                }
            }
            "R" => {
                if cycle.is_none() {
                    return Err(format!("line {}: R before any C=", pos + 1));
                }
                let id = number(pos, "id", fields.next())?;
                if !ids.contains(&id) {
                    return Err(format!("line {}: retire of undeclared id {id}", pos + 1));
                }
                number(pos, "retire id", fields.next())?;
                let kind = number(pos, "retire type", fields.next())?;
                if kind > 1 {
                    return Err(format!("line {}: retire type must be 0 or 1", pos + 1));
                }
                summary.retired += 1;
            }
            "W" => {
                let consumer = number(pos, "consumer id", fields.next())?;
                let producer = number(pos, "producer id", fields.next())?;
                for id in [consumer, producer] {
                    if !ids.contains(&id) {
                        return Err(format!(
                            "line {}: dependency on undeclared id {id}",
                            pos + 1
                        ));
                    }
                }
                number(pos, "dependency type", fields.next())?;
            }
            other => {
                return Err(format!("line {}: unknown command {other:?}", pos + 1));
            }
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, kind: EventKind, pc: u64, seq: u32) -> TraceEvent {
        TraceEvent::new(cycle, kind, pc, seq)
    }

    fn lifecycle() -> Vec<TraceEvent> {
        vec![
            ev(0, EventKind::Fetch, 0x1000, 0),
            ev(0, EventKind::Fetch, 0x1004, 1),
            ev(1, EventKind::Dispatch, 0x1000, 0),
            ev(1, EventKind::Dispatch, 0x1004, 1),
            ev(2, EventKind::Issue, 0x1000, 0),
            ev(2, EventKind::PortRetry, 0x1004, 1),
            ev(3, EventKind::Issue, 0x1004, 1),
            ev(4, EventKind::Complete, 0x1000, 0),
            // Out of cycle order, as ring contents are for future-dated
            // Complete events.
            ev(6, EventKind::Complete, 0x1004, 1),
            ev(5, EventKind::Commit, 0x1000, 0),
            ev(7, EventKind::Commit, 0x1004, 1),
            // Non-lifecycle traffic is ignored.
            ev(2, EventKind::PortGrant, 0x2000, 0),
        ]
    }

    #[test]
    fn records_fold_per_sequence_number() {
        let records = build_records(&lifecycle());
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[0].pc, 0x1000);
        assert_eq!(records[0].fetch, Some(0));
        assert_eq!(records[0].issue, Some(2));
        assert_eq!(records[0].commit, Some(5));
        assert!(records[0].retries.is_empty());
        assert_eq!(records[1].retries, vec![2]);
        assert_eq!(records[1].complete, Some(6));
    }

    #[test]
    fn truncated_lifecycles_stay_partial_but_present() {
        // Ring kept only the tail: no fetch/dispatch for seq 3.
        let events = vec![
            ev(9, EventKind::Issue, 0x2000, 3),
            ev(11, EventKind::Commit, 0x2000, 3),
        ];
        let records = build_records(&events);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].fetch, None);
        assert_eq!(records[0].issue, Some(9));
    }

    #[test]
    fn fetch_only_records_are_dropped() {
        let events = vec![ev(4, EventKind::Fetch, 0x3000, 9)];
        assert!(build_records(&events).is_empty());
    }

    #[test]
    fn konata_roundtrip_validates() {
        let records = build_records(&lifecycle());
        let text = konata_text(&records);
        assert!(text.starts_with(KONATA_HEADER), "{text}");
        let summary = validate_konata(&text).expect("generated text validates");
        assert_eq!(summary.instructions, 2);
        assert_eq!(summary.retired, 2);
        assert_eq!(summary.last_cycle, 7);
        // Cycle commands are deltas after the first.
        assert!(text.contains("C=\t0"), "{text}");
        assert!(text.contains("\nC\t1\n"), "{text}");
        // The retry lane shows up.
        assert!(text.contains("S\t1\t1\tRt"), "{text}");
    }

    #[test]
    fn empty_capture_yields_a_bare_header() {
        let text = konata_text(&[]);
        let summary = validate_konata(&text).expect("header-only file is valid");
        assert_eq!(summary.instructions, 0);
        assert_eq!(summary.last_cycle, 0);
    }

    #[test]
    fn validation_rejects_malformed_files() {
        assert!(validate_konata("").is_err());
        assert!(validate_konata("not a header\n").is_err());
        let no_decl = format!("{KONATA_HEADER}\nC=\t0\nS\t0\t0\tF\n");
        let err = validate_konata(&no_decl).expect_err("undeclared id");
        assert!(err.contains("undeclared id 0"), "{err}");
        let stage_before_cycle = format!("{KONATA_HEADER}\nI\t0\t0\t0\nS\t0\t0\tF\n");
        let err = validate_konata(&stage_before_cycle).expect_err("needs C=");
        assert!(err.contains("before any C="), "{err}");
        let double = format!("{KONATA_HEADER}\nC=\t0\nI\t0\t0\t0\nI\t0\t1\t0\n");
        assert!(validate_konata(&double).is_err());
        let junk = format!("{KONATA_HEADER}\nC=\t0\nQ\t1\n");
        let err = validate_konata(&junk).expect_err("unknown command");
        assert!(err.contains("unknown command"), "{err}");
    }
}
