//! The fixed-size event ring.

use crate::event::TraceEvent;

/// Occupancy and loss accounting for a [`Tracer`] ring — the numbers the
/// self-profiling line reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RingStats {
    /// Events emitted over the run (kept or not).
    pub emitted: u64,
    /// Events overwritten because the ring was full.
    pub dropped: u64,
    /// Highest occupancy the ring reached.
    pub peak: usize,
    /// Configured capacity.
    pub capacity: usize,
    /// Events currently held.
    pub len: usize,
}

/// A bounded ring of [`TraceEvent`]s: emission is O(1) and never
/// allocates after construction; when full, the oldest event is
/// overwritten and counted as dropped. The tail of a run is always
/// retained — for attribution work the *latest* window is the
/// interesting one.
#[derive(Debug, Clone)]
pub struct Tracer {
    ring: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest retained event once the ring has wrapped.
    head: usize,
    wrapped: bool,
    emitted: u64,
    dropped: u64,
    peak: usize,
}

impl Tracer {
    /// A ring holding up to `capacity` events (0 keeps nothing but still
    /// counts emissions).
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            ring: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            wrapped: false,
            emitted: 0,
            dropped: 0,
            peak: 0,
        }
    }

    /// Record one event.
    #[inline]
    pub fn emit(&mut self, event: TraceEvent) {
        self.emitted += 1;
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.ring.len() < self.capacity {
            self.ring.push(event);
            self.peak = self.peak.max(self.ring.len());
        } else {
            self.ring[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.wrapped = true;
            self.dropped += 1;
        }
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        if !self.wrapped {
            return self.ring.clone();
        }
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.head..]);
        out.extend_from_slice(&self.ring[..self.head]);
        out
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Occupancy and loss accounting.
    pub fn stats(&self) -> RingStats {
        RingStats {
            emitted: self.emitted,
            dropped: self.dropped,
            peak: self.peak,
            capacity: self.capacity,
            len: self.ring.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent::new(cycle, EventKind::Commit, 0x1000 + cycle, 0)
    }

    #[test]
    fn retains_everything_under_capacity() {
        let mut t = Tracer::new(8);
        for c in 0..5 {
            t.emit(ev(c));
        }
        let events: Vec<u64> = t.events().iter().map(|e| e.cycle).collect();
        assert_eq!(events, vec![0, 1, 2, 3, 4]);
        let s = t.stats();
        assert_eq!((s.emitted, s.dropped, s.peak, s.len), (5, 0, 5, 5));
    }

    #[test]
    fn wraps_keeping_the_newest_tail() {
        let mut t = Tracer::new(4);
        for c in 0..10 {
            t.emit(ev(c));
        }
        let events: Vec<u64> = t.events().iter().map(|e| e.cycle).collect();
        assert_eq!(events, vec![6, 7, 8, 9], "oldest overwritten first");
        let s = t.stats();
        assert_eq!((s.emitted, s.dropped, s.peak), (10, 6, 4));
    }

    #[test]
    fn zero_capacity_counts_without_keeping() {
        let mut t = Tracer::new(0);
        for c in 0..3 {
            t.emit(ev(c));
        }
        assert!(t.is_empty());
        assert_eq!(t.stats().emitted, 3);
        assert_eq!(t.stats().dropped, 3);
    }
}
