//! The compact event record and its taxonomy.

use std::fmt;

/// What happened. Every kind is a single point event stamped with the
/// cycle it occurred in; the taxonomy mirrors the port-slot attribution
/// question the suite exists to answer — for each reference, did it take
/// a port slot, get served portlessly, or stall?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// An instruction entered the fetch buffer (`addr` = pc, `arg` = low
    /// 32 bits of the sequence number dispatch will assign it).
    Fetch,
    /// An instruction entered the reorder buffer (`addr` = pc, `arg` =
    /// low 32 bits of its sequence number).
    Dispatch,
    /// An instruction left the window for a functional unit or the cache
    /// (`addr` = pc, `arg` = low 32 bits of its sequence number).
    Issue,
    /// An instruction's result became available. Emitted at issue time
    /// but stamped with the *completion* cycle (`addr` = pc, `arg` = low
    /// 32 bits of its sequence number) — the one future-dated kind.
    Complete,
    /// An instruction retired from the ROB head (`addr` = pc, `arg` =
    /// low 32 bits of its sequence number).
    Commit,
    /// A load took a real port slot (`addr` = address, `arg` =
    /// [`PORT_GRANT_L1_HIT`](crate::PORT_GRANT_L1_HIT)-family source code).
    PortGrant,
    /// A load found every port slot taken and will retry next cycle.
    PortConflict,
    /// An access lost arbitration to a same-bank access this cycle.
    BankConflict,
    /// A load was served by a line buffer — no port slot consumed.
    LineBufferHit,
    /// A load shared another load's same-chunk port access this cycle.
    LoadCombine,
    /// A load was forwarded from a buffered (committed) store.
    StoreForward,
    /// A buffered store overlaps the load only partially; the load waits
    /// for the buffer to drain.
    SbConflict,
    /// A load needed a new MSHR and none was free.
    MshrFull,
    /// A new outstanding miss was allocated (`addr` = line address).
    MshrAlloc,
    /// A load merged into an existing outstanding miss (`addr` = line).
    MshrMerge,
    /// A completed fill installed its line and freed the MSHR (`addr` =
    /// line address).
    MshrRetire,
    /// A committed store entered the store buffer (or wrote through a
    /// port when unbuffered).
    StoreCommit,
    /// A committed store write-combined into an existing buffer entry.
    StoreCombine,
    /// A committed store was rejected (buffer full / no slot) and commit
    /// stalled behind it.
    StoreReject,
    /// A buffered store drained through an idle port slot.
    StoreDrain,
    /// A ready load was turned away at issue — port/bank conflict or
    /// MSHR exhaustion — and will retry (`addr` = pc, `arg` = low 32
    /// bits of its sequence number). The core-side mirror of
    /// [`EventKind::PortConflict`]: that one carries the data address,
    /// this one ties the retry to the instruction for pipeview lanes.
    PortRetry,
    /// The livelock watchdog fired; `addr` = stalled ROB-head pc (0 when
    /// the ROB was empty), `arg` = ROB occupancy.
    WatchdogSnapshot,
}

/// `arg` codes attached to [`EventKind::PortGrant`]: where the granted
/// port access was served from.
pub const PORT_GRANT_L1_HIT: u32 = 0;
/// See [`PORT_GRANT_L1_HIT`] — served by a victim-cache swap.
pub const PORT_GRANT_VICTIM_HIT: u32 = 1;
/// See [`PORT_GRANT_L1_HIT`] — merged into an outstanding miss.
pub const PORT_GRANT_MISS_MERGED: u32 = 2;
/// See [`PORT_GRANT_L1_HIT`] — started a new miss.
pub const PORT_GRANT_MISS: u32 = 3;

impl EventKind {
    /// Every kind, in declaration order — handy for tests and legends.
    pub const ALL: [EventKind; 22] = [
        EventKind::Fetch,
        EventKind::Dispatch,
        EventKind::Issue,
        EventKind::Complete,
        EventKind::Commit,
        EventKind::PortGrant,
        EventKind::PortConflict,
        EventKind::BankConflict,
        EventKind::LineBufferHit,
        EventKind::LoadCombine,
        EventKind::StoreForward,
        EventKind::SbConflict,
        EventKind::MshrFull,
        EventKind::MshrAlloc,
        EventKind::MshrMerge,
        EventKind::MshrRetire,
        EventKind::StoreCommit,
        EventKind::StoreCombine,
        EventKind::StoreReject,
        EventKind::StoreDrain,
        EventKind::PortRetry,
        EventKind::WatchdogSnapshot,
    ];

    /// Stable snake_case name, used verbatim by every sink.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Fetch => "fetch",
            EventKind::Dispatch => "dispatch",
            EventKind::Issue => "issue",
            EventKind::Complete => "complete",
            EventKind::Commit => "commit",
            EventKind::PortGrant => "port_grant",
            EventKind::PortConflict => "port_conflict",
            EventKind::BankConflict => "bank_conflict",
            EventKind::LineBufferHit => "line_buffer_hit",
            EventKind::LoadCombine => "load_combine",
            EventKind::StoreForward => "store_forward",
            EventKind::SbConflict => "sb_conflict",
            EventKind::MshrFull => "mshr_full",
            EventKind::MshrAlloc => "mshr_alloc",
            EventKind::MshrMerge => "mshr_merge",
            EventKind::MshrRetire => "mshr_retire",
            EventKind::StoreCommit => "store_commit",
            EventKind::StoreCombine => "store_combine",
            EventKind::StoreReject => "store_reject",
            EventKind::StoreDrain => "store_drain",
            EventKind::PortRetry => "port_retry",
            EventKind::WatchdogSnapshot => "watchdog_snapshot",
        }
    }

    /// Coarse grouping — one timeline lane per category in the Chrome
    /// sink, so related events render as one track.
    pub fn category(self) -> &'static str {
        match self {
            EventKind::Fetch
            | EventKind::Dispatch
            | EventKind::Issue
            | EventKind::Complete
            | EventKind::Commit => "pipeline",
            EventKind::PortGrant
            | EventKind::PortConflict
            | EventKind::BankConflict
            | EventKind::PortRetry => "port",
            EventKind::LineBufferHit
            | EventKind::LoadCombine
            | EventKind::StoreForward
            | EventKind::SbConflict => "portless",
            EventKind::MshrFull
            | EventKind::MshrAlloc
            | EventKind::MshrMerge
            | EventKind::MshrRetire => "mshr",
            EventKind::StoreCommit
            | EventKind::StoreCombine
            | EventKind::StoreReject
            | EventKind::StoreDrain => "store",
            EventKind::WatchdogSnapshot => "diag",
        }
    }

    /// The Chrome-sink timeline lane (`tid`) for this kind's category.
    pub fn lane(self) -> u32 {
        match self.category() {
            "pipeline" => 0,
            "port" => 1,
            "portless" => 2,
            "store" => 3,
            "mshr" => 4,
            _ => 5,
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One traced occurrence: 24 bytes, `Copy`, no heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle the event occurred in.
    pub cycle: u64,
    /// Subject address: a pc for pipeline events, a data or line address
    /// for memory events, 0 when not meaningful.
    pub addr: u64,
    /// Kind-specific small payload (source code, ROB occupancy, …).
    pub arg: u32,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Shorthand constructor.
    pub fn new(cycle: u64, kind: EventKind, addr: u64, arg: u32) -> TraceEvent {
        TraceEvent {
            cycle,
            addr,
            arg,
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_snake_case() {
        let mut seen = std::collections::HashSet::new();
        for kind in EventKind::ALL {
            let name = kind.name();
            assert!(seen.insert(name), "duplicate name {name}");
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "{name}"
            );
        }
    }

    #[test]
    fn every_kind_has_a_lane_under_six() {
        for kind in EventKind::ALL {
            assert!(kind.lane() < 6, "{kind}");
        }
    }

    #[test]
    fn event_stays_compact() {
        assert!(std::mem::size_of::<TraceEvent>() <= 24);
    }
}
