//! `cpe-trace` — the observability substrate of the cache-port
//! efficiency suite.
//!
//! The simulator's headline claims are *attribution* claims: every
//! data-cache port slot either serves a reference, is saved by a
//! buffering/combining technique, or is wasted. This crate records that
//! attribution cycle by cycle as a stream of compact [`TraceEvent`]s:
//!
//! * the cpu/mem crates hold a [`TraceHandle`] and emit events from
//!   their pipeline stages and port-arbitration paths;
//! * events land in a fixed-size [`Tracer`] ring (oldest overwritten,
//!   loss counted — see [`RingStats`]);
//! * a [`TraceSink`] renders the retained window: Chrome `trace_event`
//!   JSON ([`ChromeTraceSink`]) for visual timelines, JSON-lines
//!   ([`JsonlSink`]) for scripting, or nothing ([`NullSink`]).
//!
//! Capture is feature-gated: without the `capture` feature the handle is
//! a zero-sized no-op and the simulator's emission sites compile away
//! entirely, so a tracing-disabled build is bit-identical in timing *and*
//! in generated code to one that predates this crate. See
//! `docs/OBSERVABILITY.md` for the event taxonomy and overhead notes.

mod event;
mod handle;
mod pipeview;
mod ring;
mod sink;

pub use event::{
    EventKind, TraceEvent, PORT_GRANT_L1_HIT, PORT_GRANT_MISS, PORT_GRANT_MISS_MERGED,
    PORT_GRANT_VICTIM_HIT,
};
pub use handle::TraceHandle;
pub use pipeview::{
    build_records, konata_text, validate_konata, InstRecord, KonataSummary, KONATA_HEADER,
};
pub use ring::{RingStats, Tracer};
pub use sink::{chrome_trace_json, jsonl_record, ChromeTraceSink, JsonlSink, NullSink, TraceSink};
