//! Property-based fault injection over the whole pipeline.
//!
//! The contract under test: **no input can panic or hang the
//! simulator** — corrupt trace bytes, hostile byte soup and adversarial
//! configurations all come back as a [`SimError`] or a clean summary.
//! A panic anywhere in a property body fails the suite, so "calling it"
//! is the assertion; the explicit matches pin down *which* typed error
//! is allowed where. Hangs are bounded by the livelock watchdog, which
//! every configuration here leaves enabled.

use proptest::prelude::*;

use cpe_core::faultinject::{
    adversarial_configs, fuzz_traces, pristine_trace_bytes, run_trace_bytes, Mutation, SplitMix64,
};
use cpe_core::{SimConfig, SimError};

/// The window every property runs under: small enough that thousands of
/// replays stay cheap, large enough to cover the whole pristine trace.
const WINDOW: Option<u64> = Some(2_000);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn single_mutations_never_panic(seed in any::<u64>()) {
        let pristine = pristine_trace_bytes();
        let mut rng = SplitMix64::new(seed);
        let mutant = Mutation::random(&mut rng, pristine.len()).apply(&pristine);
        let result = run_trace_bytes(&SimConfig::combined_single_port(), "fuzz", &mutant, WINDOW);
        if let Err(error) = result {
            prop_assert!(
                matches!(error, SimError::Trace { .. } | SimError::Watchdog(_)),
                "valid config, corrupt bytes: unexpected {error:?}"
            );
        }
    }

    #[test]
    fn stacked_mutations_never_panic(seed in any::<u64>(), depth in 1usize..6) {
        let mut bytes = pristine_trace_bytes();
        let mut rng = SplitMix64::new(seed);
        for _ in 0..depth {
            bytes = Mutation::random(&mut rng, bytes.len()).apply(&bytes);
        }
        let result = run_trace_bytes(&SimConfig::naive_single_port(), "fuzz", &bytes, WINDOW);
        if let Err(error) = result {
            prop_assert!(
                matches!(error, SimError::Trace { .. } | SimError::Watchdog(_)),
                "unexpected {error:?}"
            );
        }
    }

    #[test]
    fn byte_soup_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        // Not even derived from a valid trace: most blobs die at the
        // header, some survive it by chance, none may unwind.
        let _ = run_trace_bytes(&SimConfig::dual_port(), "soup", &bytes, WINDOW);
    }

    #[test]
    fn valid_header_hostile_body_never_panics(
        body in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        // A correct magic/version gets the bytes past the gate and into
        // the record decoder, which is where panics would hide.
        let mut bytes = b"CPET\x01\x00\x00\x00".to_vec();
        bytes.extend_from_slice(&body);
        let _ = run_trace_bytes(&SimConfig::combined_single_port(), "hostile", &bytes, WINDOW);
    }

    #[test]
    fn adversarial_configs_reject_or_run(
        which in any::<prop::sample::Index>(),
        seed in any::<u64>(),
    ) {
        let configs = adversarial_configs();
        let config = &configs[which.index(configs.len())];
        let pristine = pristine_trace_bytes();
        let mut rng = SplitMix64::new(seed);
        let mutant = Mutation::random(&mut rng, pristine.len()).apply(&pristine);
        // Any SimError variant is acceptable here — the config itself
        // may be the invalid input — but an unwind is not.
        let _ = run_trace_bytes(config, &config.name.clone(), &mutant, Some(1_000));
    }
}

#[test]
fn a_long_campaign_upholds_the_contract() {
    let report = fuzz_traces(&SimConfig::combined_single_port(), 400, 0xDEAD_BEEF);
    assert!(report.passed(), "{report}");
    assert_eq!(report.cases, 400);
    assert_eq!(
        report.clean + report.errors.values().sum::<u64>(),
        report.cases,
        "every case must be accounted for"
    );
    assert!(
        report.errors.contains_key("trace"),
        "400 random corruptions must hit the decoder at least once: {report}"
    );
}
