//! The metrics half of the replay-equivalence property (the per-cycle
//! issue/commit-sequence half lives in `cpe-cpu`'s `replay_props`):
//! across instruction windows {8, 32, 128} and all three memory
//! disambiguation policies, the replay backend's full schema-3 metrics
//! document is **identical** to the direct backend's — every counter,
//! CPI stack and distribution — outside the host-timing `self_profile`.

use proptest::prelude::*;

use cpe_core::{
    parse_json, profile_json, JsonValue, ProfileOptions, RecordedWorkload, SimConfig, Simulator,
    METRICS_SCHEMA,
};
use cpe_cpu::Disambiguation;
use cpe_workloads::{Scale, Workload};

/// The deterministic members of a parsed metrics document: everything
/// except `self_profile`, structurally comparable via `JsonValue: Eq`.
fn deterministic(document: &str) -> Vec<(String, JsonValue)> {
    let JsonValue::Object(members) = parse_json(document).expect("document parses") else {
        panic!("metrics document is an object");
    };
    members
        .into_iter()
        .filter(|(key, _)| key != "self_profile")
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn replay_reproduces_the_schema_3_document(
        workload in prop::sample::select(Workload::ALL.to_vec()),
        window in prop::sample::select(vec![8usize, 32, 128]),
        policy in prop::sample::select(vec![
            Disambiguation::Conservative,
            Disambiguation::Perfect,
            Disambiguation::None,
        ]),
        ports in 1u32..3,
    ) {
        let max_insts = Some(2_000);
        let mut config = SimConfig::dual_port();
        config.name = format!("replay-eq w{window}");
        config.cpu.rob_entries = window;
        config.cpu.disambiguation = policy;
        config.mem.ports.count = ports;

        let recorded = RecordedWorkload::record(workload, Scale::Test, max_insts);
        let simulator = Simulator::new(config);
        let direct = simulator
            .try_profile(workload, Scale::Test, max_insts, ProfileOptions::default())
            .expect("direct run completes");
        let replay = simulator
            .try_profile_recorded(&recorded, max_insts, ProfileOptions::default())
            .expect("replay run completes");

        let direct_doc = profile_json(&direct, simulator.config());
        let replay_doc = profile_json(&replay, simulator.config());
        prop_assert!(
            direct_doc.contains(&format!("\"schema\":{METRICS_SCHEMA}")),
            "document carries the schema stamp"
        );
        prop_assert_eq!(
            deterministic(&direct_doc),
            deterministic(&replay_doc),
            "{} w{} {:?}: replay must reproduce the direct document",
            workload.name(),
            window,
            policy
        );
    }
}
