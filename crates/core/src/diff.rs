//! Field-by-field comparison of two exported JSON documents — the
//! regression gate behind `cpe diff`.
//!
//! The workspace carries no serialization dependency, so this module
//! brings its own minimal JSON reader: enough to parse the closed set of
//! documents this suite writes ([`crate::profile_json`], bench reports)
//! plus any well-formed JSON a CI pipeline might hand it. Documents are
//! flattened to dotted leaf paths (`summary.ipc`,
//! `epochs[3].load_latency_p50`) and compared leaf-wise: numbers within a
//! relative tolerance are equal, everything else must match exactly.

use std::fmt;

/// A parsed JSON value. Object member order is preserved but irrelevant
/// to comparison (leaves are matched by path).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, which covers every value the
    /// suite exports).
    Number(f64),
    /// A string literal, unescaped.
    Text(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> String {
        format!("byte {}: {message}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::Text(self.parse_string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(&format!("unexpected `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            // Surrogates only arise for astral-plane text,
                            // which this suite never writes; map them to
                            // the replacement character rather than fail.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; `pos` only ever advances
                    // by whole characters, so it is a valid boundary.
                    let c = self.text[self.pos..]
                        .chars()
                        .next()
                        .expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.error(&format!("bad number `{text}`")))
    }
}

/// Parse one JSON document.
///
/// # Errors
///
/// A one-line message naming the byte offset of the first syntax error.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing garbage after document"));
    }
    Ok(value)
}

/// A scalar at the bottom of a flattened document.
#[derive(Debug, Clone, PartialEq)]
enum Leaf {
    Null,
    Bool(bool),
    Number(f64),
    Text(String),
}

impl fmt::Display for Leaf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Leaf::Null => write!(f, "null"),
            Leaf::Bool(b) => write!(f, "{b}"),
            Leaf::Number(n) => write!(f, "{n}"),
            Leaf::Text(t) => write!(f, "\"{t}\""),
        }
    }
}

fn flatten_into(value: &JsonValue, path: &str, out: &mut Vec<(String, Leaf)>) {
    match value {
        JsonValue::Null => out.push((path.to_string(), Leaf::Null)),
        JsonValue::Bool(b) => out.push((path.to_string(), Leaf::Bool(*b))),
        JsonValue::Number(n) => out.push((path.to_string(), Leaf::Number(*n))),
        JsonValue::Text(t) => out.push((path.to_string(), Leaf::Text(t.clone()))),
        JsonValue::Array(items) => {
            for (index, item) in items.iter().enumerate() {
                flatten_into(item, &format!("{path}[{index}]"), out);
            }
            if items.is_empty() {
                // An empty array is itself a leaf: [] vs [1] must differ.
                out.push((format!("{path}[]"), Leaf::Null));
            }
        }
        JsonValue::Object(members) => {
            for (key, member) in members {
                let child = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                flatten_into(member, &child, out);
            }
        }
    }
}

/// One divergent leaf between the two documents.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Dotted path of the leaf (`summary.ipc`, `epochs[2].insts`).
    pub path: String,
    /// Rendered value in the first document (`-` when absent).
    pub a: String,
    /// Rendered value in the second document (`-` when absent).
    pub b: String,
    /// Relative difference for numeric drift, `None` for shape or type
    /// mismatches (which are unconditionally regressions).
    pub relative: Option<f64>,
}

impl fmt::Display for DiffEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.relative {
            Some(rel) => write!(
                f,
                "{}: {} -> {} ({:+.2}%)",
                self.path,
                self.a,
                self.b,
                rel * 100.0
            ),
            None => write!(f, "{}: {} -> {}", self.path, self.a, self.b),
        }
    }
}

/// The outcome of comparing two documents.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Leaves present (under the same path) in both documents.
    pub compared: usize,
    /// Every leaf that diverged beyond the tolerance, in document order.
    pub entries: Vec<DiffEntry>,
    /// The relative tolerance the comparison ran with.
    pub tolerance: f64,
}

impl DiffReport {
    /// `true` when every compared leaf was within tolerance and neither
    /// document had paths the other lacked.
    pub fn is_clean(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for DiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for entry in &self.entries {
            writeln!(f, "  {entry}")?;
        }
        write!(
            f,
            "{} leaves compared, {} beyond {:.1}% tolerance",
            self.compared,
            self.entries.len(),
            self.tolerance * 100.0
        )
    }
}

/// Relative difference between two numbers: `|a - b|` scaled by the
/// larger magnitude (0 when both are 0, so identical zeros never flag).
fn relative_difference(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs());
    if scale == 0.0 {
        0.0
    } else {
        (a - b).abs() / scale
    }
}

/// Compare two JSON documents leaf-by-leaf.
///
/// Numeric leaves are equal when their [`relative_difference`] is at most
/// `tolerance`; strings, booleans and nulls must match exactly; a path
/// present in only one document is always reported.
///
/// # Errors
///
/// When either document fails to parse.
pub fn diff_json(a: &str, b: &str, tolerance: f64) -> Result<DiffReport, String> {
    let a = parse_json(a).map_err(|e| format!("first document: {e}"))?;
    let b = parse_json(b).map_err(|e| format!("second document: {e}"))?;
    let mut a_leaves = Vec::new();
    let mut b_leaves = Vec::new();
    flatten_into(&a, "", &mut a_leaves);
    flatten_into(&b, "", &mut b_leaves);
    let b_map: std::collections::HashMap<&str, &Leaf> = b_leaves
        .iter()
        .map(|(path, leaf)| (path.as_str(), leaf))
        .collect();
    let a_paths: std::collections::HashSet<&str> =
        a_leaves.iter().map(|(path, _)| path.as_str()).collect();

    let mut entries = Vec::new();
    let mut compared = 0;
    for (path, left) in &a_leaves {
        match b_map.get(path.as_str()) {
            None => entries.push(DiffEntry {
                path: path.clone(),
                a: left.to_string(),
                b: "-".to_string(),
                relative: None,
            }),
            Some(&right) => {
                compared += 1;
                match (left, right) {
                    (Leaf::Number(x), Leaf::Number(y)) => {
                        let rel = relative_difference(*x, *y);
                        if rel > tolerance {
                            entries.push(DiffEntry {
                                path: path.clone(),
                                a: left.to_string(),
                                b: right.to_string(),
                                relative: Some(rel),
                            });
                        }
                    }
                    (left, right) if left == right => {}
                    (left, right) => entries.push(DiffEntry {
                        path: path.clone(),
                        a: left.to_string(),
                        b: right.to_string(),
                        relative: None,
                    }),
                }
            }
        }
    }
    for (path, right) in &b_leaves {
        if !a_paths.contains(path.as_str()) {
            entries.push(DiffEntry {
                path: path.clone(),
                a: "-".to_string(),
                b: right.to_string(),
                relative: None,
            });
        }
    }
    Ok(DiffReport {
        compared,
        entries,
        tolerance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_every_value_kind() {
        let doc = r#"{"a":1,"b":-2.5e3,"c":"x\"y\n","d":[true,false,null],"e":{},"f":[]}"#;
        let value = parse_json(doc).unwrap();
        let JsonValue::Object(members) = &value else {
            panic!("not an object");
        };
        assert_eq!(members.len(), 6);
        assert_eq!(members[0].1, JsonValue::Number(1.0));
        assert_eq!(members[1].1, JsonValue::Number(-2500.0));
        assert_eq!(members[2].1, JsonValue::Text("x\"y\n".to_string()));
        assert_eq!(
            members[3].1,
            JsonValue::Array(vec![
                JsonValue::Bool(true),
                JsonValue::Bool(false),
                JsonValue::Null
            ])
        );
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["{", "{\"a\":}", "[1,]", "tru", "\"unterminated", "{} x", ""] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn identical_documents_diff_clean() {
        let doc = r#"{"x":1.5,"nested":{"y":[1,2,3],"z":"label"},"n":null}"#;
        let report = diff_json(doc, doc, 0.0).unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.compared, 6);
    }

    #[test]
    fn numeric_drift_respects_the_tolerance() {
        let a = r#"{"ipc":1.00}"#;
        let b = r#"{"ipc":1.04}"#;
        assert!(diff_json(a, b, 0.05).unwrap().is_clean());
        let report = diff_json(a, b, 0.01).unwrap();
        assert_eq!(report.entries.len(), 1);
        assert_eq!(report.entries[0].path, "ipc");
        let rel = report.entries[0].relative.unwrap();
        assert!((rel - 0.04 / 1.04).abs() < 1e-12);
    }

    #[test]
    fn shape_and_type_mismatches_always_flag() {
        // Missing key, extra key, type change, string change: all four
        // must be reported regardless of tolerance.
        let a = r#"{"gone":1,"t":"x","kind":5}"#;
        let b = r#"{"t":"y","kind":null,"new":2}"#;
        let report = diff_json(a, b, 1.0e9).unwrap();
        let paths: Vec<&str> = report.entries.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(paths, ["gone", "t", "kind", "new"], "{report}");
        assert!(report.entries.iter().all(|e| e.relative.is_none()));
    }

    #[test]
    fn zero_versus_zero_never_flags() {
        let doc = r#"{"a":0,"b":0.0}"#;
        assert!(diff_json(doc, doc, 0.0).unwrap().is_clean());
    }

    #[test]
    fn empty_array_differs_from_populated_array() {
        let report = diff_json(r#"{"a":[]}"#, r#"{"a":[1]}"#, 0.5).unwrap();
        assert!(!report.is_clean());
    }

    #[test]
    fn real_profile_documents_parse_and_self_diff_clean() {
        use crate::observe::ProfileOptions;
        use crate::{profile_json, SimConfig, Simulator};
        use cpe_workloads::{Scale, Workload};

        let sim = Simulator::new(SimConfig::combined_single_port());
        let run = sim
            .try_profile(
                Workload::Sort,
                Scale::Test,
                Some(3_000),
                ProfileOptions::default(),
            )
            .expect("run completes");
        let doc = profile_json(&run, sim.config());
        parse_json(&doc).expect("exported metrics parse");
        let report = diff_json(&doc, &doc, 0.0).unwrap();
        assert!(report.is_clean(), "{report}");
        assert!(report.compared > 100, "a real document has many leaves");
    }

    #[test]
    fn different_port_counts_diff_dirty() {
        use crate::observe::ProfileOptions;
        use crate::{profile_json, SimConfig, Simulator};
        use cpe_workloads::{Scale, Workload};

        let mut docs = Vec::new();
        for config in [SimConfig::naive_single_port(), SimConfig::quad_port()] {
            let sim = Simulator::new(config);
            let run = sim
                .try_profile(
                    Workload::Compress,
                    Scale::Test,
                    Some(3_000),
                    ProfileOptions::default(),
                )
                .expect("run completes");
            docs.push(profile_json(&run, sim.config()));
        }
        let report = diff_json(&docs[0], &docs[1], 0.05).unwrap();
        assert!(
            !report.is_clean(),
            "port count must move the metrics beyond 5%"
        );
        // Only deterministic paths here — self_profile's host-speed
        // fields may or may not cross tolerance depending on machine
        // load.
        assert!(
            report
                .entries
                .iter()
                .any(|e| e.path == "config.mem.ports.count"),
            "{report}"
        );
        assert!(
            report
                .entries
                .iter()
                .any(|e| e.path == "summary.port_utilisation"),
            "{report}"
        );
    }
}
