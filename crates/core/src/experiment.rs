//! Sweep runner: configurations × workloads → result tables.
//!
//! A sweep is only as useful as its worst cell: one inconsistent
//! configuration, one livelocked design point or one panicking worker
//! must not cost the other N−1 results. Every cell therefore runs behind
//! [`std::panic::catch_unwind`], failures land in the row as a typed
//! [`SimError`], and the tables print `FAILED(<kind>)` where a number
//! would have been.

use std::panic::{catch_unwind, AssertUnwindSafe};

use cpe_stats::{geometric_mean, Table};
use cpe_workloads::{Scale, Workload};

use crate::config::SimConfig;
use crate::error::SimError;
use crate::metrics::RunSummary;
use crate::simulator::Simulator;

/// One cell of an experiment: a configuration run on a workload.
#[derive(Debug, Clone)]
pub struct ResultRow {
    /// Index of the configuration in the experiment's list.
    pub config_index: usize,
    /// The workload.
    pub workload: Workload,
    /// The run's metrics, or the typed failure that replaced them.
    pub outcome: Result<RunSummary, SimError>,
}

impl ResultRow {
    /// The run's metrics, when the cell completed.
    pub fn summary(&self) -> Option<&RunSummary> {
        self.outcome.as_ref().ok()
    }
}

/// How one cell of the sweep is executed — injectable so tests can model
/// panicking or livelocking cells without constructing one for real.
type CellRunner<'a> =
    &'a (dyn Fn(&SimConfig, Workload, Scale, Option<u64>) -> Result<RunSummary, SimError> + Sync);

/// A (configurations × workloads) sweep.
///
/// Every run is capped at the same committed-instruction window so
/// configurations are compared over identical work.
///
/// ```no_run
/// use cpe_core::{Experiment, SimConfig};
/// use cpe_workloads::{Scale, Workload};
///
/// let results = Experiment::new(Scale::Small, Some(200_000))
///     .config(SimConfig::naive_single_port())
///     .config(SimConfig::dual_port())
///     .workloads(&Workload::ALL)
///     .run();
/// println!("{}", results.ipc_table());
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    scale: Scale,
    max_insts: Option<u64>,
    configs: Vec<SimConfig>,
    workloads: Vec<Workload>,
}

impl Experiment {
    /// An empty experiment at the given scale and instruction window.
    pub fn new(scale: Scale, max_insts: Option<u64>) -> Experiment {
        Experiment {
            scale,
            max_insts,
            configs: Vec::new(),
            workloads: Vec::new(),
        }
    }

    /// Add one configuration.
    pub fn config(mut self, config: SimConfig) -> Experiment {
        self.configs.push(config);
        self
    }

    /// Add several configurations.
    pub fn configs<I: IntoIterator<Item = SimConfig>>(mut self, configs: I) -> Experiment {
        self.configs.extend(configs);
        self
    }

    /// Add workloads.
    pub fn workloads(mut self, workloads: &[Workload]) -> Experiment {
        self.workloads.extend_from_slice(workloads);
        self
    }

    /// Run the full sweep. Progress is reported through `progress`
    /// (workload, config name) before each run when provided.
    ///
    /// Each cell is isolated: an invalid configuration, a watchdog abort
    /// or a panic marks that cell failed and the sweep continues.
    pub fn run_with_progress(&self, progress: impl FnMut(Workload, &str)) -> ExperimentResults {
        self.run_with_runner(&Experiment::run_cell, progress)
    }

    /// Run the full sweep silently.
    pub fn run(&self) -> ExperimentResults {
        self.run_with_progress(|_, _| {})
    }

    /// Validate every configuration exactly once, before any cell runs.
    /// A config used by W workloads used to be validated W times, once
    /// per cell; now its cells share one verdict, and the invalid ones
    /// fail up front without ever reaching a runner.
    fn prevalidate(&self) -> Vec<Option<SimError>> {
        self.configs
            .iter()
            .map(|config| config.validate().err().map(SimError::from))
            .collect()
    }

    fn run_with_runner(
        &self,
        runner: CellRunner<'_>,
        mut progress: impl FnMut(Workload, &str),
    ) -> ExperimentResults {
        assert!(!self.configs.is_empty(), "add at least one configuration");
        assert!(!self.workloads.is_empty(), "add at least one workload");
        let prechecked = self.prevalidate();
        let mut rows = Vec::new();
        for &workload in &self.workloads {
            for (config_index, config) in self.configs.iter().enumerate() {
                progress(workload, &config.name);
                let outcome = match &prechecked[config_index] {
                    Some(error) => Err(error.clone()),
                    None => isolate(|| runner(config, workload, self.scale, self.max_insts)),
                };
                rows.push(ResultRow {
                    config_index,
                    workload,
                    outcome,
                });
            }
        }
        ExperimentResults {
            configs: self.configs.clone(),
            workloads: self.workloads.clone(),
            rows,
        }
    }

    /// Run the sweep across `threads` worker threads (each run is
    /// independent and deterministic, so results are identical to
    /// [`Experiment::run`] — only wall-clock changes). `threads = 0`
    /// uses the machine's available parallelism.
    pub fn run_parallel(&self, threads: usize) -> ExperimentResults {
        self.run_parallel_with_runner(&Experiment::run_cell, threads)
    }

    fn run_parallel_with_runner(
        &self,
        runner: CellRunner<'_>,
        threads: usize,
    ) -> ExperimentResults {
        assert!(!self.configs.is_empty(), "add at least one configuration");
        assert!(!self.workloads.is_empty(), "add at least one workload");
        let prechecked = self.prevalidate();
        let workers = if threads == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            threads
        };
        // The job grid — only the cells of valid configs go to workers,
        // round-robin for rough balance; invalid cells fail up front.
        let jobs: Vec<(usize, Workload)> = self
            .workloads
            .iter()
            .flat_map(|&workload| (0..self.configs.len()).map(move |index| (index, workload)))
            .filter(|&(index, _)| prechecked[index].is_none())
            .collect();
        let mut rows: Vec<ResultRow> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers.min(jobs.len().max(1)))
                .map(|worker| {
                    let jobs = &jobs;
                    let configs = &self.configs;
                    let scale = self.scale;
                    let max_insts = self.max_insts;
                    scope.spawn(move || {
                        jobs.iter()
                            .skip(worker)
                            .step_by(workers)
                            .map(|&(config_index, workload)| {
                                let outcome = isolate(|| {
                                    runner(&configs[config_index], workload, scale, max_insts)
                                });
                                ResultRow {
                                    config_index,
                                    workload,
                                    outcome,
                                }
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|handle| {
                    // Cells catch their own panics; a dead worker would be
                    // a harness bug, not a cell failure.
                    handle.join().expect("sweep worker survived its cells")
                })
                .collect()
        });
        for &workload in &self.workloads {
            for (config_index, error) in prechecked.iter().enumerate() {
                if let Some(error) = error {
                    rows.push(ResultRow {
                        config_index,
                        workload,
                        outcome: Err(error.clone()),
                    });
                }
            }
        }
        // Restore the canonical (workload-major, config) order.
        let workload_rank = |w: Workload| {
            self.workloads
                .iter()
                .position(|&x| x == w)
                .expect("job from grid")
        };
        rows.sort_by_key(|row| (workload_rank(row.workload), row.config_index));
        ExperimentResults {
            configs: self.configs.clone(),
            workloads: self.workloads.clone(),
            rows,
        }
    }

    /// The production cell runner: typed validation, then the run, with
    /// one bounded retry at half the instruction window when the
    /// watchdog aborts — a livelock late in a long window can still
    /// yield a usable (if shorter) measurement.
    fn run_cell(
        config: &SimConfig,
        workload: Workload,
        scale: Scale,
        max_insts: Option<u64>,
    ) -> Result<RunSummary, SimError> {
        let simulator = Simulator::try_new(config.clone())?;
        match simulator.try_run(workload, scale, max_insts) {
            Err(SimError::Watchdog(report)) => {
                let Some(window) = max_insts.filter(|&n| n >= 2) else {
                    return Err(SimError::Watchdog(report));
                };
                simulator.try_run(workload, scale, Some(window / 2))
            }
            outcome => outcome,
        }
    }
}

/// Run one cell behind a panic boundary, converting an unwind into the
/// typed failure the row stores.
fn isolate(run: impl FnOnce() -> Result<RunSummary, SimError>) -> Result<RunSummary, SimError> {
    match catch_unwind(AssertUnwindSafe(run)) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(SimError::WorkerPanic { message })
        }
    }
}

/// The completed sweep, with table builders.
#[derive(Debug, Clone)]
pub struct ExperimentResults {
    configs: Vec<SimConfig>,
    workloads: Vec<Workload>,
    rows: Vec<ResultRow>,
}

impl ExperimentResults {
    /// All rows, in (workload-major, configuration) order.
    pub fn rows(&self) -> &[ResultRow] {
        &self.rows
    }

    /// The configurations swept.
    pub fn configs(&self) -> &[SimConfig] {
        &self.configs
    }

    /// The completed cell for (workload, config index), if it ran and
    /// succeeded.
    pub fn cell(&self, workload: Workload, config_index: usize) -> Option<&RunSummary> {
        self.row(workload, config_index)
            .and_then(ResultRow::summary)
    }

    /// The failure for (workload, config index), if that cell failed.
    pub fn failure(&self, workload: Workload, config_index: usize) -> Option<&SimError> {
        self.row(workload, config_index)
            .and_then(|row| row.outcome.as_ref().err())
    }

    /// Every failed cell as (workload, configuration name, error).
    pub fn failures(&self) -> Vec<(Workload, &str, &SimError)> {
        self.rows
            .iter()
            .filter_map(|row| {
                let error = row.outcome.as_ref().err()?;
                Some((
                    row.workload,
                    self.configs[row.config_index].name.as_str(),
                    error,
                ))
            })
            .collect()
    }

    fn row(&self, workload: Workload, config_index: usize) -> Option<&ResultRow> {
        self.rows
            .iter()
            .find(|row| row.workload == workload && row.config_index == config_index)
    }

    /// Render one table cell: the metric, `FAILED(<kind>)`, or `-` when
    /// the grid has no such cell at all.
    fn cell_text(
        &self,
        workload: Workload,
        config_index: usize,
        metric: impl Fn(&RunSummary) -> String,
    ) -> String {
        match self.row(workload, config_index) {
            Some(row) => match &row.outcome {
                Ok(summary) => metric(summary),
                Err(error) => format!("FAILED({})", error.kind()),
            },
            None => "-".to_string(),
        }
    }

    /// Geometric-mean IPC across workloads for one configuration; failed
    /// cells are excluded (the table marks them, the mean covers what
    /// ran).
    pub fn geomean_ipc(&self, config_index: usize) -> f64 {
        geometric_mean(
            self.rows
                .iter()
                .filter(|row| row.config_index == config_index)
                .filter_map(|row| row.summary().map(|summary| summary.ipc)),
        )
        .unwrap_or(0.0)
    }

    /// Geometric-mean IPC relative to a reference configuration.
    pub fn geomean_relative(&self, config_index: usize, reference_index: usize) -> f64 {
        geometric_mean(self.workloads.iter().filter_map(|&workload| {
            let this = self.cell(workload, config_index)?;
            let reference = self.cell(workload, reference_index)?;
            Some(this.relative_ipc(reference))
        }))
        .unwrap_or(0.0)
    }

    /// IPC per workload per configuration, plus a geomean row.
    pub fn ipc_table(&self) -> Table {
        let mut header = vec!["workload".to_string()];
        header.extend(self.configs.iter().map(|c| c.name.clone()));
        let mut table = Table::new(header);
        for &workload in &self.workloads {
            let mut row = vec![workload.name().to_string()];
            for index in 0..self.configs.len() {
                row.push(self.cell_text(workload, index, |summary| format!("{:.3}", summary.ipc)));
            }
            table.row(row);
        }
        let mut geo = vec!["geomean".to_string()];
        for index in 0..self.configs.len() {
            geo.push(format!("{:.3}", self.geomean_ipc(index)));
        }
        table.row(geo);
        table
    }

    /// IPC normalised to a reference configuration, plus a geomean row.
    pub fn relative_table(&self, reference_index: usize) -> Table {
        let mut header = vec!["workload".to_string()];
        header.extend(self.configs.iter().map(|c| c.name.clone()));
        let mut table = Table::new(header);
        for &workload in &self.workloads {
            let mut row = vec![workload.name().to_string()];
            let reference = self.cell(workload, reference_index);
            for index in 0..self.configs.len() {
                row.push(self.cell_text(workload, index, |summary| match reference {
                    Some(reference) => format!("{:.3}", summary.relative_ipc(reference)),
                    None => "-".to_string(),
                }));
            }
            table.row(row);
        }
        let mut geo = vec!["geomean".to_string()];
        for index in 0..self.configs.len() {
            geo.push(format!(
                "{:.3}",
                self.geomean_relative(index, reference_index)
            ));
        }
        table.row(geo);
        table
    }

    /// An arbitrary metric per workload per configuration.
    pub fn metric_table(&self, name: &str, metric: impl Fn(&RunSummary) -> f64) -> Table {
        let mut header = vec![format!("workload ({name})")];
        header.extend(self.configs.iter().map(|c| c.name.clone()));
        let mut table = Table::new(header);
        for &workload in &self.workloads {
            let mut row = vec![workload.name().to_string()];
            for index in 0..self.configs.len() {
                row.push(
                    self.cell_text(workload, index, |summary| format!("{:.3}", metric(summary))),
                );
            }
            table.row(row);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_experiment() -> ExperimentResults {
        Experiment::new(Scale::Test, Some(8_000))
            .config(SimConfig::naive_single_port())
            .config(SimConfig::dual_port())
            .workloads(&[Workload::Compress, Workload::Sort])
            .run()
    }

    #[test]
    fn sweep_covers_the_grid() {
        let results = tiny_experiment();
        assert_eq!(results.rows().len(), 4);
        for workload in [Workload::Compress, Workload::Sort] {
            for index in 0..2 {
                assert!(results.cell(workload, index).is_some());
            }
        }
        assert!(results.cell(Workload::Fft, 0).is_none());
    }

    #[test]
    fn tables_have_the_right_shape() {
        let results = tiny_experiment();
        let ipc = results.ipc_table();
        assert_eq!(ipc.len(), 3, "two workloads + geomean");
        let relative = results.relative_table(1);
        assert_eq!(relative.len(), 3);
        // The reference column normalises to 1.000.
        assert!(relative.to_csv().contains("1.000"));
        let util = results.metric_table("port util", |s| s.port_utilisation);
        assert_eq!(util.len(), 2);
    }

    #[test]
    fn geomeans_are_positive_and_ordered_sanely() {
        let results = tiny_experiment();
        let naive = results.geomean_ipc(0);
        let dual = results.geomean_ipc(1);
        assert!(naive > 0.0 && dual > 0.0);
        assert!(
            dual >= naive * 0.95,
            "dual-ported should not lose: {dual} vs {naive}"
        );
        let relative = results.geomean_relative(0, 1);
        assert!(relative <= 1.05, "naive relative to dual: {relative}");
    }

    #[test]
    fn parallel_run_matches_serial_exactly() {
        let experiment = Experiment::new(Scale::Test, Some(6_000))
            .config(SimConfig::naive_single_port())
            .config(SimConfig::dual_port())
            .workloads(&[Workload::Compress, Workload::Sort]);
        let serial = experiment.run();
        let parallel = experiment.run_parallel(3);
        assert_eq!(serial.rows().len(), parallel.rows().len());
        for (a, b) in serial.rows().iter().zip(parallel.rows()) {
            assert_eq!(a.config_index, b.config_index);
            assert_eq!(a.workload, b.workload);
            let (a, b) = (a.summary().unwrap(), b.summary().unwrap());
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.insts, b.insts);
        }
        assert_eq!(serial.ipc_table().to_csv(), parallel.ipc_table().to_csv());
    }

    #[test]
    #[should_panic(expected = "at least one configuration")]
    fn empty_experiment_is_an_error() {
        Experiment::new(Scale::Test, None)
            .workloads(&[Workload::Sort])
            .run();
    }

    #[test]
    fn poisoned_cell_fails_alone() {
        // The acceptance bar for fault-tolerant sweeps: one inconsistent
        // configuration marks its own cells FAILED while every healthy
        // cell matches a clean sweep bit-for-bit.
        let window = Some(6_000);
        let poisoned = Experiment::new(Scale::Test, window)
            .config(SimConfig::naive_single_port())
            .config(
                SimConfig::naive_single_port()
                    .with_ports(0)
                    .named("poisoned"),
            )
            .config(SimConfig::dual_port())
            .workloads(&[Workload::Compress, Workload::Sort])
            .run();
        let clean = Experiment::new(Scale::Test, window)
            .config(SimConfig::naive_single_port())
            .config(SimConfig::dual_port())
            .workloads(&[Workload::Compress, Workload::Sort])
            .run();
        for workload in [Workload::Compress, Workload::Sort] {
            let error = poisoned.failure(workload, 1).expect("poisoned cell fails");
            assert_eq!(error.kind(), "config");
            let naive = poisoned.cell(workload, 0).expect("healthy cell runs");
            let dual = poisoned.cell(workload, 2).expect("healthy cell runs");
            assert_eq!(naive.cycles, clean.cell(workload, 0).unwrap().cycles);
            assert_eq!(naive.insts, clean.cell(workload, 0).unwrap().insts);
            assert_eq!(dual.cycles, clean.cell(workload, 1).unwrap().cycles);
            assert_eq!(dual.insts, clean.cell(workload, 1).unwrap().insts);
        }
        assert_eq!(poisoned.failures().len(), 2);
        let csv = poisoned.ipc_table().to_csv();
        assert!(csv.contains("FAILED(config)"), "{csv}");
        // The geomean still covers the healthy columns.
        assert!(poisoned.geomean_ipc(0) > 0.0);
        assert_eq!(poisoned.geomean_ipc(1), 0.0);
    }

    #[test]
    fn invalid_configs_never_reach_a_runner() {
        // Validation is hoisted: an invalid config's cells fail up front
        // with the shared verdict, and the runner only ever sees valid
        // configs — serially and in parallel.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let experiment = Experiment::new(Scale::Test, Some(4_000))
            .config(SimConfig::naive_single_port())
            .config(SimConfig::dual_port().with_ports(0).named("broken"))
            .workloads(&[Workload::Compress, Workload::Sort]);
        let ran = AtomicUsize::new(0);
        let runner: CellRunner<'_> = &|config, workload, scale, max_insts| {
            assert_ne!(config.name, "broken", "invalid config reached a runner");
            ran.fetch_add(1, Ordering::Relaxed);
            Experiment::run_cell(config, workload, scale, max_insts)
        };
        for results in [
            experiment.run_with_runner(runner, |_, _| {}),
            experiment.run_parallel_with_runner(runner, 2),
        ] {
            assert_eq!(results.failures().len(), 2);
            for workload in [Workload::Compress, Workload::Sort] {
                assert_eq!(results.failure(workload, 1).unwrap().kind(), "config");
                assert!(results.cell(workload, 0).is_some());
            }
        }
        assert_eq!(ran.load(Ordering::Relaxed), 4, "two valid cells per mode");
    }

    #[test]
    fn panicking_cells_are_isolated_serially_and_in_parallel() {
        let experiment = Experiment::new(Scale::Test, Some(4_000))
            .config(SimConfig::naive_single_port())
            .config(SimConfig::dual_port().named("haunted"))
            .workloads(&[Workload::Sort]);
        let runner: CellRunner<'_> = &|config, workload, scale, max_insts| {
            if config.name == "haunted" {
                panic!("synthetic worker crash");
            }
            Experiment::run_cell(config, workload, scale, max_insts)
        };
        for results in [
            experiment.run_with_runner(runner, |_, _| {}),
            experiment.run_parallel_with_runner(runner, 2),
        ] {
            let error = results
                .failure(Workload::Sort, 1)
                .expect("haunted cell fails");
            assert_eq!(error.kind(), "panic");
            assert!(error.to_string().contains("synthetic worker crash"));
            assert!(results.cell(Workload::Sort, 0).is_some());
            let csv = results.ipc_table().to_csv();
            assert!(csv.contains("FAILED(panic)"), "{csv}");
        }
    }

    #[test]
    fn watchdog_cells_retry_at_a_smaller_window() {
        // The watchdog-aborted cell gets one retry at half the window;
        // with a watchdog this tight both attempts fail, and the typed
        // error (not a panic) lands in the row.
        let mut config = SimConfig::naive_single_port().named("livelocked");
        config.cpu.watchdog_cycles = 4;
        let results = Experiment::new(Scale::Test, Some(4_000))
            .config(config)
            .config(SimConfig::dual_port())
            .workloads(&[Workload::Sort])
            .run();
        let error = results.failure(Workload::Sort, 0).expect("watchdog fires");
        assert_eq!(error.kind(), "watchdog");
        assert!(results.cell(Workload::Sort, 1).is_some());
        assert!(results.ipc_table().to_csv().contains("FAILED(watchdog)"));
    }
}
