//! Sweep runner: configurations × workloads → result tables.

use cpe_stats::{geometric_mean, Table};
use cpe_workloads::{Scale, Workload};

use crate::config::SimConfig;
use crate::metrics::RunSummary;
use crate::simulator::Simulator;

/// One cell of an experiment: a configuration run on a workload.
#[derive(Debug, Clone)]
pub struct ResultRow {
    /// Index of the configuration in the experiment's list.
    pub config_index: usize,
    /// The workload.
    pub workload: Workload,
    /// The run's metrics.
    pub summary: RunSummary,
}

/// A (configurations × workloads) sweep.
///
/// Every run is capped at the same committed-instruction window so
/// configurations are compared over identical work.
///
/// ```no_run
/// use cpe_core::{Experiment, SimConfig};
/// use cpe_workloads::{Scale, Workload};
///
/// let results = Experiment::new(Scale::Small, Some(200_000))
///     .config(SimConfig::naive_single_port())
///     .config(SimConfig::dual_port())
///     .workloads(&Workload::ALL)
///     .run();
/// println!("{}", results.ipc_table());
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    scale: Scale,
    max_insts: Option<u64>,
    configs: Vec<SimConfig>,
    workloads: Vec<Workload>,
}

impl Experiment {
    /// An empty experiment at the given scale and instruction window.
    pub fn new(scale: Scale, max_insts: Option<u64>) -> Experiment {
        Experiment {
            scale,
            max_insts,
            configs: Vec::new(),
            workloads: Vec::new(),
        }
    }

    /// Add one configuration.
    pub fn config(mut self, config: SimConfig) -> Experiment {
        self.configs.push(config);
        self
    }

    /// Add several configurations.
    pub fn configs<I: IntoIterator<Item = SimConfig>>(mut self, configs: I) -> Experiment {
        self.configs.extend(configs);
        self
    }

    /// Add workloads.
    pub fn workloads(mut self, workloads: &[Workload]) -> Experiment {
        self.workloads.extend_from_slice(workloads);
        self
    }

    /// Run the full sweep. Progress is reported through `progress`
    /// (workload, config name) before each run when provided.
    pub fn run_with_progress(&self, mut progress: impl FnMut(Workload, &str)) -> ExperimentResults {
        assert!(!self.configs.is_empty(), "add at least one configuration");
        assert!(!self.workloads.is_empty(), "add at least one workload");
        let mut rows = Vec::new();
        for &workload in &self.workloads {
            for (config_index, config) in self.configs.iter().enumerate() {
                progress(workload, &config.name);
                let summary =
                    Simulator::new(config.clone()).run(workload, self.scale, self.max_insts);
                rows.push(ResultRow {
                    config_index,
                    workload,
                    summary,
                });
            }
        }
        ExperimentResults {
            configs: self.configs.clone(),
            workloads: self.workloads.clone(),
            rows,
        }
    }

    /// Run the full sweep silently.
    pub fn run(&self) -> ExperimentResults {
        self.run_with_progress(|_, _| {})
    }

    /// Run the sweep across `threads` worker threads (each run is
    /// independent and deterministic, so results are identical to
    /// [`Experiment::run`] — only wall-clock changes). `threads = 0`
    /// uses the machine's available parallelism.
    pub fn run_parallel(&self, threads: usize) -> ExperimentResults {
        assert!(!self.configs.is_empty(), "add at least one configuration");
        assert!(!self.workloads.is_empty(), "add at least one workload");
        let workers = if threads == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            threads
        };
        // The job grid, round-robin across workers for rough balance.
        let jobs: Vec<(usize, Workload)> = self
            .workloads
            .iter()
            .flat_map(|&workload| (0..self.configs.len()).map(move |index| (index, workload)))
            .collect();
        let mut rows: Vec<ResultRow> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers.min(jobs.len().max(1)))
                .map(|worker| {
                    let jobs = &jobs;
                    let configs = &self.configs;
                    let scale = self.scale;
                    let max_insts = self.max_insts;
                    scope.spawn(move || {
                        jobs.iter()
                            .skip(worker)
                            .step_by(workers)
                            .map(|&(config_index, workload)| {
                                let summary = Simulator::new(configs[config_index].clone())
                                    .run(workload, scale, max_insts);
                                ResultRow {
                                    config_index,
                                    workload,
                                    summary,
                                }
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|handle| handle.join().expect("worker panicked"))
                .collect()
        });
        // Restore the canonical (workload-major, config) order.
        let workload_rank = |w: Workload| {
            self.workloads
                .iter()
                .position(|&x| x == w)
                .expect("job from grid")
        };
        rows.sort_by_key(|row| (workload_rank(row.workload), row.config_index));
        ExperimentResults {
            configs: self.configs.clone(),
            workloads: self.workloads.clone(),
            rows,
        }
    }
}

/// The completed sweep, with table builders.
#[derive(Debug, Clone)]
pub struct ExperimentResults {
    configs: Vec<SimConfig>,
    workloads: Vec<Workload>,
    rows: Vec<ResultRow>,
}

impl ExperimentResults {
    /// All rows, in (workload-major, configuration) order.
    pub fn rows(&self) -> &[ResultRow] {
        &self.rows
    }

    /// The configurations swept.
    pub fn configs(&self) -> &[SimConfig] {
        &self.configs
    }

    /// The cell for (workload, config index), if present.
    pub fn cell(&self, workload: Workload, config_index: usize) -> Option<&RunSummary> {
        self.rows
            .iter()
            .find(|row| row.workload == workload && row.config_index == config_index)
            .map(|row| &row.summary)
    }

    /// Geometric-mean IPC across workloads for one configuration.
    pub fn geomean_ipc(&self, config_index: usize) -> f64 {
        geometric_mean(
            self.rows
                .iter()
                .filter(|row| row.config_index == config_index)
                .map(|row| row.summary.ipc),
        )
        .unwrap_or(0.0)
    }

    /// Geometric-mean IPC relative to a reference configuration.
    pub fn geomean_relative(&self, config_index: usize, reference_index: usize) -> f64 {
        geometric_mean(self.workloads.iter().filter_map(|&workload| {
            let this = self.cell(workload, config_index)?;
            let reference = self.cell(workload, reference_index)?;
            Some(this.relative_ipc(reference))
        }))
        .unwrap_or(0.0)
    }

    /// IPC per workload per configuration, plus a geomean row.
    pub fn ipc_table(&self) -> Table {
        let mut header = vec!["workload".to_string()];
        header.extend(self.configs.iter().map(|c| c.name.clone()));
        let mut table = Table::new(header);
        for &workload in &self.workloads {
            let mut row = vec![workload.name().to_string()];
            for index in 0..self.configs.len() {
                row.push(match self.cell(workload, index) {
                    Some(summary) => format!("{:.3}", summary.ipc),
                    None => "-".to_string(),
                });
            }
            table.row(row);
        }
        let mut geo = vec!["geomean".to_string()];
        for index in 0..self.configs.len() {
            geo.push(format!("{:.3}", self.geomean_ipc(index)));
        }
        table.row(geo);
        table
    }

    /// IPC normalised to a reference configuration, plus a geomean row.
    pub fn relative_table(&self, reference_index: usize) -> Table {
        let mut header = vec!["workload".to_string()];
        header.extend(self.configs.iter().map(|c| c.name.clone()));
        let mut table = Table::new(header);
        for &workload in &self.workloads {
            let mut row = vec![workload.name().to_string()];
            let reference = self.cell(workload, reference_index);
            for index in 0..self.configs.len() {
                row.push(match (self.cell(workload, index), reference) {
                    (Some(summary), Some(reference)) => {
                        format!("{:.3}", summary.relative_ipc(reference))
                    }
                    _ => "-".to_string(),
                });
            }
            table.row(row);
        }
        let mut geo = vec!["geomean".to_string()];
        for index in 0..self.configs.len() {
            geo.push(format!(
                "{:.3}",
                self.geomean_relative(index, reference_index)
            ));
        }
        table.row(geo);
        table
    }

    /// An arbitrary metric per workload per configuration.
    pub fn metric_table(&self, name: &str, metric: impl Fn(&RunSummary) -> f64) -> Table {
        let mut header = vec![format!("workload ({name})")];
        header.extend(self.configs.iter().map(|c| c.name.clone()));
        let mut table = Table::new(header);
        for &workload in &self.workloads {
            let mut row = vec![workload.name().to_string()];
            for index in 0..self.configs.len() {
                row.push(match self.cell(workload, index) {
                    Some(summary) => format!("{:.3}", metric(summary)),
                    None => "-".to_string(),
                });
            }
            table.row(row);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_experiment() -> ExperimentResults {
        Experiment::new(Scale::Test, Some(8_000))
            .config(SimConfig::naive_single_port())
            .config(SimConfig::dual_port())
            .workloads(&[Workload::Compress, Workload::Sort])
            .run()
    }

    #[test]
    fn sweep_covers_the_grid() {
        let results = tiny_experiment();
        assert_eq!(results.rows().len(), 4);
        for workload in [Workload::Compress, Workload::Sort] {
            for index in 0..2 {
                assert!(results.cell(workload, index).is_some());
            }
        }
        assert!(results.cell(Workload::Fft, 0).is_none());
    }

    #[test]
    fn tables_have_the_right_shape() {
        let results = tiny_experiment();
        let ipc = results.ipc_table();
        assert_eq!(ipc.len(), 3, "two workloads + geomean");
        let relative = results.relative_table(1);
        assert_eq!(relative.len(), 3);
        // The reference column normalises to 1.000.
        assert!(relative.to_csv().contains("1.000"));
        let util = results.metric_table("port util", |s| s.port_utilisation);
        assert_eq!(util.len(), 2);
    }

    #[test]
    fn geomeans_are_positive_and_ordered_sanely() {
        let results = tiny_experiment();
        let naive = results.geomean_ipc(0);
        let dual = results.geomean_ipc(1);
        assert!(naive > 0.0 && dual > 0.0);
        assert!(
            dual >= naive * 0.95,
            "dual-ported should not lose: {dual} vs {naive}"
        );
        let relative = results.geomean_relative(0, 1);
        assert!(relative <= 1.05, "naive relative to dual: {relative}");
    }

    #[test]
    fn parallel_run_matches_serial_exactly() {
        let experiment = Experiment::new(Scale::Test, Some(6_000))
            .config(SimConfig::naive_single_port())
            .config(SimConfig::dual_port())
            .workloads(&[Workload::Compress, Workload::Sort]);
        let serial = experiment.run();
        let parallel = experiment.run_parallel(3);
        assert_eq!(serial.rows().len(), parallel.rows().len());
        for (a, b) in serial.rows().iter().zip(parallel.rows()) {
            assert_eq!(a.config_index, b.config_index);
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.summary.cycles, b.summary.cycles);
            assert_eq!(a.summary.insts, b.summary.insts);
        }
        assert_eq!(serial.ipc_table().to_csv(), parallel.ipc_table().to_csv());
    }

    #[test]
    #[should_panic(expected = "at least one configuration")]
    fn empty_experiment_is_an_error() {
        Experiment::new(Scale::Test, None)
            .workloads(&[Workload::Sort])
            .run();
    }
}
