//! `cpe-core` — the top-level API of the cache-port efficiency suite.
//!
//! This crate packages the reproduced paper's contribution as a library a
//! downstream user can drive directly:
//!
//! * [`SimConfig`] — a named machine configuration, with constructors for
//!   every design point the paper compares: the naive single-ported cache,
//!   true dual/quad porting, and each single-port technique (store
//!   buffering with port stealing, wide ports with load combining, line
//!   buffers) separately and [combined](SimConfig::combined_single_port);
//! * [`Simulator`] — binds a configuration to a workload and runs the
//!   cycle-level model end to end;
//! * [`RunSummary`] — the flattened metrics a study needs (IPC, port
//!   utilisation, portless-load fraction, miss ratios, kernel/user
//!   breakdowns);
//! * [`Experiment`] — a sweep runner producing `cpe-stats` tables, used by
//!   the benchmark harness to regenerate the paper's tables and figures;
//! * [`Simulator::try_profile`] — an instrumented run producing interval
//!   ("epoch") metrics, a self-profile, and — with the `trace` feature —
//!   the retained `cpe-trace` event window; [`profile_json`] renders the
//!   whole thing as a self-describing `--metrics-json` document —
//!   including the run's latency and occupancy *distributions* (per-path
//!   load-latency histograms with p50/p95/p99, store-commit wait, MSHR
//!   residency, and per-cycle structure occupancy);
//! * [`BenchReport`] — host-side benchmarking of the simulator itself
//!   (wall time, simulated cycles/sec, peak RSS) over the standard
//!   workloads, exported as `BENCH_*.json`;
//! * [`diff_json`] — a dependency-free, field-by-field comparison of two
//!   exported JSON documents with a relative tolerance: the regression
//!   gate behind `cpe diff`.
//!
//! # Quickstart
//!
//! ```
//! use cpe_core::{SimConfig, Simulator};
//! use cpe_workloads::{Scale, Workload};
//!
//! let dual = Simulator::new(SimConfig::dual_port())
//!     .run(Workload::Compress, Scale::Test, Some(30_000));
//! let naive = Simulator::new(SimConfig::naive_single_port())
//!     .run(Workload::Compress, Scale::Test, Some(30_000));
//! assert!(dual.ipc >= naive.ipc);
//! ```

mod backend;
mod bench;
mod config;
mod diff;
mod error;
mod experiment;
pub mod faultinject;
pub mod json;
mod metrics;
mod observe;
mod report;
mod simulator;
mod validate;

pub use backend::{BackendKind, RecordedWorkload, RECORD_HEADROOM};
pub use bench::{peak_rss_bytes, BenchEntry, BenchReport};
pub use config::SimConfig;
pub use diff::{diff_json, parse_json, DiffEntry, DiffReport, JsonValue};
pub use error::{ConfigError, SimError};
pub use experiment::{Experiment, ResultRow};
pub use json::{config_json, profile_json, summary_json, METRICS_SCHEMA};
pub use metrics::RunSummary;
pub use observe::{EpochMetrics, MetricsSeries, ProfileOptions, ProfiledRun, SelfProfile};
pub use report::{detailed_report, explain_report};
pub use simulator::Simulator;
pub use validate::validate_cpi_stacks;
// The commit-slot accounting types surface here because the CPI stack is
// part of this crate's exported documents and reports; the execution
// backend seam surfaces because [`BackendKind`] selects implementations
// of it.
pub use cpe_cpu::{CpiStack, ExecBackend, StallCause};
