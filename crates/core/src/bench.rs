//! Host-performance benchmarking of the simulator itself.
//!
//! [`BenchReport::run`] drives every standard workload through one
//! configuration, timing the host-side cost of each: wall seconds,
//! simulated cycles per host second, and (on Linux) the process's peak
//! resident set. The JSON form is written as `BENCH_<name>.json` by
//! `cpe bench` and compared across commits with `cpe diff` — the
//! simulated counters (cycles, instructions, IPC) are deterministic, so
//! any drift there is a correctness regression, while wall-time drift
//! beyond the chosen tolerance is a performance regression.

use std::fmt;
use std::time::Instant;

use cpe_stats::Table;
use cpe_workloads::{Scale, Workload};

use crate::config::SimConfig;
use crate::error::SimError;
use crate::json::METRICS_SCHEMA;
use crate::simulator::Simulator;

/// One workload's measurements.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Workload name.
    pub workload: String,
    /// Simulated cycles (deterministic for a given config and workload).
    pub cycles: u64,
    /// Committed instructions (deterministic).
    pub insts: u64,
    /// Committed IPC (deterministic).
    pub ipc: f64,
    /// Host wall-clock seconds for the run.
    pub wall_seconds: f64,
    /// Simulated cycles per host second.
    pub cycles_per_sec: f64,
    /// Committed instructions per host second. Tracks the wakeup half of
    /// the scheduler (dispatch/commit throughput), where `cycles_per_sec`
    /// tracks the select half — a regression in one but not the other
    /// localizes the cause.
    pub insts_per_sec: f64,
    /// High-water mark of the scheduler's completion-event queue.
    pub sched_events_peak: u64,
}

/// The full benchmark report for one configuration.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Report label (defaults to the config name at the CLI).
    pub name: String,
    /// Configuration name the suite ran on.
    pub config: String,
    /// Measured-instruction cap per workload.
    pub max_insts: u64,
    /// One entry per workload, in [`Workload::ALL`] order.
    pub entries: Vec<BenchEntry>,
    /// Wall seconds across the whole suite.
    pub total_wall_seconds: f64,
    /// Simulated cycles across the whole suite.
    pub total_cycles: u64,
    /// Committed instructions across the whole suite.
    pub total_insts: u64,
    /// Aggregate simulated cycles per host second.
    pub cycles_per_sec: f64,
    /// Aggregate committed instructions per host second.
    pub insts_per_sec: f64,
    /// Largest per-workload completion-event-queue high-water mark.
    pub sched_events_peak: u64,
    /// Peak resident set in bytes (`None` where /proc is unavailable).
    pub peak_rss_bytes: Option<u64>,
}

/// The process's peak resident set (VmHWM) in bytes, from
/// `/proc/self/status`. `None` on platforms without procfs.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|line| line.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

impl BenchReport {
    /// Run the standard suite ([`Workload::ALL`] at test scale, up to
    /// `max_insts` measured instructions each) under `config`.
    ///
    /// # Errors
    ///
    /// [`SimError::Watchdog`] when any workload's pipeline stops making
    /// progress.
    pub fn run(name: &str, config: &SimConfig, max_insts: u64) -> Result<BenchReport, SimError> {
        let sim = Simulator::new(config.clone());
        let mut entries = Vec::new();
        let mut total_wall = 0.0;
        for workload in Workload::ALL {
            let started = Instant::now();
            let summary = sim.try_run(workload, Scale::Test, Some(max_insts))?;
            let wall = started.elapsed().as_secs_f64();
            total_wall += wall;
            entries.push(BenchEntry {
                workload: workload.name().to_string(),
                cycles: summary.cycles,
                insts: summary.insts,
                ipc: summary.ipc,
                wall_seconds: wall,
                cycles_per_sec: if wall > 0.0 {
                    summary.cycles as f64 / wall
                } else {
                    0.0
                },
                insts_per_sec: if wall > 0.0 {
                    summary.insts as f64 / wall
                } else {
                    0.0
                },
                sched_events_peak: summary.raw.cpu.sched_events_peak.get(),
            });
        }
        Ok(BenchReport::assemble(
            name,
            &config.name,
            max_insts,
            entries,
            total_wall,
        ))
    }

    /// Fold per-workload entries into a report with suite totals.
    pub fn assemble(
        name: &str,
        config: &str,
        max_insts: u64,
        entries: Vec<BenchEntry>,
        total_wall: f64,
    ) -> BenchReport {
        let total_cycles: u64 = entries.iter().map(|e| e.cycles).sum();
        let total_insts: u64 = entries.iter().map(|e| e.insts).sum();
        let sched_events_peak = entries
            .iter()
            .map(|e| e.sched_events_peak)
            .max()
            .unwrap_or(0);
        BenchReport {
            name: name.to_string(),
            config: config.to_string(),
            max_insts,
            entries,
            total_wall_seconds: total_wall,
            total_cycles,
            total_insts,
            cycles_per_sec: if total_wall > 0.0 {
                total_cycles as f64 / total_wall
            } else {
                0.0
            },
            insts_per_sec: if total_wall > 0.0 {
                total_insts as f64 / total_wall
            } else {
                0.0
            },
            sched_events_peak,
            peak_rss_bytes: peak_rss_bytes(),
        }
    }

    /// The report as a self-describing JSON document (the `BENCH_*.json`
    /// artifact).
    pub fn to_json(&self) -> String {
        let entries: Vec<String> = self
            .entries
            .iter()
            .map(|e| {
                format!(
                    "\"{}\":{{\"cycles\":{},\"insts\":{},\"ipc\":{},\"wall_seconds\":{},\
                     \"cycles_per_sec\":{},\"insts_per_sec\":{},\"sched_events_peak\":{}}}",
                    crate::json::escape(&e.workload),
                    e.cycles,
                    e.insts,
                    crate::json::num(e.ipc),
                    crate::json::num(e.wall_seconds),
                    crate::json::num(e.cycles_per_sec),
                    crate::json::num(e.insts_per_sec),
                    e.sched_events_peak
                )
            })
            .collect();
        let rss = match self.peak_rss_bytes {
            Some(bytes) => bytes.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"schema\":{},\"kind\":\"bench\",\"name\":\"{}\",\"config\":\"{}\",\
             \"max_insts\":{},\"total\":{{\"wall_seconds\":{},\"cycles\":{},\"insts\":{},\
             \"cycles_per_sec\":{},\"insts_per_sec\":{},\"sched_events_peak\":{},\
             \"peak_rss_bytes\":{}}},\"workloads\":{{{}}}}}",
            METRICS_SCHEMA,
            crate::json::escape(&self.name),
            crate::json::escape(&self.config),
            self.max_insts,
            crate::json::num(self.total_wall_seconds),
            self.total_cycles,
            self.total_insts,
            crate::json::num(self.cycles_per_sec),
            crate::json::num(self.insts_per_sec),
            self.sched_events_peak,
            rss,
            entries.join(",")
        )
    }
}

impl fmt::Display for BenchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut table = Table::new([
            "workload", "cycles", "insts", "IPC", "wall s", "Mcyc/s", "Minst/s", "evq peak",
        ]);
        for e in &self.entries {
            table.row([
                e.workload.clone(),
                e.cycles.to_string(),
                e.insts.to_string(),
                format!("{:.3}", e.ipc),
                format!("{:.3}", e.wall_seconds),
                format!("{:.2}", e.cycles_per_sec / 1.0e6),
                format!("{:.2}", e.insts_per_sec / 1.0e6),
                e.sched_events_peak.to_string(),
            ]);
        }
        writeln!(f, "bench `{}` on `{}`:", self.name, self.config)?;
        write!(f, "{table}")?;
        let rss = match self.peak_rss_bytes {
            Some(bytes) => format!(", peak RSS {:.1} MiB", bytes as f64 / (1024.0 * 1024.0)),
            None => String::new(),
        };
        write!(
            f,
            "total: {:.3}s wall, {} cycles, {:.2} Mcyc/s{rss}",
            self.total_wall_seconds,
            self.total_cycles,
            self.cycles_per_sec / 1.0e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::{diff_json, parse_json};

    #[test]
    fn bench_covers_the_suite_and_exports_sound_json() {
        let report =
            BenchReport::run("smoke", &SimConfig::combined_single_port(), 1_000).expect("runs");
        assert_eq!(report.entries.len(), Workload::ALL.len());
        assert!(report.total_cycles > 0);
        assert!(report.total_wall_seconds >= 0.0);
        for entry in &report.entries {
            assert!(entry.cycles > 0, "{}", entry.workload);
            assert!(entry.insts > 0, "{}", entry.workload);
        }

        let json = report.to_json();
        parse_json(&json).expect("bench json parses");
        assert!(json.contains("\"kind\":\"bench\""), "{json}");
        assert!(json.contains("\"compress\":{"), "{json}");
        assert!(json.contains("\"wall_seconds\":"), "{json}");
        assert!(json.contains("\"cycles_per_sec\":"), "{json}");
        assert!(json.contains("\"insts_per_sec\":"), "{json}");
        assert!(json.contains("\"sched_events_peak\":"), "{json}");
        assert!(report.sched_events_peak > 0, "events queue saw traffic");
        // Self-diff at zero tolerance: the gate's base case.
        assert!(diff_json(&json, &json, 0.0).unwrap().is_clean());
    }

    #[test]
    fn simulated_counters_are_deterministic_across_bench_runs() {
        let a = BenchReport::run("a", &SimConfig::dual_port(), 500).expect("runs");
        let b = BenchReport::run("a", &SimConfig::dual_port(), 500).expect("runs");
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.cycles, y.cycles, "{}", x.workload);
            assert_eq!(x.insts, y.insts, "{}", x.workload);
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_reads_procfs() {
        let rss = peak_rss_bytes().expect("procfs present on Linux");
        assert!(rss > 1024 * 1024, "a test process uses more than 1 MiB");
    }
}
