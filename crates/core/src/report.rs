//! Full-detail textual reports for a single run.

use cpe_stats::{percent, Table};

use crate::metrics::RunSummary;

/// Two-decimal percentage with the same non-finite guard as
/// [`percent`] — a `0/0` ratio renders as `"-"`, never `"NaN%"`.
fn percent2(fraction: f64) -> String {
    if fraction.is_finite() {
        format!("{:.2}%", fraction * 100.0)
    } else {
        "-".to_string()
    }
}

/// Render a multi-section report covering every counter group of a run:
/// the headline metrics, where loads were served, store-path behaviour,
/// pipeline friction, and the per-cycle distributions as ASCII charts.
///
/// This is what `cpe run --detail` prints; it is also convenient in test
/// failure messages.
pub fn detailed_report(summary: &RunSummary) -> String {
    let cpu = &summary.raw.cpu;
    let mem = &summary.raw.mem;
    let mut out = String::new();
    let section = |out: &mut String, title: &str| {
        out.push_str(&format!("\n### {title}\n\n"));
    };

    out.push_str(&format!(
        "# {} on `{}`\n\n{} instructions in {} cycles — IPC {:.3}\n",
        summary.workload, summary.config, summary.insts, summary.cycles, summary.ipc
    ));

    section(&mut out, "headline");
    let mut t = Table::new(["metric", "value"]);
    t.row(["IPC", &format!("{:.3}", summary.ipc)])
        .row([
            "user / kernel IPC",
            &format!("{:.3} / {:.3}", summary.user_ipc, summary.kernel_ipc),
        ])
        .row([
            "kernel instruction share",
            &percent(summary.kernel_fraction),
        ])
        .row([
            "loads / stores per ki",
            &format!(
                "{:.0} / {:.0}",
                summary.loads_per_kinst, summary.stores_per_kinst
            ),
        ])
        .row([
            "D-MPKI / I-MPKI",
            &format!("{:.2} / {:.2}", summary.dcache_mpki, summary.icache_mpki),
        ])
        .row(["branch mispredict rate", &percent2(summary.mispredict_rate)]);
    out.push_str(&t.to_markdown());

    section(&mut out, "CPI stack");
    let width = cpu.commit_width.max(1);
    let total_slots = cpu.cpi_stack.total();
    let slot_cpi = |slots: u64| {
        if summary.insts == 0 {
            "-".to_string()
        } else {
            format!("{:.4}", slots as f64 / width as f64 / summary.insts as f64)
        }
    };
    let mut t = Table::new(["cause", "slots", "% of slots", "CPI"]);
    for (cause, slots) in cpu.cpi_stack.iter() {
        t.row([
            cause.name().to_string(),
            slots.to_string(),
            // 0/0 renders "-" on an empty run.
            percent2(slots as f64 / total_slots as f64),
            slot_cpi(slots),
        ]);
    }
    let total_share = if total_slots == 0 { f64::NAN } else { 1.0 };
    t.row([
        "total".to_string(),
        total_slots.to_string(),
        percent2(total_share),
        slot_cpi(total_slots),
    ]);
    out.push_str(&t.to_markdown());

    section(&mut out, "load sourcing");
    let loads = mem.loads.get().max(1) as f64;
    let mut t = Table::new(["source", "count", "% of loads"]);
    for (label, count) in [
        ("L1 port hit", mem.load_l1_hits.get()),
        ("line buffer (portless)", mem.load_lb_hits.get()),
        ("combined access (portless)", mem.load_combined.get()),
        (
            "store-buffer forward (portless)",
            mem.load_sb_forwards.get(),
        ),
        ("merged into outstanding miss", mem.load_miss_merged.get()),
        ("new miss", mem.load_misses.get()),
        ("LSQ forward (never left the core)", cpu.lsq_forwards.get()),
    ] {
        t.row([
            label.to_string(),
            count.to_string(),
            format!("{:.1}", count as f64 * 100.0 / loads),
        ]);
    }
    out.push_str(&t.to_markdown());

    section(&mut out, "store path");
    let mut t = Table::new(["metric", "value"]);
    t.row(["stores accepted", &mem.stores.get().to_string()])
        .row([
            "write-combined",
            &format!(
                "{} ({})",
                mem.store_combined.get(),
                percent(summary.store_combined_fraction)
            ),
        ])
        .row([
            "drained through idle slots",
            &mem.store_drains.get().to_string(),
        ])
        .row([
            "commit stalls / kilocycle",
            &format!("{:.1}", summary.store_stall_per_kcycle),
        ])
        .row(["write-throughs", &mem.write_throughs.get().to_string()]);
    out.push_str(&t.to_markdown());

    section(&mut out, "ports and hierarchy");
    let mut t = Table::new(["metric", "value"]);
    t.row(["port utilisation", &percent(summary.port_utilisation)])
        .row([
            "bank conflicts / ki",
            &format!("{:.2}", summary.bank_conflicts_per_kinst),
        ])
        .row([
            "L2 hits / misses",
            &format!("{} / {}", mem.l2_hits.get(), mem.l2_misses.get()),
        ])
        .row(["writebacks", &mem.writebacks.get().to_string()])
        .row([
            "prefetches (useful)",
            &format!("{} ({})", mem.prefetches.get(), mem.prefetch_useful.get()),
        ])
        .row(["victim-cache hits", &mem.victim_hits.get().to_string()]);
    out.push_str(&t.to_markdown());

    section(&mut out, "pipeline friction");
    let mut t = Table::new(["event", "count"]);
    t.row([
        "fetch stalls: redirect cycles",
        &cpu.fetch_redirect_stall_cycles.get().to_string(),
    ])
    .row([
        "fetch stalls: icache cycles",
        &cpu.fetch_icache_stall_cycles.get().to_string(),
    ])
    .row([
        "dispatch halts: ROB full",
        &cpu.dispatch_rob_full.get().to_string(),
    ])
    .row([
        "dispatch halts: LQ/SQ full",
        &cpu.dispatch_lsq_full.get().to_string(),
    ])
    .row([
        "load ordering stalls",
        &cpu.lsq_order_stalls.get().to_string(),
    ])
    .row(["load retries: no port", &mem.load_no_port.get().to_string()])
    .row([
        "load retries: MSHRs full",
        &mem.load_mshr_full.get().to_string(),
    ])
    .row([
        "misfetches / indirect mispredicts",
        &format!(
            "{} / {}",
            cpu.misfetches.get(),
            cpu.indirect_mispredicts.get()
        ),
    ]);
    out.push_str(&t.to_markdown());

    section(&mut out, "load latency by path");
    let pct = |value: Option<u64>| value.map_or_else(|| "-".to_string(), |v| v.to_string());
    let mut t = Table::new(["path", "n", "mean", "p50", "p95", "p99", "max"]);
    let mut latency_rows = vec![("all loads", &mem.load_latency)];
    latency_rows.extend(mem.load_latency_paths());
    latency_rows.push(("store commit wait", &mem.store_commit_latency));
    latency_rows.push(("MSHR residency", &mem.mshr_residency));
    for (label, hist) in latency_rows {
        t.row([
            label.to_string(),
            hist.total().to_string(),
            format!("{:.1}", hist.mean()),
            pct(hist.p50()),
            pct(hist.p95()),
            pct(hist.p99()),
            hist.max_seen().to_string(),
        ]);
    }
    out.push_str(&t.to_markdown());

    section(&mut out, "occupancy");
    let mut t = Table::new(["structure", "mean", "max"]);
    for (label, hist) in [
        ("ROB entries", &cpu.rob_occupancy),
        ("LSQ entries", &cpu.lsq_occupancy),
        ("MSHRs", &mem.mshr_occupancy),
        ("store-buffer entries", &mem.store_buffer_occupancy),
        ("port requests denied per cycle", &mem.port_queue_depth),
    ] {
        t.row([
            label.to_string(),
            format!("{:.2}", hist.mean()),
            hist.max_seen().to_string(),
        ]);
    }
    out.push_str(&t.to_markdown());

    section(&mut out, "port slots used per cycle");
    out.push_str(&mem.slots_per_cycle.to_ascii_chart(40));
    section(&mut out, "commits per cycle");
    out.push_str(&cpu.commits_per_cycle.to_ascii_chart(40));

    out
}

/// Compare two runs' CPI stacks cause by cause — the payload of
/// `cpe explain`. Every commit slot of each run is attributed to exactly
/// one cause, so the per-cause CPI deltas account for the *entire* gap
/// between the two machines; rows are ranked by delta magnitude, so the
/// first rows name where the gap comes from.
pub fn explain_report(a: &RunSummary, b: &RunSummary) -> String {
    let cause_cpi = |summary: &RunSummary, slots: u64| {
        if summary.insts == 0 {
            f64::NAN
        } else {
            slots as f64 / summary.raw.cpu.commit_width.max(1) as f64 / summary.insts as f64
        }
    };
    let fmt = |value: f64| {
        if value.is_finite() {
            format!("{value:.4}")
        } else {
            "-".to_string()
        }
    };
    let fmt_delta = |value: f64| {
        if value.is_finite() {
            format!("{value:+.4}")
        } else {
            "-".to_string()
        }
    };
    let mut out = String::new();
    out.push_str(&format!(
        "# CPI stack comparison on {}\n\n\
         a = `{}`: IPC {:.3} over {} insts in {} cycles\n\
         b = `{}`: IPC {:.3} over {} insts in {} cycles\n\n",
        a.workload, a.config, a.ipc, a.insts, a.cycles, b.config, b.ipc, b.insts, b.cycles
    ));
    let mut rows: Vec<(&str, f64, f64, f64)> = a
        .raw
        .cpu
        .cpi_stack
        .iter()
        .map(|(cause, slots_a)| {
            let cpi_a = cause_cpi(a, slots_a);
            let cpi_b = cause_cpi(b, b.raw.cpu.cpi_stack.get(cause));
            (cause.name(), cpi_a, cpi_b, cpi_b - cpi_a)
        })
        .collect();
    rows.sort_by(|x, y| {
        y.3.abs()
            .partial_cmp(&x.3.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut t = Table::new(["cause", "CPI a", "CPI b", "delta (b-a)"]);
    for (name, cpi_a, cpi_b, delta) in rows {
        t.row([name.to_string(), fmt(cpi_a), fmt(cpi_b), fmt_delta(delta)]);
    }
    let total_a = cause_cpi(a, a.raw.cpu.cpi_stack.total());
    let total_b = cause_cpi(b, b.raw.cpu.cpi_stack.total());
    t.row([
        "total".to_string(),
        fmt(total_a),
        fmt(total_b),
        fmt_delta(total_b - total_a),
    ]);
    out.push_str(&t.to_markdown());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Simulator};
    use cpe_workloads::{Scale, Workload};

    #[test]
    fn report_covers_every_section() {
        let summary = Simulator::new(SimConfig::combined_single_port()).run(
            Workload::Compress,
            Scale::Test,
            Some(10_000),
        );
        let report = detailed_report(&summary);
        for heading in [
            "### headline",
            "### CPI stack",
            "### load sourcing",
            "### store path",
            "### ports and hierarchy",
            "### pipeline friction",
            "### load latency by path",
            "### occupancy",
            "### port slots used per cycle",
            "### commits per cycle",
        ] {
            assert!(report.contains(heading), "missing {heading}:\n{report}");
        }
        assert!(report.contains("IPC"));
        assert!(report.contains('#'), "charts render bars");
        // The latency table distinguishes serving paths and carries real
        // percentiles for the run's loads.
        assert!(report.contains("all loads"), "{report}");
        assert!(report.contains("l1_port_hit"), "{report}");
        assert!(report.contains("MSHR residency"), "{report}");
        assert!(report.contains("LSQ entries"), "{report}");
        // The CPI stack names every cause and closes with its total.
        assert!(report.contains("dcache_port_conflict"), "{report}");
        assert!(report.contains("fetch_starved"), "{report}");
        assert!(report.contains("100.00%"), "{report}");
    }

    #[test]
    fn explain_ranks_causes_by_cpi_delta() {
        let max = Some(10_000);
        let a = Simulator::new(SimConfig::naive_single_port()).run(
            Workload::Compress,
            Scale::Test,
            max,
        );
        let b = Simulator::new(SimConfig::dual_port()).run(Workload::Compress, Scale::Test, max);
        let report = explain_report(&a, &b);
        assert!(report.contains("a = `1-port naive`"), "{report}");
        assert!(report.contains("b = `2-port`"), "{report}");
        assert!(report.contains("dcache_port_conflict"), "{report}");
        assert!(report.contains("delta (b-a)"), "{report}");
        assert!(report.contains("total"), "{report}");
        assert!(!report.contains("NaN"), "{report}");
        // The single-ported machine pays a port-conflict CPI component the
        // dual-ported one all but avoids, so the row's delta is negative.
        let conflict_row = report
            .lines()
            .find(|l| l.contains("dcache_port_conflict"))
            .expect("conflict row present");
        assert!(conflict_row.contains("-0."), "{conflict_row}");
    }

    #[test]
    fn explain_survives_empty_runs() {
        let sim = Simulator::new(SimConfig::naive_single_port());
        let a = sim.run_trace("empty", std::iter::empty(), None);
        let b = sim.run_trace("empty", std::iter::empty(), None);
        let report = explain_report(&a, &b);
        assert!(!report.contains("NaN"), "{report}");
        assert!(!report.contains("inf"), "{report}");
    }

    #[test]
    fn zero_instruction_trace_renders_without_nan() {
        // A run that commits nothing: every rate in the report has a zero
        // denominator somewhere upstream. No row may render NaN or inf.
        let summary = Simulator::new(SimConfig::naive_single_port()).run_trace(
            "empty",
            std::iter::empty(),
            None,
        );
        assert_eq!(summary.insts, 0);
        assert_eq!(summary.raw.mem.loads.get(), 0);
        assert_eq!(summary.raw.mem.stores.get(), 0);
        let report = detailed_report(&summary);
        assert!(!report.contains("NaN"), "{report}");
        assert!(!report.contains("inf"), "{report}");
        // The one-line Display form must survive the same run.
        let line = summary.to_string();
        assert!(!line.contains("NaN"), "{line}");
    }

    #[test]
    fn report_is_plain_printable_text() {
        let summary =
            Simulator::new(SimConfig::dual_port()).run(Workload::Sort, Scale::Test, Some(5_000));
        let report = detailed_report(&summary);
        assert!(report.lines().count() > 40);
        assert!(!report.contains('\t'), "tables are space-aligned");
    }
}
