//! Typed failures of the simulation pipeline.
//!
//! Everything that can go wrong between "here is a configuration and a
//! workload" and "here is a [`crate::RunSummary`]" is enumerated here, so
//! sweep drivers can isolate a failed design point, label it, and keep
//! going — a panic in one cell must never take down a table.

use std::fmt;

use cpe_cpu::WatchdogReport;

/// An inconsistent machine configuration, rejected before any cycle runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// Name of the offending configuration.
    pub config: String,
    /// The first inconsistency found.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid configuration `{}`: {}",
            self.config, self.message
        )
    }
}

impl std::error::Error for ConfigError {}

/// Any way a single simulation run can fail.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The configuration never could have run.
    InvalidConfig(ConfigError),
    /// The input trace was unreadable or corrupt.
    Trace {
        /// Zero-based index of the first bad record (records successfully
        /// decoded before it were simulated).
        index: u64,
        /// The decoder's diagnosis.
        message: String,
    },
    /// The pipeline stopped committing instructions and the livelock
    /// watchdog aborted the run.
    Watchdog(Box<WatchdogReport>),
    /// An isolated worker (a sweep cell) panicked.
    WorkerPanic {
        /// Best-effort rendering of the panic payload.
        message: String,
    },
    /// A job failed on the far side of the distributed fabric, or the
    /// fabric itself gave up on it (retry exhaustion, reassignment
    /// exhaustion, protocol violation).
    Fabric {
        /// The remote failure's kind label when one was relayed
        /// (`"watchdog"`, `"panic"`, …), or `"fabric"` for failures of
        /// the fabric itself. [`SimError::kind`] maps known labels back
        /// to their local kinds so a deterministic remote failure
        /// renders the same `FAILED(<kind>)` cell a local run would.
        kind: String,
        /// What happened, including how many attempts were spent.
        message: String,
    },
}

impl SimError {
    /// Short category label, used in `FAILED(<kind>)` table cells.
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::InvalidConfig(_) => "config",
            SimError::Trace { .. } => "trace",
            SimError::Watchdog(_) => "watchdog",
            SimError::WorkerPanic { .. } => "panic",
            SimError::Fabric { kind, .. } => match kind.as_str() {
                "config" => "config",
                "trace" => "trace",
                "watchdog" => "watchdog",
                "panic" => "panic",
                _ => "fabric",
            },
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(error) => error.fmt(f),
            SimError::Trace { index, message } => {
                write!(f, "trace unusable at record {index}: {message}")
            }
            SimError::Watchdog(report) => report.fmt(f),
            SimError::WorkerPanic { message } => {
                write!(f, "simulation worker panicked: {message}")
            }
            SimError::Fabric { kind, message } => {
                write!(f, "fabric job failed ({kind}): {message}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::InvalidConfig(error) => Some(error),
            SimError::Watchdog(report) => Some(report.as_ref()),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(error: ConfigError) -> SimError {
        SimError::InvalidConfig(error)
    }
}

impl From<Box<WatchdogReport>> for SimError {
    fn from(report: Box<WatchdogReport>) -> SimError {
        SimError::Watchdog(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_labels() {
        let config = SimError::from(ConfigError {
            config: "weird".to_string(),
            message: "zero ports".to_string(),
        });
        assert_eq!(config.kind(), "config");
        let trace = SimError::Trace {
            index: 7,
            message: "bad flags".to_string(),
        };
        assert_eq!(trace.kind(), "trace");
        let panic = SimError::WorkerPanic {
            message: "boom".to_string(),
        };
        assert_eq!(panic.kind(), "panic");
    }

    #[test]
    fn fabric_kinds_map_relayed_labels_back_to_local_kinds() {
        let relayed = SimError::Fabric {
            kind: "watchdog".to_string(),
            message: "remote watchdog abort".to_string(),
        };
        assert_eq!(relayed.kind(), "watchdog");
        let fabric = SimError::Fabric {
            kind: "lease-expired".to_string(),
            message: "gave up after 16 reassignments".to_string(),
        };
        assert_eq!(fabric.kind(), "fabric");
        assert!(fabric.to_string().contains("lease-expired"));
    }

    #[test]
    fn display_carries_the_diagnosis() {
        let error = SimError::Trace {
            index: 3,
            message: "undefined flags 0x88".to_string(),
        };
        let text = error.to_string();
        assert!(text.contains("record 3"), "{text}");
        assert!(text.contains("undefined flags"), "{text}");
        let config = ConfigError {
            config: "1-port naive".to_string(),
            message: "issue width must be positive".to_string(),
        };
        let text = config.to_string();
        assert!(text.contains("`1-port naive`"), "{text}");
        assert!(text.contains("issue width"), "{text}");
    }
}
