//! Binding a configuration to a workload and running it.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use cpe_cpu::Core;
use cpe_isa::DynInst;
use cpe_mem::MemSystem;
use cpe_workloads::{Scale, Workload};

use crate::config::SimConfig;
use crate::error::{ConfigError, SimError};
use crate::metrics::RunSummary;

/// Runs the cycle-level machine described by a [`SimConfig`].
///
/// A `Simulator` is reusable: each [`Simulator::run`] builds a fresh cold
/// machine, so runs never contaminate each other.
///
/// ```
/// use cpe_core::{SimConfig, Simulator};
/// use cpe_workloads::{Scale, Workload};
///
/// let summary = Simulator::new(SimConfig::combined_single_port())
///     .run(Workload::Sort, Scale::Test, Some(20_000));
/// assert!(summary.ipc > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Create a simulator for the given configuration, rejecting
    /// inconsistent ones with a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] naming the configuration and the first
    /// inconsistency.
    pub fn try_new(config: SimConfig) -> Result<Simulator, ConfigError> {
        config.validate()?;
        Ok(Simulator { config })
    }

    /// Create a simulator for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is inconsistent; sweep drivers that
    /// must survive bad cells use [`Simulator::try_new`].
    pub fn new(config: SimConfig) -> Simulator {
        match Simulator::try_new(config) {
            Ok(simulator) => simulator,
            Err(error) => panic!("{error}"),
        }
    }

    /// The configuration this simulator runs.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Run a named workload at `scale`, optionally capping committed
    /// instructions (recommended for comparative sweeps so every
    /// configuration executes the same instruction window).
    ///
    /// # Panics
    ///
    /// Panics when the livelock watchdog aborts the run; use
    /// [`Simulator::try_run`] to handle that as an error.
    pub fn run(&self, workload: Workload, scale: Scale, max_insts: Option<u64>) -> RunSummary {
        match self.try_run(workload, scale, max_insts) {
            Ok(summary) => summary,
            Err(error) => panic!("{error}"),
        }
    }

    /// Fallible form of [`Simulator::run`].
    ///
    /// # Errors
    ///
    /// [`SimError::Watchdog`] when the pipeline stops making progress.
    pub fn try_run(
        &self,
        workload: Workload,
        scale: Scale,
        max_insts: Option<u64>,
    ) -> Result<RunSummary, SimError> {
        let trace = workload.trace(scale);
        self.try_run_trace(workload.name(), trace, max_insts)
    }

    /// Run an arbitrary committed-path instruction stream.
    ///
    /// # Panics
    ///
    /// Panics when the livelock watchdog aborts the run.
    pub fn run_trace<I>(&self, label: &str, trace: I, max_insts: Option<u64>) -> RunSummary
    where
        I: Iterator<Item = DynInst>,
    {
        match self.try_run_trace(label, trace, max_insts) {
            Ok(summary) => summary,
            Err(error) => panic!("{error}"),
        }
    }

    /// Fallible form of [`Simulator::run_trace`].
    ///
    /// # Errors
    ///
    /// [`SimError::Watchdog`] when the pipeline stops making progress.
    pub fn try_run_trace<I>(
        &self,
        label: &str,
        trace: I,
        max_insts: Option<u64>,
    ) -> Result<RunSummary, SimError>
    where
        I: Iterator<Item = DynInst>,
    {
        let mem = MemSystem::new(self.config.mem);
        let core = Core::new(self.config.cpu, mem, trace);
        let result = core.try_run(max_insts)?;
        Ok(RunSummary::new(&self.config.name, label, result))
    }

    /// Run a stream whose records may themselves fail to decode — e.g. a
    /// [`cpe_isa::trace_io::TraceReader`] over an untrusted file. Records
    /// before the first bad one are simulated; the bad record aborts the
    /// run with its index and diagnosis instead of a partial, silently
    /// truncated summary.
    ///
    /// # Errors
    ///
    /// [`SimError::Trace`] on the first undecodable record,
    /// [`SimError::Watchdog`] when the pipeline stops making progress.
    pub fn try_run_trace_results<I, E>(
        &self,
        label: &str,
        trace: I,
        max_insts: Option<u64>,
    ) -> Result<RunSummary, SimError>
    where
        I: Iterator<Item = Result<DynInst, E>>,
        E: fmt::Display,
    {
        let first_error: Rc<RefCell<Option<(u64, String)>>> = Rc::new(RefCell::new(None));
        let adapter = FallibleTrace {
            inner: trace,
            index: 0,
            first_error: Rc::clone(&first_error),
        };
        let outcome = self.try_run_trace(label, adapter, max_insts);
        // A corrupt record truncates the stream the core saw, so the trace
        // error outranks whatever the run made of the shortened tail.
        if let Some((index, message)) = first_error.borrow_mut().take() {
            return Err(SimError::Trace { index, message });
        }
        outcome
    }

    /// Run with a warm-up window: statistics reset after `warmup_insts`
    /// committed instructions (structures stay warm), and `max_insts`
    /// bounds the measured window — the standard sampled-simulation
    /// methodology.
    ///
    /// # Panics
    ///
    /// Panics when the livelock watchdog aborts the run.
    pub fn run_warmed(
        &self,
        workload: Workload,
        scale: Scale,
        warmup_insts: u64,
        max_insts: Option<u64>,
    ) -> RunSummary {
        match self.try_run_warmed(workload, scale, warmup_insts, max_insts) {
            Ok(summary) => summary,
            Err(error) => panic!("{error}"),
        }
    }

    /// Fallible form of [`Simulator::run_warmed`].
    ///
    /// # Errors
    ///
    /// [`SimError::Watchdog`] when the pipeline stops making progress.
    pub fn try_run_warmed(
        &self,
        workload: Workload,
        scale: Scale,
        warmup_insts: u64,
        max_insts: Option<u64>,
    ) -> Result<RunSummary, SimError> {
        let mem = MemSystem::new(self.config.mem);
        let core = Core::new(self.config.cpu, mem, workload.trace(scale));
        let result = core.try_run_warmed(warmup_insts, max_insts)?;
        Ok(RunSummary::new(&self.config.name, workload.name(), result))
    }
}

/// Feeds the core from a fallible record stream, parking the first error
/// (with its record index) where the caller can retrieve it after the run.
struct FallibleTrace<I> {
    inner: I,
    index: u64,
    first_error: Rc<RefCell<Option<(u64, String)>>>,
}

impl<I, E> Iterator for FallibleTrace<I>
where
    I: Iterator<Item = Result<DynInst, E>>,
    E: fmt::Display,
{
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        match self.inner.next()? {
            Ok(di) => {
                self.index += 1;
                Some(di)
            }
            Err(error) => {
                *self.first_error.borrow_mut() = Some((self.index, error.to_string()));
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    // Tests tweak one field of a default config at a time; the
    // struct-update suggestion reads worse there.
    #![allow(clippy::field_reassign_with_default)]

    use super::*;
    use cpe_workloads::synth::{SynthConfig, SyntheticTrace};

    #[test]
    fn runs_are_reproducible_and_cold() {
        let sim = Simulator::new(SimConfig::naive_single_port());
        let a = sim.run(Workload::Compress, Scale::Test, Some(20_000));
        let b = sim.run(Workload::Compress, Scale::Test, Some(20_000));
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.insts, b.insts);
    }

    #[test]
    fn max_insts_caps_the_window() {
        let sim = Simulator::new(SimConfig::naive_single_port());
        let capped = sim.run(Workload::Compress, Scale::Test, Some(5_000));
        assert!(
            capped.insts >= 5_000 && capped.insts < 6_000,
            "{}",
            capped.insts
        );
    }

    #[test]
    fn synthetic_traces_run_too() {
        let mut synth = SynthConfig::default();
        synth.insts = 20_000;
        let sim = Simulator::new(SimConfig::dual_port());
        let summary = sim.run_trace("synth", SyntheticTrace::new(synth), None);
        assert_eq!(summary.insts, 20_000);
        assert!(summary.ipc > 0.1);
        assert_eq!(summary.workload, "synth");
        assert_eq!(summary.config, "2-port");
    }

    #[test]
    fn try_new_rejects_inconsistent_configs() {
        let mut config = SimConfig::naive_single_port();
        config.cpu.issue_width = 0;
        let error = Simulator::try_new(config).expect_err("zero issue width");
        assert!(error.message.contains("issue width"), "{}", error.message);
    }

    #[test]
    fn corrupt_trace_records_become_typed_errors() {
        use cpe_isa::trace_io::{write_trace, TraceReader};

        let mut synth = SynthConfig::default();
        synth.insts = 200;
        let trace: Vec<_> = SyntheticTrace::new(synth).collect();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, trace).expect("in-memory write");
        bytes.truncate(bytes.len() - 5);

        let sim = Simulator::new(SimConfig::naive_single_port());
        let reader = TraceReader::new(bytes.as_slice()).expect("header survives");
        let error = sim
            .try_run_trace_results("synth", reader, None)
            .expect_err("truncated record must not pass silently");
        match &error {
            SimError::Trace { index, message } => {
                assert_eq!(*index, 199);
                assert!(!message.is_empty());
            }
            other => panic!("expected a trace error, got {other:?}"),
        }
        assert_eq!(error.kind(), "trace");
    }

    #[test]
    fn clean_fallible_traces_run_to_completion() {
        let mut synth = SynthConfig::default();
        synth.insts = 5_000;
        let trace: Vec<_> = SyntheticTrace::new(synth).collect();
        let sim = Simulator::new(SimConfig::naive_single_port());
        let summary = sim
            .try_run_trace_results(
                "synth",
                trace.into_iter().map(Ok::<_, std::io::Error>),
                None,
            )
            .expect("clean stream");
        assert_eq!(summary.insts, 5_000);
    }

    #[test]
    fn warmup_excludes_cold_start_misses() {
        let sim = Simulator::new(SimConfig::dual_port());
        // Windows wide enough to average over program phases: the warmed
        // run measures a shifted window, so a narrow one would compare
        // different code regions rather than cold-start effects.
        let cold = sim.run(Workload::Fft, Scale::Test, Some(30_000));
        let warmed = sim.run_warmed(Workload::Fft, Scale::Test, 5_000, Some(30_000));
        // The measured window starts with warm caches: fewer misses per
        // instruction and at least equal IPC.
        assert!(
            warmed.dcache_mpki < cold.dcache_mpki,
            "{} vs {}",
            warmed.dcache_mpki,
            cold.dcache_mpki
        );
        assert!(
            warmed.ipc >= cold.ipc * 0.95,
            "{} vs {}",
            warmed.ipc,
            cold.ipc
        );
        assert!(warmed.insts <= 31_000);
    }

    #[test]
    fn headline_ordering_on_a_port_hungry_workload() {
        // mpeg (dense sequential refs) at test scale: naive 1-port <=
        // combined 1-port <= 2-port should hold as a trend.
        let window = Some(40_000);
        let naive =
            Simulator::new(SimConfig::naive_single_port()).run(Workload::Mpeg, Scale::Test, window);
        let combined = Simulator::new(SimConfig::combined_single_port()).run(
            Workload::Mpeg,
            Scale::Test,
            window,
        );
        let dual = Simulator::new(SimConfig::dual_port()).run(Workload::Mpeg, Scale::Test, window);
        assert!(
            combined.ipc > naive.ipc,
            "{} vs {}",
            combined.ipc,
            naive.ipc
        );
        assert!(
            combined.relative_ipc(&dual) > 0.7,
            "combined should recover most of the dual-port gap: {:.3}",
            combined.relative_ipc(&dual)
        );
    }
}
