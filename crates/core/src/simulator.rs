//! Binding a configuration to a workload and running it.

use cpe_cpu::Core;
use cpe_isa::DynInst;
use cpe_mem::MemSystem;
use cpe_workloads::{Scale, Workload};

use crate::config::SimConfig;
use crate::metrics::RunSummary;

/// Runs the cycle-level machine described by a [`SimConfig`].
///
/// A `Simulator` is reusable: each [`Simulator::run`] builds a fresh cold
/// machine, so runs never contaminate each other.
///
/// ```
/// use cpe_core::{SimConfig, Simulator};
/// use cpe_workloads::{Scale, Workload};
///
/// let summary = Simulator::new(SimConfig::combined_single_port())
///     .run(Workload::Sort, Scale::Test, Some(20_000));
/// assert!(summary.ipc > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Create a simulator for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is inconsistent.
    pub fn new(config: SimConfig) -> Simulator {
        config.validate();
        Simulator { config }
    }

    /// The configuration this simulator runs.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Run a named workload at `scale`, optionally capping committed
    /// instructions (recommended for comparative sweeps so every
    /// configuration executes the same instruction window).
    pub fn run(&self, workload: Workload, scale: Scale, max_insts: Option<u64>) -> RunSummary {
        let trace = workload.trace(scale);
        self.run_trace(workload.name(), trace, max_insts)
    }

    /// Run an arbitrary committed-path instruction stream.
    pub fn run_trace<I>(&self, label: &str, trace: I, max_insts: Option<u64>) -> RunSummary
    where
        I: Iterator<Item = DynInst>,
    {
        let mem = MemSystem::new(self.config.mem);
        let core = Core::new(self.config.cpu, mem, trace);
        let result = core.run(max_insts);
        RunSummary::new(&self.config.name, label, result)
    }

    /// Run with a warm-up window: statistics reset after `warmup_insts`
    /// committed instructions (structures stay warm), and `max_insts`
    /// bounds the measured window — the standard sampled-simulation
    /// methodology.
    pub fn run_warmed(
        &self,
        workload: Workload,
        scale: Scale,
        warmup_insts: u64,
        max_insts: Option<u64>,
    ) -> RunSummary {
        let mem = MemSystem::new(self.config.mem);
        let core = Core::new(self.config.cpu, mem, workload.trace(scale));
        let result = core.run_warmed(warmup_insts, max_insts);
        RunSummary::new(&self.config.name, workload.name(), result)
    }
}

#[cfg(test)]
mod tests {
    // Tests tweak one field of a default config at a time; the
    // struct-update suggestion reads worse there.
    #![allow(clippy::field_reassign_with_default)]

    use super::*;
    use cpe_workloads::synth::{SynthConfig, SyntheticTrace};

    #[test]
    fn runs_are_reproducible_and_cold() {
        let sim = Simulator::new(SimConfig::naive_single_port());
        let a = sim.run(Workload::Compress, Scale::Test, Some(20_000));
        let b = sim.run(Workload::Compress, Scale::Test, Some(20_000));
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.insts, b.insts);
    }

    #[test]
    fn max_insts_caps_the_window() {
        let sim = Simulator::new(SimConfig::naive_single_port());
        let capped = sim.run(Workload::Compress, Scale::Test, Some(5_000));
        assert!(
            capped.insts >= 5_000 && capped.insts < 6_000,
            "{}",
            capped.insts
        );
    }

    #[test]
    fn synthetic_traces_run_too() {
        let mut synth = SynthConfig::default();
        synth.insts = 20_000;
        let sim = Simulator::new(SimConfig::dual_port());
        let summary = sim.run_trace("synth", SyntheticTrace::new(synth), None);
        assert_eq!(summary.insts, 20_000);
        assert!(summary.ipc > 0.1);
        assert_eq!(summary.workload, "synth");
        assert_eq!(summary.config, "2-port");
    }

    #[test]
    fn warmup_excludes_cold_start_misses() {
        let sim = Simulator::new(SimConfig::dual_port());
        let cold = sim.run(Workload::Fft, Scale::Test, Some(10_000));
        let warmed = sim.run_warmed(Workload::Fft, Scale::Test, 5_000, Some(10_000));
        // The measured window starts with warm caches: fewer misses per
        // instruction and at least equal IPC.
        assert!(
            warmed.dcache_mpki < cold.dcache_mpki,
            "{} vs {}",
            warmed.dcache_mpki,
            cold.dcache_mpki
        );
        assert!(warmed.ipc >= cold.ipc * 0.95);
        assert!(warmed.insts <= 11_000);
    }

    #[test]
    fn headline_ordering_on_a_port_hungry_workload() {
        // mpeg (dense sequential refs) at test scale: naive 1-port <=
        // combined 1-port <= 2-port should hold as a trend.
        let window = Some(40_000);
        let naive =
            Simulator::new(SimConfig::naive_single_port()).run(Workload::Mpeg, Scale::Test, window);
        let combined = Simulator::new(SimConfig::combined_single_port()).run(
            Workload::Mpeg,
            Scale::Test,
            window,
        );
        let dual = Simulator::new(SimConfig::dual_port()).run(Workload::Mpeg, Scale::Test, window);
        assert!(
            combined.ipc > naive.ipc,
            "{} vs {}",
            combined.ipc,
            naive.ipc
        );
        assert!(
            combined.relative_ipc(&dual) > 0.7,
            "combined should recover most of the dual-port gap: {:.3}",
            combined.relative_ipc(&dual)
        );
    }
}
