//! Execution-backend selection: direct functional emulation vs
//! record-once / replay-many.
//!
//! The timing model is backend-agnostic (see [`cpe_cpu::ExecBackend`]);
//! what this module adds is the *policy* layer: a named [`BackendKind`]
//! that front ends select with `--backend`, and [`RecordedWorkload`] —
//! one workload's committed path captured once into a compact
//! [`RecordedTrace`] and replayed through any number of timing
//! configurations. Replay is byte-identical to direct execution by
//! construction: the core consumes the exact same [`cpe_isa::DynInst`]
//! sequence either way, so every counter, distribution and CPI stack
//! matches at zero tolerance.

use std::sync::Arc;

use cpe_isa::replay::{RecordedTrace, ReplayIter, REPLAY_FORMAT};
use cpe_workloads::{Scale, Workload};

use crate::error::SimError;
use crate::observe::{ProfileOptions, ProfiledRun};
use crate::simulator::Simulator;

/// How a run obtains its committed-path instruction stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Drive the functional emulator live, per run.
    #[default]
    Direct,
    /// Record the functional execution once, replay it per run.
    Replay,
}

impl BackendKind {
    /// Every backend, in presentation order.
    pub const ALL: [BackendKind; 2] = [BackendKind::Direct, BackendKind::Replay];

    /// The stable name (`"direct"`, `"replay"`), used in cache keys and
    /// CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Direct => "direct",
            BackendKind::Replay => "replay",
        }
    }

    /// Parse a backend name (the inverse of [`BackendKind::name`]).
    pub fn from_name(name: &str) -> Option<BackendKind> {
        BackendKind::ALL
            .into_iter()
            .find(|backend| backend.name() == name)
    }

    /// The trace-format version this backend's results depend on — folded
    /// into result-cache keys so a format bump invalidates replay-path
    /// entries without touching direct-path ones. Direct execution
    /// involves no recorded trace, hence 0.
    pub fn trace_format(self) -> u32 {
        match self {
            BackendKind::Direct => 0,
            BackendKind::Replay => REPLAY_FORMAT,
        }
    }
}

/// Extra records captured past a run's committed-instruction window.
///
/// The core pulls ahead of commit: the fetch buffer (2 × fetch width)
/// plus the reorder buffer can hold instructions that never commit
/// inside the window, and the end-of-stream test (`fetch_idle`, frontend
/// stall attribution) observes the stream one instruction further. The
/// largest preset machine keeps fewer than 200 instructions in flight;
/// this headroom dwarfs that by two orders of magnitude so a capped
/// recording is indistinguishable from the live stream for the whole
/// measured window.
pub const RECORD_HEADROOM: u64 = 16_384;

/// One workload's committed path, recorded once per
/// `(workload, scale, max_insts)` and shared (behind [`Arc`] clones)
/// across every timing configuration that replays it.
#[derive(Debug, Clone)]
pub struct RecordedWorkload {
    label: String,
    trace: Arc<RecordedTrace>,
}

impl RecordedWorkload {
    /// Execute `workload` functionally and capture its committed path.
    /// With a committed-instruction window the recording stops at
    /// `max_insts + RECORD_HEADROOM` records; without one it runs to the
    /// workload's halt.
    pub fn record(workload: Workload, scale: Scale, max_insts: Option<u64>) -> RecordedWorkload {
        let cap = max_insts.map(|max| max.saturating_add(RECORD_HEADROOM));
        RecordedWorkload {
            label: workload.name().to_string(),
            trace: Arc::new(RecordedTrace::record(workload.trace(scale), cap)),
        }
    }

    /// The workload name the summary is labelled with.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The underlying recording.
    pub fn trace(&self) -> &RecordedTrace {
        &self.trace
    }

    /// A fresh replay of the recording from its start.
    pub fn iter(&self) -> ReplayIter<'_> {
        self.trace.iter()
    }
}

impl Simulator {
    /// [`Simulator::try_profile`] over a shared recording instead of live
    /// functional execution — the replay backend's run path. Produces a
    /// byte-identical metrics document (outside the host-timing
    /// `self_profile`) to the direct path.
    ///
    /// # Errors
    ///
    /// [`SimError::Watchdog`] when the pipeline stops making progress.
    pub fn try_profile_recorded(
        &self,
        recorded: &RecordedWorkload,
        max_insts: Option<u64>,
        options: ProfileOptions,
    ) -> Result<ProfiledRun, SimError> {
        self.try_profile_trace(recorded.label(), recorded.iter(), max_insts, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_roundtrip() {
        for backend in BackendKind::ALL {
            assert_eq!(BackendKind::from_name(backend.name()), Some(backend));
        }
        assert_eq!(BackendKind::from_name("quantum"), None);
        assert_eq!(BackendKind::default(), BackendKind::Direct);
    }

    #[test]
    fn trace_format_separates_the_backends() {
        assert_eq!(BackendKind::Direct.trace_format(), 0);
        assert_eq!(BackendKind::Replay.trace_format(), REPLAY_FORMAT);
        assert_ne!(REPLAY_FORMAT, 0);
    }

    #[test]
    fn recording_is_shared_not_copied() {
        let recorded = RecordedWorkload::record(Workload::Sort, Scale::Test, Some(2_000));
        let clone = recorded.clone();
        assert!(Arc::ptr_eq(&recorded.trace, &clone.trace));
        assert_eq!(recorded.label(), "sort");
        // The headroom keeps a capped recording ahead of any core's
        // in-flight window.
        assert!(recorded.trace().records() > 2_000);
    }
}
