//! Machine-readable exports, hand-assembled.
//!
//! The workspace carries no serialization dependency, and everything
//! exported here is a closed set of numbers, booleans and short labels —
//! so the JSON is written out directly. Two documents are produced:
//!
//! * [`profile_json`] — the `--metrics-json` artifact: the full
//!   [`SimConfig`] (making the file self-describing), the end-of-run
//!   [`RunSummary`], the per-epoch [`MetricsSeries`], and the
//!   [`SelfProfile`];
//! * [`config_json`] — the embedded configuration object, also useful on
//!   its own.

use cpe_cpu::{CpuConfig, CpuStats, DirPredictorKind, Disambiguation, FuSpec, StallCause};
use cpe_mem::{
    CacheGeometry, Latencies, LineBufferConfig, MemConfig, PortConfig, ReplacementPolicy,
    StoreBufferConfig, TlbConfig, WritePolicy,
};
use cpe_stats::{Histogram, Log2Histogram};

use crate::config::SimConfig;
use crate::metrics::RunSummary;
use crate::observe::{EpochMetrics, ProfiledRun, SelfProfile};

/// Version tag stamped into every exported document, bumped whenever the
/// shape changes incompatibly.
///
/// Schema 2 added the `distributions` object (per-path load-latency,
/// store-commit-latency and residency histograms plus occupancy
/// distributions), the summary's latency percentiles, and the per-epoch
/// `load_latency_p50`/`load_latency_p95` fields.
///
/// Schema 3 added the `cpi_stack` commit-slot accounting object — which
/// carries its own conservation contract (`total == commit_slots ==
/// cycles × commit_width`) so a validator needs nothing else — and the
/// per-epoch `cpi_slots` breakdown.
pub const METRICS_SCHEMA: u32 = 3;

/// Escape a string for a JSON literal.
pub(crate) fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A finite float, or `null` (JSON has no NaN/Infinity).
pub(crate) fn num(value: f64) -> String {
    if value.is_finite() {
        // Shortest round-trip representation; always a valid JSON number
        // for finite input.
        let text = format!("{value}");
        if text.contains('.') || text.contains('e') || text.contains('-') {
            text
        } else {
            // Keep integral floats recognisably floating ("2" -> "2.0").
            format!("{text}.0")
        }
    } else {
        "null".to_string()
    }
}

/// An optional integer (percentile of an empty distribution), or `null`.
fn opt(value: Option<u64>) -> String {
    match value {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

/// A [`Log2Histogram`] as `{count, mean, max, p50, p90, p95, p99,
/// buckets}`, where `buckets` lists only the non-empty `[lo, hi, count]`
/// ranges.
fn log2hist_json(hist: &Log2Histogram) -> String {
    let buckets: Vec<String> = hist
        .iter_buckets()
        .map(|(lo, hi, count)| format!("[{lo},{hi},{count}]"))
        .collect();
    format!(
        "{{\"count\":{},\"mean\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p95\":{},\"p99\":{},\
         \"buckets\":[{}]}}",
        hist.total(),
        num(hist.mean()),
        hist.max_seen(),
        opt(hist.p50()),
        opt(hist.p90()),
        opt(hist.p95()),
        opt(hist.p99()),
        buckets.join(",")
    )
}

/// A dense [`Histogram`] as `{count, mean, max, overflow, counts}`, where
/// `counts` lists only the non-empty `[value, count]` pairs.
fn dense_hist_json(hist: &Histogram) -> String {
    let counts: Vec<String> = hist
        .iter()
        .filter(|&(_, count)| count > 0)
        .map(|(value, count)| format!("[{value},{count}]"))
        .collect();
    format!(
        "{{\"count\":{},\"mean\":{},\"max\":{},\"overflow\":{},\"counts\":[{}]}}",
        hist.total(),
        num(hist.mean()),
        hist.max_seen(),
        hist.overflow(),
        counts.join(",")
    )
}

/// The run's latency and occupancy distributions as one object.
fn distributions_json(summary: &RunSummary) -> String {
    let mem = &summary.raw.mem;
    let cpu = &summary.raw.cpu;
    let paths: Vec<String> = mem
        .load_latency_paths()
        .iter()
        .map(|(name, hist)| format!("\"{name}\":{}", log2hist_json(hist)))
        .collect();
    format!(
        "{{\"load_latency\":{},\"load_latency_paths\":{{{}}},\"store_commit_latency\":{},\
         \"mshr_residency\":{},\"occupancy\":{{\"rob\":{},\"lsq\":{},\"mshr\":{},\
         \"store_buffer\":{},\"port_queue\":{}}}}}",
        log2hist_json(&mem.load_latency),
        paths.join(","),
        log2hist_json(&mem.store_commit_latency),
        log2hist_json(&mem.mshr_residency),
        dense_hist_json(&cpu.rob_occupancy),
        dense_hist_json(&cpu.lsq_occupancy),
        dense_hist_json(&mem.mshr_occupancy),
        dense_hist_json(&mem.store_buffer_occupancy),
        dense_hist_json(&mem.port_queue_depth)
    )
}

/// The commit-slot accounting stack as one self-contained object: the
/// conservation inputs (`commit_width`, `commit_slots`) ride along so
/// `cpe validate` can check `total == commit_slots == sum(causes)`
/// without consulting any other part of the document.
fn cpi_stack_json(cpu: &CpuStats) -> String {
    let causes: Vec<String> = cpu
        .cpi_stack
        .iter()
        .map(|(cause, slots)| format!("\"{}\":{slots}", cause.name()))
        .collect();
    format!(
        "{{\"commit_width\":{},\"commit_slots\":{},\"total\":{},\"causes\":{{{}}}}}",
        cpu.commit_width,
        cpu.cycles.get() * cpu.commit_width,
        cpu.cpi_stack.total(),
        causes.join(",")
    )
}

fn cache_json(cache: &CacheGeometry) -> String {
    let replacement = match cache.replacement {
        ReplacementPolicy::Lru => "lru",
        ReplacementPolicy::Fifo => "fifo",
        ReplacementPolicy::Random => "random",
    };
    format!(
        "{{\"capacity_bytes\":{},\"ways\":{},\"line_bytes\":{},\"replacement\":\"{}\"}}",
        cache.capacity_bytes, cache.ways, cache.line_bytes, replacement
    )
}

fn ports_json(ports: &PortConfig) -> String {
    format!(
        "{{\"count\":{},\"width_bytes\":{},\"load_combining\":{},\"banks\":{}}}",
        ports.count, ports.width_bytes, ports.load_combining, ports.banks
    )
}

fn line_buffers_json(lb: &LineBufferConfig) -> String {
    format!(
        "{{\"entries\":{},\"width_bytes\":{}}}",
        lb.entries, lb.width_bytes
    )
}

fn store_buffer_json(sb: &StoreBufferConfig) -> String {
    format!(
        "{{\"entries\":{},\"combining\":{}}}",
        sb.entries, sb.combining
    )
}

fn latencies_json(lat: &Latencies) -> String {
    format!(
        "{{\"l1_hit\":{},\"line_buffer_hit\":{},\"store_forward\":{},\"l2_hit\":{},\
         \"dram\":{},\"fill_interval\":{}}}",
        lat.l1_hit, lat.line_buffer_hit, lat.store_forward, lat.l2_hit, lat.dram, lat.fill_interval
    )
}

fn tlb_json(tlb: &TlbConfig) -> String {
    format!(
        "{{\"entries\":{},\"page_bytes\":{},\"miss_penalty\":{}}}",
        tlb.entries, tlb.page_bytes, tlb.miss_penalty
    )
}

fn mem_json(mem: &MemConfig) -> String {
    let write_policy = match mem.write_policy {
        WritePolicy::WritebackAllocate => "writeback_allocate",
        WritePolicy::WriteThroughNoAllocate => "write_through_no_allocate",
    };
    format!(
        "{{\"dcache\":{},\"icache\":{},\"l2\":{},\"ports\":{},\"line_buffers\":{},\
         \"store_buffer\":{},\"mshrs\":{},\"latencies\":{},\"dtlb\":{},\"itlb\":{},\
         \"next_line_prefetch\":{},\"victim_cache\":{},\"write_policy\":\"{}\"}}",
        cache_json(&mem.dcache),
        cache_json(&mem.icache),
        cache_json(&mem.l2),
        ports_json(&mem.ports),
        line_buffers_json(&mem.line_buffers),
        store_buffer_json(&mem.store_buffer),
        mem.mshrs,
        latencies_json(&mem.latencies),
        tlb_json(&mem.dtlb),
        tlb_json(&mem.itlb),
        mem.next_line_prefetch,
        mem.victim_cache,
        write_policy
    )
}

fn predictor_json(kind: &DirPredictorKind) -> String {
    match kind {
        DirPredictorKind::Btfn => "{\"kind\":\"btfn\"}".to_string(),
        DirPredictorKind::Bimodal { entries } => {
            format!("{{\"kind\":\"bimodal\",\"entries\":{entries}}}")
        }
        DirPredictorKind::Gshare {
            entries,
            history_bits,
        } => {
            format!("{{\"kind\":\"gshare\",\"entries\":{entries},\"history_bits\":{history_bits}}}")
        }
        DirPredictorKind::Local {
            history_entries,
            history_bits,
        } => format!(
            "{{\"kind\":\"local\",\"history_entries\":{history_entries},\
             \"history_bits\":{history_bits}}}"
        ),
    }
}

fn fu_spec_json(spec: &FuSpec) -> String {
    format!(
        "{{\"count\":{},\"latency\":{},\"pipelined\":{}}}",
        spec.count, spec.latency, spec.pipelined
    )
}

fn cpu_json(cpu: &CpuConfig) -> String {
    let disambiguation = match cpu.disambiguation {
        Disambiguation::Conservative => "conservative",
        Disambiguation::Perfect => "perfect",
        Disambiguation::None => "none",
    };
    format!(
        "{{\"fetch_width\":{},\"dispatch_width\":{},\"issue_width\":{},\"commit_width\":{},\
         \"rob_entries\":{},\"load_queue\":{},\"store_queue\":{},\"fetch_bytes\":{},\
         \"predictor\":{},\"btb_entries\":{},\"ras_entries\":{},\"mispredict_penalty\":{},\
         \"misfetch_penalty\":{},\"trap_penalty\":{},\
         \"fu\":{{\"int_alu\":{},\"int_mul\":{},\"int_div\":{},\"fp_add\":{},\"fp_mul\":{},\
         \"fp_div\":{},\"agu\":{}}},\
         \"disambiguation\":\"{}\",\"lsq_forward_latency\":{},\"wrong_path_fetch\":{},\
         \"watchdog_cycles\":{}}}",
        cpu.fetch_width,
        cpu.dispatch_width,
        cpu.issue_width,
        cpu.commit_width,
        cpu.rob_entries,
        cpu.load_queue,
        cpu.store_queue,
        cpu.fetch_bytes,
        predictor_json(&cpu.predictor),
        cpu.btb_entries,
        cpu.ras_entries,
        cpu.mispredict_penalty,
        cpu.misfetch_penalty,
        cpu.trap_penalty,
        fu_spec_json(&cpu.fu.int_alu),
        fu_spec_json(&cpu.fu.int_mul),
        fu_spec_json(&cpu.fu.int_div),
        fu_spec_json(&cpu.fu.fp_add),
        fu_spec_json(&cpu.fu.fp_mul),
        fu_spec_json(&cpu.fu.fp_div),
        fu_spec_json(&cpu.fu.agu),
        disambiguation,
        cpu.lsq_forward_latency,
        cpu.wrong_path_fetch,
        cpu.watchdog_cycles
    )
}

/// The full [`SimConfig`] as one JSON object, so exported results are
/// self-describing.
pub fn config_json(config: &SimConfig) -> String {
    format!(
        "{{\"name\":\"{}\",\"cpu\":{},\"mem\":{}}}",
        escape(&config.name),
        cpu_json(&config.cpu),
        mem_json(&config.mem)
    )
}

/// The end-of-run [`RunSummary`] as one JSON object.
pub fn summary_json(summary: &RunSummary) -> String {
    format!(
        "{{\"config\":\"{}\",\"workload\":\"{}\",\"cycles\":{},\"insts\":{},\"ipc\":{},\
         \"kernel_fraction\":{},\"user_ipc\":{},\"kernel_ipc\":{},\"loads_per_kinst\":{},\
         \"stores_per_kinst\":{},\"dcache_mpki\":{},\"icache_mpki\":{},\"port_utilisation\":{},\
         \"portless_load_fraction\":{},\"store_combined_fraction\":{},\"mispredict_rate\":{},\
         \"store_stall_per_kcycle\":{},\"bank_conflicts_per_kinst\":{},\"prefetch_accuracy\":{},\
         \"victim_hits_per_kinst\":{},\"load_latency_p50\":{},\"load_latency_p95\":{},\
         \"load_latency_p99\":{}}}",
        escape(&summary.config),
        escape(&summary.workload),
        summary.cycles,
        summary.insts,
        num(summary.ipc),
        num(summary.kernel_fraction),
        num(summary.user_ipc),
        num(summary.kernel_ipc),
        num(summary.loads_per_kinst),
        num(summary.stores_per_kinst),
        num(summary.dcache_mpki),
        num(summary.icache_mpki),
        num(summary.port_utilisation),
        num(summary.portless_load_fraction),
        num(summary.store_combined_fraction),
        num(summary.mispredict_rate),
        num(summary.store_stall_per_kcycle),
        num(summary.bank_conflicts_per_kinst),
        num(summary.prefetch_accuracy),
        num(summary.victim_hits_per_kinst),
        opt(summary.load_latency_p50),
        opt(summary.load_latency_p95),
        opt(summary.load_latency_p99)
    )
}

fn epoch_json(epoch: &EpochMetrics) -> String {
    let cpi: Vec<String> = StallCause::ALL
        .iter()
        .zip(epoch.cpi_slots.iter())
        .map(|(cause, slots)| format!("\"{}\":{slots}", cause.name()))
        .collect();
    format!(
        "{{\"start_cycle\":{},\"end_cycle\":{},\"insts\":{},\"loads\":{},\"stores\":{},\
         \"dcache_misses\":{},\"ipc\":{},\"port_utilisation\":{},\"portless_load_fraction\":{},\
         \"dcache_mpki\":{},\"store_combine_rate\":{},\"load_latency_p50\":{},\
         \"load_latency_p95\":{},\"cpi_slots\":{{{}}}}}",
        epoch.start_cycle,
        epoch.end_cycle,
        epoch.insts,
        epoch.loads,
        epoch.stores,
        epoch.dcache_misses,
        num(epoch.ipc),
        num(epoch.port_utilisation),
        num(epoch.portless_load_fraction),
        num(epoch.dcache_mpki),
        num(epoch.store_combine_rate),
        opt(epoch.load_latency_p50),
        opt(epoch.load_latency_p95),
        cpi.join(",")
    )
}

fn self_profile_json(profile: &SelfProfile) -> String {
    let ring = match &profile.ring {
        Some(ring) => format!(
            "{{\"emitted\":{},\"dropped\":{},\"peak\":{},\"capacity\":{},\"len\":{}}}",
            ring.emitted, ring.dropped, ring.peak, ring.capacity, ring.len
        ),
        None => "null".to_string(),
    };
    format!(
        "{{\"wall_seconds\":{},\"cycles\":{},\"insts\":{},\"cycles_per_sec\":{},\
         \"capture_enabled\":{},\"ring\":{}}}",
        num(profile.wall_seconds),
        profile.cycles,
        profile.insts,
        num(profile.cycles_per_sec),
        profile.capture_enabled,
        ring
    )
}

/// The complete `--metrics-json` document for one profiled run.
pub fn profile_json(run: &ProfiledRun, config: &SimConfig) -> String {
    let epochs: Vec<String> = run.series.epochs.iter().map(epoch_json).collect();
    format!(
        "{{\"schema\":{},\"config\":{},\"summary\":{},\"distributions\":{},\"cpi_stack\":{},\
         \"epoch_interval\":{},\"epochs\":[{}],\"self_profile\":{}}}",
        METRICS_SCHEMA,
        config_json(config),
        summary_json(&run.summary),
        distributions_json(&run.summary),
        cpi_stack_json(&run.summary.raw.cpu),
        run.series.interval,
        epochs.join(","),
        self_profile_json(&run.self_profile)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::ProfileOptions;
    use crate::simulator::Simulator;
    use cpe_workloads::{Scale, Workload};

    /// Structural JSON check without a parser: balanced braces/brackets
    /// outside strings, properly terminated strings.
    fn assert_balanced(text: &str) {
        let mut depth = 0i64;
        let mut in_string = false;
        let mut escaped = false;
        for c in text.chars() {
            if in_string {
                match c {
                    '\\' if !escaped => escaped = true,
                    '"' if !escaped => in_string = false,
                    _ => escaped = false,
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "bracket underflow in {text}");
        }
        assert_eq!(depth, 0, "unbalanced in {text}");
        assert!(!in_string, "unterminated string in {text}");
    }

    #[test]
    fn config_json_names_every_section() {
        let text = config_json(&SimConfig::combined_single_port());
        assert_balanced(&text);
        for key in [
            "\"name\":\"1-port combined\"",
            "\"cpu\":",
            "\"mem\":",
            "\"ports\":",
            "\"load_combining\":true",
            "\"store_buffer\":",
            "\"line_buffers\":",
            "\"predictor\":",
            "\"latencies\":",
            "\"write_policy\":\"writeback_allocate\"",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }

    #[test]
    fn predictor_variants_serialize() {
        for (kind, expect) in [
            (DirPredictorKind::Btfn, "\"kind\":\"btfn\""),
            (
                DirPredictorKind::Bimodal { entries: 512 },
                "\"entries\":512",
            ),
            (
                DirPredictorKind::Gshare {
                    entries: 1024,
                    history_bits: 8,
                },
                "\"history_bits\":8",
            ),
            (
                DirPredictorKind::Local {
                    history_entries: 256,
                    history_bits: 6,
                },
                "\"history_entries\":256",
            ),
        ] {
            let text = predictor_json(&kind);
            assert_balanced(&text);
            assert!(text.contains(expect), "{text}");
        }
    }

    #[test]
    fn numbers_guard_non_finite_values() {
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(2.0), "2.0");
        assert_eq!(num(0.25), "0.25");
        assert_eq!(num(-1.5), "-1.5");
    }

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb"), "a\\nb");
        assert_eq!(escape("a\u{1}b"), "a\\u0001b");
    }

    #[test]
    fn full_profile_document_is_sound_and_self_describing() {
        let sim = Simulator::new(SimConfig::combined_single_port());
        let run = sim
            .try_profile(
                Workload::Sort,
                Scale::Test,
                Some(5_000),
                ProfileOptions::default(),
            )
            .expect("run completes");
        let text = profile_json(&run, sim.config());
        assert_balanced(&text);
        assert!(text.starts_with("{\"schema\":3,"));
        // Self-describing: the config rides inside the document.
        assert!(text.contains("\"config\":{\"name\":\"1-port combined\""));
        assert!(text.contains("\"epochs\":["));
        assert!(text.contains("\"self_profile\":{"));
        assert!(text.contains(&format!("\"cycles\":{}", run.summary.cycles)));
        // The CPI stack rides along with its conservation inputs, and the
        // stated total matches cycles × commit_width exactly.
        let width = run.summary.raw.cpu.commit_width;
        let slots = run.summary.cycles * width;
        assert!(
            text.contains(&format!(
                "\"cpi_stack\":{{\"commit_width\":{width},\"commit_slots\":{slots},\
                 \"total\":{slots},\"causes\":{{\"base\":"
            )),
            "{text}"
        );
        assert!(text.contains("\"dcache_port_conflict\":"), "{text}");
        assert!(text.contains("\"cpi_slots\":{\"base\":"), "{text}");
    }

    #[test]
    fn profile_document_carries_per_path_latency_distributions() {
        let sim = Simulator::new(SimConfig::combined_single_port());
        let run = sim
            .try_profile(
                Workload::Compress,
                Scale::Test,
                Some(5_000),
                ProfileOptions::default(),
            )
            .expect("run completes");
        let text = profile_json(&run, sim.config());
        assert_balanced(&text);
        assert!(
            text.contains("\"distributions\":{\"load_latency\":{"),
            "{text}"
        );
        for path in [
            "\"l1_port_hit\":{",
            "\"line_buffer\":{",
            "\"store_forward\":{",
            "\"combined\":{",
            "\"mshr_merge\":{",
            "\"miss\":{",
        ] {
            assert!(text.contains(path), "missing path {path}");
        }
        for key in [
            "\"p50\":",
            "\"p95\":",
            "\"p99\":",
            "\"buckets\":[",
            "\"store_commit_latency\":{",
            "\"mshr_residency\":{",
            "\"occupancy\":{\"rob\":{",
            "\"lsq\":{",
            "\"store_buffer\":{",
            "\"port_queue\":{",
            "\"load_latency_p50\":",
            "\"load_latency_p95\":",
        ] {
            assert!(text.contains(key), "missing {key}");
        }
        // The run issued loads, so the aggregate distribution must carry
        // concrete percentiles, not nulls.
        let dist_start = text.find("\"distributions\":").unwrap();
        let dist = &text[dist_start..];
        assert!(run.summary.raw.mem.loads.get() > 0);
        assert!(!dist[..200].contains("\"p50\":null"), "{}", &dist[..200]);
    }

    #[test]
    fn histogram_serializers_handle_empty_and_loaded_forms() {
        let empty = Log2Histogram::new();
        let text = log2hist_json(&empty);
        assert_balanced(&text);
        assert!(text.contains("\"count\":0"));
        assert!(text.contains("\"p50\":null"));
        assert!(text.contains("\"buckets\":[]"));
        assert!(!text.contains("NaN"), "{text}");

        let mut hist = Log2Histogram::new();
        for v in [1, 2, 3, 100] {
            hist.record(v);
        }
        let text = log2hist_json(&hist);
        assert_balanced(&text);
        assert!(text.contains("\"count\":4"));
        assert!(text.contains("\"p50\":2"));
        assert!(text.contains("\"max\":100"));

        let mut dense = Histogram::new(4);
        dense.record(1);
        dense.record(1);
        dense.record(9); // overflows
        let text = dense_hist_json(&dense);
        assert_balanced(&text);
        assert!(text.contains("\"counts\":[[1,2]]"), "{text}");
        assert!(text.contains("\"overflow\":1"), "{text}");
    }
}
