//! Profiled runs: event capture, interval ("epoch") metrics and
//! self-profiling.
//!
//! [`Simulator::try_profile`] drives the core cycle by cycle instead of
//! through [`Core::try_run`](cpe_cpu::Core), snapshotting counter deltas
//! every `interval` cycles into a [`MetricsSeries`] and (when the `trace`
//! feature is on) collecting the retained [`TraceEvent`] window from the
//! ring buffer. The stepping order and per-cycle work are identical to a
//! plain run, so a profiled run's timing and counters match the
//! unprofiled run exactly — observation never perturbs the machine.

use std::time::Instant;

use cpe_cpu::{Core, SimResult, StallCause};
use cpe_isa::DynInst;
use cpe_mem::MemSystem;
use cpe_stats::{Log2Histogram, TimeSeries};
use cpe_trace::{RingStats, TraceEvent, TraceHandle};
use cpe_workloads::{Scale, Workload};

use crate::error::SimError;
use crate::metrics::RunSummary;
use crate::simulator::Simulator;

/// Knobs for a profiled run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileOptions {
    /// Cycles per metrics epoch (0 is clamped to 1).
    pub interval: u64,
    /// Trace ring capacity in events; the ring retains the newest
    /// `ring_capacity` events and counts what it drops. Ignored when the
    /// `trace` feature is off.
    pub ring_capacity: usize,
}

impl Default for ProfileOptions {
    fn default() -> ProfileOptions {
        ProfileOptions {
            interval: 1_000,
            ring_capacity: 65_536,
        }
    }
}

/// Counter deltas over one epoch of `interval` cycles (the last epoch of
/// a run may be shorter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochMetrics {
    /// First cycle of the epoch (inclusive).
    pub start_cycle: u64,
    /// One past the last cycle of the epoch.
    pub end_cycle: u64,
    /// Instructions committed in the epoch.
    pub insts: u64,
    /// Loads initiated in the epoch (memory-side).
    pub loads: u64,
    /// Stores accepted in the epoch (memory-side).
    pub stores: u64,
    /// Demand data misses (load + store) in the epoch.
    pub dcache_misses: u64,
    /// Committed IPC over the epoch.
    pub ipc: f64,
    /// Fraction of offered port slots used in the epoch.
    pub port_utilisation: f64,
    /// Fraction of the epoch's loads served without a port.
    pub portless_load_fraction: f64,
    /// Demand data misses per 1000 committed instructions in the epoch.
    pub dcache_mpki: f64,
    /// Fraction of the epoch's stores that write-combined.
    pub store_combine_rate: f64,
    /// Median latency of the loads completed in the epoch (`None` when no
    /// load completed).
    pub load_latency_p50: Option<u64>,
    /// 95th-percentile latency of the loads completed in the epoch.
    pub load_latency_p95: Option<u64>,
    /// Commit-slot attribution deltas for the epoch, indexed by
    /// [`StallCause`] declaration order ([`StallCause::ALL`]). The
    /// conservation invariant holds per epoch: the components sum to
    /// `(end_cycle - start_cycle) × commit_width`.
    pub cpi_slots: [u64; StallCause::COUNT],
}

/// Cumulative counter values at an epoch boundary.
#[derive(Debug, Clone)]
struct Snapshot {
    cycles: u64,
    committed: u64,
    loads: u64,
    stores: u64,
    portless_loads: u64,
    dcache_misses: u64,
    slots_used: u64,
    slots_offered: u64,
    store_combined: u64,
    /// The cumulative load-latency distribution; epoch percentiles come
    /// from subtracting consecutive snapshots ([`Log2Histogram::delta`]).
    load_latency: Log2Histogram,
    /// Cumulative commit-slot attribution ([`StallCause::ALL`] order).
    cpi: [u64; StallCause::COUNT],
}

impl Snapshot {
    fn take<I: Iterator<Item = DynInst>>(core: &Core<I>) -> Snapshot {
        let cpu = core.stats();
        let mem = core.mem().stats();
        Snapshot {
            cycles: cpu.cycles.get(),
            committed: cpu.committed.get(),
            loads: mem.loads.get(),
            stores: mem.stores.get(),
            portless_loads: mem.load_sb_forwards.get()
                + mem.load_lb_hits.get()
                + mem.load_combined.get(),
            dcache_misses: mem.load_misses.get() + mem.store_misses.get(),
            slots_used: mem.port_slots_used.get(),
            slots_offered: mem.port_slots_offered.get(),
            store_combined: mem.store_combined.get(),
            load_latency: mem.load_latency.clone(),
            cpi: cpu.cpi_stack.slots(),
        }
    }

    fn delta(&self, prev: &Snapshot) -> EpochMetrics {
        let cycles = self.cycles - prev.cycles;
        let insts = self.committed - prev.committed;
        let loads = self.loads - prev.loads;
        let stores = self.stores - prev.stores;
        let misses = self.dcache_misses - prev.dcache_misses;
        let epoch_latency = self.load_latency.delta(&prev.load_latency);
        let mut cpi_slots = [0u64; StallCause::COUNT];
        for (slot, (now, then)) in cpi_slots
            .iter_mut()
            .zip(self.cpi.iter().zip(prev.cpi.iter()))
        {
            *slot = now - then;
        }
        let ratio = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        EpochMetrics {
            start_cycle: prev.cycles,
            end_cycle: self.cycles,
            insts,
            loads,
            stores,
            dcache_misses: misses,
            ipc: ratio(insts, cycles),
            port_utilisation: ratio(
                self.slots_used - prev.slots_used,
                self.slots_offered - prev.slots_offered,
            ),
            portless_load_fraction: ratio(self.portless_loads - prev.portless_loads, loads),
            dcache_mpki: if insts == 0 {
                0.0
            } else {
                misses as f64 * 1000.0 / insts as f64
            },
            store_combine_rate: ratio(self.store_combined - prev.store_combined, stores),
            load_latency_p50: epoch_latency.p50(),
            load_latency_p95: epoch_latency.p95(),
            cpi_slots,
        }
    }
}

/// The interval-metrics time series of one profiled run.
#[derive(Debug, Clone, Default)]
pub struct MetricsSeries {
    /// Nominal cycles per epoch.
    pub interval: u64,
    /// One entry per epoch, in time order.
    pub epochs: Vec<EpochMetrics>,
}

impl MetricsSeries {
    /// Instructions committed across every epoch — equals the run's
    /// committed-instruction count.
    pub fn total_insts(&self) -> u64 {
        self.epochs.iter().map(|e| e.insts).sum()
    }

    /// Loads initiated across every epoch.
    pub fn total_loads(&self) -> u64 {
        self.epochs.iter().map(|e| e.loads).sum()
    }

    /// Stores accepted across every epoch.
    pub fn total_stores(&self) -> u64 {
        self.epochs.iter().map(|e| e.stores).sum()
    }

    /// Demand data misses across every epoch.
    pub fn total_dcache_misses(&self) -> u64 {
        self.epochs.iter().map(|e| e.dcache_misses).sum()
    }

    /// One named per-epoch metric as a [`TimeSeries`] (for summaries and
    /// sparklines).
    pub fn series(&self, name: &str, select: impl Fn(&EpochMetrics) -> f64) -> TimeSeries {
        let mut ts = TimeSeries::new(name, self.interval);
        for epoch in &self.epochs {
            ts.push(select(epoch));
        }
        ts
    }

    /// Per-epoch IPC.
    pub fn ipc_series(&self) -> TimeSeries {
        self.series("ipc", |e| e.ipc)
    }

    /// Per-epoch port utilisation.
    pub fn port_utilisation_series(&self) -> TimeSeries {
        self.series("port_utilisation", |e| e.port_utilisation)
    }
}

/// How the simulator itself performed — host-side cost of the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelfProfile {
    /// Host wall-clock seconds for the simulation loop.
    pub wall_seconds: f64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub insts: u64,
    /// Simulated cycles per host second.
    pub cycles_per_sec: f64,
    /// Whether event capture was compiled in and attached.
    pub capture_enabled: bool,
    /// Ring-buffer accounting (`None` when capture is off).
    pub ring: Option<RingStats>,
}

impl SelfProfile {
    /// The one-line form printed at the end of detailed runs.
    pub fn one_liner(&self) -> String {
        let ring = match &self.ring {
            Some(ring) => format!(
                ", ring peak {}/{} ({} dropped)",
                ring.peak, ring.capacity, ring.dropped
            ),
            None => String::new(),
        };
        format!(
            "self-profile: {:.3}s wall, {:.0} sim cycles/sec over {} cycles{}",
            self.wall_seconds, self.cycles_per_sec, self.cycles, ring
        )
    }
}

/// Everything a profiled run produces.
#[derive(Debug, Clone)]
pub struct ProfiledRun {
    /// The same summary a plain run would produce.
    pub summary: RunSummary,
    /// Interval metrics, one epoch per `interval` cycles.
    pub series: MetricsSeries,
    /// The retained trace-event window (empty when capture is off).
    pub events: Vec<TraceEvent>,
    /// Host-side cost of the run.
    pub self_profile: SelfProfile,
}

impl Simulator {
    /// Profile a named workload: run it to completion (or `max_insts`)
    /// while capturing trace events and interval metrics.
    ///
    /// # Errors
    ///
    /// [`SimError::Watchdog`] when the pipeline stops making progress.
    pub fn try_profile(
        &self,
        workload: Workload,
        scale: Scale,
        max_insts: Option<u64>,
        options: ProfileOptions,
    ) -> Result<ProfiledRun, SimError> {
        self.try_profile_trace(workload.name(), workload.trace(scale), max_insts, options)
    }

    /// Profile an arbitrary committed-path instruction stream.
    ///
    /// # Errors
    ///
    /// [`SimError::Watchdog`] when the pipeline stops making progress.
    pub fn try_profile_trace<I>(
        &self,
        label: &str,
        trace: I,
        max_insts: Option<u64>,
        options: ProfileOptions,
    ) -> Result<ProfiledRun, SimError>
    where
        I: Iterator<Item = DynInst>,
    {
        let interval = options.interval.max(1);
        let mem = MemSystem::new(self.config().mem);
        let mut core = Core::new(self.config().cpu, mem, trace);
        let handle = TraceHandle::attached(options.ring_capacity);
        core.set_trace(handle.clone());
        // Epoch snapshots fire on multiples of the interval; bound the
        // core's cycle-skipping so it lands on every one of them.
        core.set_step_quantum(interval);

        let limit = max_insts.unwrap_or(u64::MAX);
        let mut epochs = Vec::new();
        let mut last = Snapshot::take(&core);
        let started = Instant::now();
        loop {
            let more = core.try_step()?;
            let cycles = core.stats().cycles.get();
            let done = !more || core.stats().committed.get() >= limit;
            if done || cycles.is_multiple_of(interval) {
                let snapshot = Snapshot::take(&core);
                if snapshot.cycles > last.cycles {
                    epochs.push(snapshot.delta(&last));
                    last = snapshot;
                }
                if done {
                    break;
                }
            }
        }
        let wall_seconds = started.elapsed().as_secs_f64();

        let result = SimResult {
            cycles: core.stats().cycles.get(),
            committed: core.stats().committed.get(),
            cpu: core.stats().clone(),
            mem: core.mem().stats().clone(),
        };
        let summary = RunSummary::new(&self.config().name, label, result);
        let events = handle.snapshot().unwrap_or_default();
        let ring = handle.ring_stats();
        let self_profile = SelfProfile {
            wall_seconds,
            cycles: summary.cycles,
            insts: summary.insts,
            cycles_per_sec: if wall_seconds > 0.0 {
                summary.cycles as f64 / wall_seconds
            } else {
                0.0
            },
            capture_enabled: TraceHandle::CAPTURE,
            ring,
        };
        Ok(ProfiledRun {
            summary,
            series: MetricsSeries { interval, epochs },
            events,
            self_profile,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn profile(interval: u64) -> ProfiledRun {
        Simulator::new(SimConfig::combined_single_port())
            .try_profile(
                Workload::Compress,
                Scale::Test,
                Some(10_000),
                ProfileOptions {
                    interval,
                    ..ProfileOptions::default()
                },
            )
            .expect("profiled run completes")
    }

    #[test]
    fn epoch_cumulative_counters_match_the_summary() {
        let run = profile(500);
        assert_eq!(run.series.total_insts(), run.summary.insts);
        assert_eq!(run.series.total_loads(), run.summary.raw.mem.loads.get());
        assert_eq!(run.series.total_stores(), run.summary.raw.mem.stores.get());
        assert_eq!(
            run.series.total_dcache_misses(),
            run.summary.raw.mem.load_misses.get() + run.summary.raw.mem.store_misses.get()
        );
        // Epochs tile the run's cycles without gaps or overlap.
        let mut expected_start = 0;
        for epoch in &run.series.epochs {
            assert_eq!(epoch.start_cycle, expected_start);
            assert!(epoch.end_cycle > epoch.start_cycle);
            expected_start = epoch.end_cycle;
        }
        assert_eq!(expected_start, run.summary.cycles);
    }

    #[test]
    fn epoch_cpi_slots_conserve_commit_slots() {
        let run = profile(500);
        let width = run.summary.raw.cpu.commit_width;
        let mut totals = [0u64; StallCause::COUNT];
        for epoch in &run.series.epochs {
            let sum: u64 = epoch.cpi_slots.iter().sum();
            assert_eq!(
                sum,
                (epoch.end_cycle - epoch.start_cycle) * width,
                "epoch {}..{} leaks commit slots",
                epoch.start_cycle,
                epoch.end_cycle
            );
            for (total, slots) in totals.iter_mut().zip(epoch.cpi_slots.iter()) {
                *total += slots;
            }
        }
        // Epoch deltas tile the run's attribution exactly, and the Base
        // component is the committed-instruction count by construction.
        assert_eq!(totals, run.summary.raw.cpu.cpi_stack.slots());
        assert_eq!(
            run.summary.raw.cpu.cpi_stack.get(StallCause::Base),
            run.summary.insts
        );
    }

    #[test]
    fn profiling_matches_the_plain_run_exactly() {
        let sim = Simulator::new(SimConfig::combined_single_port());
        let plain = sim.run(Workload::Compress, Scale::Test, Some(10_000));
        let profiled = profile(1_000);
        assert_eq!(profiled.summary.cycles, plain.cycles);
        assert_eq!(profiled.summary.insts, plain.insts);
        assert_eq!(profiled.summary.ipc, plain.ipc);
        assert_eq!(
            profiled.summary.raw.mem.port_slots_used.get(),
            plain.raw.mem.port_slots_used.get()
        );
    }

    #[test]
    fn interval_zero_is_clamped_not_fatal() {
        let run = Simulator::new(SimConfig::naive_single_port())
            .try_profile(
                Workload::Sort,
                Scale::Test,
                Some(2_000),
                ProfileOptions {
                    interval: 0,
                    ring_capacity: 16,
                },
            )
            .expect("clamped interval");
        // Interval 1 → one epoch per cycle.
        assert_eq!(run.series.epochs.len() as u64, run.summary.cycles);
    }

    #[test]
    fn epoch_load_latency_percentiles_track_the_epochs() {
        let run = profile(500);
        let mut saw_loads = false;
        for epoch in &run.series.epochs {
            if epoch.loads > 0 {
                saw_loads = true;
                // Every initiated load records a latency sample, so an
                // epoch with loads always has percentiles.
                let p50 = epoch.load_latency_p50.expect("loads imply a median");
                let p95 = epoch.load_latency_p95.expect("loads imply a p95");
                assert!(p50 <= p95, "p50 {p50} > p95 {p95}");
            } else {
                assert_eq!(epoch.load_latency_p50, None);
            }
        }
        assert!(saw_loads, "compress must issue loads");
    }

    #[test]
    fn self_profile_is_plausible() {
        let run = profile(1_000);
        assert!(run.self_profile.wall_seconds >= 0.0);
        assert_eq!(run.self_profile.cycles, run.summary.cycles);
        assert_eq!(run.self_profile.insts, run.summary.insts);
        assert_eq!(run.self_profile.capture_enabled, TraceHandle::CAPTURE);
        let line = run.self_profile.one_liner();
        assert!(line.contains("sim cycles/sec"), "{line}");
    }

    #[cfg(feature = "trace")]
    #[test]
    fn capture_collects_events_and_ring_stats() {
        let run = profile(1_000);
        assert!(!run.events.is_empty());
        let ring = run.self_profile.ring.expect("capture is on");
        assert!(ring.emitted > 0);
        assert!(ring.peak > 0);
        // Commit events alone outnumber... at least exist; every committed
        // instruction emits one, so emitted >= insts.
        assert!(ring.emitted >= run.summary.insts);
    }
}
