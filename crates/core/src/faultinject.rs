//! Fault injection: corrupted traces and adversarial configurations.
//!
//! The robustness contract of the pipeline is simple to state: **no
//! input may panic or hang the simulator — every failure is a typed
//! [`SimError`]**. This module is the harness that pounds on that
//! contract: it records a pristine trace, applies deterministic
//! corruptions (bit flips, overwritten bytes, truncations), replays each
//! mutant through the full timing model, and classifies what comes back.
//! A panic caught at the boundary is a harness *failure*, not a
//! statistic.
//!
//! Everything is reproducible from `(seed, case index)` — the generator
//! is a self-contained SplitMix64, so a CI failure names the exact
//! mutant to replay locally with `cpe fuzz-trace --seed <s>`.

use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use cpe_isa::trace_io::{write_trace, TraceReader};
use cpe_workloads::synth::{SynthConfig, SyntheticTrace};

use crate::config::SimConfig;
use crate::error::SimError;
use crate::metrics::RunSummary;
use crate::simulator::Simulator;

/// A tiny deterministic generator (SplitMix64) so the harness needs no
/// external dependency and every case is replayable from its seed.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `0..bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift range reduction; bias is irrelevant for fuzzing.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A single deterministic corruption of a recorded trace's byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Keep only the first `keep` bytes — models a torn write or a
    /// partial download, including decapitated headers.
    Truncate { keep: usize },
    /// Flip bit `bit` of the byte at `offset` — models media rot.
    BitFlip { offset: usize, bit: u8 },
    /// Overwrite the byte at `offset` with `value` — models a stray
    /// write from another process.
    SetByte { offset: usize, value: u8 },
}

impl Mutation {
    /// Draw a mutation applicable to a stream of `len` bytes.
    pub fn random(rng: &mut SplitMix64, len: usize) -> Mutation {
        let len = len.max(1);
        match rng.below(3) {
            0 => Mutation::Truncate {
                keep: rng.below(len as u64) as usize,
            },
            1 => Mutation::BitFlip {
                offset: rng.below(len as u64) as usize,
                bit: rng.below(8) as u8,
            },
            _ => Mutation::SetByte {
                offset: rng.below(len as u64) as usize,
                value: rng.below(256) as u8,
            },
        }
    }

    /// The corrupted copy of `bytes`.
    pub fn apply(&self, bytes: &[u8]) -> Vec<u8> {
        let mut out = bytes.to_vec();
        match *self {
            Mutation::Truncate { keep } => out.truncate(keep),
            Mutation::BitFlip { offset, bit } => {
                if let Some(byte) = out.get_mut(offset) {
                    *byte ^= 1 << (bit & 7);
                }
            }
            Mutation::SetByte { offset, value } => {
                if let Some(byte) = out.get_mut(offset) {
                    *byte = value;
                }
            }
        }
        out
    }
}

/// Run a serialized trace (as produced by
/// [`cpe_isa::trace_io::write_trace`]) through the timing model,
/// surfacing header and record corruption as [`SimError::Trace`].
///
/// # Errors
///
/// Every failure mode is typed: [`SimError::InvalidConfig`] for a bad
/// configuration, [`SimError::Trace`] for an unreadable stream, and
/// [`SimError::Watchdog`] when the pipeline stops making progress.
pub fn run_trace_bytes(
    config: &SimConfig,
    label: &str,
    bytes: &[u8],
    max_insts: Option<u64>,
) -> Result<RunSummary, SimError> {
    let simulator = Simulator::try_new(config.clone())?;
    let reader = TraceReader::new(bytes).map_err(|error| SimError::Trace {
        index: 0,
        message: error.to_string(),
    })?;
    simulator.try_run_trace_results(label, reader, max_insts)
}

/// The tally of a fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Mutants replayed.
    pub cases: u64,
    /// Mutants that still decoded and ran to completion (corruption in
    /// padding, flag-compatible bit flips, truncation on a record
    /// boundary, ...).
    pub clean: u64,
    /// Typed rejections by [`SimError::kind`].
    pub errors: BTreeMap<&'static str, u64>,
    /// Contract violations: `(case index, panic message)`. Must be empty.
    pub panics: Vec<(u64, String)>,
}

impl FuzzReport {
    /// Whether the no-panic contract held over the whole campaign.
    pub fn passed(&self) -> bool {
        self.panics.is_empty()
    }
}

impl fmt::Display for FuzzReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fuzzed {} corrupted traces: {} ran clean",
            self.cases, self.clean
        )?;
        for (kind, count) in &self.errors {
            writeln!(f, "  {count:>6} rejected as {kind}")?;
        }
        if self.passed() {
            write!(f, "no panics, no hangs — every failure was a typed error")
        } else {
            writeln!(f, "CONTRACT VIOLATIONS:")?;
            for (case, message) in &self.panics {
                writeln!(f, "  case {case}: panicked: {message}")?;
            }
            write!(f, "{} case(s) panicked", self.panics.len())
        }
    }
}

/// The pristine byte stream the mutants are derived from: a recorded
/// synthetic trace small enough that thousands of replays stay cheap.
pub fn pristine_trace_bytes() -> Vec<u8> {
    let synth = SynthConfig {
        insts: 1_500,
        ..SynthConfig::default()
    };
    let mut bytes = Vec::new();
    write_trace(&mut bytes, SyntheticTrace::new(synth)).expect("in-memory write cannot fail");
    bytes
}

/// Replay `cases` corrupted traces through `config`, one random mutation
/// each, and tally the outcomes. Panics are caught at the case boundary
/// and reported as contract violations instead of propagating.
pub fn fuzz_traces(config: &SimConfig, cases: u64, seed: u64) -> FuzzReport {
    let pristine = pristine_trace_bytes();
    let mut rng = SplitMix64::new(seed);
    let mut report = FuzzReport {
        cases,
        clean: 0,
        errors: BTreeMap::new(),
        panics: Vec::new(),
    };
    for case in 0..cases {
        let mutation = Mutation::random(&mut rng, pristine.len());
        let mutant = mutation.apply(&pristine);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_trace_bytes(config, "fuzz", &mutant, Some(2_000))
        }));
        match outcome {
            Ok(Ok(_)) => report.clean += 1,
            Ok(Err(error)) => *report.errors.entry(error.kind()).or_insert(0) += 1,
            Err(payload) => {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                report
                    .panics
                    .push((case, format!("{message} (mutation {mutation:?})")));
            }
        }
    }
    report
}

/// Configurations at and beyond the edge of validity. Invalid members
/// must come back as typed [`SimError::InvalidConfig`]; the
/// valid-but-extreme members must run — or be cut off by the watchdog —
/// without panicking. Either way the caller gets a value, never an
/// unwind.
pub fn adversarial_configs() -> Vec<SimConfig> {
    let mut configs: Vec<SimConfig> = Vec::new();

    // Outright invalid: every one must be rejected before a cycle runs.
    configs.push(
        SimConfig::naive_single_port()
            .with_ports(0)
            .named("no ports"),
    );
    configs.push(
        SimConfig::naive_single_port()
            .with_issue_width(0)
            .named("no issue"),
    );
    let mut zero_way = SimConfig::naive_single_port().named("0-way cache");
    zero_way.mem.dcache.ways = 0;
    configs.push(zero_way);
    let mut fat_line = SimConfig::naive_single_port().named("line > cache");
    fat_line.mem.dcache.line_bytes = 2 * fat_line.mem.dcache.capacity_bytes;
    configs.push(fat_line);
    let mut no_rob = SimConfig::naive_single_port().named("empty window");
    no_rob.cpu.rob_entries = 0;
    configs.push(no_rob);
    let mut wide_port = SimConfig::naive_single_port().named("port wider than line");
    wide_port.mem.ports.width_bytes = 4 * wide_port.mem.dcache.line_bytes;
    configs.push(wide_port);

    // Valid but extreme: stress the timing model's corners.
    let mut glacial = SimConfig::naive_single_port().named("glacial DRAM");
    glacial.mem.latencies.dram = 40_000;
    glacial.cpu.watchdog_cycles = 60_000;
    configs.push(glacial);
    let mut tiny = SimConfig::combined_single_port().named("tiny everything");
    tiny.cpu.rob_entries = 1;
    tiny.cpu.load_queue = 1;
    tiny.cpu.store_queue = 1;
    tiny.mem.mshrs = 1;
    configs.push(tiny);
    let mut starved = SimConfig::naive_single_port().named("starved fill bus");
    starved.mem.latencies.fill_interval = 512;
    configs.push(starved);
    configs.push(
        SimConfig::ideal_ports()
            .with_issue_width(16)
            .named("unhinged width"),
    );

    configs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutations_are_deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(
                Mutation::random(&mut a, 4096),
                Mutation::random(&mut b, 4096)
            );
        }
    }

    #[test]
    fn pristine_bytes_replay_cleanly() {
        let bytes = pristine_trace_bytes();
        let summary = run_trace_bytes(&SimConfig::naive_single_port(), "pristine", &bytes, None)
            .expect("uncorrupted trace runs");
        assert_eq!(summary.insts, 1_500);
    }

    #[test]
    fn a_short_campaign_upholds_the_contract() {
        // The full campaign lives in tests/fault_injection.rs; this is
        // the smoke test that keeps `cargo test -p cpe-core` honest.
        let report = fuzz_traces(&SimConfig::combined_single_port(), 40, 0xC0FFEE);
        assert!(report.passed(), "{report}");
        assert_eq!(report.cases, 40);
        assert_eq!(
            report.clean + report.errors.values().sum::<u64>(),
            report.cases
        );
        // Random corruption of a dense binary format must reject at
        // least sometimes.
        assert!(!report.errors.is_empty(), "{report}");
    }

    #[test]
    fn adversarial_configs_never_unwind() {
        for config in adversarial_configs() {
            let bytes = pristine_trace_bytes();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                run_trace_bytes(&config, &config.name.clone(), &bytes, Some(1_000))
            }));
            let result = outcome.unwrap_or_else(|_| panic!("config `{}` panicked", config.name));
            if let Err(error) = result {
                assert!(
                    matches!(error, SimError::InvalidConfig(_) | SimError::Watchdog(_)),
                    "config `{}`: unexpected {error:?}",
                    config.name
                );
            }
        }
    }
}
