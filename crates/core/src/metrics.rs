//! Flattened per-run metrics.

use cpe_cpu::SimResult;

/// Everything a study needs from one simulation run, in plain numbers.
///
/// Derived from the raw [`SimResult`] counters; the original result is
/// kept in [`RunSummary::raw`] for deeper digging.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Configuration label.
    pub config: String,
    /// Workload label.
    pub workload: String,
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub insts: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Fraction of committed instructions in kernel mode.
    pub kernel_fraction: f64,
    /// IPC over user-attributed cycles.
    pub user_ipc: f64,
    /// IPC over kernel-attributed cycles.
    pub kernel_ipc: f64,
    /// Loads per 1000 instructions.
    pub loads_per_kinst: f64,
    /// Stores per 1000 instructions.
    pub stores_per_kinst: f64,
    /// Data-cache demand misses per 1000 instructions.
    pub dcache_mpki: f64,
    /// Instruction-cache misses per 1000 instructions.
    pub icache_mpki: f64,
    /// Fraction of offered data-port slots used.
    pub port_utilisation: f64,
    /// Fraction of loads satisfied without a port (line buffer, load
    /// combining, store-buffer forward).
    pub portless_load_fraction: f64,
    /// Fraction of stores that write-combined into an existing buffer
    /// entry.
    pub store_combined_fraction: f64,
    /// Conditional-branch misprediction rate.
    pub mispredict_rate: f64,
    /// Cycles commit was blocked behind a rejected store, per 1000
    /// cycles.
    pub store_stall_per_kcycle: f64,
    /// Bank conflicts per 1000 instructions (banked caches only).
    pub bank_conflicts_per_kinst: f64,
    /// Fraction of issued prefetches that proved useful.
    pub prefetch_accuracy: f64,
    /// Victim-cache hits per 1000 instructions.
    pub victim_hits_per_kinst: f64,
    /// Median completed-load latency in cycles (`None` when no load
    /// completed).
    pub load_latency_p50: Option<u64>,
    /// 95th-percentile completed-load latency in cycles.
    pub load_latency_p95: Option<u64>,
    /// 99th-percentile completed-load latency in cycles.
    pub load_latency_p99: Option<u64>,
    /// The raw simulation result.
    pub raw: SimResult,
}

impl RunSummary {
    /// Build from a raw result.
    pub fn new(config: &str, workload: &str, raw: SimResult) -> RunSummary {
        let cpu = &raw.cpu;
        let mem = &raw.mem;
        let insts = raw.committed.max(1);
        let user_cycles = cpu.user_cycles.get().max(1);
        let kernel_cycles = cpu.kernel_cycles.get();
        RunSummary {
            config: config.to_string(),
            workload: workload.to_string(),
            cycles: raw.cycles,
            insts: raw.committed,
            ipc: raw.ipc(),
            kernel_fraction: cpu.kernel_fraction().value(),
            user_ipc: cpu.committed_user.as_f64() / user_cycles as f64,
            kernel_ipc: if kernel_cycles == 0 {
                0.0
            } else {
                cpu.committed_kernel.as_f64() / kernel_cycles as f64
            },
            loads_per_kinst: cpu.loads.get() as f64 * 1000.0 / insts as f64,
            stores_per_kinst: cpu.stores.get() as f64 * 1000.0 / insts as f64,
            dcache_mpki: (mem.load_misses.get() + mem.store_misses.get()) as f64 * 1000.0
                / insts as f64,
            icache_mpki: mem.icache_misses.get() as f64 * 1000.0 / insts as f64,
            port_utilisation: mem.port_utilisation().value(),
            portless_load_fraction: mem.portless_load_fraction().value(),
            store_combined_fraction: mem.store_combined.get() as f64
                / mem.stores.get().max(1) as f64,
            mispredict_rate: cpu.mispredict_ratio().value(),
            store_stall_per_kcycle: cpu.commit_store_stall_cycles.get() as f64 * 1000.0
                / raw.cycles.max(1) as f64,
            bank_conflicts_per_kinst: mem.bank_conflicts.get() as f64 * 1000.0 / insts as f64,
            prefetch_accuracy: mem.prefetch_useful.get() as f64
                / mem.prefetches.get().max(1) as f64,
            victim_hits_per_kinst: mem.victim_hits.get() as f64 * 1000.0 / insts as f64,
            load_latency_p50: mem.load_latency.p50(),
            load_latency_p95: mem.load_latency.p95(),
            load_latency_p99: mem.load_latency.p99(),
            raw,
        }
    }

    /// This run's IPC relative to a reference run (e.g. dual-ported).
    pub fn relative_ipc(&self, reference: &RunSummary) -> f64 {
        if reference.ipc == 0.0 {
            0.0
        } else {
            self.ipc / reference.ipc
        }
    }
}

impl std::fmt::Display for RunSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}: IPC {:.3} over {} insts ({} cycles), port util {:.1}%, portless loads {:.1}%",
            self.workload,
            self.config,
            self.ipc,
            self.insts,
            self.cycles,
            self.port_utilisation * 100.0,
            self.portless_load_fraction * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpe_cpu::CpuStats;
    use cpe_mem::MemStats;

    fn fake_result() -> SimResult {
        let mut cpu = CpuStats::default();
        cpu.cycles.add(1_000);
        cpu.committed.add(2_000);
        cpu.committed_user.add(1_500);
        cpu.committed_kernel.add(500);
        cpu.user_cycles.add(700);
        cpu.kernel_cycles.add(300);
        cpu.loads.add(600);
        cpu.stores.add(300);
        cpu.branches.add(200);
        cpu.mispredicts.add(10);
        let mut mem = MemStats::default();
        mem.loads.add(600);
        mem.stores.add(300);
        mem.load_misses.add(20);
        mem.store_misses.add(10);
        mem.load_lb_hits.add(150);
        mem.port_slots_used.add(700);
        mem.port_slots_offered.add(1_000);
        mem.store_combined.add(60);
        SimResult {
            cycles: 1_000,
            committed: 2_000,
            cpu,
            mem,
        }
    }

    #[test]
    fn derivations_are_correct() {
        let s = RunSummary::new("cfg", "wl", fake_result());
        assert_eq!(s.ipc, 2.0);
        assert_eq!(s.bank_conflicts_per_kinst, 0.0);
        assert_eq!(s.prefetch_accuracy, 0.0);
        assert_eq!(s.victim_hits_per_kinst, 0.0);
        assert_eq!(s.kernel_fraction, 0.25);
        assert!((s.user_ipc - 1500.0 / 700.0).abs() < 1e-12);
        assert!((s.kernel_ipc - 500.0 / 300.0).abs() < 1e-12);
        assert_eq!(s.loads_per_kinst, 300.0);
        assert_eq!(s.dcache_mpki, 15.0);
        assert_eq!(s.port_utilisation, 0.7);
        assert_eq!(s.portless_load_fraction, 0.25);
        assert_eq!(s.store_combined_fraction, 0.2);
        assert_eq!(s.mispredict_rate, 0.05);
        assert_eq!(s.load_latency_p50, None, "no latency samples recorded");
    }

    #[test]
    fn latency_percentiles_flow_from_the_distribution() {
        let mut result = fake_result();
        for latency in [1, 2, 3, 100] {
            result
                .mem
                .record_load_latency(cpe_mem::LoadSource::L1Hit, latency);
        }
        let s = RunSummary::new("cfg", "wl", result);
        assert_eq!(s.load_latency_p50, Some(2));
        assert_eq!(s.load_latency_p99, Some(100));
    }

    #[test]
    fn relative_ipc() {
        let a = RunSummary::new("a", "wl", fake_result());
        let mut b_result = fake_result();
        b_result.committed = 1_000;
        let b = RunSummary::new(
            "b",
            "wl",
            SimResult {
                committed: 1_000,
                ..b_result
            },
        );
        // b has half the instructions in the same cycles → half the IPC.
        assert!((b.relative_ipc(&a) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_has_the_headline_numbers() {
        let text = RunSummary::new("cfg", "wl", fake_result()).to_string();
        assert!(text.contains("IPC 2.000"), "{text}");
        assert!(text.contains("70.0%"), "{text}");
    }
}
