//! Named machine configurations — the paper's design points.

use cpe_cpu::CpuConfig;
use cpe_mem::MemConfig;

use crate::error::ConfigError;

/// A complete, named simulation configuration.
///
/// The constructors mirror the paper's comparison set. Start from one of
/// them and refine with the `with_*` methods:
///
/// ```
/// use cpe_core::SimConfig;
///
/// let machine = SimConfig::naive_single_port()
///     .with_store_buffer(8, true)
///     .with_wide_port(16, true)
///     .with_line_buffers(4, 16)
///     .named("my single-port design");
/// assert_eq!(machine.mem.ports.count, 1);
/// assert_eq!(machine.mem.store_buffer.entries, 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Label used in reports.
    pub name: String,
    /// Processor-core parameters.
    pub cpu: CpuConfig,
    /// Memory-hierarchy parameters.
    pub mem: MemConfig,
}

impl SimConfig {
    fn base(name: &str) -> SimConfig {
        SimConfig {
            name: name.to_string(),
            cpu: CpuConfig::default(),
            mem: MemConfig::default(),
        }
    }

    /// The problem statement: one 8-byte data-cache port, no buffering.
    /// Committed stores contend with loads for the single port.
    pub fn naive_single_port() -> SimConfig {
        SimConfig::base("1-port naive")
    }

    /// A standard single-ported machine: one 8-byte port plus the small
    /// non-combining write buffer every multi-port preset also carries,
    /// so the `1/2/4-port` family isolates pure port bandwidth.
    pub fn single_port() -> SimConfig {
        let mut config = SimConfig::base("1-port");
        config.mem.store_buffer.entries = 4;
        config
    }

    /// The expensive reference design: a true dual-ported data cache.
    /// (A small store buffer is standard on such machines and keeps the
    /// comparison honest — the paper's 91% is against a *practical*
    /// dual-ported design.)
    pub fn dual_port() -> SimConfig {
        let mut config = SimConfig::base("2-port");
        config.mem.ports.count = 2;
        config.mem.store_buffer.entries = 4;
        config
    }

    /// A two-access, `banks`-way interleaved cache: the era's cheap
    /// alternative to true dual porting. Two same-cycle accesses must hit
    /// different banks, so it approaches [`SimConfig::dual_port`] only as
    /// bank conflicts become rare.
    pub fn banked(banks: u32) -> SimConfig {
        let mut config = SimConfig::base(&format!("2-acc {banks}-bank"));
        config.mem.ports.count = 2;
        config.mem.ports.banks = banks;
        config.mem.store_buffer.entries = 4;
        config
    }

    /// A four-ported cache — approaching the no-port-limit machine.
    pub fn quad_port() -> SimConfig {
        let mut config = SimConfig::base("4-port");
        config.mem.ports.count = 4;
        config.mem.store_buffer.entries = 4;
        config
    }

    /// An effectively unconstrained port supply (one port per issue slot).
    pub fn ideal_ports() -> SimConfig {
        let mut config = SimConfig::base("ideal-port");
        config.mem.ports.count = 8;
        config.mem.store_buffer.entries = 8;
        config
    }

    /// The paper's proposed single-port design with every technique on:
    /// a 16-byte wide port with load combining, an 8-entry write-combining
    /// store buffer draining into idle slots, and four 16-byte line
    /// buffers.
    pub fn combined_single_port() -> SimConfig {
        SimConfig::naive_single_port()
            .with_wide_port(16, true)
            .with_store_buffer(8, true)
            .with_line_buffers(4, 16)
            .named("1-port combined")
    }

    /// The large-window stress cell: the paper's combined single-port
    /// memory system in front of a 128-entry ROB with 32-entry load and
    /// store queues. This is where per-cycle broadcast scans hurt most,
    /// so it doubles as the scheduler-performance benchmark cell.
    pub fn big_window() -> SimConfig {
        let mut config = SimConfig::combined_single_port().named("1-port combined w128");
        config.cpu.rob_entries = 128;
        config.cpu.load_queue = 32;
        config.cpu.store_queue = 32;
        config
    }

    /// Rename the configuration.
    pub fn named(mut self, name: &str) -> SimConfig {
        self.name = name.to_string();
        self
    }

    /// Set the number of true data-cache ports.
    pub fn with_ports(mut self, count: u32) -> SimConfig {
        self.mem.ports.count = count;
        self
    }

    /// Add a store buffer of `entries` (0 disables), optionally
    /// write-combining stores to one chunk into one port access.
    pub fn with_store_buffer(mut self, entries: usize, combining: bool) -> SimConfig {
        self.mem.store_buffer.entries = entries;
        self.mem.store_buffer.combining = combining;
        self
    }

    /// Widen the port to `width_bytes`, optionally letting same-chunk
    /// loads share one access.
    pub fn with_wide_port(mut self, width_bytes: u64, load_combining: bool) -> SimConfig {
        self.mem.ports.width_bytes = width_bytes;
        self.mem.ports.load_combining = load_combining;
        // The store buffer drains in port-width chunks; keep the line
        // buffers' default width in step unless explicitly set.
        self
    }

    /// Add `entries` line buffers capturing `width_bytes` each.
    pub fn with_line_buffers(mut self, entries: usize, width_bytes: u64) -> SimConfig {
        self.mem.line_buffers.entries = entries;
        self.mem.line_buffers.width_bytes = width_bytes;
        self
    }

    /// Set the superscalar width (fetch/dispatch/issue/commit together).
    pub fn with_issue_width(mut self, width: u32) -> SimConfig {
        self.cpu.fetch_width = width;
        self.cpu.dispatch_width = width;
        self.cpu.issue_width = width;
        self.cpu.commit_width = width;
        self
    }

    /// Check both halves for consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming this configuration and the first
    /// inconsistency found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.cpu
            .try_validate()
            .and_then(|()| self.mem.try_validate())
            .map_err(|message| ConfigError {
                config: self.name.clone(),
                message,
            })
    }
}

impl Default for SimConfig {
    /// [`SimConfig::naive_single_port`].
    fn default() -> SimConfig {
        SimConfig::naive_single_port()
    }
}

impl std::fmt::Display for SimConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} port(s) × {}B{}, SB {}{}, LB {}×{}B",
            self.name,
            self.mem.ports.count,
            self.mem.ports.width_bytes,
            if self.mem.ports.load_combining {
                " +combine"
            } else {
                ""
            },
            self.mem.store_buffer.entries,
            if self.mem.store_buffer.combining {
                " +combine"
            } else {
                ""
            },
            self.mem.line_buffers.entries,
            self.mem.line_buffers.width_bytes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for config in [
            SimConfig::naive_single_port(),
            SimConfig::single_port(),
            SimConfig::banked(4),
            SimConfig::dual_port(),
            SimConfig::quad_port(),
            SimConfig::ideal_ports(),
            SimConfig::combined_single_port(),
            SimConfig::big_window(),
        ] {
            config.validate().expect("preset must be consistent");
        }
    }

    #[test]
    fn invalid_configs_are_reported_not_panicked() {
        let error = SimConfig::naive_single_port()
            .with_ports(0)
            .validate()
            .expect_err("zero ports is inconsistent");
        assert_eq!(error.config, "1-port naive");
        assert!(error.message.contains("port"), "{}", error.message);
    }

    #[test]
    fn combined_design_keeps_one_port() {
        let config = SimConfig::combined_single_port();
        assert_eq!(config.mem.ports.count, 1);
        assert_eq!(config.mem.ports.width_bytes, 16);
        assert!(config.mem.ports.load_combining);
        assert_eq!(config.mem.store_buffer.entries, 8);
        assert!(config.mem.store_buffer.combining);
        assert_eq!(config.mem.line_buffers.entries, 4);
    }

    #[test]
    fn builders_compose() {
        let config = SimConfig::dual_port().with_issue_width(8).named("wide");
        assert_eq!(config.name, "wide");
        assert_eq!(config.cpu.issue_width, 8);
        assert_eq!(config.mem.ports.count, 2);
    }

    #[test]
    fn display_summarises_the_techniques() {
        let text = SimConfig::combined_single_port().to_string();
        assert!(text.contains("1 port(s) × 16B +combine"), "{text}");
        assert!(text.contains("SB 8 +combine"), "{text}");
        assert!(text.contains("LB 4×16B"), "{text}");
    }
}
