//! Structural validation of exported metrics documents: the CPI-stack
//! conservation gate behind `cpe validate --cpi`.
//!
//! The `cpi_stack` object is self-contained — it carries `commit_width`
//! and `commit_slots` (= cycles × commit_width) alongside `total` and
//! the per-cause breakdown — so conservation can be checked on any
//! document that embeds one: a `--metrics-json` profile, a sweep
//! aggregate, a `cpe compare` bundle. The check is exact integer
//! equality, zero tolerance: a single leaked or double-counted commit
//! slot is an error.

use crate::diff::JsonValue;

fn member<'a>(members: &'a [(String, JsonValue)], key: &str) -> Option<&'a JsonValue> {
    members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A JSON number that is an exact non-negative integer.
fn integer(value: &JsonValue) -> Option<u64> {
    match value {
        JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
            Some(*n as u64)
        }
        _ => None,
    }
}

fn require_integer(members: &[(String, JsonValue)], key: &str, path: &str) -> Result<u64, String> {
    let value = member(members, key).ok_or_else(|| format!("{path}: missing \"{key}\""))?;
    integer(value).ok_or_else(|| format!("{path}: \"{key}\" is not a non-negative integer"))
}

/// Check one `cpi_stack` object; returns its `commit_width` so sibling
/// epochs can be checked against it.
fn check_stack(stack: &JsonValue, path: &str) -> Result<u64, String> {
    let JsonValue::Object(members) = stack else {
        return Err(format!("{path}: cpi_stack is not an object"));
    };
    let commit_width = require_integer(members, "commit_width", path)?;
    if commit_width == 0 {
        return Err(format!("{path}: commit_width is zero"));
    }
    let commit_slots = require_integer(members, "commit_slots", path)?;
    let total = require_integer(members, "total", path)?;
    let causes = match member(members, "causes") {
        Some(JsonValue::Object(causes)) => causes,
        _ => return Err(format!("{path}: missing \"causes\" object")),
    };
    let mut sum: u64 = 0;
    for (name, slots) in causes {
        let slots = integer(slots)
            .ok_or_else(|| format!("{path}: cause \"{name}\" is not a non-negative integer"))?;
        sum = sum
            .checked_add(slots)
            .ok_or_else(|| format!("{path}: cause sum overflows"))?;
    }
    if sum != total {
        return Err(format!(
            "{path}: causes sum to {sum} but total claims {total}"
        ));
    }
    if total != commit_slots {
        return Err(format!(
            "{path}: total {total} != commit_slots {commit_slots} \
             (cycles × commit_width) — commit slots leaked"
        ));
    }
    Ok(commit_width)
}

/// Check one epoch's `cpi_slots` against the document's commit width.
fn check_epoch(epoch: &JsonValue, commit_width: u64, path: &str) -> Result<(), String> {
    let JsonValue::Object(members) = epoch else {
        return Ok(());
    };
    let Some(JsonValue::Object(slots)) = member(members, "cpi_slots") else {
        return Err(format!("{path}: missing \"cpi_slots\""));
    };
    let start = require_integer(members, "start_cycle", path)?;
    let end = require_integer(members, "end_cycle", path)?;
    let mut sum: u64 = 0;
    for (name, value) in slots {
        sum += integer(value)
            .ok_or_else(|| format!("{path}: cause \"{name}\" is not a non-negative integer"))?;
    }
    let cycles = end
        .checked_sub(start)
        .ok_or_else(|| format!("{path}: end_cycle {end} precedes start_cycle {start}"))?;
    let expected = cycles * commit_width;
    if sum != expected {
        return Err(format!(
            "{path}: epoch slots sum to {sum}, expected {expected} \
             (({end} - {start}) × {commit_width})"
        ));
    }
    Ok(())
}

fn walk(value: &JsonValue, path: &str, checked: &mut usize) -> Result<(), String> {
    match value {
        JsonValue::Object(members) => {
            if let Some(stack) = member(members, "cpi_stack") {
                let stack_path = if path.is_empty() {
                    "cpi_stack".to_string()
                } else {
                    format!("{path}.cpi_stack")
                };
                let width = check_stack(stack, &stack_path)?;
                *checked += 1;
                // Conservation holds per epoch too, when the document
                // carries the series alongside the stack.
                if let Some(JsonValue::Array(epochs)) = member(members, "epochs") {
                    let base = if path.is_empty() {
                        String::new()
                    } else {
                        format!("{path}.")
                    };
                    for (index, epoch) in epochs.iter().enumerate() {
                        check_epoch(epoch, width, &format!("{base}epochs[{index}]"))?;
                    }
                }
            }
            for (key, child) in members {
                if key == "cpi_stack" {
                    continue;
                }
                let child_path = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                walk(child, &child_path, checked)?;
            }
        }
        JsonValue::Array(items) => {
            for (index, item) in items.iter().enumerate() {
                walk(item, &format!("{path}[{index}]"), checked)?;
            }
        }
        _ => {}
    }
    Ok(())
}

/// Walk a parsed document and check every embedded `cpi_stack` (and any
/// sibling `epochs` series) for exact commit-slot conservation.
///
/// Returns the number of stacks checked — `Ok(0)` means the document is
/// well-formed but carries no CPI accounting (the caller decides whether
/// that is acceptable).
///
/// # Errors
///
/// The first violated invariant, with the dotted path of the offending
/// object.
pub fn validate_cpi_stacks(doc: &JsonValue) -> Result<usize, String> {
    let mut checked = 0;
    walk(doc, "", &mut checked)?;
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::parse_json;
    use crate::json::profile_json;
    use crate::observe::ProfileOptions;
    use crate::simulator::Simulator;
    use crate::SimConfig;
    use cpe_workloads::{Scale, Workload};

    fn profile_doc() -> String {
        let sim = Simulator::new(SimConfig::combined_single_port());
        let run = sim
            .try_profile(
                Workload::Sort,
                Scale::Test,
                Some(5_000),
                ProfileOptions::default(),
            )
            .expect("run completes");
        profile_json(&run, sim.config())
    }

    #[test]
    fn real_profile_documents_conserve() {
        let doc = parse_json(&profile_doc()).expect("valid JSON");
        assert_eq!(validate_cpi_stacks(&doc), Ok(1));
    }

    #[test]
    fn a_leaked_slot_is_caught() {
        let text = profile_doc();
        // Corrupt the stack's own total.
        let needle = "\"total\":";
        let at = text.find(needle).expect("total present") + needle.len();
        let end = text[at..].find(',').expect("number ends") + at;
        let total: u64 = text[at..end].parse().expect("integer total");
        let corrupt = format!("{}{}{}", &text[..at], total + 1, &text[end..]);
        let doc = parse_json(&corrupt).expect("still valid JSON");
        let err = validate_cpi_stacks(&doc).expect_err("leak detected");
        assert!(err.contains("cpi_stack"), "{err}");
    }

    #[test]
    fn an_epoch_leak_is_caught() {
        let text = profile_doc();
        let needle = "\"cpi_slots\":{\"base\":";
        let at = text.find(needle).expect("epoch slots present") + needle.len();
        let end = at
            + text[at..]
                .find(|c: char| !c.is_ascii_digit())
                .expect("number ends");
        let base: u64 = text[at..end].parse().expect("integer base");
        let corrupt = format!("{}{}{}", &text[..at], base + 1, &text[end..]);
        let doc = parse_json(&corrupt).expect("still valid JSON");
        let err = validate_cpi_stacks(&doc).expect_err("epoch leak detected");
        assert!(err.contains("epochs[0]"), "{err}");
    }

    #[test]
    fn documents_without_stacks_count_zero() {
        let doc = parse_json("{\"schema\":3,\"summary\":{\"ipc\":1.5}}").expect("valid");
        assert_eq!(validate_cpi_stacks(&doc), Ok(0));
    }

    #[test]
    fn stacks_nested_in_sweep_documents_are_found() {
        // The shape `cpe sweep --metrics-json` writes: stacks nested in
        // per-cell objects under arbitrary keys.
        let cell = "{\"cpi_stack\":{\"commit_width\":4,\"commit_slots\":40,\"total\":40,\
                    \"causes\":{\"base\":30,\"idle\":10}}}";
        let doc_text = format!("{{\"schema\":3,\"cells\":[{cell},{cell}]}}");
        let doc = parse_json(&doc_text).expect("valid");
        assert_eq!(validate_cpi_stacks(&doc), Ok(2));

        let bad = doc_text.replace("\"total\":40", "\"total\":41");
        let doc = parse_json(&bad).expect("valid");
        let err = validate_cpi_stacks(&doc).expect_err("caught");
        assert!(err.contains("cells[0]"), "{err}");
    }
}
