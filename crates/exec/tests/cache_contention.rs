//! Contention tests for the on-disk result cache: many writers racing
//! on one key, torn entries recovering through the job path, and
//! `cache clear` racing an active sweep. The cache's contract under all
//! of this is simple — readers see a complete document or a miss, never
//! a torn one, and a concurrent clear can only cause recomputation,
//! never a wrong result.

use std::sync::atomic::{AtomicBool, Ordering};

use cpe_core::{BackendKind, SimConfig};
use cpe_exec::{run_job, CacheKey, CacheStatus, Job, ResultCache, SweepPlan};
use cpe_workloads::{Scale, Workload};

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cpe-contention-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny_job() -> Job {
    Job {
        config: SimConfig::dual_port(),
        workload: Workload::Sort,
        scale: Scale::Test,
        max_insts: Some(2_000),
        backend: BackendKind::Direct,
    }
}

#[test]
fn concurrent_writers_to_one_key_never_expose_a_torn_entry() {
    let dir = tempdir("writers");
    let cache = ResultCache::new(&dir);
    let key = CacheKey::for_job(&tiny_job());
    // A large, recognizable document: a torn write would be caught by
    // the full-equality check below.
    let document = format!("{{\"schema\":2,\"blob\":\"{}\"}}", "x".repeat(64 * 1024));
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                for _ in 0..25 {
                    cache.store(&key, &document).expect("store succeeds");
                    match cache.lookup(&key) {
                        None => {} // raced a rename; a miss is legal
                        Some(read) => assert_eq!(read, document, "never torn"),
                    }
                }
            });
        }
    });
    assert_eq!(cache.lookup(&key).as_deref(), Some(document.as_str()));
    assert_eq!(cache.stats().entries, 1, "one key, one entry");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_entry_is_a_miss_and_heals_through_run_job() {
    let dir = tempdir("torn");
    let cache = ResultCache::new(&dir);
    let job = tiny_job();
    let key = job.cache_key();
    // Simulate a crash mid-write that somehow landed a torn final file.
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join(format!("{}.json", key.hex())),
        "\"schema\":2,\"trunc",
    )
    .unwrap();

    let healed = run_job(&job, Some(&cache));
    assert_eq!(
        healed.cache,
        CacheStatus::Miss,
        "torn entry reads as a miss"
    );
    let document = healed.document.expect("job recomputes");
    assert_eq!(
        cache.lookup(&key).as_deref(),
        Some(document.as_str()),
        "the recomputed document replaced the torn entry"
    );
    let again = run_job(&job, Some(&cache));
    assert_eq!(again.cache, CacheStatus::Hit, "healed entry now hits");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_clear_racing_an_active_sweep_costs_only_recomputation() {
    let dir = tempdir("clear-race");
    let cache = ResultCache::new(&dir);
    let plan = SweepPlan {
        configs: vec![SimConfig::naive_single_port(), SimConfig::dual_port()],
        workloads: vec![Workload::Compress, Workload::Sort],
        scale: Scale::Test,
        max_insts: Some(2_000),
        backend: BackendKind::Direct,
    };
    let reference = plan.run(1, None).expect("uncached reference");

    let stop = AtomicBool::new(false);
    let results = std::thread::scope(|scope| {
        let clearer = scope.spawn(|| {
            let mut cleared = 0usize;
            while !stop.load(Ordering::Relaxed) {
                cleared += cache.clear().expect("clear tolerates races");
                std::thread::yield_now();
            }
            cleared
        });
        // Sweep repeatedly while the clearer deletes entries under it.
        let mut last = None;
        for _ in 0..3 {
            last = Some(plan.run(3, Some(&cache)).expect("sweep survives clears"));
        }
        stop.store(true, Ordering::Relaxed);
        clearer.join().expect("clearer exits");
        last.unwrap()
    });
    assert_eq!(
        results.aggregate_json(),
        reference.aggregate_json(),
        "clearing mid-sweep can cost recomputation, never correctness"
    );
    assert_eq!(results.stats.failed, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
