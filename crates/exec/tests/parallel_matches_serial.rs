//! The execution layer's core promise, end to end: a parallel, cached
//! sweep produces **byte-identical** aggregate output to the serial,
//! uncached path — same IPC table, same sweep metrics document — and a
//! repeated sweep is served entirely from the cache without changing a
//! byte.

use cpe_core::{BackendKind, SimConfig};
use cpe_exec::{CacheStatus, ResultCache, SweepPlan};
use cpe_workloads::{Scale, Workload};

fn plan() -> SweepPlan {
    SweepPlan {
        configs: vec![
            SimConfig::naive_single_port(),
            SimConfig::dual_port(),
            SimConfig::combined_single_port(),
        ],
        workloads: vec![Workload::Compress, Workload::Sort, Workload::Fft],
        scale: Scale::Test,
        max_insts: Some(5_000),
        backend: BackendKind::Direct,
    }
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("cpe-exec-{tag}-{}", std::process::id()))
}

#[test]
fn two_worker_sweep_matches_the_serial_path_byte_for_byte() {
    let plan = plan();
    let serial = plan.run(1, None).expect("serial sweep runs");
    let parallel = plan.run(2, None).expect("parallel sweep runs");

    assert_eq!(
        serial.ipc_table().to_csv(),
        parallel.ipc_table().to_csv(),
        "IPC table must not depend on worker count"
    );
    assert_eq!(
        serial.aggregate_json(),
        parallel.aggregate_json(),
        "sweep metrics document must not depend on worker count"
    );
}

#[test]
fn cached_rerun_is_all_hits_and_byte_identical() {
    let dir = scratch_dir("rerun");
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ResultCache::new(&dir);
    let plan = plan();

    let serial = plan.run(1, None).expect("uncached serial sweep runs");
    let first = plan.run(2, Some(&cache)).expect("first cached sweep runs");
    assert_eq!(first.stats.misses, 9, "cold cache: every cell computes");
    let second = plan.run(4, Some(&cache)).expect("second cached sweep runs");
    assert_eq!(second.stats.hits, 9, "warm cache: every cell is a hit");
    assert!((second.stats.hit_rate() - 1.0).abs() < 1e-12);
    assert!(second
        .outcomes()
        .iter()
        .all(|outcome| outcome.cache == CacheStatus::Hit));

    // All three agree byte for byte: uncached serial, cold parallel,
    // warm parallel.
    let reference = serial.aggregate_json();
    assert_eq!(reference, first.aggregate_json());
    assert_eq!(reference, second.aggregate_json());
    let table = serial.ipc_table().to_csv();
    assert_eq!(table, first.ipc_table().to_csv());
    assert_eq!(table, second.ipc_table().to_csv());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_survives_across_plan_objects_but_not_across_parameters() {
    let dir = scratch_dir("params");
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ResultCache::new(&dir);

    let warm = plan();
    warm.run(2, Some(&cache)).expect("warm-up sweep runs");

    // A freshly-built identical plan hits — content addressing, not
    // object identity.
    let rebuilt = plan().run(2, Some(&cache)).expect("rebuilt plan runs");
    assert_eq!(rebuilt.stats.hits, 9);

    // A different instruction window shares nothing.
    let mut shifted = plan();
    shifted.max_insts = Some(6_000);
    let shifted = shifted.run(2, Some(&cache)).expect("shifted plan runs");
    assert_eq!(shifted.stats.hits, 0);
    assert_eq!(shifted.stats.misses, 9);

    let _ = std::fs::remove_dir_all(&dir);
}
