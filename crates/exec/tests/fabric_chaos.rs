//! End-to-end chaos tests of the distributed sweep fabric, over real
//! TCP sockets: hostile workers of every stripe against the
//! coordinator, with the acceptance bar that the assembled sweep is
//! byte-identical to a serial run — or, when failure is injected
//! deliberately past the retry budget, that it surfaces as
//! `FAILED(<kind>)` cells rather than a hang or a silently short grid.

use cpe_exec::chaos::{chaos_case, run_with_behaviors, test_options, tiny_plan, Behavior};

#[test]
fn hung_worker_loses_its_lease_by_expiry_and_metrics_match() {
    let plan = tiny_plan();
    let serial = plan.run(1, None).expect("serial runs");
    let run = run_with_behaviors(&plan, test_options(), &[Behavior::Hangs, Behavior::Healthy])
        .expect("fabric survives the hang");
    assert_eq!(run.results.aggregate_json(), serial.aggregate_json());
    assert_eq!(
        run.results.ipc_table().to_csv(),
        serial.ipc_table().to_csv()
    );
    assert_eq!(run.results.stats.failed, 0);
    assert!(
        run.stats.expired >= 1,
        "the silent lease expired by deadline: {}",
        run.stats
    );
}

#[test]
fn garbage_frames_cost_only_that_connection() {
    let plan = tiny_plan();
    let serial = plan.run(1, None).expect("serial runs");
    let run = run_with_behaviors(
        &plan,
        test_options(),
        &[Behavior::Garbage, Behavior::Garbage, Behavior::Healthy],
    )
    .expect("fabric survives garbage");
    assert_eq!(run.results.aggregate_json(), serial.aggregate_json());
    assert!(
        run.stats.protocol_errors >= 2,
        "garbage was counted and refused: {}",
        run.stats
    );
}

#[test]
fn torn_result_frames_are_discarded_and_the_cell_reruns() {
    let plan = tiny_plan();
    let serial = plan.run(1, None).expect("serial runs");
    let run = run_with_behaviors(
        &plan,
        test_options(),
        &[Behavior::TornResult, Behavior::Healthy],
    )
    .expect("fabric survives the torn frame");
    assert_eq!(run.results.aggregate_json(), serial.aggregate_json());
    assert_eq!(run.results.stats.failed, 0);
    assert!(
        run.stats.reassigned >= 1,
        "the torn connection's lease was requeued: {}",
        run.stats
    );
}

#[test]
fn slow_workers_results_arrive_stale_but_metrics_still_match() {
    let plan = tiny_plan();
    let serial = plan.run(1, None).expect("serial runs");
    let run = run_with_behaviors(&plan, test_options(), &[Behavior::Slow, Behavior::Healthy])
        .expect("fabric survives slowness");
    assert_eq!(run.results.aggregate_json(), serial.aggregate_json());
    assert_eq!(run.results.stats.failed, 0);
}

#[test]
fn immediate_deaths_and_kills_combined_still_converge() {
    let plan = tiny_plan();
    let serial = plan.run(1, None).expect("serial runs");
    let run = run_with_behaviors(
        &plan,
        test_options(),
        &[
            Behavior::DiesImmediately,
            Behavior::KillsMidJob,
            Behavior::KillsMidJob,
            Behavior::Healthy,
        ],
    )
    .expect("fabric converges");
    assert_eq!(run.results.aggregate_json(), serial.aggregate_json());
    assert_eq!(run.results.stats.failed, 0);
    assert!(run.stats.workers_seen >= 4);
}

#[test]
fn single_job_requests_are_served_on_the_coordinator_listener_mid_sweep() {
    use cpe_exec::{Coordinator, ServeDefaults, Server};
    use std::io::{BufRead, BufReader, Write};
    use std::sync::atomic::AtomicBool;

    let plan = tiny_plan();
    let serial = plan.run(1, None).expect("serial runs");
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let server = Server::new(None, ServeDefaults::default());
    let coordinator = Coordinator::new(plan.jobs(), test_options());
    let stop = AtomicBool::new(false);

    let report = std::thread::scope(|scope| {
        let worker_addr = addr.clone();
        let worker_stop = &stop;
        scope.spawn(move || {
            let _ = cpe_exec::run_worker(
                &worker_addr,
                None,
                &cpe_exec::WorkerOptions::default(),
                worker_stop,
            );
        });
        // A plain serve client on the same listener, mid-sweep: a job
        // request is answered, and its shutdown closes only *its*
        // connection, never the sweep.
        let client_addr = addr.clone();
        scope.spawn(move || {
            let stream = std::net::TcpStream::connect(&client_addr).expect("connect");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut stream = stream;
            writeln!(
                stream,
                "{{\"id\":1,\"workload\":\"sort\",\"config\":\"2-port\",\"max_insts\":2000}}"
            )
            .expect("request");
            let mut reply = String::new();
            reader.read_line(&mut reply).expect("reply");
            assert!(reply.contains("\"id\":1"), "{reply}");
            assert!(reply.contains("\"result\":{"), "{reply}");
            writeln!(stream, "{{\"cmd\":\"shutdown\"}}").expect("shutdown");
            let mut ack = String::new();
            reader.read_line(&mut ack).expect("ack");
            assert!(ack.contains("\"shutdown\":true"), "{ack}");
        });
        coordinator.run(listener, &server).expect("sweep completes")
    });

    let results =
        cpe_exec::SweepResults::assemble(plan, report.outcomes, 1, 0, report.stats.wall_seconds);
    assert_eq!(
        results.aggregate_json(),
        serial.aggregate_json(),
        "a serve client's shutdown must not perturb the sweep"
    );
    assert_eq!(server.jobs_served(), 1, "the single-job request ran");
}

#[test]
fn seeded_fuzz_cases_hold_the_byte_identity_promise() {
    // A handful of seeds here; `cpe fuzz-fabric --cases N` sweeps more.
    for seed in [1, 2, 3] {
        let run = chaos_case(seed).expect("chaos case holds");
        assert_eq!(run.results.stats.failed, 0, "seed {seed}");
    }
}

/// Full observability under fault injection: every JSONL line parses,
/// the event counts reconcile with the coordinator's counters, the
/// `fabric` metrics document and Chrome trace are well formed — and
/// none of it perturbs the sweep's results by a single byte.
#[test]
fn observed_chaos_reconciles_events_with_counters_and_stays_byte_identical() {
    use cpe_exec::chaos::run_with_behaviors_observed;
    use cpe_exec::render::{bool_member, number_at, parse, text_member};
    use cpe_exec::{EventLog, FabricObserver, DEFAULT_EVENT_CAPACITY};
    use std::collections::HashMap;

    let plan = tiny_plan();
    let serial = plan.run(1, None).expect("serial runs");
    let (log, buffer) = EventLog::to_buffer(DEFAULT_EVENT_CAPACITY);
    let run = run_with_behaviors_observed(
        &plan,
        test_options(),
        &[Behavior::KillsMidJob, Behavior::Healthy],
        FabricObserver::new(Some(log), true, None),
    )
    .expect("fabric survives the kill under observation");

    // Observability never touches the results: table and metrics are
    // byte-identical to the serial, unobserved run.
    assert_eq!(run.results.aggregate_json(), serial.aggregate_json());
    assert_eq!(
        run.results.ipc_table().to_csv(),
        serial.ipc_table().to_csv()
    );
    assert_eq!(run.results.stats.failed, 0);

    // Every log line is valid JSON with a named event and a timestamp.
    let contents = buffer.contents();
    let mut counts: HashMap<String, u64> = HashMap::new();
    let mut stale_results = 0u64;
    let mut lines = 0u64;
    for (index, line) in contents.lines().enumerate() {
        let value =
            parse(line).unwrap_or_else(|error| panic!("line {}: {error}: {line}", index + 1));
        assert!(
            number_at(&value, &["t_ms"]).is_some(),
            "line {} has a timestamp: {line}",
            index + 1
        );
        let event = text_member(&value, "event")
            .expect("event is a string")
            .expect("every line names its event")
            .to_string();
        if event == "result" && bool_member(&value, "stale").expect("stale is a bool") == Some(true)
        {
            stale_results += 1;
        }
        *counts.entry(event).or_default() += 1;
        lines += 1;
    }
    let summary = run.log.expect("a log was attached");
    assert_eq!(summary.dropped, 0, "a tiny grid never overflows the log");
    assert_eq!(summary.written, lines, "the summary matches the sink");

    // Events reconcile with the counters the footer reports: same
    // facts, two channels.
    let count = |name: &str| counts.get(name).copied().unwrap_or(0);
    let stats = &run.stats;
    assert_eq!(count("lease_grant"), stats.granted);
    assert_eq!(count("lease_expire"), stats.expired);
    assert_eq!(count("reassign"), stats.reassigned);
    assert_eq!(count("retry"), stats.retries);
    assert_eq!(count("cell_failed"), stats.failed as u64);
    assert_eq!(count("worker_connect"), stats.workers_seen);
    assert_eq!(count("wait"), stats.waits);
    assert_eq!(count("protocol_error"), stats.protocol_errors);
    assert_eq!(count("status_query"), stats.status_queries);
    assert_eq!(stale_results, stats.stale_results);
    assert_eq!(count("sweep_start"), 1);
    assert_eq!(count("sweep_done"), 1);

    // The fleet metrics document parses and carries the same counters.
    let metrics = parse(&run.fabric_json).expect("fabric metrics parse");
    assert_eq!(number_at(&metrics, &["schema"]), Some(2.0));
    assert_eq!(
        number_at(&metrics, &["fabric", "granted"]),
        Some(stats.granted as f64)
    );
    assert_eq!(
        number_at(&metrics, &["fabric", "workers_seen"]),
        Some(stats.workers_seen as f64)
    );
    assert_eq!(
        number_at(&metrics, &["fabric", "log", "written"]),
        Some(summary.written as f64)
    );

    // The Chrome trace parses and has one named lane per session.
    let trace = run.trace_json.expect("tracing was on");
    parse(&trace).expect("trace parses");
    assert_eq!(
        trace.matches("\"thread_name\"").count() as u64,
        stats.workers_seen,
        "one lane per worker session"
    );
}

/// The live `status` endpoint: answered mid-sweep without disturbing
/// the grid, and version skew is refused with a diagnosis, not a hang.
#[test]
fn status_frames_answer_mid_sweep_and_refuse_version_skew() {
    use cpe_exec::{query_status, Coordinator, ServeDefaults, Server, FABRIC_SCHEMA};
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    let plan = tiny_plan();
    let serial = plan.run(1, None).expect("serial runs");
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let server = Server::new(None, ServeDefaults::default());
    let coordinator = Coordinator::new(plan.jobs(), test_options());
    let stop = AtomicBool::new(false);
    let timeout = Duration::from_secs(2);

    let report = std::thread::scope(|scope| {
        let probe_addr = addr.clone();
        let worker_stop = &stop;
        scope.spawn(move || {
            // Probe before any worker exists: the whole grid is queued.
            let before = query_status(&probe_addr, u64::from(FABRIC_SCHEMA), timeout)
                .expect("status answers mid-sweep");
            assert_eq!(before.cells, 4);
            assert_eq!(before.done, 0);
            assert_eq!(before.queued, 4);
            assert_eq!(before.leased, 0);
            assert!(before.workers.is_empty());

            // A future protocol version gets a refusal, not an answer.
            let skew = query_status(&probe_addr, 999, timeout).expect_err("skew is refused");
            assert!(skew.contains("unsupported"), "{skew}");

            // Then a healthy worker drains the sweep.
            let _ = cpe_exec::run_worker(
                &probe_addr,
                None,
                &cpe_exec::WorkerOptions::default(),
                worker_stop,
            );
        });
        coordinator.run(listener, &server).expect("sweep completes")
    });

    assert_eq!(
        report.stats.status_queries, 1,
        "the skewed query is refused, not counted"
    );
    let results =
        cpe_exec::SweepResults::assemble(plan, report.outcomes, 1, 0, report.stats.wall_seconds);
    assert_eq!(
        results.aggregate_json(),
        serial.aggregate_json(),
        "status queries must not perturb the sweep"
    );
}
