//! End-to-end chaos tests of the distributed sweep fabric, over real
//! TCP sockets: hostile workers of every stripe against the
//! coordinator, with the acceptance bar that the assembled sweep is
//! byte-identical to a serial run — or, when failure is injected
//! deliberately past the retry budget, that it surfaces as
//! `FAILED(<kind>)` cells rather than a hang or a silently short grid.

use cpe_exec::chaos::{chaos_case, run_with_behaviors, test_options, tiny_plan, Behavior};

#[test]
fn hung_worker_loses_its_lease_by_expiry_and_metrics_match() {
    let plan = tiny_plan();
    let serial = plan.run(1, None).expect("serial runs");
    let run = run_with_behaviors(&plan, test_options(), &[Behavior::Hangs, Behavior::Healthy])
        .expect("fabric survives the hang");
    assert_eq!(run.results.aggregate_json(), serial.aggregate_json());
    assert_eq!(
        run.results.ipc_table().to_csv(),
        serial.ipc_table().to_csv()
    );
    assert_eq!(run.results.stats.failed, 0);
    assert!(
        run.stats.expired >= 1,
        "the silent lease expired by deadline: {}",
        run.stats
    );
}

#[test]
fn garbage_frames_cost_only_that_connection() {
    let plan = tiny_plan();
    let serial = plan.run(1, None).expect("serial runs");
    let run = run_with_behaviors(
        &plan,
        test_options(),
        &[Behavior::Garbage, Behavior::Garbage, Behavior::Healthy],
    )
    .expect("fabric survives garbage");
    assert_eq!(run.results.aggregate_json(), serial.aggregate_json());
    assert!(
        run.stats.protocol_errors >= 2,
        "garbage was counted and refused: {}",
        run.stats
    );
}

#[test]
fn torn_result_frames_are_discarded_and_the_cell_reruns() {
    let plan = tiny_plan();
    let serial = plan.run(1, None).expect("serial runs");
    let run = run_with_behaviors(
        &plan,
        test_options(),
        &[Behavior::TornResult, Behavior::Healthy],
    )
    .expect("fabric survives the torn frame");
    assert_eq!(run.results.aggregate_json(), serial.aggregate_json());
    assert_eq!(run.results.stats.failed, 0);
    assert!(
        run.stats.reassigned >= 1,
        "the torn connection's lease was requeued: {}",
        run.stats
    );
}

#[test]
fn slow_workers_results_arrive_stale_but_metrics_still_match() {
    let plan = tiny_plan();
    let serial = plan.run(1, None).expect("serial runs");
    let run = run_with_behaviors(&plan, test_options(), &[Behavior::Slow, Behavior::Healthy])
        .expect("fabric survives slowness");
    assert_eq!(run.results.aggregate_json(), serial.aggregate_json());
    assert_eq!(run.results.stats.failed, 0);
}

#[test]
fn immediate_deaths_and_kills_combined_still_converge() {
    let plan = tiny_plan();
    let serial = plan.run(1, None).expect("serial runs");
    let run = run_with_behaviors(
        &plan,
        test_options(),
        &[
            Behavior::DiesImmediately,
            Behavior::KillsMidJob,
            Behavior::KillsMidJob,
            Behavior::Healthy,
        ],
    )
    .expect("fabric converges");
    assert_eq!(run.results.aggregate_json(), serial.aggregate_json());
    assert_eq!(run.results.stats.failed, 0);
    assert!(run.stats.workers_seen >= 4);
}

#[test]
fn single_job_requests_are_served_on_the_coordinator_listener_mid_sweep() {
    use cpe_exec::{Coordinator, ServeDefaults, Server};
    use std::io::{BufRead, BufReader, Write};
    use std::sync::atomic::AtomicBool;

    let plan = tiny_plan();
    let serial = plan.run(1, None).expect("serial runs");
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let server = Server::new(None, ServeDefaults::default());
    let coordinator = Coordinator::new(plan.jobs(), test_options());
    let stop = AtomicBool::new(false);

    let report = std::thread::scope(|scope| {
        let worker_addr = addr.clone();
        let worker_stop = &stop;
        scope.spawn(move || {
            let _ = cpe_exec::run_worker(
                &worker_addr,
                None,
                &cpe_exec::WorkerOptions::default(),
                worker_stop,
            );
        });
        // A plain serve client on the same listener, mid-sweep: a job
        // request is answered, and its shutdown closes only *its*
        // connection, never the sweep.
        let client_addr = addr.clone();
        scope.spawn(move || {
            let stream = std::net::TcpStream::connect(&client_addr).expect("connect");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut stream = stream;
            writeln!(
                stream,
                "{{\"id\":1,\"workload\":\"sort\",\"config\":\"2-port\",\"max_insts\":2000}}"
            )
            .expect("request");
            let mut reply = String::new();
            reader.read_line(&mut reply).expect("reply");
            assert!(reply.contains("\"id\":1"), "{reply}");
            assert!(reply.contains("\"result\":{"), "{reply}");
            writeln!(stream, "{{\"cmd\":\"shutdown\"}}").expect("shutdown");
            let mut ack = String::new();
            reader.read_line(&mut ack).expect("ack");
            assert!(ack.contains("\"shutdown\":true"), "{ack}");
        });
        coordinator.run(listener, &server).expect("sweep completes")
    });

    let results =
        cpe_exec::SweepResults::assemble(plan, report.outcomes, 1, 0, report.stats.wall_seconds);
    assert_eq!(
        results.aggregate_json(),
        serial.aggregate_json(),
        "a serve client's shutdown must not perturb the sweep"
    );
    assert_eq!(server.jobs_served(), 1, "the single-job request ran");
}

#[test]
fn seeded_fuzz_cases_hold_the_byte_identity_promise() {
    // A handful of seeds here; `cpe fuzz-fabric --cases N` sweeps more.
    for seed in [1, 2, 3] {
        let run = chaos_case(seed).expect("chaos case holds");
        assert_eq!(run.results.stats.failed, 0, "seed {seed}");
    }
}
