//! Property tests for the content-addressed cache keys.
//!
//! Two invariants carry the whole cache design:
//!
//! 1. **Order-insensitivity** — the key hashes the *canonical* form of
//!    the configuration document, so shuffling JSON member order (at any
//!    nesting depth) never changes the key. A future refactor that emits
//!    config fields in a different order must not invalidate every
//!    cached result.
//! 2. **Field-sensitivity** — changing any single `SimConfig` field, or
//!    the workload, scale, or instruction window, must produce a
//!    different key. Two distinct machines must never share a cache
//!    entry.

use cpe_core::{config_json, BackendKind, JsonValue, SimConfig};
use cpe_exec::render::{parse, render};
use cpe_exec::{CacheKey, Job};
use cpe_workloads::{Scale, Workload};
use proptest::prelude::*;

/// Deterministically permute object member order at every nesting level,
/// steered by `seed` — rotation plus a conditional swap gives coverage of
/// orderings without needing a full shuffle.
fn permute(value: &JsonValue, seed: u64) -> JsonValue {
    match value {
        JsonValue::Object(members) => {
            let mut members: Vec<(String, JsonValue)> = members
                .iter()
                .map(|(key, member)| (key.clone(), permute(member, seed.rotate_left(9) ^ 0x9e37)))
                .collect();
            if !members.is_empty() {
                let rotation = (seed as usize) % members.len();
                members.rotate_left(rotation);
                if members.len() >= 2 && seed & 1 == 1 {
                    members.swap(0, 1);
                }
            }
            JsonValue::Object(members)
        }
        JsonValue::Array(items) => JsonValue::Array(
            items
                .iter()
                .map(|item| permute(item, seed.wrapping_mul(0x100000001b3)))
                .collect(),
        ),
        other => other.clone(),
    }
}

/// A config with several fields driven off the inputs, so the corpus is
/// wider than the six presets.
fn build_config(ports: u32, width: u64, sb_entries: usize, combining: bool) -> SimConfig {
    let mut config = SimConfig::single_port().named("prop");
    config.mem.ports.count = ports;
    config.mem.ports.width_bytes = width;
    config.mem.store_buffer.entries = sb_entries;
    config.mem.store_buffer.combining = combining;
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn keys_are_stable_under_member_reordering(
        seed in any::<u64>(),
        ports in 1u32..9,
        width in prop::sample::select(vec![8u64, 16, 32]),
        sb_entries in 0usize..17,
        combining in any::<bool>(),
    ) {
        let config = build_config(ports, width, sb_entries, combining);
        let text = config_json(&config);
        let shuffled = render(&permute(&parse(&text).unwrap(), seed));
        let original =
            CacheKey::for_config_text(&text, "sort", Scale::Test, Some(20_000)).unwrap();
        let reordered =
            CacheKey::for_config_text(&shuffled, "sort", Scale::Test, Some(20_000)).unwrap();
        prop_assert_eq!(original, reordered, "shuffled: {}", shuffled);
    }

    #[test]
    fn any_single_field_change_changes_the_key(
        mutation in 0usize..9,
        ports in 1u32..5,
        width in prop::sample::select(vec![8u64, 16]),
        sb_entries in 0usize..9,
    ) {
        let base = build_config(ports, width, sb_entries, false);
        let mut changed = base.clone();
        match mutation {
            0 => changed = changed.named("prop-renamed"),
            1 => changed.mem.ports.count = ports + 1,
            2 => changed.mem.ports.width_bytes = width * 2,
            3 => changed.mem.ports.load_combining = true,
            4 => changed.mem.store_buffer.entries = sb_entries + 1,
            5 => changed.mem.store_buffer.combining = true,
            6 => changed.mem.line_buffers.entries += 1,
            7 => changed.cpu.issue_width += 1,
            _ => changed.cpu.rob_entries += 16,
        }
        let job = |config: SimConfig| Job {
            config,
            workload: Workload::Sort,
            scale: Scale::Test,
            max_insts: Some(20_000),
            backend: BackendKind::Direct,
        };
        prop_assert_ne!(
            job(base).cache_key(),
            job(changed.clone()).cache_key(),
            "mutation {} produced a colliding key: {}",
            mutation,
            config_json(&changed)
        );
    }

    #[test]
    fn workload_scale_and_window_are_part_of_the_key(
        max_a in 1_000u64..50_000,
        max_b in 50_001u64..100_000,
    ) {
        let job = |workload, scale, max_insts| Job {
            config: SimConfig::combined_single_port(),
            workload,
            scale,
            max_insts,
            backend: BackendKind::Direct,
        };
        let base = job(Workload::Sort, Scale::Test, Some(max_a)).cache_key();
        prop_assert_ne!(base, job(Workload::Fft, Scale::Test, Some(max_a)).cache_key());
        prop_assert_ne!(base, job(Workload::Sort, Scale::Small, Some(max_a)).cache_key());
        prop_assert_ne!(base, job(Workload::Sort, Scale::Test, Some(max_b)).cache_key());
        prop_assert_ne!(base, job(Workload::Sort, Scale::Test, None).cache_key());
    }
}
