//! The replay backend's zero-tolerance promise, end to end: a sweep run
//! through record-once / replay-many produces **byte-identical**
//! aggregate output to the direct path — same IPC table, same sweep
//! metrics document, same per-cell schema-3 documents outside the
//! host-timing self-profile — while recording each workload exactly
//! once. Also pins the cache-key separation: entries written by one
//! backend never serve the other.

use cpe_core::{BackendKind, SimConfig};
use cpe_exec::render::{member, parse, render};
use cpe_exec::{ResultCache, SweepPlan};
use cpe_workloads::{Scale, Workload};

fn plan(backend: BackendKind) -> SweepPlan {
    SweepPlan {
        configs: vec![
            SimConfig::naive_single_port(),
            SimConfig::dual_port(),
            SimConfig::combined_single_port(),
        ],
        workloads: vec![Workload::Compress, Workload::Sort, Workload::Fft],
        scale: Scale::Test,
        max_insts: Some(5_000),
        backend,
    }
}

/// The deterministic projection of a cell document: every top-level
/// member except the host-timing `self_profile`, rendered canonically.
fn deterministic_part(document: &str) -> String {
    let parsed = parse(document).expect("document parses");
    let cpe_core::JsonValue::Object(members) = &parsed else {
        panic!("document is an object");
    };
    members
        .iter()
        .filter(|(key, _)| key != "self_profile")
        .map(|(key, _)| render(member(&parsed, key).unwrap()))
        .collect::<Vec<_>>()
        .join(",")
}

#[test]
fn replay_sweep_is_byte_identical_to_direct_and_records_once() {
    let direct = plan(BackendKind::Direct).run(2, None).expect("direct runs");
    let replay = plan(BackendKind::Replay).run(2, None).expect("replay runs");

    assert_eq!(
        direct.ipc_table().to_csv(),
        replay.ipc_table().to_csv(),
        "IPC table must not depend on the backend"
    );
    assert_eq!(
        direct.aggregate_json(),
        replay.aggregate_json(),
        "sweep metrics document must not depend on the backend"
    );
    // Cell-by-cell, the full schema-3 documents agree outside the
    // self-profile — not just the aggregated projections.
    for (a, b) in direct.outcomes().iter().zip(replay.outcomes()) {
        assert_eq!(
            deterministic_part(a.document.as_ref().expect("direct cell runs")),
            deterministic_part(b.document.as_ref().expect("replay cell runs")),
            "cell {} differs between backends",
            a.index
        );
    }

    assert_eq!(
        replay.stats.traces_recorded, 3,
        "one recording per distinct workload, made before scheduling"
    );
    assert_eq!(
        replay.stats.traces_reused,
        replay.outcomes().len() as u64,
        "every cell replays a shared recording"
    );
    assert_eq!(direct.stats.traces_recorded, 0);
    assert_eq!(direct.stats.traces_reused, 0);
}

#[test]
fn backends_never_serve_each_other_from_the_cache() {
    let dir = std::env::temp_dir().join(format!("cpe-replay-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ResultCache::new(&dir);

    let direct = plan(BackendKind::Direct)
        .run(2, Some(&cache))
        .expect("direct warms the cache");
    assert_eq!(direct.stats.misses, 9, "cold cache computes every cell");

    // Same grid through replay: all misses — the direct entries must not
    // serve it, or the byte-identity would be unfalsifiable from cache.
    let replay = plan(BackendKind::Replay)
        .run(2, Some(&cache))
        .expect("replay runs against the direct-warmed cache");
    assert_eq!(replay.stats.hits, 0, "no cross-backend hits");
    assert_eq!(replay.stats.misses, 9);
    assert_eq!(direct.aggregate_json(), replay.aggregate_json());

    // And each backend hits its own entries on a re-run.
    let warm = plan(BackendKind::Replay)
        .run(2, Some(&cache))
        .expect("warm replay sweep runs");
    assert_eq!(warm.stats.hits, 9);
    assert_eq!(
        warm.stats.traces_recorded, 3,
        "pre-recording happens before the cells reveal themselves as hits"
    );
    assert_eq!(warm.aggregate_json(), replay.aggregate_json());

    let _ = std::fs::remove_dir_all(&dir);
}
