//! Chaos harness for the sweep fabric: spawn a coordinator plus a mix
//! of honest and hostile workers, and assert that the assembled sweep
//! is **byte-identical** to a serial, single-threaded run every time.
//!
//! The hostile repertoire covers the fabric's failure-mode table:
//! workers that die immediately, die mid-job (SIGKILL equivalent: the
//! connection drops with a lease held), hang without heartbeating,
//! emit garbage frames, tear a result frame in half, or run honestly
//! but too slowly to keep their leases. Because every simulator
//! document is a pure function of its job, none of this can change the
//! final aggregate — only delay it — and that is exactly what
//! [`chaos_case`] checks, with a seeded RNG choosing the cast so
//! `cpe fuzz-fabric` can sweep many topologies.

use std::io::{BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use cpe_core::SimConfig;
use cpe_workloads::{Scale, Workload};

use crate::coordinator::{Coordinator, FabricOptions, FabricStats};
use crate::job::run_job;
use crate::observe::{FabricObserver, LogSummary, WorkerReport};
use crate::protocol::{
    CoordinatorFrame, JobSpec, LineEvent, LineReader, WorkerFrame, DEFAULT_MAX_LINE_BYTES,
    FABRIC_SCHEMA,
};
use crate::serve::{ServeDefaults, Server};
use crate::sweep::{SweepPlan, SweepResults};
use crate::worker::{run_worker, WorkerOptions};

/// One worker persona in a chaos run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Behavior {
    /// A real worker: [`run_worker`], uncached.
    Healthy,
    /// Completes the handshake, then drops the connection.
    DiesImmediately,
    /// Takes a lease, heartbeats once, then drops the connection —
    /// the protocol shadow of `kill -9` mid-job.
    KillsMidJob,
    /// Takes a lease and goes silent without closing: no heartbeat,
    /// no result, connection open. Caught only by lease expiry.
    Hangs,
    /// Completes the handshake, then emits a non-JSON line.
    Garbage,
    /// Takes a lease, computes honestly, then sends half a result
    /// frame and drops the connection.
    TornResult,
    /// Takes a lease, computes honestly, but reports only after the
    /// lease has expired — the result arrives stale.
    Slow,
    /// Nacks every lease it is granted until drained.
    NackBot,
}

impl Behavior {
    /// Stable label for logs and fuzz output.
    pub fn label(self) -> &'static str {
        match self {
            Behavior::Healthy => "healthy",
            Behavior::DiesImmediately => "dies-immediately",
            Behavior::KillsMidJob => "kills-mid-job",
            Behavior::Hangs => "hangs",
            Behavior::Garbage => "garbage",
            Behavior::TornResult => "torn-result",
            Behavior::Slow => "slow",
            Behavior::NackBot => "nack-bot",
        }
    }

    /// The hostile personas [`chaos_case`] draws from (everything
    /// except [`Behavior::Healthy`] and the retry-exhausting
    /// [`Behavior::NackBot`], which deliberately changes the grid).
    pub const HOSTILE: [Behavior; 6] = [
        Behavior::DiesImmediately,
        Behavior::KillsMidJob,
        Behavior::Hangs,
        Behavior::Garbage,
        Behavior::TornResult,
        Behavior::Slow,
    ];

    fn run(self, addr: &str, stop: &AtomicBool) -> Result<(), String> {
        match self {
            Behavior::Healthy => {
                let options = WorkerOptions {
                    name: "chaos-healthy".to_string(),
                    ..WorkerOptions::default()
                };
                run_worker(addr, None, &options, stop).map(|_| ())
            }
            other => {
                let mut actor = Actor::connect(addr)?;
                actor.misbehave(other)
            }
        }
    }
}

/// A scripted fabric client: just enough protocol to misbehave with
/// precision. Blocking reads — an actor's liveness is bounded by the
/// coordinator closing its connection (drain, idle timeout, or refusal).
struct Actor {
    reader: LineReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Actor {
    fn connect(addr: &str) -> Result<Actor, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        let reader = LineReader::new(
            stream.try_clone().map_err(|e| format!("clone: {e}"))?,
            DEFAULT_MAX_LINE_BYTES,
        );
        Ok(Actor {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    fn send_raw(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.writer, "{line}")
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("write: {e}"))
    }

    fn send(&mut self, frame: &WorkerFrame) -> Result<(), String> {
        self.send_raw(&frame.render())
    }

    fn recv(&mut self) -> Result<Option<CoordinatorFrame>, String> {
        loop {
            match self.reader.poll_line().map_err(|e| format!("read: {e}"))? {
                LineEvent::Line(line) => {
                    return CoordinatorFrame::parse(&line).map(Some);
                }
                LineEvent::Idle => {}
                LineEvent::Eof => return Ok(None),
                LineEvent::TooLong => return Err("oversized coordinator frame".to_string()),
            }
        }
    }

    fn handshake(&mut self, name: &str) -> Result<(), String> {
        self.send(&WorkerFrame::Hello {
            fabric: u64::from(FABRIC_SCHEMA),
            worker: name.to_string(),
        })?;
        match self.recv()? {
            Some(CoordinatorFrame::HelloAck { .. }) => Ok(()),
            other => Err(format!("expected hello_ack, got {other:?}")),
        }
    }

    /// Send `ready` frames (honoring waits) until a lease or drain.
    fn lease(&mut self) -> Result<Option<(u64, JobSpec)>, String> {
        loop {
            self.send(&WorkerFrame::Ready)?;
            match self.recv()? {
                Some(CoordinatorFrame::Lease { lease, job }) => return Ok(Some((lease, job))),
                Some(CoordinatorFrame::Wait { millis }) => {
                    std::thread::sleep(Duration::from_millis(millis.min(200)));
                }
                Some(CoordinatorFrame::Drain) | None => return Ok(None),
                Some(CoordinatorFrame::Error { message }) => {
                    return Err(format!("refused: {message}"))
                }
                Some(other) => return Err(format!("unexpected {other:?}")),
            }
        }
    }

    /// Block until the coordinator closes the connection.
    fn await_eof(&mut self) {
        while let Ok(Some(_)) = self.recv() {}
    }

    /// Compute the leased job honestly and render its result frame.
    fn honest_result(lease: u64, spec: &JobSpec) -> Result<WorkerFrame, String> {
        let job = spec.resolve().map_err(|e| e.to_string())?;
        let outcome = run_job(&job, None);
        let document = outcome.document.map_err(|e| e.to_string())?;
        Ok(WorkerFrame::Result {
            lease,
            cache: outcome.cache.label().to_string(),
            wall_seconds: outcome.wall_seconds,
            document,
        })
    }

    fn misbehave(&mut self, behavior: Behavior) -> Result<(), String> {
        self.handshake(behavior.label())?;
        match behavior {
            Behavior::Healthy => unreachable!("healthy runs through run_worker"),
            Behavior::DiesImmediately => Ok(()), // drop closes the socket
            Behavior::KillsMidJob => {
                if let Some((lease, _)) = self.lease()? {
                    self.send(&WorkerFrame::Heartbeat { lease })?;
                }
                Ok(()) // drop with the lease held
            }
            Behavior::Hangs => {
                if self.lease()?.is_some() {
                    // No heartbeat, no result, no close: just silence.
                    self.await_eof();
                }
                Ok(())
            }
            Behavior::Garbage => {
                let _ = self.send_raw("%%% not a frame %%%");
                self.await_eof();
                Ok(())
            }
            Behavior::TornResult => {
                if let Some((lease, spec)) = self.lease()? {
                    let frame = Actor::honest_result(lease, &spec)?.render();
                    let torn = &frame.as_bytes()[..frame.len() / 2];
                    let _ = self.writer.write_all(torn);
                    let _ = self.writer.flush();
                }
                Ok(()) // drop mid-frame, no newline ever sent
            }
            Behavior::Slow => {
                if let Some((lease, spec)) = self.lease()? {
                    let frame = Actor::honest_result(lease, &spec)?;
                    // Outlive the lease TTL without heartbeating, then
                    // report anyway: the result arrives stale.
                    std::thread::sleep(Duration::from_millis(400));
                    let _ = self.send(&frame);
                }
                Ok(())
            }
            Behavior::NackBot => {
                while let Some((lease, _)) = self.lease()? {
                    self.send(&WorkerFrame::Nack {
                        lease,
                        kind: "watchdog".to_string(),
                        message: "chaos nack-bot refuses all work".to_string(),
                    })?;
                }
                Ok(())
            }
        }
    }
}

/// A completed chaos run: the assembled sweep plus fabric counters and
/// whatever observability the attached [`FabricObserver`] produced.
pub struct ChaosRun {
    /// The sweep, assembled exactly as `cpe sweep --coordinator` would.
    pub results: SweepResults,
    /// The coordinator's counters.
    pub stats: FabricStats,
    /// Per-worker fleet reports, in session order.
    pub workers: Vec<WorkerReport>,
    /// The `fabric` metrics document ([`FabricReport::fabric_json`]).
    pub fabric_json: String,
    /// The rendered Chrome trace, when tracing was on.
    pub trace_json: Option<String>,
    /// Event-log accounting, when a log was attached.
    pub log: Option<LogSummary>,
}

/// Fabric timing tightened for tests: everything that is seconds in
/// production is tens of milliseconds here, so expiry and reassignment
/// paths actually fire inside a unit-test budget.
pub fn test_options() -> FabricOptions {
    FabricOptions {
        heartbeat: Duration::from_millis(50),
        lease_ttl: Duration::from_millis(250),
        max_retries: 2,
        max_reassigns: 32,
        backoff_base: Duration::from_millis(5),
        max_inflight: 8,
        wait_hint: Duration::from_millis(20),
        idle_timeout: Duration::from_secs(2),
        ..FabricOptions::default()
    }
}

/// The small grid chaos runs sweep: 2 configs × 2 workloads at test
/// scale, cheap enough to run dozens of times under `cpe fuzz-fabric`.
pub fn tiny_plan() -> SweepPlan {
    SweepPlan {
        configs: vec![SimConfig::naive_single_port(), SimConfig::dual_port()],
        workloads: vec![Workload::Compress, Workload::Sort],
        scale: Scale::Test,
        max_insts: Some(3_000),
        // The fabric protocol ships direct-backend jobs only; replay's
        // record-once sharing is a single-process property.
        backend: cpe_core::BackendKind::Direct,
    }
}

/// Run `plan` through a real TCP coordinator with the given cast of
/// workers, and assemble the sweep exactly as the CLI would.
///
/// # Errors
///
/// On listener failure or coordinator I/O failure. Worker-side errors
/// are the *point* of the harness and never fail the run.
pub fn run_with_behaviors(
    plan: &SweepPlan,
    options: FabricOptions,
    behaviors: &[Behavior],
) -> Result<ChaosRun, String> {
    run_with_behaviors_observed(plan, options, behaviors, FabricObserver::off())
}

/// [`run_with_behaviors`] with an attached [`FabricObserver`], so tests
/// can assert the event log and `fabric` metrics stay consistent under
/// fault injection — and that observing a run never changes its result.
pub fn run_with_behaviors_observed(
    plan: &SweepPlan,
    options: FabricOptions,
    behaviors: &[Behavior],
    observer: FabricObserver,
) -> Result<ChaosRun, String> {
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?
        .to_string();
    let server = Server::new(None, ServeDefaults::default());
    let coordinator = Coordinator::with_observer(plan.jobs(), options, observer);
    let stop = AtomicBool::new(false);
    let report = std::thread::scope(|scope| {
        let handles: Vec<_> = behaviors
            .iter()
            .map(|&behavior| {
                let addr = addr.clone();
                let stop = &stop;
                scope.spawn(move || behavior.run(&addr, stop))
            })
            .collect();
        let report = coordinator.run(listener, &server);
        stop.store(true, Ordering::Relaxed);
        for handle in handles {
            let _ = handle.join();
        }
        report
    })
    .map_err(|e| format!("coordinator: {e}"))?;
    let wall = report.stats.wall_seconds;
    let fabric_json = report.fabric_json();
    Ok(ChaosRun {
        results: SweepResults::assemble(plan.clone(), report.outcomes, behaviors.len(), 0, wall),
        stats: report.stats,
        workers: report.workers,
        fabric_json,
        trace_json: report.trace_json,
        log: report.log,
    })
}

/// xorshift64: a tiny deterministic PRNG so fuzz cases are reproducible
/// from their seed alone, with no RNG dependency.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn pick<T: Copy>(&mut self, from: &[T]) -> T {
        from[(self.next() % from.len() as u64) as usize]
    }
}

/// One seeded chaos case: a random hostile cast against two healthy
/// workers, asserting the final sweep — table *and* metrics document —
/// is byte-identical to a serial, single-threaded, uncached run.
///
/// # Errors
///
/// A diagnosis when the aggregate diverges (the fabric's core promise
/// is broken) or the run itself could not be staged.
pub fn chaos_case(seed: u64) -> Result<ChaosRun, String> {
    let plan = tiny_plan();
    let serial = plan
        .run(1, None)
        .map_err(|e| format!("serial reference: {e}"))?;

    let mut rng = XorShift::new(seed);
    let hostile_count = 2 + (rng.next() % 3) as usize; // 2..=4
    let mut behaviors = vec![Behavior::Healthy, Behavior::Healthy];
    for _ in 0..hostile_count {
        behaviors.push(rng.pick(&Behavior::HOSTILE));
    }

    let run = run_with_behaviors(&plan, test_options(), &behaviors)?;
    let cast: Vec<&str> = behaviors.iter().map(|b| b.label()).collect();
    if run.results.aggregate_json() != serial.aggregate_json() {
        return Err(format!(
            "seed {seed}: fabric metrics diverged from serial (cast: {})",
            cast.join(", ")
        ));
    }
    if run.results.ipc_table().to_csv() != serial.ipc_table().to_csv() {
        return Err(format!(
            "seed {seed}: fabric IPC table diverged from serial (cast: {})",
            cast.join(", ")
        ));
    }
    if run.results.stats.failed != 0 {
        return Err(format!(
            "seed {seed}: {} cell(s) failed under recoverable faults (cast: {})",
            run.results.stats.failed,
            cast.join(", ")
        ));
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_only_fabric_matches_serial_byte_for_byte() {
        let plan = tiny_plan();
        let serial = plan.run(1, None).expect("serial runs");
        let run = run_with_behaviors(
            &plan,
            test_options(),
            &[Behavior::Healthy, Behavior::Healthy],
        )
        .expect("fabric runs");
        assert_eq!(run.results.aggregate_json(), serial.aggregate_json());
        assert_eq!(
            run.results.ipc_table().to_csv(),
            serial.ipc_table().to_csv()
        );
        assert_eq!(run.stats.failed, 0);
        assert!(run.stats.workers_seen >= 2);
    }

    #[test]
    fn worker_killed_mid_job_is_reassigned_and_metrics_match() {
        let plan = tiny_plan();
        let serial = plan.run(1, None).expect("serial runs");
        let run = run_with_behaviors(
            &plan,
            test_options(),
            &[Behavior::KillsMidJob, Behavior::Healthy],
        )
        .expect("fabric survives the kill");
        assert_eq!(run.results.aggregate_json(), serial.aggregate_json());
        assert_eq!(run.stats.failed, 0);
        assert!(
            run.stats.reassigned >= 1,
            "the killed worker's lease was reassigned: {}",
            run.stats
        );
    }

    #[test]
    fn nack_storm_exhausts_retries_into_failed_cells_without_hanging() {
        let plan = tiny_plan();
        let options = FabricOptions {
            max_retries: 1,
            ..test_options()
        };
        let run = run_with_behaviors(&plan, options, &[Behavior::NackBot, Behavior::NackBot])
            .expect("fabric terminates");
        assert_eq!(run.results.stats.failed, 4, "every cell exhausted retries");
        let csv = run.results.ipc_table().to_csv();
        assert!(csv.contains("FAILED(watchdog)"), "{csv}");
        assert!(
            run.results
                .aggregate_json()
                .contains("\"failed\":\"watchdog\""),
            "failures keep their relayed kind"
        );
        assert!(run.stats.retries >= 4, "each cell was retried once first");
    }
}
