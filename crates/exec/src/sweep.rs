//! Cached, parallel configuration × workload sweeps.
//!
//! A [`SweepPlan`] is the grid `cpe sweep` runs: every cell is one
//! [`Job`], executed through the work-stealing scheduler with the result
//! cache in front. Aggregates (the IPC table and the sweep metrics
//! document) are built exclusively from each cell's parsed document via
//! the deterministic renderer, so they are **byte-identical** across
//! worker counts and across fresh-vs-cached runs — the property
//! `crates/exec/tests/parallel_matches_serial.rs` pins down.

use std::fmt;
use std::time::Instant;

use cpe_core::{BackendKind, JsonValue, SimConfig, SimError, METRICS_SCHEMA};
use cpe_stats::{geometric_mean, Table};
use cpe_workloads::{Scale, Workload};

use crate::cache::ResultCache;
use crate::job::{execute_jobs_traced, preset_configs, scale_name, CacheStatus, Job, JobOutcome};
use crate::observe::SweepProgress;
use crate::render::{member, number_at, parse, render};
use crate::traces::TraceStore;

/// The grid a sweep executes: configurations × workloads at one scale
/// and instruction window.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Configurations, in column order.
    pub configs: Vec<SimConfig>,
    /// Workloads, in row order.
    pub workloads: Vec<Workload>,
    /// Problem-size preset for every cell.
    pub scale: Scale,
    /// Committed-instruction window for every cell.
    pub max_insts: Option<u64>,
    /// Execution backend for every cell. With [`BackendKind::Replay`],
    /// each distinct `(workload, scale, max_insts)` tuple is recorded
    /// exactly once *before* any cell is scheduled, and every cell
    /// replays the shared recording.
    pub backend: BackendKind,
}

impl SweepPlan {
    /// The standard port-count grid: every preset configuration over the
    /// six paper workloads.
    pub fn standard(scale: Scale, max_insts: Option<u64>) -> SweepPlan {
        SweepPlan {
            configs: preset_configs(),
            workloads: Workload::ALL.to_vec(),
            scale,
            max_insts,
            backend: BackendKind::Direct,
        }
    }

    /// This plan with a different execution backend.
    pub fn with_backend(mut self, backend: BackendKind) -> SweepPlan {
        self.backend = backend;
        self
    }

    /// The grid as jobs, workload-major (matching the serial
    /// `Experiment` order).
    pub fn jobs(&self) -> Vec<Job> {
        self.workloads
            .iter()
            .flat_map(|&workload| {
                self.configs.iter().map(move |config| Job {
                    config: config.clone(),
                    workload,
                    scale: self.scale,
                    max_insts: self.max_insts,
                    backend: self.backend,
                })
            })
            .collect()
    }

    /// Validate the whole grid up front — each configuration exactly
    /// once — so a bad base config is rejected before any cell starts.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] for the first inconsistent
    /// configuration; the sweep should not start.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.configs.is_empty() || self.workloads.is_empty() {
            return Err(SimError::InvalidConfig(cpe_core::ConfigError {
                config: "(sweep)".to_string(),
                message: "add at least one configuration and one workload".to_string(),
            }));
        }
        for config in &self.configs {
            config.validate()?;
        }
        Ok(())
    }

    /// Execute the grid across `workers` threads, through `cache` when
    /// attached. Cell failures land in their cells; this call only fails
    /// when the grid itself is invalid (see [`SweepPlan::validate`]).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] when the grid is empty.
    pub fn run(
        &self,
        workers: usize,
        cache: Option<&ResultCache>,
    ) -> Result<SweepResults, SimError> {
        self.run_with_progress(workers, cache, None)
    }

    /// [`SweepPlan::run`] with an optional live progress line on stderr.
    /// Progress never touches the results — the table and metrics stay
    /// byte-identical to an unobserved run.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] when the grid is empty.
    pub fn run_with_progress(
        &self,
        workers: usize,
        cache: Option<&ResultCache>,
        progress: Option<&SweepProgress>,
    ) -> Result<SweepResults, SimError> {
        if self.configs.is_empty() || self.workloads.is_empty() {
            self.validate()?;
        }
        let started = Instant::now();
        let jobs = self.jobs();
        // Record-once happens here, before any cell is scheduled: a
        // replay sweep's functional cost is one recording per distinct
        // (workload, scale, max_insts) tuple, never one per cell.
        let traces = match self.backend {
            BackendKind::Direct => None,
            BackendKind::Replay => {
                let store = TraceStore::new();
                store.record_all(&jobs);
                Some(store)
            }
        };
        let (outcomes, scheduler) =
            execute_jobs_traced(&jobs, workers, cache, progress, traces.as_ref());
        if let Some(progress) = progress {
            progress.finish();
        }
        let mut results = SweepResults::assemble(
            self.clone(),
            outcomes,
            scheduler.workers,
            scheduler.steals,
            started.elapsed().as_secs_f64(),
        );
        if let Some(traces) = &traces {
            let (recorded, reused) = traces.counts();
            results.stats.traces_recorded = recorded;
            results.stats.traces_reused = reused;
        }
        Ok(results)
    }
}

/// What a sweep cost and how the cache served it.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SweepStats {
    /// Grid cells executed.
    pub cells: usize,
    /// Cells served from the cache.
    pub hits: usize,
    /// Cells computed and stored.
    pub misses: usize,
    /// Cells computed with no cache attached.
    pub bypassed: usize,
    /// Cells that failed (`FAILED(<kind>)` in the table).
    pub failed: usize,
    /// Wall seconds for the whole sweep.
    pub wall_seconds: f64,
    /// Worker threads used.
    pub workers: usize,
    /// Work-stealing migrations between workers.
    pub steals: u64,
    /// Recordings made by the replay backend (zero on a direct sweep).
    pub traces_recorded: u64,
    /// Cells that replayed an existing recording.
    pub traces_reused: u64,
}

impl SweepStats {
    /// Cache hit rate over the cells that went through the cache.
    pub fn hit_rate(&self) -> f64 {
        let through_cache = self.hits + self.misses;
        if through_cache == 0 {
            0.0
        } else {
            self.hits as f64 / through_cache as f64
        }
    }
}

impl fmt::Display for SweepStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cells in {:.2}s across {} worker(s), {} steal(s): \
             {} hit(s), {} miss(es), {} uncached, {} failed — hit rate {:.1}%",
            self.cells,
            self.wall_seconds,
            self.workers,
            self.steals,
            self.hits,
            self.misses,
            self.bypassed,
            self.failed,
            self.hit_rate() * 100.0
        )?;
        if self.traces_recorded + self.traces_reused > 0 {
            write!(
                f,
                ", trace: {} recorded, {} reused",
                self.traces_recorded, self.traces_reused
            )?;
        }
        Ok(())
    }
}

/// The completed sweep: every cell's outcome plus parsed document.
#[derive(Debug, Clone)]
pub struct SweepResults {
    plan: SweepPlan,
    outcomes: Vec<JobOutcome>,
    cells: Vec<Result<JsonValue, SimError>>,
    /// Cost and cache accounting for the run.
    pub stats: SweepStats,
}

impl SweepResults {
    /// Assemble results from already-executed outcomes in workload-major
    /// grid order — the path shared by the local scheduler and the
    /// distributed fabric, which is what makes their aggregates
    /// byte-identical: both feed the same parse → render pipeline here.
    ///
    /// `outcomes` must be one per grid cell, in submission order.
    pub fn assemble(
        plan: SweepPlan,
        outcomes: Vec<JobOutcome>,
        workers: usize,
        steals: u64,
        wall_seconds: f64,
    ) -> SweepResults {
        assert_eq!(
            outcomes.len(),
            plan.configs.len() * plan.workloads.len(),
            "one outcome per grid cell"
        );
        let cells: Vec<Result<JsonValue, SimError>> = outcomes
            .iter()
            .map(|outcome| match &outcome.document {
                Ok(document) => {
                    parse(document).map_err(|message| SimError::Trace { index: 0, message })
                }
                Err(error) => Err(error.clone()),
            })
            .collect();
        let mut stats = SweepStats {
            cells: outcomes.len(),
            workers,
            steals,
            wall_seconds,
            ..SweepStats::default()
        };
        for outcome in &outcomes {
            match (&outcome.document, outcome.cache) {
                (Err(_), _) => stats.failed += 1,
                (Ok(_), CacheStatus::Hit) => stats.hits += 1,
                (Ok(_), CacheStatus::Miss) => stats.misses += 1,
                (Ok(_), CacheStatus::Bypass) => stats.bypassed += 1,
            }
        }
        SweepResults {
            plan,
            outcomes,
            cells,
            stats,
        }
    }

    /// Every cell outcome, in workload-major grid order.
    pub fn outcomes(&self) -> &[JobOutcome] {
        &self.outcomes
    }

    /// The plan this sweep ran.
    pub fn plan(&self) -> &SweepPlan {
        &self.plan
    }

    fn cell(&self, workload_index: usize, config_index: usize) -> &Result<JsonValue, SimError> {
        &self.cells[workload_index * self.plan.configs.len() + config_index]
    }

    /// A numeric summary metric for one cell, when it succeeded.
    pub fn summary_number(
        &self,
        workload_index: usize,
        config_index: usize,
        field: &str,
    ) -> Option<f64> {
        number_at(
            self.cell(workload_index, config_index).as_ref().ok()?,
            &["summary", field],
        )
    }

    fn cell_text(&self, workload_index: usize, config_index: usize, field: &str) -> String {
        match self.cell(workload_index, config_index) {
            Ok(_) => self
                .summary_number(workload_index, config_index, field)
                .map(|value| format!("{value:.3}"))
                .unwrap_or_else(|| "-".to_string()),
            Err(error) => format!("FAILED({})", error.kind()),
        }
    }

    /// IPC per workload per configuration, plus a geomean row — the same
    /// shape the serial `Experiment::ipc_table` renders.
    pub fn ipc_table(&self) -> Table {
        self.metric_table("IPC", "ipc", true)
    }

    /// Any summary metric as a (workload × config) table.
    pub fn metric_table(&self, label: &str, field: &str, geomean: bool) -> Table {
        let mut header = vec![format!("workload ({label})")];
        header.extend(self.plan.configs.iter().map(|c| c.name.clone()));
        let mut table = Table::new(header);
        for (workload_index, workload) in self.plan.workloads.iter().enumerate() {
            let mut row = vec![workload.name().to_string()];
            for config_index in 0..self.plan.configs.len() {
                row.push(self.cell_text(workload_index, config_index, field));
            }
            table.row(row);
        }
        if geomean {
            let mut geo = vec!["geomean".to_string()];
            for config_index in 0..self.plan.configs.len() {
                let mean = geometric_mean(
                    (0..self.plan.workloads.len())
                        .filter_map(|w| self.summary_number(w, config_index, field)),
                )
                .unwrap_or(0.0);
                geo.push(format!("{mean:.3}"));
            }
            table.row(geo);
        }
        table
    }

    /// The aggregate sweep document: grid shape plus each cell's
    /// deterministic `summary`, `distributions` and `cpi_stack` objects
    /// (never the self-profile or wall times, which vary run to run).
    /// Byte-identical across worker counts and cache states.
    pub fn aggregate_json(&self) -> String {
        let configs: Vec<String> = self
            .plan
            .configs
            .iter()
            .map(|c| format!("\"{}\"", c.name.replace('"', "\\\"")))
            .collect();
        let workloads: Vec<String> = self
            .plan
            .workloads
            .iter()
            .map(|w| format!("\"{}\"", w.name()))
            .collect();
        let window = match self.plan.max_insts {
            Some(n) => n.to_string(),
            None => "null".to_string(),
        };
        let mut cells = Vec::with_capacity(self.cells.len());
        for (workload_index, workload) in self.plan.workloads.iter().enumerate() {
            for (config_index, config) in self.plan.configs.iter().enumerate() {
                let head = format!(
                    "{{\"config\":\"{}\",\"workload\":\"{}\"",
                    config.name.replace('"', "\\\""),
                    workload.name()
                );
                let cell = match self.cell(workload_index, config_index) {
                    Ok(document) => {
                        let summary = member(document, "summary").map(render);
                        let distributions = member(document, "distributions").map(render);
                        let cpi_stack = member(document, "cpi_stack").map(render);
                        match (summary, distributions, cpi_stack) {
                            (Some(summary), Some(distributions), Some(cpi_stack)) => format!(
                                "{head},\"summary\":{summary},\"distributions\":{distributions},\
                                 \"cpi_stack\":{cpi_stack}}}"
                            ),
                            _ => format!("{head},\"failed\":\"malformed\"}}"),
                        }
                    }
                    Err(error) => format!("{head},\"failed\":\"{}\"}}", error.kind()),
                };
                cells.push(cell);
            }
        }
        format!(
            "{{\"schema\":{METRICS_SCHEMA},\"kind\":\"sweep\",\"scale\":\"{}\",\
             \"max_insts\":{window},\"configs\":[{}],\"workloads\":[{}],\"cells\":[{}]}}",
            scale_name(self.plan.scale),
            configs.join(","),
            workloads.join(","),
            cells.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_plan() -> SweepPlan {
        SweepPlan {
            configs: vec![SimConfig::naive_single_port(), SimConfig::dual_port()],
            workloads: vec![Workload::Compress, Workload::Sort],
            scale: Scale::Test,
            max_insts: Some(4_000),
            backend: BackendKind::Direct,
        }
    }

    #[test]
    fn sweep_covers_the_grid_and_aggregates_parse() {
        let results = tiny_plan().run(2, None).expect("grid is valid");
        assert_eq!(results.outcomes().len(), 4);
        assert_eq!(results.stats.cells, 4);
        assert_eq!(results.stats.bypassed, 4);
        let table = results.ipc_table();
        assert_eq!(table.len(), 3, "two workloads + geomean");
        let doc = results.aggregate_json();
        let parsed = parse(&doc).expect("aggregate parses");
        assert_eq!(number_at(&parsed, &["schema"]), Some(3.0));
        assert!(doc.contains("\"kind\":\"sweep\""));
        assert!(doc.contains("\"summary\":{"));
        assert!(doc.contains("\"distributions\":{"));
        assert!(doc.contains("\"cpi_stack\":{\"commit_width\":"));
        assert!(!doc.contains("self_profile"), "no nondeterministic fields");
        assert!(!doc.contains("wall_seconds"), "no nondeterministic fields");
    }

    #[test]
    fn invalid_grid_is_rejected_before_any_cell() {
        let mut plan = tiny_plan();
        plan.configs.push(SimConfig::dual_port().with_ports(0));
        let error = plan.validate().expect_err("zero ports");
        assert_eq!(error.kind(), "config");
        let empty = SweepPlan {
            configs: vec![],
            workloads: vec![],
            scale: Scale::Test,
            max_insts: None,
            backend: BackendKind::Direct,
        };
        assert!(empty.validate().is_err());
        assert!(empty.run(1, None).is_err());
    }

    #[test]
    fn replay_sweep_records_once_per_workload_and_matches_direct() {
        let direct = tiny_plan().run(2, None).expect("direct sweep runs");
        let replay = tiny_plan()
            .with_backend(BackendKind::Replay)
            .run(2, None)
            .expect("replay sweep runs");
        assert_eq!(
            direct.ipc_table().to_csv(),
            replay.ipc_table().to_csv(),
            "replay must be byte-identical to direct"
        );
        assert_eq!(direct.aggregate_json(), replay.aggregate_json());
        assert_eq!(replay.stats.traces_recorded, 2, "one per workload");
        assert_eq!(replay.stats.traces_reused, 4, "every cell reuses");
        assert_eq!(direct.stats.traces_recorded, 0);
        let footer = replay.stats.to_string();
        assert!(footer.ends_with("trace: 2 recorded, 4 reused"), "{footer}");
        assert!(
            !direct.stats.to_string().contains("trace:"),
            "direct footer stays unchanged"
        );
    }

    #[test]
    fn failed_cells_render_failed_kind_in_table_and_json() {
        let mut plan = tiny_plan();
        plan.configs
            .push(SimConfig::naive_single_port().with_ports(0).named("bad"));
        // validate() would reject it; run the grid anyway to check cell
        // isolation when a caller skips validation.
        let results = plan.run(2, None).expect("grid is non-empty");
        assert_eq!(results.stats.failed, 2);
        let csv = results.ipc_table().to_csv();
        assert!(csv.contains("FAILED(config)"), "{csv}");
        assert!(results.aggregate_json().contains("\"failed\":\"config\""));
    }
}
