//! Deterministic rendering of parsed JSON.
//!
//! The scheduler promises byte-identical aggregate output whether a
//! cell's document was freshly computed or read back from the cache, and
//! whether one worker ran or eight. The way that promise is kept is to
//! route *every* cell document — fresh or cached — through the same
//! parse → render pipeline before it touches an aggregate, so the only
//! thing that matters is that this renderer is a pure function of the
//! parsed value. Member order is preserved (the suite's own documents
//! are emitted in a fixed order); numbers render integrally when they
//! are integral, via the shortest round-trip form otherwise.

use cpe_core::{parse_json, JsonValue};

/// Parse one JSON document (a thin alias for [`cpe_core::parse_json`]).
///
/// # Errors
///
/// A one-line message naming the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    parse_json(text)
}

/// Escape a string for a JSON literal.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One JSON number, deterministically: integral values in integer form,
/// everything else in the shortest round-trip form; non-finite values
/// (unreachable from [`parse`]) degrade to `null`.
fn number(value: f64) -> String {
    if !value.is_finite() {
        return "null".to_string();
    }
    if value.fract() == 0.0 && value.abs() < 9.0e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

fn render_into(value: &JsonValue, out: &mut String) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Number(n) => out.push_str(&number(*n)),
        JsonValue::Text(t) => {
            out.push('"');
            out.push_str(&escape(t));
            out.push('"');
        }
        JsonValue::Array(items) => {
            out.push('[');
            for (index, item) in items.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        JsonValue::Object(members) => {
            out.push('{');
            for (index, (key, member)) in members.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&escape(key));
                out.push_str("\":");
                render_into(member, out);
            }
            out.push('}');
        }
    }
}

/// Render a parsed value back to compact JSON text, preserving member
/// order.
pub fn render(value: &JsonValue) -> String {
    let mut out = String::new();
    render_into(value, &mut out);
    out
}

/// The named member of an object, when `value` is an object that has it.
pub fn member<'a>(value: &'a JsonValue, key: &str) -> Option<&'a JsonValue> {
    match value {
        JsonValue::Object(members) => members
            .iter()
            .find(|(name, _)| name == key)
            .map(|(_, member)| member),
        _ => None,
    }
}

/// Walk a dotted member path from `value`.
pub fn member_path<'a>(value: &'a JsonValue, path: &[&str]) -> Option<&'a JsonValue> {
    path.iter().try_fold(value, |value, key| member(value, key))
}

/// The number at a dotted member path, if present.
pub fn number_at(value: &JsonValue, path: &[&str]) -> Option<f64> {
    match member_path(value, path)? {
        JsonValue::Number(n) => Some(*n),
        _ => None,
    }
}

/// The string at a dotted member path, if present.
pub fn text_at<'a>(value: &'a JsonValue, path: &[&str]) -> Option<&'a str> {
    match member_path(value, path)? {
        JsonValue::Text(t) => Some(t.as_str()),
        _ => None,
    }
}

/// A string member, distinguishing "absent" from "present but not a
/// string" — protocol parsers reject the latter.
///
/// # Errors
///
/// When the member is present with a non-string value.
pub fn text_member<'a>(value: &'a JsonValue, key: &str) -> Result<Option<&'a str>, String> {
    match member(value, key) {
        None => Ok(None),
        Some(JsonValue::Text(text)) => Ok(Some(text.as_str())),
        Some(_) => Err(format!("`{key}` must be a string")),
    }
}

/// A non-negative integer member (see [`text_member`]).
///
/// # Errors
///
/// When the member is present but not a non-negative integer.
pub fn u64_member(value: &JsonValue, key: &str) -> Result<Option<u64>, String> {
    match member(value, key) {
        None => Ok(None),
        Some(JsonValue::Number(n)) if *n >= 0.0 && n.fract() == 0.0 && *n < 9.0e15 => {
            Ok(Some(*n as u64))
        }
        Some(_) => Err(format!("`{key}` must be a non-negative integer")),
    }
}

/// A boolean member (see [`text_member`]).
///
/// # Errors
///
/// When the member is present but not a boolean.
pub fn bool_member(value: &JsonValue, key: &str) -> Result<Option<bool>, String> {
    match member(value, key) {
        None => Ok(None),
        Some(JsonValue::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(format!("`{key}` must be a boolean")),
    }
}

/// A finite number member (see [`text_member`]).
///
/// # Errors
///
/// When the member is present but not a number.
pub fn f64_member(value: &JsonValue, key: &str) -> Result<Option<f64>, String> {
    match member(value, key) {
        None => Ok(None),
        Some(JsonValue::Number(n)) => Ok(Some(*n)),
        Some(_) => Err(format!("`{key}` must be a number")),
    }
}

/// Escape a string for embedding in a hand-built JSON frame.
pub fn escape_text(text: &str) -> String {
    escape(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_a_fixed_point_after_one_pass() {
        let text = "{\"b\":1,\"a\":[true,null,\"x\\n\",2.5,-2,5000]}";
        let once = render(&parse(text).unwrap());
        let twice = render(&parse(&once).unwrap());
        assert_eq!(once, twice);
        assert_eq!(once, "{\"b\":1,\"a\":[true,null,\"x\\n\",2.5,-2,5000]}");
    }

    #[test]
    fn numbers_render_integrally_when_integral() {
        assert_eq!(number(5000.0), "5000");
        assert_eq!(number(-2.0), "-2");
        assert_eq!(number(0.25), "0.25");
        assert_eq!(number(0.0), "0");
    }

    #[test]
    fn member_paths_navigate_nested_documents() {
        let doc = parse("{\"summary\":{\"ipc\":1.25,\"config\":\"2-port\"}}").unwrap();
        assert_eq!(number_at(&doc, &["summary", "ipc"]), Some(1.25));
        assert_eq!(text_at(&doc, &["summary", "config"]), Some("2-port"));
        assert_eq!(number_at(&doc, &["summary", "missing"]), None);
        assert_eq!(number_at(&doc, &["summary", "config"]), None);
    }
}
