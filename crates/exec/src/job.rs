//! Jobs: one `(SimConfig, workload)` cell, and the cached parallel
//! executor every consumer (sweep, serve, bench) goes through.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use cpe_core::{profile_json, BackendKind, ProfileOptions, SimConfig, SimError, Simulator};
use cpe_workloads::{Scale, Workload};

use crate::cache::{CacheKey, ResultCache};
use crate::observe::SweepProgress;
use crate::scheduler::{run_work_stealing, SchedulerStats};
use crate::traces::TraceStore;

/// The stable name of a [`Scale`], used in cache keys and the job
/// protocol.
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Small => "small",
        Scale::Full => "full",
    }
}

/// Parse a [`Scale`] name (the inverse of [`scale_name`]).
pub fn scale_by_name(name: &str) -> Option<Scale> {
    match name {
        "test" => Some(Scale::Test),
        "small" => Some(Scale::Small),
        "full" => Some(Scale::Full),
        _ => None,
    }
}

/// The named configuration presets every front end offers, in report
/// order.
pub fn preset_configs() -> Vec<SimConfig> {
    vec![
        SimConfig::naive_single_port(),
        SimConfig::single_port(),
        SimConfig::dual_port(),
        SimConfig::quad_port(),
        SimConfig::ideal_ports(),
        SimConfig::combined_single_port(),
    ]
}

/// Look up a preset by its report name.
pub fn preset_by_name(name: &str) -> Option<SimConfig> {
    preset_configs()
        .into_iter()
        .find(|config| config.name == name)
}

/// Every configuration shippable *by name* over the fabric protocol:
/// the sweep presets plus the CLI's extended set. Fabric leases carry a
/// name plus a fingerprint, so this list is what a worker can resolve.
pub fn named_config(name: &str) -> Option<SimConfig> {
    preset_configs()
        .into_iter()
        .chain([SimConfig::big_window()])
        .find(|config| config.name == name)
}

/// Look up a workload (extended suite) by name.
pub fn workload_by_name(name: &str) -> Option<Workload> {
    Workload::EXTENDED
        .iter()
        .copied()
        .find(|workload| workload.name() == name)
}

/// One independent unit of work: run `config` on `workload` and produce
/// the schema-stamped metrics document.
#[derive(Debug, Clone)]
pub struct Job {
    /// The machine configuration.
    pub config: SimConfig,
    /// The workload to run on it.
    pub workload: Workload,
    /// Problem-size preset.
    pub scale: Scale,
    /// Committed-instruction window (`None` runs to completion).
    pub max_insts: Option<u64>,
    /// How the cell obtains its instruction stream. Replay and direct
    /// produce byte-identical documents; the backend is still part of
    /// the cache key so the equivalence stays *checkable* from cold
    /// caches (see `CacheKey::for_job`).
    pub backend: BackendKind,
}

impl Job {
    /// This job's content address.
    pub fn cache_key(&self) -> CacheKey {
        CacheKey::for_job(self)
    }
}

/// How a job's document was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Read back from the result cache.
    Hit,
    /// Computed, then stored.
    Miss,
    /// Computed with no cache attached.
    Bypass,
}

impl CacheStatus {
    /// The protocol label (`"hit"`, `"miss"`, `"bypass"`).
    pub fn label(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Bypass => "bypass",
        }
    }

    /// Parse a protocol label (the inverse of [`CacheStatus::label`]).
    pub fn from_label(label: &str) -> Option<CacheStatus> {
        match label {
            "hit" => Some(CacheStatus::Hit),
            "miss" => Some(CacheStatus::Miss),
            "bypass" => Some(CacheStatus::Bypass),
            _ => None,
        }
    }
}

/// One executed job: its index in the submitted order, the document (or
/// the typed failure that replaced it), and how it was served.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Index of the job in the submitted slice.
    pub index: usize,
    /// The metrics document, or the failure.
    pub document: Result<String, SimError>,
    /// Hit, miss, or bypass.
    pub cache: CacheStatus,
    /// Wall seconds this job cost (near zero for a hit).
    pub wall_seconds: f64,
}

/// Compute one job's document (no cache involvement), with panic
/// isolation: a panicking cell becomes [`SimError::WorkerPanic`].
///
/// A replay-backend job pulls its recording from `traces` (recording on
/// the fly into a private store when the caller attached none), then
/// profiles over the replayed stream; the document is byte-identical to
/// the direct path's.
fn compute(job: &Job, traces: Option<&TraceStore>) -> Result<String, SimError> {
    match catch_unwind(AssertUnwindSafe(|| {
        let simulator = Simulator::try_new(job.config.clone())?;
        let run = match job.backend {
            BackendKind::Direct => simulator.try_profile(
                job.workload,
                job.scale,
                job.max_insts,
                ProfileOptions::default(),
            )?,
            BackendKind::Replay => {
                let own_store;
                let store = match traces {
                    Some(store) => store,
                    None => {
                        own_store = TraceStore::new();
                        &own_store
                    }
                };
                let recorded = store.get(job);
                simulator.try_profile_recorded(
                    &recorded,
                    job.max_insts,
                    ProfileOptions::default(),
                )?
            }
        };
        Ok(profile_json(&run, simulator.config()))
    })) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(SimError::WorkerPanic { message })
        }
    }
}

/// Run one job through the cache: lookup, compute on miss, store.
/// Failures are never cached — a watchdog abort or panic re-runs next
/// time rather than becoming a sticky error.
pub fn run_job(job: &Job, cache: Option<&ResultCache>) -> JobOutcome {
    run_job_traced(job, cache, None)
}

/// [`run_job`] with an optional shared recording store for
/// replay-backend jobs. Direct-backend jobs never touch the store.
pub fn run_job_traced(
    job: &Job,
    cache: Option<&ResultCache>,
    traces: Option<&TraceStore>,
) -> JobOutcome {
    let started = Instant::now();
    let (document, status) = match cache {
        None => (compute(job, traces), CacheStatus::Bypass),
        Some(cache) => {
            let key = job.cache_key();
            match cache.lookup(&key) {
                Some(document) => (Ok(document), CacheStatus::Hit),
                None => {
                    let document = compute(job, traces);
                    if let Ok(document) = &document {
                        // Best-effort: an unwritable cache degrades to
                        // recomputation, never to a failed job.
                        let _ = cache.store(&key, document);
                    }
                    (document, CacheStatus::Miss)
                }
            }
        }
    };
    JobOutcome {
        index: 0,
        document,
        cache: status,
        wall_seconds: started.elapsed().as_secs_f64(),
    }
}

/// Execute a batch of jobs across `workers` threads with the cache.
///
/// Configuration validation is hoisted out of the cells: every distinct
/// config is validated exactly once, before any cell starts, and the
/// cells of an invalid config fail immediately with
/// [`SimError::InvalidConfig`] without ever occupying a worker.
///
/// Results come back in submission order regardless of worker count or
/// completion order.
pub fn execute_jobs(
    jobs: &[Job],
    workers: usize,
    cache: Option<&ResultCache>,
) -> (Vec<JobOutcome>, SchedulerStats) {
    execute_jobs_observed(jobs, workers, cache, None)
}

/// [`execute_jobs`] with an optional live progress line, fed from the
/// worker threads as cells finish (completion order, not submission
/// order — progress is observability, not output).
pub fn execute_jobs_observed(
    jobs: &[Job],
    workers: usize,
    cache: Option<&ResultCache>,
    progress: Option<&SweepProgress>,
) -> (Vec<JobOutcome>, SchedulerStats) {
    execute_jobs_traced(jobs, workers, cache, progress, None)
}

/// [`execute_jobs_observed`] with an optional shared recording store:
/// replay-backend cells pull their workload's recording from it instead
/// of re-running the functional emulator per cell. The sweep layer
/// pre-populates the store before scheduling (see
/// `SweepPlan::run_with_progress`).
pub fn execute_jobs_traced(
    jobs: &[Job],
    workers: usize,
    cache: Option<&ResultCache>,
    progress: Option<&SweepProgress>,
    traces: Option<&TraceStore>,
) -> (Vec<JobOutcome>, SchedulerStats) {
    // One validation per distinct config, not one per cell.
    let mut seen: Vec<(&SimConfig, Option<SimError>)> = Vec::new();
    let prechecked: Vec<Option<SimError>> = jobs
        .iter()
        .map(|job| {
            if let Some((_, verdict)) = seen.iter().find(|(config, _)| *config == &job.config) {
                verdict.clone()
            } else {
                let verdict = job.config.validate().err().map(SimError::from);
                seen.push((&job.config, verdict.clone()));
                verdict
            }
        })
        .collect();

    let runnable: Vec<usize> = (0..jobs.len())
        .filter(|&index| prechecked[index].is_none())
        .collect();
    let (ran, stats) = run_work_stealing(&runnable, workers, |_, &job_index| {
        let outcome = JobOutcome {
            index: job_index,
            ..run_job_traced(&jobs[job_index], cache, traces)
        };
        if let Some(progress) = progress {
            progress.cell_done(outcome.cache, outcome.document.is_err());
        }
        outcome
    });

    let mut outcomes: Vec<Option<JobOutcome>> = prechecked
        .into_iter()
        .enumerate()
        .map(|(index, verdict)| {
            verdict.map(|error| {
                if let Some(progress) = progress {
                    progress.cell_done(CacheStatus::Bypass, true);
                }
                JobOutcome {
                    index,
                    document: Err(error),
                    cache: CacheStatus::Bypass,
                    wall_seconds: 0.0,
                }
            })
        })
        .collect();
    for outcome in ran {
        let index = outcome.index;
        outcomes[index] = Some(outcome);
    }
    (
        outcomes
            .into_iter()
            .map(|outcome| outcome.expect("every job has an outcome"))
            .collect(),
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_jobs() -> Vec<Job> {
        [SimConfig::naive_single_port(), SimConfig::dual_port()]
            .into_iter()
            .flat_map(|config| {
                [Workload::Compress, Workload::Sort]
                    .into_iter()
                    .map(move |workload| Job {
                        config: config.clone(),
                        workload,
                        scale: Scale::Test,
                        max_insts: Some(3_000),
                        backend: BackendKind::Direct,
                    })
            })
            .collect()
    }

    /// The deterministic projection of a document: everything except the
    /// host-timing `self_profile`, rendered canonically.
    fn deterministic_part(document: &str) -> String {
        use crate::render::{member, parse, render};
        let parsed = parse(document).expect("document parses");
        let cpe_core::JsonValue::Object(members) = &parsed else {
            panic!("document is an object");
        };
        members
            .iter()
            .filter(|(key, _)| key != "self_profile")
            .map(|(key, _)| render(member(&parsed, key).unwrap()))
            .collect::<Vec<_>>()
            .join(",")
    }

    #[test]
    fn uncached_execution_is_deterministic_across_worker_counts() {
        let jobs = tiny_jobs();
        let (serial, _) = execute_jobs(&jobs, 1, None);
        let (parallel, _) = execute_jobs(&jobs, 3, None);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.index, b.index);
            assert_eq!(
                deterministic_part(a.document.as_ref().unwrap()),
                deterministic_part(b.document.as_ref().unwrap()),
                "cell {} must be byte-identical outside self_profile",
                a.index
            );
            assert_eq!(b.cache, CacheStatus::Bypass);
        }
    }

    #[test]
    fn cache_turns_the_second_run_into_pure_hits() {
        let dir = std::env::temp_dir().join(format!("cpe-exec-hits-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::new(&dir);
        let jobs = tiny_jobs();
        let (first, _) = execute_jobs(&jobs, 2, Some(&cache));
        assert!(first.iter().all(|o| o.cache == CacheStatus::Miss));
        let (second, _) = execute_jobs(&jobs, 2, Some(&cache));
        assert!(second.iter().all(|o| o.cache == CacheStatus::Hit));
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.document.as_ref().unwrap(), b.document.as_ref().unwrap());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_configs_fail_before_any_cell_starts() {
        let mut jobs = tiny_jobs();
        jobs[0].config = SimConfig::naive_single_port().with_ports(0).named("bad");
        jobs[1].config = jobs[0].config.clone();
        let (outcomes, _) = execute_jobs(&jobs, 2, None);
        for index in [0, 1] {
            let error = outcomes[index].document.as_ref().unwrap_err();
            assert_eq!(error.kind(), "config");
            assert_eq!(outcomes[index].wall_seconds, 0.0, "cell never ran");
        }
        assert!(outcomes[2].document.is_ok());
        assert!(outcomes[3].document.is_ok());
    }
}
