//! Work-stealing execution of independent items over `std::thread`.
//!
//! The scheduler is deliberately dependency-free: per-worker deques
//! seeded round-robin, each behind its own mutex. A worker pops from the
//! *front* of its own deque and, when empty, steals from the *back* of a
//! sibling's — the classic split that keeps owners and thieves off the
//! same end. All items are enqueued before any worker starts, so an
//! empty full scan is a correct termination condition.
//!
//! Results land in per-item slots keyed by the item's index, which makes
//! the returned vector's order — and therefore everything aggregated
//! from it — independent of completion order and worker count.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What a run cost the scheduler itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedulerStats {
    /// Worker threads actually spawned.
    pub workers: usize,
    /// Items executed by a worker other than the one they were seeded to.
    pub steals: u64,
}

/// Resolve a `--jobs` request: `0` means the machine's available
/// parallelism, and no useful worker count exceeds the item count.
pub fn effective_workers(requested: usize, items: usize) -> usize {
    let workers = if requested == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        requested
    };
    workers.min(items).max(1)
}

/// Run `run(index, &items[index])` for every item across `workers`
/// threads, returning the results in item order.
///
/// `run` must not panic — job-level panic isolation belongs inside the
/// closure (see [`crate::job::execute_jobs`]); a panic that does escape
/// propagates out of this call after the remaining items finish on the
/// surviving workers.
pub fn run_work_stealing<T, R>(
    items: &[T],
    workers: usize,
    run: impl Fn(usize, &T) -> R + Sync,
) -> (Vec<R>, SchedulerStats)
where
    T: Sync,
    R: Send,
{
    let workers = effective_workers(workers, items.len());
    if workers <= 1 || items.len() <= 1 {
        let results = items
            .iter()
            .enumerate()
            .map(|(index, item)| run(index, item))
            .collect();
        return (
            results,
            SchedulerStats {
                workers: 1,
                steals: 0,
            },
        );
    }

    // Round-robin seeding: worker w owns items w, w+workers, …
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|worker| Mutex::new((worker..items.len()).step_by(workers).collect()))
        .collect();
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let steals = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let steals = &steals;
            let run = &run;
            scope.spawn(move || loop {
                // Own work first, front of the deque.
                let mut next = queues[worker].lock().expect("queue lock").pop_front();
                if next.is_none() {
                    // Steal from the back of the first non-empty sibling.
                    for victim in 1..workers {
                        let victim = (worker + victim) % workers;
                        let stolen = queues[victim].lock().expect("queue lock").pop_back();
                        if stolen.is_some() {
                            steals.fetch_add(1, Ordering::Relaxed);
                            next = stolen;
                            break;
                        }
                    }
                }
                match next {
                    Some(index) => {
                        let result = run(index, &items[index]);
                        *slots[index].lock().expect("slot lock") = Some(result);
                    }
                    // Every queue is drained; nothing new ever arrives.
                    None => break,
                }
            });
        }
    });

    let results = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every item was executed")
        })
        .collect();
    (
        results,
        SchedulerStats {
            workers,
            steals: steals.load(Ordering::Relaxed),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_item_order_for_any_worker_count() {
        let items: Vec<u64> = (0..57).collect();
        for workers in [1, 2, 3, 8, 64] {
            let (results, stats) = run_work_stealing(&items, workers, |index, item| {
                assert_eq!(index as u64, *item);
                item * 3
            });
            assert_eq!(results, items.iter().map(|i| i * 3).collect::<Vec<_>>());
            assert!(stats.workers <= items.len());
        }
    }

    #[test]
    fn zero_requests_machine_parallelism_and_clamps_to_items() {
        assert_eq!(effective_workers(5, 2), 2);
        assert_eq!(effective_workers(1, 100), 1);
        assert!(effective_workers(0, 100) >= 1);
        assert_eq!(effective_workers(4, 0), 1);
    }

    #[test]
    fn uneven_items_get_stolen_not_stranded() {
        // One slow seeded lane: make worker 0's items heavy so siblings
        // must steal from it for the run to finish promptly.
        let items: Vec<usize> = (0..32).collect();
        let executed = AtomicUsize::new(0);
        let (results, stats) = run_work_stealing(&items, 4, |index, _| {
            if index % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            executed.fetch_add(1, Ordering::Relaxed);
            index
        });
        assert_eq!(executed.load(Ordering::Relaxed), 32);
        assert_eq!(results, items);
        assert!(stats.steals > 0, "siblings should have stolen work");
    }

    #[test]
    fn empty_input_is_fine() {
        let (results, _) = run_work_stealing(&[] as &[u8], 4, |_, _| 0u8);
        assert!(results.is_empty());
    }
}
