//! Content-addressed result cache.
//!
//! Every sweep cell and every `cpe serve` job is a pure function of its
//! inputs: the [`SimConfig`], the workload, the scale, and the
//! instruction window. The cache therefore keys each schema-stamped metrics
//! document by a stable 64-bit FNV-1a hash of the **canonical** JSON
//! encoding of those inputs — canonical meaning object members are
//! sorted recursively before hashing, so two encodings of the same
//! configuration that differ only in field order address the same entry,
//! while any single field *value* change addresses a different one.
//!
//! Layout on disk is one file per entry, `<dir>/<16-hex-digits>.json`,
//! written atomically (temp file + rename) so concurrent workers racing
//! on the same key can never expose a torn document. The directory
//! defaults to [`DEFAULT_CACHE_DIR`] and is created on first store.

use std::io::Write;
use std::path::{Path, PathBuf};

use cpe_core::{config_json, BackendKind, JsonValue, METRICS_SCHEMA};
use cpe_workloads::Scale;

use crate::job::{scale_name, Job};
use crate::render::{parse, render};

/// Default on-disk location, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = ".cpe-cache";

/// Version of the key derivation itself, folded into every hash: bump it
/// and every prior entry is a clean miss (never a wrong hit).
///
/// History: 2 added the execution backend and its trace-format version
/// to the key document (the record-once/replay-many backend).
pub const CACHE_SCHEMA: u32 = 2;

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Recursively sort object members by key; arrays keep their order
/// (position is meaningful there).
fn canonicalize(value: &JsonValue) -> JsonValue {
    match value {
        JsonValue::Object(members) => {
            let mut sorted: Vec<(String, JsonValue)> = members
                .iter()
                .map(|(key, member)| (key.clone(), canonicalize(member)))
                .collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            JsonValue::Object(sorted)
        }
        JsonValue::Array(items) => JsonValue::Array(items.iter().map(canonicalize).collect()),
        other => other.clone(),
    }
}

/// The canonical rendering of a JSON document: parsed, members sorted
/// recursively, re-rendered with no whitespace.
///
/// # Errors
///
/// When `text` is not well-formed JSON.
pub fn canonical_json(text: &str) -> Result<String, String> {
    Ok(render(&canonicalize(&parse(text)?)))
}

/// The content address of one job's result document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(u64);

impl CacheKey {
    /// Key for a [`Job`]: hash of the canonical encoding of its config
    /// plus workload id, scale, instruction window, execution backend
    /// (with its trace-format version), and both schema versions
    /// (document and key derivation).
    ///
    /// The backend is part of the address even though direct and replay
    /// promise byte-identical documents: keeping their entries separate
    /// means the promise stays *checkable* (`cpe diff` between a direct
    /// and a replay run exercises both paths instead of one serving the
    /// other from cache), and a replay trace-format bump invalidates
    /// only replay-path entries.
    pub fn for_job(job: &Job) -> CacheKey {
        CacheKey::for_config_backend(
            &config_json(&job.config),
            job.workload.name(),
            job.scale,
            job.max_insts,
            job.backend,
        )
        .expect("config_json emits well-formed JSON")
    }

    /// Key from an already-encoded configuration document, for the
    /// default (direct) backend — the form the fabric protocol and cache
    /// tooling use. Field order in `config_text` is irrelevant: the text
    /// is canonicalized first.
    ///
    /// # Errors
    ///
    /// When `config_text` is not well-formed JSON.
    pub fn for_config_text(
        config_text: &str,
        workload: &str,
        scale: Scale,
        max_insts: Option<u64>,
    ) -> Result<CacheKey, String> {
        CacheKey::for_config_backend(config_text, workload, scale, max_insts, BackendKind::Direct)
    }

    /// [`CacheKey::for_config_text`] with an explicit execution backend.
    ///
    /// # Errors
    ///
    /// When `config_text` is not well-formed JSON.
    pub fn for_config_backend(
        config_text: &str,
        workload: &str,
        scale: Scale,
        max_insts: Option<u64>,
        backend: BackendKind,
    ) -> Result<CacheKey, String> {
        let config = canonical_json(config_text)?;
        let window = match max_insts {
            Some(n) => n.to_string(),
            None => "null".to_string(),
        };
        let key_doc = format!(
            "{{\"cache_schema\":{CACHE_SCHEMA},\"metrics_schema\":{METRICS_SCHEMA},\
             \"backend\":\"{}\",\"trace_format\":{},\
             \"config\":{config},\"workload\":\"{workload}\",\"scale\":\"{}\",\
             \"max_insts\":{window}}}",
            backend.name(),
            backend.trace_format(),
            scale_name(scale)
        );
        Ok(CacheKey(fnv1a64(key_doc.as_bytes())))
    }

    /// The 16-hex-digit file stem this key addresses.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

/// Entry count and total size of a cache directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Number of `*.json` entries.
    pub entries: usize,
    /// Their total size in bytes.
    pub bytes: u64,
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} entries, {:.1} KiB",
            self.entries,
            self.bytes as f64 / 1024.0
        )
    }
}

/// A content-addressed store of metrics documents.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// A cache rooted at `dir` (not created until the first store).
    pub fn new(dir: impl Into<PathBuf>) -> ResultCache {
        ResultCache { dir: dir.into() }
    }

    /// The directory entries live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.hex()))
    }

    /// The stored document for `key`, if present and readable.
    pub fn lookup(&self, key: &CacheKey) -> Option<String> {
        let doc = std::fs::read_to_string(self.entry_path(key)).ok()?;
        // A torn or foreign file must read as a miss, not poison a sweep.
        doc.starts_with('{').then_some(doc)
    }

    /// Store `document` under `key`, atomically: the entry appears
    /// complete or not at all, even with concurrent writers.
    ///
    /// # Errors
    ///
    /// On any I/O failure creating, writing, or renaming the entry.
    pub fn store(&self, key: &CacheKey, document: &str) -> std::io::Result<()> {
        // Tmp names must be unique per *writer*, not just per process:
        // two threads storing the same key from one pid would otherwise
        // share a tmp file, and the loser's rename would fail.
        static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        std::fs::create_dir_all(&self.dir)?;
        let seq = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!(".tmp-{}-{seq}-{}", std::process::id(), key.hex()));
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(document.as_bytes())?;
        }
        std::fs::rename(&tmp, self.entry_path(key))
    }

    /// Entry count and total bytes (an absent directory is an empty
    /// cache).
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats::default();
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return stats;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("json") {
                stats.entries += 1;
                stats.bytes += entry.metadata().map(|m| m.len()).unwrap_or(0);
            }
        }
        stats
    }

    /// Delete every `*.json` entry, returning how many were removed.
    ///
    /// # Errors
    ///
    /// On any I/O failure other than the directory not existing.
    pub fn clear(&self) -> std::io::Result<usize> {
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(error) if error.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(error) => return Err(error),
        };
        let mut removed = 0;
        for entry in entries {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some("json") {
                match std::fs::remove_file(&path) {
                    Ok(()) => removed += 1,
                    // Another clearer (or an entry replaced mid-scan)
                    // got there first; the entry is gone either way.
                    Err(error) if error.kind() == std::io::ErrorKind::NotFound => {}
                    Err(error) => return Err(error),
                }
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpe_core::SimConfig;
    use cpe_workloads::Workload;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cpe-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn job(config: SimConfig) -> Job {
        Job {
            config,
            workload: Workload::Sort,
            scale: Scale::Test,
            max_insts: Some(5_000),
            backend: BackendKind::Direct,
        }
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn canonical_json_sorts_members_recursively() {
        let canon = canonical_json("{\"b\":1,\"a\":{\"z\":true,\"y\":[2,1]}}").unwrap();
        assert_eq!(canon, "{\"a\":{\"y\":[2,1],\"z\":true},\"b\":1}");
        // Arrays keep their order: position is meaningful.
        assert_ne!(
            canonical_json("[1,2]").unwrap(),
            canonical_json("[2,1]").unwrap()
        );
    }

    #[test]
    fn keys_ignore_member_order_but_not_values() {
        let a = CacheKey::for_config_text("{\"x\":1,\"y\":2}", "sort", Scale::Test, None).unwrap();
        let b = CacheKey::for_config_text("{\"y\":2,\"x\":1}", "sort", Scale::Test, None).unwrap();
        assert_eq!(a, b);
        let c = CacheKey::for_config_text("{\"x\":1,\"y\":3}", "sort", Scale::Test, None).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn keys_separate_workload_scale_and_window() {
        let base = job(SimConfig::dual_port());
        let key = CacheKey::for_job(&base);
        let mut other = base.clone();
        other.workload = Workload::Fft;
        assert_ne!(key, CacheKey::for_job(&other));
        let mut other = base.clone();
        other.scale = Scale::Small;
        assert_ne!(key, CacheKey::for_job(&other));
        let mut other = base.clone();
        other.max_insts = Some(5_001);
        assert_ne!(key, CacheKey::for_job(&other));
        let mut other = base.clone();
        other.max_insts = None;
        assert_ne!(key, CacheKey::for_job(&other));
        let mut other = base;
        other.backend = BackendKind::Replay;
        assert_ne!(
            key,
            CacheKey::for_job(&other),
            "replay and direct entries must not serve each other"
        );
    }

    #[test]
    fn a_schema_bump_invalidates_stale_entries() {
        // Reconstruct the key derivation by hand for the current schema
        // and for stale variants. The rebuilt current-schema key must
        // match `for_job` exactly (proving the reconstruction is
        // faithful), and every stale variant must differ — so a cache
        // populated by an older build misses cleanly after a
        // METRICS_SCHEMA, CACHE_SCHEMA, or replay trace-format bump,
        // with no migration step.
        let base = job(SimConfig::dual_port());
        let current = CacheKey::for_job(&base);
        let config = canonical_json(&config_json(&base.config)).unwrap();
        let key_doc = |metrics_schema: u32, backend: &str, trace_format: u32| {
            format!(
                "{{\"cache_schema\":{CACHE_SCHEMA},\"metrics_schema\":{metrics_schema},\
                 \"backend\":\"{backend}\",\"trace_format\":{trace_format},\
                 \"config\":{config},\"workload\":\"sort\",\"scale\":\"test\",\
                 \"max_insts\":5000}}"
            )
        };
        assert_eq!(
            current,
            CacheKey(fnv1a64(key_doc(METRICS_SCHEMA, "direct", 0).as_bytes()))
        );
        let stale_metrics = CacheKey(fnv1a64(key_doc(METRICS_SCHEMA - 1, "direct", 0).as_bytes()));
        assert_ne!(
            current, stale_metrics,
            "schema bump must change the address"
        );

        // The CACHE_SCHEMA=1 derivation (no backend/trace_format fields)
        // must address different entries than the current one, for both
        // backends: nothing written by a pre-replay build can serve.
        let v1_doc = format!(
            "{{\"cache_schema\":1,\"metrics_schema\":{METRICS_SCHEMA},\
             \"config\":{config},\"workload\":\"sort\",\"scale\":\"test\",\
             \"max_insts\":5000}}"
        );
        let v1 = CacheKey(fnv1a64(v1_doc.as_bytes()));
        let mut replay = base.clone();
        replay.backend = BackendKind::Replay;
        let replay_key = CacheKey::for_job(&replay);
        assert_ne!(v1, current, "cache_schema bump must change the address");
        assert_ne!(v1, replay_key, "for either backend");

        // A replay trace-format bump must re-address replay entries and
        // leave direct entries alone.
        let replay_format = BackendKind::Replay.trace_format();
        assert_eq!(
            replay_key,
            CacheKey(fnv1a64(
                key_doc(METRICS_SCHEMA, "replay", replay_format).as_bytes()
            ))
        );
        let bumped_format = CacheKey(fnv1a64(
            key_doc(METRICS_SCHEMA, "replay", replay_format + 1).as_bytes(),
        ));
        assert_ne!(replay_key, bumped_format, "format bump re-addresses replay");
        assert_eq!(
            current,
            CacheKey(fnv1a64(key_doc(METRICS_SCHEMA, "direct", 0).as_bytes())),
            "direct keys are unaffected by the replay format"
        );

        let dir = tempdir("schema-bump");
        let cache = ResultCache::new(&dir);
        cache.store(&stale_metrics, "{\"schema\":2}").unwrap();
        cache.store(&v1, "{\"schema\":2}").unwrap();
        cache.store(&bumped_format, "{\"schema\":3}").unwrap();
        for key in [current, replay_key] {
            assert!(
                cache.lookup(&key).is_none(),
                "a stale-schema entry must never serve a current-schema job"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_then_lookup_roundtrips_and_stats_count() {
        let dir = tempdir("roundtrip");
        let cache = ResultCache::new(&dir);
        let key = CacheKey::for_job(&job(SimConfig::dual_port()));
        assert!(cache.lookup(&key).is_none());
        assert_eq!(cache.stats(), CacheStats::default());

        cache.store(&key, "{\"schema\":2}").unwrap();
        assert_eq!(cache.lookup(&key).as_deref(), Some("{\"schema\":2}"));
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0);

        assert_eq!(cache.clear().unwrap(), 1);
        assert!(cache.lookup(&key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_entries_read_as_misses() {
        let dir = tempdir("torn");
        let cache = ResultCache::new(&dir);
        let key = CacheKey::for_job(&job(SimConfig::quad_port()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(format!("{}.json", key.hex())), "garbage").unwrap();
        assert!(cache.lookup(&key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
