//! The fabric worker: connects to a coordinator, leases jobs, executes
//! them through the same cached [`run_job`] path every other front end
//! uses, heartbeats while computing, and drains gracefully on shutdown.
//!
//! The worker is deliberately stateless between leases: everything it
//! knows about a job arrives in the lease frame, and everything the
//! coordinator learns goes back as exactly one `result` or `nack`. A
//! worker can therefore be killed at any instant — mid-compute,
//! mid-frame, mid-handshake — and the only consequence is that its
//! lease expires and the cell runs elsewhere.

use std::io::{BufWriter, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use crate::cache::ResultCache;
use crate::job::run_job;
use crate::protocol::{
    CoordinatorFrame, LineEvent, LineReader, WorkerFrame, DEFAULT_MAX_LINE_BYTES, FABRIC_SCHEMA,
};

/// Worker-side knobs.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Display name sent in the handshake.
    pub name: String,
    /// Per-line byte cap on the coordinator connection.
    pub max_line_bytes: usize,
}

impl Default for WorkerOptions {
    fn default() -> WorkerOptions {
        WorkerOptions {
            name: format!("worker-{}", std::process::id()),
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
        }
    }
}

/// What one worker run accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerSummary {
    /// Leases fulfilled with a result.
    pub jobs: u64,
    /// Of those, served from the local cache.
    pub hits: u64,
    /// Leases refused with a nack.
    pub nacks: u64,
    /// Wall seconds connected.
    pub wall_seconds: f64,
}

impl std::fmt::Display for WorkerSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker: {} job(s) ({} cache hit(s)), {} nack(s) in {:.2}s",
            self.jobs, self.hits, self.nacks, self.wall_seconds
        )
    }
}

/// How often blocked reads and wait-sleeps wake to check `stop`.
const POLL: Duration = Duration::from_millis(50);

/// One received frame, or why there is none.
enum Received {
    Frame(CoordinatorFrame),
    /// `stop` was raised while waiting.
    Stopped,
}

fn next_frame(reader: &mut LineReader<TcpStream>, stop: &AtomicBool) -> Result<Received, String> {
    loop {
        match reader
            .poll_line()
            .map_err(|e| format!("read failed: {e}"))?
        {
            LineEvent::Line(line) => {
                return CoordinatorFrame::parse(&line)
                    .map(Received::Frame)
                    .map_err(|e| format!("coordinator sent a bad frame: {e}"));
            }
            LineEvent::Idle => {
                if stop.load(Ordering::Relaxed) {
                    return Ok(Received::Stopped);
                }
            }
            LineEvent::Eof => return Err("coordinator closed the connection".to_string()),
            LineEvent::TooLong => return Err("coordinator frame exceeds the line cap".to_string()),
        }
    }
}

fn send(writer: &mut BufWriter<TcpStream>, frame: &WorkerFrame) -> Result<(), String> {
    writeln!(writer, "{}", frame.render())
        .and_then(|()| writer.flush())
        .map_err(|e| format!("write failed: {e}"))
}

/// Sleep `millis` in [`POLL`] slices, returning early when `stop` rises.
fn wait(millis: u64, stop: &AtomicBool) {
    let deadline = Instant::now() + Duration::from_millis(millis);
    while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
        std::thread::sleep(POLL.min(deadline.saturating_duration_since(Instant::now())));
    }
}

/// Connect to a coordinator at `addr` and work until drained or `stop`
/// rises (SIGTERM, Ctrl-C). A raised `stop` drains gracefully: the
/// leased job is finished and reported before the worker disconnects.
///
/// # Errors
///
/// A one-line diagnosis for connection failures, protocol violations,
/// or a coordinator that vanished mid-sweep. Exhausting the *job* is
/// never an error here — job failures become nacks and the worker keeps
/// going.
pub fn run_worker(
    addr: &str,
    cache: Option<&ResultCache>,
    options: &WorkerOptions,
    stop: &AtomicBool,
) -> Result<WorkerSummary, String> {
    let started = Instant::now();
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(POLL))
        .map_err(|e| format!("cannot set read timeout: {e}"))?;
    let mut reader = LineReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("clone failed: {e}"))?,
        options.max_line_bytes,
    );
    let mut writer = BufWriter::new(stream);

    send(
        &mut writer,
        &WorkerFrame::Hello {
            fabric: u64::from(FABRIC_SCHEMA),
            worker: options.name.clone(),
        },
    )?;
    let heartbeat = match next_frame(&mut reader, stop)? {
        Received::Stopped => return Ok(WorkerSummary::default()),
        Received::Frame(CoordinatorFrame::HelloAck {
            fabric,
            heartbeat_ms,
            ..
        }) => {
            if fabric != u64::from(FABRIC_SCHEMA) {
                return Err(format!(
                    "coordinator speaks fabric protocol {fabric}, this worker speaks {FABRIC_SCHEMA}"
                ));
            }
            Duration::from_millis(heartbeat_ms.max(1))
        }
        Received::Frame(CoordinatorFrame::Error { message }) => {
            return Err(format!("coordinator refused the handshake: {message}"))
        }
        Received::Frame(other) => return Err(format!("expected hello_ack, got {other:?}")),
    };

    let mut summary = WorkerSummary::default();
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        send(&mut writer, &WorkerFrame::Ready)?;
        match next_frame(&mut reader, stop)? {
            Received::Stopped => break,
            Received::Frame(CoordinatorFrame::Drain) => break,
            Received::Frame(CoordinatorFrame::Wait { millis }) => wait(millis, stop),
            Received::Frame(CoordinatorFrame::Error { message }) => {
                return Err(format!("coordinator closed the session: {message}"))
            }
            Received::Frame(CoordinatorFrame::HelloAck { .. }) => {
                return Err("unexpected duplicate hello_ack".to_string())
            }
            Received::Frame(CoordinatorFrame::Status(_)) => {
                return Err("unexpected status frame".to_string())
            }
            Received::Frame(CoordinatorFrame::Lease { lease, job: spec }) => {
                let job = match spec.resolve() {
                    Ok(job) => job,
                    Err(error) => {
                        summary.nacks += 1;
                        send(
                            &mut writer,
                            &WorkerFrame::Nack {
                                lease,
                                kind: error.kind().to_string(),
                                message: error.to_string(),
                            },
                        )?;
                        continue;
                    }
                };
                // Compute on a helper thread so this one can keep
                // heartbeating: a long cell must not look like a dead
                // worker. Graceful drain finishes the lease — the
                // compute is not torn — so `stop` is only re-checked
                // at the top of the loop.
                let (done_tx, done_rx) = mpsc::channel();
                let outcome = std::thread::scope(|scope| -> Result<_, String> {
                    scope.spawn(move || {
                        let _ = done_tx.send(run_job(&job, cache));
                    });
                    loop {
                        match done_rx.recv_timeout(heartbeat) {
                            Ok(outcome) => return Ok(outcome),
                            Err(mpsc::RecvTimeoutError::Timeout) => {
                                send(&mut writer, &WorkerFrame::Heartbeat { lease })?;
                            }
                            Err(mpsc::RecvTimeoutError::Disconnected) => {
                                unreachable!("compute thread always sends")
                            }
                        }
                    }
                })?;
                match &outcome.document {
                    Ok(document) => {
                        summary.jobs += 1;
                        if outcome.cache == crate::job::CacheStatus::Hit {
                            summary.hits += 1;
                        }
                        send(
                            &mut writer,
                            &WorkerFrame::Result {
                                lease,
                                cache: outcome.cache.label().to_string(),
                                wall_seconds: outcome.wall_seconds,
                                document: document.clone(),
                            },
                        )?;
                    }
                    Err(error) => {
                        summary.nacks += 1;
                        send(
                            &mut writer,
                            &WorkerFrame::Nack {
                                lease,
                                kind: error.kind().to_string(),
                                message: error.to_string(),
                            },
                        )?;
                    }
                }
            }
        }
    }
    summary.wall_seconds = started.elapsed().as_secs_f64();
    Ok(summary)
}
