//! `cpe serve` — a line-delimited JSON batch-job protocol.
//!
//! One request per line, one response per line. A request names a
//! workload and either a preset configuration or a preset plus
//! overrides; the response carries the cached-or-computed schema-stamped
//! metrics document, the cache disposition, and the job's wall time:
//!
//! ```text
//! → {"id":1,"workload":"sort","config":"2-port","max_insts":5000}
//! ← {"id":1,"config":"2-port","workload":"sort","cache":"miss","wall_ms":41.3,"result":{…}}
//! ```
//!
//! Control requests: `{"cmd":"stats"}` returns the server counters,
//! `{"cmd":"shutdown"}` acknowledges and stops the server. Malformed
//! requests produce `{"id":…,"error":"…"}` and the server keeps going —
//! one bad client line must not cost the batch.
//!
//! The same handler serves stdin (`--stdin`, for scripting and CI) and a
//! TCP listener (`--listen addr:port`); see `docs/EXECUTION.md` for a
//! worked `nc` example.

use std::io::{BufRead, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use cpe_core::{JsonValue, SimConfig};
use cpe_workloads::Scale;

use crate::cache::ResultCache;
use crate::job::{preset_by_name, run_job, scale_by_name, workload_by_name, CacheStatus, Job};
use crate::protocol::{LineEvent, LineReader};
use crate::render::{bool_member, member, parse, render, text_member, u64_member};

/// What one protocol line asked for.
enum Request {
    Run(Box<Job>, Option<String>),
    Stats(Option<String>),
    Shutdown(Option<String>),
}

/// A reply line, plus whether the server should stop afterwards.
pub struct Reply {
    /// The response line (no trailing newline).
    pub line: String,
    /// `true` when the request was `{"cmd":"shutdown"}`.
    pub shutdown: bool,
}

fn id_of(request: &JsonValue) -> Option<String> {
    member(request, "id").map(render)
}

fn id_field(id: &Option<String>) -> String {
    match id {
        Some(id) => format!("\"id\":{id},"),
        None => String::new(),
    }
}

/// Apply one override document to a base configuration. Unknown keys are
/// rejected — a typo must not silently benchmark the wrong machine.
fn apply_overrides(mut config: SimConfig, overrides: &JsonValue) -> Result<SimConfig, String> {
    let JsonValue::Object(members) = overrides else {
        return Err("`overrides` must be an object".to_string());
    };
    for (key, _) in members {
        match key.as_str() {
            "name"
            | "ports"
            | "port_width_bytes"
            | "load_combining"
            | "store_buffer_entries"
            | "store_buffer_combining"
            | "line_buffer_entries"
            | "line_buffer_width_bytes"
            | "issue_width" => {}
            other => return Err(format!("unknown override `{other}`")),
        }
    }
    if let Some(name) = text_member(overrides, "name")? {
        config = config.named(name);
    }
    if let Some(ports) = u64_member(overrides, "ports")? {
        config.mem.ports.count = ports as u32;
    }
    if let Some(width) = u64_member(overrides, "port_width_bytes")? {
        config.mem.ports.width_bytes = width;
    }
    if let Some(combining) = bool_member(overrides, "load_combining")? {
        config.mem.ports.load_combining = combining;
    }
    if let Some(entries) = u64_member(overrides, "store_buffer_entries")? {
        config.mem.store_buffer.entries = entries as usize;
    }
    if let Some(combining) = bool_member(overrides, "store_buffer_combining")? {
        config.mem.store_buffer.combining = combining;
    }
    if let Some(entries) = u64_member(overrides, "line_buffer_entries")? {
        config.mem.line_buffers.entries = entries as usize;
    }
    if let Some(width) = u64_member(overrides, "line_buffer_width_bytes")? {
        config.mem.line_buffers.width_bytes = width;
    }
    if let Some(width) = u64_member(overrides, "issue_width")? {
        config = config.with_issue_width(width as u32);
    }
    Ok(config)
}

fn parse_request(
    line: &str,
    defaults: &ServeDefaults,
) -> Result<Request, (Option<String>, String)> {
    let request = parse(line).map_err(|error| (None, format!("malformed request: {error}")))?;
    let id = id_of(&request);
    let fail = |message: String| (id.clone(), message);

    match text_member(&request, "cmd").map_err(&fail)? {
        Some("stats") => return Ok(Request::Stats(id)),
        Some("shutdown") => return Ok(Request::Shutdown(id)),
        Some(other) => return Err(fail(format!("unknown cmd `{other}` (stats, shutdown)"))),
        None => {}
    }

    let workload_name = text_member(&request, "workload")
        .map_err(&fail)?
        .ok_or_else(|| fail("request needs a `workload`".to_string()))?;
    let workload = workload_by_name(workload_name)
        .ok_or_else(|| fail(format!("unknown workload `{workload_name}`")))?;
    let config_name = text_member(&request, "config")
        .map_err(&fail)?
        .unwrap_or("combined_single_port");
    let config = if config_name == "combined_single_port" {
        SimConfig::combined_single_port()
    } else {
        preset_by_name(config_name)
            .ok_or_else(|| fail(format!("unknown config `{config_name}`")))?
    };
    let config = match member(&request, "overrides") {
        Some(overrides) => apply_overrides(config, overrides).map_err(&fail)?,
        None => config,
    };
    config.validate().map_err(|error| fail(error.to_string()))?;
    let scale = match text_member(&request, "scale").map_err(&fail)? {
        None => defaults.scale,
        Some(name) => scale_by_name(name).ok_or_else(|| fail(format!("unknown scale `{name}`")))?,
    };
    let max_insts = u64_member(&request, "max_insts")
        .map_err(&fail)?
        .or(defaults.max_insts);
    Ok(Request::Run(
        Box::new(Job {
            config,
            workload,
            scale,
            max_insts,
            // Served jobs are independent one-offs; they run direct.
            backend: cpe_core::BackendKind::Direct,
        }),
        id,
    ))
}

/// Protocol defaults a request may omit.
#[derive(Debug, Clone, Copy)]
pub struct ServeDefaults {
    /// Scale when the request names none.
    pub scale: Scale,
    /// Instruction window when the request names none.
    pub max_insts: Option<u64>,
}

impl Default for ServeDefaults {
    fn default() -> ServeDefaults {
        ServeDefaults {
            scale: Scale::Test,
            max_insts: Some(20_000),
        }
    }
}

/// Per-connection guards: how long a silent connection may stay open
/// and how long one request line may grow. Breaching either answers a
/// final `{"error":…}` frame and closes the connection — a stuck or
/// malicious client must not pin a connection thread or grow an
/// unbounded buffer.
#[derive(Debug, Clone, Copy)]
pub struct ServeLimits {
    /// Close a connection with no complete request for this long.
    pub idle_timeout: Duration,
    /// Cap on one request line.
    pub max_line_bytes: usize,
}

impl Default for ServeLimits {
    fn default() -> ServeLimits {
        ServeLimits {
            idle_timeout: Duration::from_secs(120),
            max_line_bytes: 64 * 1024,
        }
    }
}

/// How often blocked connection reads wake to check the shutdown flag
/// and the idle clock.
const POLL: Duration = Duration::from_millis(100);

/// The shared server state: the cache plus lifetime counters. One
/// instance serves any number of connections concurrently.
pub struct Server {
    cache: Option<ResultCache>,
    defaults: ServeDefaults,
    limits: ServeLimits,
    jobs: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    errors: AtomicU64,
    wall_micros: AtomicU64,
}

impl Server {
    /// A server over `cache` (None disables caching) with the given
    /// request defaults.
    pub fn new(cache: Option<ResultCache>, defaults: ServeDefaults) -> Server {
        Server {
            cache,
            defaults,
            limits: ServeLimits::default(),
            jobs: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            wall_micros: AtomicU64::new(0),
        }
    }

    /// Replace the per-connection guards.
    pub fn with_limits(mut self, limits: ServeLimits) -> Server {
        self.limits = limits;
        self
    }

    /// Jobs served so far.
    pub fn jobs_served(&self) -> u64 {
        self.jobs.load(Ordering::Relaxed)
    }

    /// Cache hit rate over jobs that went through the cache.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits.load(Ordering::Relaxed);
        let through = hits + self.misses.load(Ordering::Relaxed);
        if through == 0 {
            0.0
        } else {
            hits as f64 / through as f64
        }
    }

    /// The counters as one JSON object (the `{"cmd":"stats"}` response
    /// body and the shutdown summary).
    pub fn stats_json(&self) -> String {
        format!(
            "{{\"jobs\":{},\"hits\":{},\"misses\":{},\"errors\":{},\"hit_rate\":{:.4},\
             \"wall_seconds\":{:.6}}}",
            self.jobs.load(Ordering::Relaxed),
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.hit_rate(),
            self.wall_micros.load(Ordering::Relaxed) as f64 / 1.0e6
        )
    }

    /// Handle one protocol line.
    pub fn handle_line(&self, line: &str) -> Reply {
        match parse_request(line, &self.defaults) {
            Err((id, message)) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                Reply {
                    line: format!(
                        "{{{}\"error\":\"{}\"}}",
                        id_field(&id),
                        message.replace('\\', "\\\\").replace('"', "\\\"")
                    ),
                    shutdown: false,
                }
            }
            Ok(Request::Stats(id)) => Reply {
                line: format!("{{{}\"stats\":{}}}", id_field(&id), self.stats_json()),
                shutdown: false,
            },
            Ok(Request::Shutdown(id)) => Reply {
                line: format!(
                    "{{{}\"shutdown\":true,\"stats\":{}}}",
                    id_field(&id),
                    self.stats_json()
                ),
                shutdown: true,
            },
            Ok(Request::Run(job, id)) => {
                let outcome = run_job(&job, self.cache.as_ref());
                self.jobs.fetch_add(1, Ordering::Relaxed);
                self.wall_micros
                    .fetch_add((outcome.wall_seconds * 1.0e6) as u64, Ordering::Relaxed);
                match outcome.cache {
                    CacheStatus::Hit => self.hits.fetch_add(1, Ordering::Relaxed),
                    CacheStatus::Miss => self.misses.fetch_add(1, Ordering::Relaxed),
                    CacheStatus::Bypass => 0,
                };
                let line = match &outcome.document {
                    Ok(document) => format!(
                        "{{{}\"config\":\"{}\",\"workload\":\"{}\",\"cache\":\"{}\",\
                         \"wall_ms\":{:.3},\"result\":{document}}}",
                        id_field(&id),
                        job.config.name.replace('"', "\\\""),
                        job.workload.name(),
                        outcome.cache.label(),
                        outcome.wall_seconds * 1.0e3
                    ),
                    Err(error) => {
                        self.errors.fetch_add(1, Ordering::Relaxed);
                        format!(
                            "{{{}\"error\":\"{}\",\"kind\":\"{}\"}}",
                            id_field(&id),
                            error.to_string().replace('\\', "\\\\").replace('"', "\\\""),
                            error.kind()
                        )
                    }
                };
                Reply {
                    line,
                    shutdown: false,
                }
            }
        }
    }

    /// Serve one request stream (stdin, a socket, a test buffer) to
    /// completion: EOF or a shutdown request.
    ///
    /// Returns `true` when the stream asked for shutdown.
    ///
    /// # Errors
    ///
    /// On I/O failure reading requests or writing responses.
    pub fn serve_stream(
        &self,
        reader: impl BufRead,
        mut writer: impl Write,
    ) -> std::io::Result<bool> {
        let mut reader = LineReader::new(reader, self.limits.max_line_bytes);
        let never = AtomicBool::new(false);
        self.serve_guarded(&mut reader, &mut writer, &never, None)
    }

    /// Serve request lines until EOF, a shutdown request, a guard
    /// breach, or `stop` — the engine behind both [`Server::serve_tcp`]
    /// connections and single-job traffic on a fabric coordinator's
    /// listener (which supplies the already-dispatched first line).
    ///
    /// When `stop` is raised externally, the connection finishes the
    /// request it is handling — in-flight jobs drain, they are not torn —
    /// and then closes at its next poll.
    ///
    /// Returns `true` when this stream asked for shutdown; the *caller*
    /// decides whether that stops a whole server or just this
    /// connection.
    ///
    /// # Errors
    ///
    /// On I/O failure reading requests or writing responses.
    pub fn serve_guarded<R: Read>(
        &self,
        reader: &mut LineReader<R>,
        writer: &mut impl Write,
        stop: &AtomicBool,
        first: Option<String>,
    ) -> std::io::Result<bool> {
        let answer = |line: &str, writer: &mut dyn Write| -> std::io::Result<bool> {
            if line.trim().is_empty() {
                return Ok(false);
            }
            let reply = self.handle_line(line);
            writer.write_all(reply.line.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            Ok(reply.shutdown)
        };
        if let Some(line) = first {
            if answer(&line, writer)? {
                return Ok(true);
            }
        }
        let mut last_activity = Instant::now();
        loop {
            match reader.poll_line()? {
                LineEvent::Line(line) => {
                    last_activity = Instant::now();
                    if answer(&line, writer)? {
                        return Ok(true);
                    }
                }
                LineEvent::Idle => {
                    if stop.load(Ordering::Relaxed) {
                        return Ok(false);
                    }
                    if last_activity.elapsed() >= self.limits.idle_timeout {
                        self.errors.fetch_add(1, Ordering::Relaxed);
                        writeln!(
                            writer,
                            "{{\"error\":\"idle timeout after {:.0}s, closing\"}}",
                            self.limits.idle_timeout.as_secs_f64()
                        )?;
                        writer.flush()?;
                        return Ok(false);
                    }
                }
                LineEvent::TooLong => {
                    self.errors.fetch_add(1, Ordering::Relaxed);
                    writeln!(
                        writer,
                        "{{\"error\":\"request exceeds {} bytes, closing\"}}",
                        self.limits.max_line_bytes
                    )?;
                    writer.flush()?;
                    return Ok(false);
                }
                LineEvent::Eof => return Ok(false),
            }
        }
    }

    /// Accept TCP connections until one of them requests shutdown. Each
    /// connection gets its own thread; the cache and counters are
    /// shared.
    ///
    /// Shutdown drains: connections finish the request they are
    /// handling (its reply is written) before closing, and the listener
    /// waits for every connection thread.
    ///
    /// # Errors
    ///
    /// On listener I/O failure (per-connection failures only end that
    /// connection).
    pub fn serve_tcp(&self, listener: TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| loop {
            if stop.load(Ordering::Relaxed) {
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let stop = &stop;
                    scope.spawn(move || {
                        if let Ok(true) = self.serve_connection(stream, stop) {
                            stop.store(true, Ordering::Relaxed);
                        }
                    });
                }
                Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(error) => return Err(error),
            }
        })
    }

    fn serve_connection(&self, stream: TcpStream, stop: &AtomicBool) -> std::io::Result<bool> {
        stream.set_read_timeout(Some(POLL))?;
        let mut reader = LineReader::new(stream.try_clone()?, self.limits.max_line_bytes);
        let mut writer = BufWriter::new(stream);
        self.serve_guarded(&mut reader, &mut writer, stop, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> Server {
        Server::new(
            None,
            ServeDefaults {
                scale: Scale::Test,
                max_insts: Some(2_000),
            },
        )
    }

    #[test]
    fn run_requests_return_the_metrics_document() {
        let server = server();
        let reply = server.handle_line("{\"id\":7,\"workload\":\"sort\",\"config\":\"2-port\"}");
        assert!(!reply.shutdown);
        assert!(reply.line.starts_with("{\"id\":7,"), "{}", reply.line);
        assert!(
            reply.line.contains("\"cache\":\"bypass\""),
            "{}",
            reply.line
        );
        assert!(reply.line.contains("\"wall_ms\":"), "{}", reply.line);
        assert!(reply.line.contains("\"result\":{\"schema\":3,"));
        let parsed = parse(&reply.line).expect("response is one JSON object");
        assert_eq!(
            crate::render::text_at(&parsed, &["result", "summary", "workload"]),
            Some("sort")
        );
        assert_eq!(server.jobs_served(), 1);
    }

    #[test]
    fn overrides_build_a_custom_machine_and_typos_are_rejected() {
        let server = server();
        let reply = server.handle_line(
            "{\"workload\":\"fft\",\"config\":\"1-port naive\",\
             \"overrides\":{\"ports\":4,\"name\":\"custom\"}}",
        );
        assert!(
            reply.line.contains("\"config\":\"custom\""),
            "{}",
            reply.line
        );
        let reply = server.handle_line("{\"workload\":\"fft\",\"overrides\":{\"portz\":4}}");
        assert!(
            reply.line.contains("unknown override `portz`"),
            "{}",
            reply.line
        );
    }

    #[test]
    fn bad_lines_answer_with_errors_and_never_kill_the_stream() {
        let server = server();
        let input = b"not json\n{\"workload\":\"nope\"}\n{\"id\":1,\"cmd\":\"stats\"}\n";
        let mut output = Vec::new();
        let shutdown = server.serve_stream(&input[..], &mut output).unwrap();
        assert!(!shutdown);
        let lines: Vec<&str> = std::str::from_utf8(&output).unwrap().lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("malformed request"), "{}", lines[0]);
        assert!(lines[1].contains("unknown workload"), "{}", lines[1]);
        assert!(lines[2].contains("\"stats\":{\"jobs\":0"), "{}", lines[2]);
    }

    #[test]
    fn invalid_override_values_are_rejected_before_running() {
        let server = server();
        let reply = server.handle_line("{\"workload\":\"sort\",\"overrides\":{\"ports\":0}}");
        assert!(reply.line.contains("\"error\":"), "{}", reply.line);
        assert_eq!(server.jobs_served(), 0, "invalid config never runs");
    }

    #[test]
    fn oversized_request_lines_answer_an_error_and_close() {
        let server = Server::new(None, ServeDefaults::default()).with_limits(ServeLimits {
            max_line_bytes: 64,
            ..ServeLimits::default()
        });
        let input = format!("{{\"workload\":\"{}\"}}\n", "x".repeat(200));
        let mut output = Vec::new();
        let shutdown = server.serve_stream(input.as_bytes(), &mut output).unwrap();
        assert!(!shutdown);
        let text = String::from_utf8(output).unwrap();
        assert!(text.contains("exceeds 64 bytes"), "{text}");
        assert_eq!(text.lines().count(), 1, "error frame, then closed");
    }

    #[test]
    fn idle_connections_time_out_with_an_error_frame() {
        /// A stream that never delivers a byte: every read times out.
        struct Silent;
        impl std::io::Read for Silent {
            fn read(&mut self, _out: &mut [u8]) -> std::io::Result<usize> {
                std::thread::sleep(Duration::from_millis(1));
                Err(std::io::ErrorKind::WouldBlock.into())
            }
        }
        let server = Server::new(None, ServeDefaults::default()).with_limits(ServeLimits {
            idle_timeout: Duration::from_millis(20),
            ..ServeLimits::default()
        });
        let mut reader = LineReader::new(Silent, 1024);
        let mut output = Vec::new();
        let never = AtomicBool::new(false);
        let shutdown = server
            .serve_guarded(&mut reader, &mut output, &never, None)
            .unwrap();
        assert!(!shutdown);
        let text = String::from_utf8(output).unwrap();
        assert!(text.contains("idle timeout"), "{text}");
    }

    #[test]
    fn an_external_stop_closes_idle_connections_without_an_error() {
        struct Silent;
        impl std::io::Read for Silent {
            fn read(&mut self, _out: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::ErrorKind::WouldBlock.into())
            }
        }
        let server = Server::new(None, ServeDefaults::default());
        let mut reader = LineReader::new(Silent, 1024);
        let mut output = Vec::new();
        let stop = AtomicBool::new(true);
        let shutdown = server
            .serve_guarded(&mut reader, &mut output, &stop, None)
            .unwrap();
        assert!(!shutdown);
        assert!(output.is_empty(), "drained quietly, no error frame");
    }

    #[test]
    fn shutdown_acknowledges_with_stats() {
        let server = server();
        let reply = server.handle_line("{\"id\":9,\"cmd\":\"shutdown\"}");
        assert!(reply.shutdown);
        assert!(reply.line.contains("\"shutdown\":true"), "{}", reply.line);
        assert!(reply.line.contains("\"stats\":{"), "{}", reply.line);
    }

    #[test]
    fn cached_serves_report_hits_the_second_time() {
        let dir = std::env::temp_dir().join(format!("cpe-serve-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = Server::new(
            Some(ResultCache::new(&dir)),
            ServeDefaults {
                scale: Scale::Test,
                max_insts: Some(2_000),
            },
        );
        let request = "{\"workload\":\"compress\",\"config\":\"2-port\"}";
        let first = server.handle_line(request);
        assert!(first.line.contains("\"cache\":\"miss\""), "{}", first.line);
        let second = server.handle_line(request);
        assert!(second.line.contains("\"cache\":\"hit\""), "{}", second.line);
        assert!((server.hit_rate() - 0.5).abs() < 1e-9);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
