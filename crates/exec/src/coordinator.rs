//! The fabric coordinator: shards a sweep grid into leased work units,
//! tracks worker heartbeats against deadlines, reassigns expired leases,
//! retries failed jobs with bounded exponential backoff, and assembles
//! results in submission order so aggregates are byte-identical to a
//! serial run regardless of topology, timing, or which workers died.
//!
//! The state machine of one grid cell:
//!
//! ```text
//!             grant                    result
//!  Pending ─────────────▶ Leased ────────────────▶ Done(Ok)
//!    ▲                      │
//!    │   lease expiry /     │ nack (job failed on the worker)
//!    │   worker lost        │   attempt+1 ≤ max_retries: backoff+jitter
//!    └──────────────────────┤   attempt+1 > max_retries: Done(Err)
//!         reassigns+1       │
//!         > max_reassigns: Done(Err(fabric))
//! ```
//!
//! Liveness rules:
//!
//! * A lease's deadline is `now + lease_ttl`, refreshed by every
//!   heartbeat. A worker that stops heartbeating — hung, killed, or
//!   partitioned — loses the lease at the deadline and the cell goes
//!   back to pending for any other worker.
//! * A connection that drops, sends garbage, or overruns the line cap
//!   has **all** its leases revoked immediately.
//! * A *stale* result (from a lease already revoked) is still accepted
//!   when the cell is not yet done: documents are deterministic, so a
//!   slow worker's late answer is exactly the answer a re-run would
//!   produce. Duplicates are ignored.
//! * Nack-driven retries back off exponentially with deterministic
//!   per-(cell, attempt) jitter; infrastructure revocations requeue
//!   immediately (the job did not fail — the worker did).
//! * Both retry paths are bounded; exhaustion marks the cell
//!   `Done(Err)` so the sweep renders `FAILED(<kind>)` instead of
//!   hanging or silently shrinking the grid.

use std::collections::HashMap;
use std::io::{BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use cpe_core::SimError;
use cpe_stats::Log2Histogram;

use crate::cache::fnv1a64;
use crate::job::{CacheStatus, Job, JobOutcome};
use crate::observe::{log2hist_json, FabricObserver, LogSummary, WorkerReport};
use crate::protocol::{
    CoordinatorFrame, JobSpec, LineEvent, LineReader, StatusBody, WorkerFrame, WorkerStatus,
    DEFAULT_HEARTBEAT, DEFAULT_MAX_LINE_BYTES, FABRIC_SCHEMA,
};
use crate::render::escape_text;
use crate::serve::Server;

/// Fabric timing and bounds. The defaults suit interactive sweeps;
/// tests and the chaos harness shrink the durations.
#[derive(Debug, Clone, Copy)]
pub struct FabricOptions {
    /// Heartbeat cadence advertised to workers.
    pub heartbeat: Duration,
    /// Lease lifetime without a heartbeat; refreshed by each heartbeat.
    pub lease_ttl: Duration,
    /// Nack-driven re-runs allowed per cell beyond the first attempt.
    pub max_retries: u32,
    /// Lease revocations (expiry / lost worker) tolerated per cell.
    pub max_reassigns: u32,
    /// Base of the exponential retry backoff.
    pub backoff_base: Duration,
    /// Bound on simultaneously leased cells (backpressure).
    pub max_inflight: usize,
    /// Delay suggested to workers in `wait` frames.
    pub wait_hint: Duration,
    /// Close a connection silent for this long.
    pub idle_timeout: Duration,
    /// Per-line byte cap on worker connections.
    pub max_line_bytes: usize,
}

impl Default for FabricOptions {
    fn default() -> FabricOptions {
        FabricOptions {
            heartbeat: DEFAULT_HEARTBEAT,
            lease_ttl: Duration::from_secs(3),
            max_retries: 2,
            max_reassigns: 16,
            backoff_base: Duration::from_millis(50),
            max_inflight: 64,
            wait_hint: Duration::from_millis(100),
            idle_timeout: Duration::from_secs(10),
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
        }
    }
}

/// Deterministic backoff before re-running a nacked cell: exponential in
/// the attempt number, plus a per-(cell, attempt) FNV jitter so a batch
/// of simultaneous failures does not retry in lockstep.
fn backoff(options: &FabricOptions, job: usize, attempt: u32) -> Duration {
    let exponential = options.backoff_base.saturating_mul(1u32 << attempt.min(6));
    let base_ms = options.backoff_base.as_millis().max(1) as u64;
    let mut seed = [0u8; 12];
    seed[..8].copy_from_slice(&(job as u64).to_le_bytes());
    seed[8..].copy_from_slice(&attempt.to_le_bytes());
    exponential + Duration::from_millis(fnv1a64(&seed) % base_ms)
}

/// Lifetime counters of one fabric run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FabricStats {
    /// Grid cells the run was responsible for.
    pub cells: usize,
    /// Worker sessions that completed the handshake.
    pub workers_seen: u64,
    /// Leases granted (including re-grants of the same cell).
    pub granted: u64,
    /// Leases revoked because their heartbeat deadline passed.
    pub expired: u64,
    /// Cells requeued after a revocation (expiry or lost worker).
    pub reassigned: u64,
    /// Cells requeued after a worker nack.
    pub retries: u64,
    /// Results accepted or ignored after their lease was revoked.
    pub stale_results: u64,
    /// Garbage frames, line-cap overruns, and handshake violations.
    pub protocol_errors: u64,
    /// `wait` frames sent (backpressure or empty pending set).
    pub waits: u64,
    /// Live `status` queries answered mid-sweep.
    pub status_queries: u64,
    /// High-water mark of simultaneously leased cells.
    pub peak_inflight: usize,
    /// Cells that exhausted their retry or reassignment budget.
    pub failed: usize,
    /// Wall seconds from first listen to full assembly.
    pub wall_seconds: f64,
}

impl std::fmt::Display for FabricStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fabric: {} cells in {:.2}s via {} worker session(s) — {} lease(s) granted \
             (peak {} in-flight), {} expired, {} reassigned, {} retried, {} stale result(s), \
             {} protocol error(s), {} wait(s), {} failed",
            self.cells,
            self.wall_seconds,
            self.workers_seen,
            self.granted,
            self.peak_inflight,
            self.expired,
            self.reassigned,
            self.retries,
            self.stale_results,
            self.protocol_errors,
            self.waits,
            self.failed
        )
    }
}

/// One grid cell's lifecycle.
enum Cell {
    Pending {
        attempt: u32,
        reassigns: u32,
        not_before: Instant,
    },
    Leased {
        lease: u64,
        attempt: u32,
        reassigns: u32,
    },
    Done {
        document: Result<String, SimError>,
        cache: CacheStatus,
        wall_seconds: f64,
    },
}

struct LeaseInfo {
    job: usize,
    session: u64,
    deadline: Instant,
}

/// What the coordinator remembers about every lease ever granted, kept
/// past revocation so stale results can still land and be attributed.
struct LeaseRecord {
    job: usize,
    granted_at: Instant,
}

/// Per-session fleet accounting, indexed by `session - 1`.
struct WorkerSlot {
    name: String,
    connected: bool,
    last_seen: Instant,
    cells: u64,
    hits: u64,
    misses: u64,
    bypass: u64,
    nacks: u64,
    wall_ms: Log2Histogram,
}

/// The coordinator's shared state: every mutation happens under one
/// mutex, with lock scopes kept to pure bookkeeping (no I/O — the
/// [`FabricObserver`]'s event log is `try_send`, never a write).
struct FabricState {
    cells: Vec<Cell>,
    /// Live leases only; revocation removes the entry.
    leases: HashMap<u64, LeaseInfo>,
    /// Every lease ever granted → its cell and grant time, kept so
    /// stale results can still land. Bounded by `granted`.
    lease_index: HashMap<u64, LeaseRecord>,
    /// One slot per session ever registered.
    workers: Vec<WorkerSlot>,
    /// Grant → first accepted result, per cell, in milliseconds.
    lease_latency_ms: Log2Histogram,
    /// Worker-reported wall milliseconds per accepted cell.
    cell_wall_ms: Log2Histogram,
    next_lease: u64,
    next_session: u64,
    done: usize,
    stats: FabricStats,
}

impl FabricState {
    fn new(cells: usize, now: Instant) -> FabricState {
        FabricState {
            cells: (0..cells)
                .map(|_| Cell::Pending {
                    attempt: 0,
                    reassigns: 0,
                    not_before: now,
                })
                .collect(),
            leases: HashMap::new(),
            lease_index: HashMap::new(),
            workers: Vec::new(),
            lease_latency_ms: Log2Histogram::new(),
            cell_wall_ms: Log2Histogram::new(),
            next_lease: 0,
            next_session: 0,
            done: 0,
            stats: FabricStats {
                cells,
                ..FabricStats::default()
            },
        }
    }

    fn complete(&self) -> bool {
        self.done == self.cells.len()
    }

    /// The slot for `session`, when it was registered through
    /// [`FabricState::register_session`] (unit tests grant against
    /// unregistered session ids, which simply go unattributed).
    fn worker_mut(&mut self, session: u64) -> Option<&mut WorkerSlot> {
        session
            .checked_sub(1)
            .and_then(|index| self.workers.get_mut(index as usize))
    }

    fn touch(&mut self, session: u64, now: Instant) {
        if let Some(slot) = self.worker_mut(session) {
            slot.last_seen = now;
        }
    }

    fn register_session(&mut self, worker: &str, now: Instant, obs: &FabricObserver) -> u64 {
        self.next_session += 1;
        self.stats.workers_seen += 1;
        self.workers.push(WorkerSlot {
            name: worker.to_string(),
            connected: true,
            last_seen: now,
            cells: 0,
            hits: 0,
            misses: 0,
            bypass: 0,
            nacks: 0,
            wall_ms: Log2Histogram::new(),
        });
        obs.worker_connect(self.next_session, worker);
        self.next_session
    }

    /// Mark a session's slot disconnected (its leases are revoked
    /// separately by [`FabricState::revoke_session`]).
    fn session_closed(&mut self, session: u64) {
        if let Some(slot) = self.worker_mut(session) {
            slot.connected = false;
        }
    }

    /// A point-in-time view of the grid and the fleet for the `status`
    /// endpoint.
    fn snapshot(&self, now: Instant, elapsed_ms: u64) -> StatusBody {
        let mut queued = 0u64;
        let mut backoff = 0u64;
        for cell in &self.cells {
            if let Cell::Pending { not_before, .. } = cell {
                if *not_before <= now {
                    queued += 1;
                } else {
                    backoff += 1;
                }
            }
        }
        StatusBody {
            elapsed_ms,
            cells: self.cells.len() as u64,
            done: (self.done - self.stats.failed) as u64,
            failed: self.stats.failed as u64,
            leased: self.leases.len() as u64,
            queued,
            backoff,
            workers: self
                .workers
                .iter()
                .enumerate()
                .map(|(index, slot)| WorkerStatus {
                    session: index as u64 + 1,
                    worker: slot.name.clone(),
                    connected: slot.connected,
                    cells: slot.cells,
                    hits: slot.hits,
                    misses: slot.misses,
                    bypass: slot.bypass,
                    nacks: slot.nacks,
                    last_seen_ms: now.saturating_duration_since(slot.last_seen).as_millis() as u64,
                })
                .collect(),
        }
    }

    /// Answer one `ready` frame: a lease, a wait hint, or drain.
    fn grant(
        &mut self,
        session: u64,
        now: Instant,
        options: &FabricOptions,
        jobs: &[Job],
        obs: &FabricObserver,
    ) -> CoordinatorFrame {
        self.touch(session, now);
        if self.complete() {
            return CoordinatorFrame::Drain;
        }
        let wait = CoordinatorFrame::Wait {
            millis: options.wait_hint.as_millis().max(1) as u64,
        };
        if self.leases.len() >= options.max_inflight {
            self.stats.waits += 1;
            obs.wait(session, "backpressure");
            return wait;
        }
        let candidate = self.cells.iter().position(
            |cell| matches!(cell, Cell::Pending { not_before, .. } if *not_before <= now),
        );
        let Some(job) = candidate else {
            // Everything is leased, done, or backing off; a straggler
            // may still nack and requeue, so the worker keeps polling.
            self.stats.waits += 1;
            obs.wait(session, "empty");
            return wait;
        };
        let Cell::Pending {
            attempt, reassigns, ..
        } = self.cells[job]
        else {
            unreachable!("candidate position only matches Pending");
        };
        self.next_lease += 1;
        let lease = self.next_lease;
        self.cells[job] = Cell::Leased {
            lease,
            attempt,
            reassigns,
        };
        self.leases.insert(
            lease,
            LeaseInfo {
                job,
                session,
                deadline: now + options.lease_ttl,
            },
        );
        self.lease_index.insert(
            lease,
            LeaseRecord {
                job,
                granted_at: now,
            },
        );
        self.stats.granted += 1;
        self.stats.peak_inflight = self.stats.peak_inflight.max(self.leases.len());
        obs.lease_grant(
            lease,
            job,
            session,
            attempt,
            reassigns,
            &jobs[job].config.name,
            jobs[job].workload.name(),
        );
        CoordinatorFrame::Lease {
            lease,
            job: JobSpec::from_job(&jobs[job]),
        }
    }

    /// Refresh a live lease's deadline. Heartbeats for revoked or
    /// unknown leases are silently ignored — the worker will learn the
    /// lease is dead when its result is counted stale.
    fn heartbeat(
        &mut self,
        lease: u64,
        session: u64,
        now: Instant,
        options: &FabricOptions,
        obs: &FabricObserver,
    ) {
        self.touch(session, now);
        if let Some(info) = self.leases.get_mut(&lease) {
            info.deadline = now + options.lease_ttl;
            obs.heartbeat(lease, session);
        }
    }

    /// Land a result. Stale results (revoked lease) still complete the
    /// cell when it is not yet done; duplicates are ignored.
    #[allow(clippy::too_many_arguments)]
    fn result(
        &mut self,
        lease: u64,
        session: u64,
        document: String,
        cache: CacheStatus,
        wall_seconds: f64,
        now: Instant,
        obs: &FabricObserver,
    ) {
        let Some(record) = self.lease_index.get(&lease) else {
            self.stats.protocol_errors += 1;
            obs.protocol_error(session, &format!("result for unknown lease {lease}"));
            return;
        };
        let job = record.job;
        let granted_at = record.granted_at;
        let stale = self.leases.remove(&lease).is_none();
        if stale {
            self.stats.stale_results += 1;
        } else {
            self.lease_latency_ms
                .record(now.saturating_duration_since(granted_at).as_millis() as u64);
        }
        let duplicate = matches!(self.cells[job], Cell::Done { .. });
        if !duplicate {
            self.cells[job] = Cell::Done {
                document: Ok(document),
                cache,
                wall_seconds,
            };
            self.done += 1;
            self.cell_wall_ms.record((wall_seconds * 1.0e3) as u64);
        }
        if let Some(slot) = self.worker_mut(session) {
            slot.last_seen = now;
            slot.cells += 1;
            match cache {
                CacheStatus::Hit => slot.hits += 1,
                CacheStatus::Miss => slot.misses += 1,
                CacheStatus::Bypass => slot.bypass += 1,
            }
            slot.wall_ms.record((wall_seconds * 1.0e3) as u64);
        }
        obs.result(
            lease,
            job,
            session,
            cache,
            wall_seconds * 1.0e3,
            stale,
            duplicate,
        );
    }

    /// The worker reported the job itself failed: bounded retry with
    /// backoff, then a terminal `FAILED(<kind>)` cell.
    #[allow(clippy::too_many_arguments)]
    fn nack(
        &mut self,
        lease: u64,
        session: u64,
        kind: &str,
        message: &str,
        now: Instant,
        options: &FabricOptions,
        obs: &FabricObserver,
    ) {
        // Leases the coordinator never granted stay silent: there is no
        // cell to act on and nothing to attribute.
        let Some(record) = self.lease_index.get(&lease) else {
            return;
        };
        let job = record.job;
        if let Some(slot) = self.worker_mut(session) {
            slot.last_seen = now;
            slot.nacks += 1;
        }
        // Only a *live* lease's nack acts on the cell: a stale nack
        // races a re-grant that may well succeed.
        let live = self.leases.remove(&lease).is_some();
        obs.nack(lease, job, session, kind, !live);
        if !live {
            return;
        }
        let Cell::Leased {
            attempt, reassigns, ..
        } = self.cells[job]
        else {
            return;
        };
        let attempt = attempt + 1;
        if attempt > options.max_retries {
            let message = format!("{message} [after {attempt} attempt(s)]");
            self.cells[job] = Cell::Done {
                document: Err(SimError::Fabric {
                    kind: kind.to_string(),
                    message: message.clone(),
                }),
                cache: CacheStatus::Bypass,
                wall_seconds: 0.0,
            };
            self.done += 1;
            self.stats.failed += 1;
            obs.cell_failed(job, kind, &message);
        } else {
            self.stats.retries += 1;
            let delay = backoff(options, job, attempt);
            self.cells[job] = Cell::Pending {
                attempt,
                reassigns,
                not_before: now + delay,
            };
            obs.retry(job, attempt, delay.as_millis() as u64);
        }
    }

    /// Revoke one lease (expiry or lost worker): the cell goes back to
    /// pending immediately, up to the reassignment budget.
    fn revoke_lease(
        &mut self,
        lease: u64,
        now: Instant,
        options: &FabricOptions,
        expired: bool,
        obs: &FabricObserver,
    ) {
        let Some(info) = self.leases.remove(&lease) else {
            return;
        };
        obs.lease_revoked(lease, info.job, info.session, expired);
        match self.cells[info.job] {
            Cell::Leased {
                lease: held,
                attempt,
                reassigns,
            } if held == lease => {
                let reassigns = reassigns + 1;
                if reassigns > options.max_reassigns {
                    let message = format!(
                        "gave up after {reassigns} lease revocations \
                         (workers kept dying or stalling)"
                    );
                    self.cells[info.job] = Cell::Done {
                        document: Err(SimError::Fabric {
                            kind: "fabric".to_string(),
                            message: message.clone(),
                        }),
                        cache: CacheStatus::Bypass,
                        wall_seconds: 0.0,
                    };
                    self.done += 1;
                    self.stats.failed += 1;
                    obs.cell_failed(info.job, "fabric", &message);
                } else {
                    self.stats.reassigned += 1;
                    self.cells[info.job] = Cell::Pending {
                        attempt,
                        reassigns,
                        not_before: now,
                    };
                    obs.reassign(info.job, reassigns);
                }
            }
            // Cell already done, or re-leased under a newer id.
            _ => {}
        }
    }

    /// Revoke every lease a session holds (disconnect, garbage, idle).
    fn revoke_session(
        &mut self,
        session: u64,
        now: Instant,
        options: &FabricOptions,
        obs: &FabricObserver,
    ) {
        let held: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, info)| info.session == session)
            .map(|(&lease, _)| lease)
            .collect();
        for lease in held {
            self.revoke_lease(lease, now, options, false, obs);
        }
    }

    /// Revoke every lease whose deadline has passed.
    fn expire(&mut self, now: Instant, options: &FabricOptions, obs: &FabricObserver) {
        let expired: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, info)| info.deadline <= now)
            .map(|(&lease, _)| lease)
            .collect();
        for lease in expired {
            self.stats.expired += 1;
            self.revoke_lease(lease, now, options, true, obs);
        }
    }

    /// Tear down into submission-order outcomes. Must only be called
    /// when [`FabricState::complete`].
    fn into_outcomes(self) -> (Vec<JobOutcome>, FabricStats) {
        let stats = self.stats;
        let outcomes = self
            .cells
            .into_iter()
            .enumerate()
            .map(|(index, cell)| match cell {
                Cell::Done {
                    document,
                    cache,
                    wall_seconds,
                } => JobOutcome {
                    index,
                    document,
                    cache,
                    wall_seconds,
                },
                _ => unreachable!("into_outcomes requires a complete grid"),
            })
            .collect();
        (outcomes, stats)
    }
}

/// The assembled run: submission-order outcomes, lifetime counters, and
/// the fleet-level observability the coordinator accumulated.
#[derive(Debug)]
pub struct FabricReport {
    /// One outcome per grid cell, in submission order.
    pub outcomes: Vec<JobOutcome>,
    /// Lifetime counters.
    pub stats: FabricStats,
    /// One report per worker session ever registered, in session order.
    pub workers: Vec<WorkerReport>,
    /// Grant → accepted-result latency per cell, in milliseconds.
    pub lease_latency_ms: Log2Histogram,
    /// Worker-reported wall milliseconds per accepted cell.
    pub cell_wall_ms: Log2Histogram,
    /// What the fabric event log accomplished, when one was attached.
    pub log: Option<LogSummary>,
    /// The rendered Chrome trace, when tracing was enabled.
    pub trace_json: Option<String>,
}

impl FabricReport {
    /// The fleet metrics document: a schema-2 JSON object under a
    /// `fabric` key, written by `--fabric-metrics`. Deliberately a
    /// *separate* document from the sweep's aggregate metrics, whose
    /// bytes must stay identical to an unobserved run.
    pub fn fabric_json(&self) -> String {
        let workers: Vec<String> = self
            .workers
            .iter()
            .map(|worker| {
                format!(
                    "{{\"session\":{},\"worker\":\"{}\",\"connected\":{},\"cells\":{},\
                     \"hits\":{},\"misses\":{},\"bypass\":{},\"nacks\":{},\"wall_ms\":{}}}",
                    worker.session,
                    escape_text(&worker.name),
                    worker.connected,
                    worker.cells,
                    worker.hits,
                    worker.misses,
                    worker.bypass,
                    worker.nacks,
                    log2hist_json(&worker.wall_ms)
                )
            })
            .collect();
        let log = match &self.log {
            Some(summary) => format!(
                "{{\"written\":{},\"dropped\":{}}}",
                summary.written, summary.dropped
            ),
            None => "null".to_string(),
        };
        format!(
            "{{\"schema\":2,\"kind\":\"fabric\",\"fabric\":{{\"cells\":{},\"done\":{},\
             \"failed\":{},\"wall_seconds\":{},\"workers_seen\":{},\"granted\":{},\
             \"expired\":{},\"reassigned\":{},\"retries\":{},\"stale_results\":{},\
             \"protocol_errors\":{},\"waits\":{},\"status_queries\":{},\"peak_inflight\":{},\
             \"lease_latency_ms\":{},\"cell_wall_ms\":{},\"log\":{log},\"workers\":[{}]}}}}",
            self.stats.cells,
            self.stats.cells - self.stats.failed,
            self.stats.failed,
            self.stats.wall_seconds,
            self.stats.workers_seen,
            self.stats.granted,
            self.stats.expired,
            self.stats.reassigned,
            self.stats.retries,
            self.stats.stale_results,
            self.stats.protocol_errors,
            self.stats.waits,
            self.stats.status_queries,
            self.stats.peak_inflight,
            log2hist_json(&self.lease_latency_ms),
            log2hist_json(&self.cell_wall_ms),
            workers.join(",")
        )
    }
}

/// A coordinator for one grid of jobs.
pub struct Coordinator {
    jobs: Vec<Job>,
    options: FabricOptions,
    state: Mutex<FabricState>,
    observer: FabricObserver,
}

/// How often blocked socket reads wake to check deadlines and
/// completion. Trades shutdown latency against wakeup churn.
const POLL: Duration = Duration::from_millis(50);

impl Coordinator {
    /// A coordinator that will shard `jobs` across connecting workers,
    /// with every observability channel off.
    pub fn new(jobs: Vec<Job>, options: FabricOptions) -> Coordinator {
        Coordinator::with_observer(jobs, options, FabricObserver::off())
    }

    /// A coordinator reporting through `observer` (event log, Chrome
    /// trace, live progress — whatever channels it has enabled).
    pub fn with_observer(
        jobs: Vec<Job>,
        options: FabricOptions,
        observer: FabricObserver,
    ) -> Coordinator {
        let state = Mutex::new(FabricState::new(jobs.len(), Instant::now()));
        Coordinator {
            jobs,
            options,
            state,
            observer,
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, FabricState> {
        self.state.lock().expect("fabric state lock")
    }

    /// Run the fabric to completion: accept worker and single-job
    /// connections on `listener` until every cell is done, then
    /// assemble.
    ///
    /// Plain `cpe serve` requests arriving on the same listener are
    /// answered by `server`; a `{"cmd":"shutdown"}` on such a connection
    /// closes *that connection only* — a stray client must not be able
    /// to kill a running sweep.
    ///
    /// # Errors
    ///
    /// On listener I/O failure. Per-connection failures revoke that
    /// connection's leases and never fail the run.
    pub fn run(&self, listener: TcpListener, server: &Server) -> std::io::Result<FabricReport> {
        let started = Instant::now();
        self.observer.sweep_start(self.jobs.len());
        listener.set_nonblocking(true)?;
        let complete = AtomicBool::new(false);
        std::thread::scope(|scope| -> std::io::Result<()> {
            loop {
                {
                    let mut state = self.locked();
                    state.expire(Instant::now(), &self.options, &self.observer);
                    if state.complete() {
                        complete.store(true, Ordering::Relaxed);
                        return Ok(());
                    }
                }
                match listener.accept() {
                    Ok((stream, _addr)) => {
                        let complete = &complete;
                        scope.spawn(move || {
                            let _ = self.handle_connection(stream, server, complete);
                        });
                    }
                    Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(15));
                    }
                    Err(error) => {
                        complete.store(true, Ordering::Relaxed);
                        return Err(error);
                    }
                }
            }
        })?;
        let mut state = self.locked();
        state.stats.wall_seconds = started.elapsed().as_secs_f64();
        let mut drained = std::mem::replace(&mut *state, FabricState::new(0, Instant::now()));
        drop(state);
        let workers: Vec<WorkerReport> = drained
            .workers
            .drain(..)
            .enumerate()
            .map(|(index, slot)| WorkerReport {
                session: index as u64 + 1,
                name: slot.name,
                connected: slot.connected,
                cells: slot.cells,
                hits: slot.hits,
                misses: slot.misses,
                bypass: slot.bypass,
                nacks: slot.nacks,
                wall_ms: slot.wall_ms,
            })
            .collect();
        let lease_latency_ms =
            std::mem::replace(&mut drained.lease_latency_ms, Log2Histogram::new());
        let cell_wall_ms = std::mem::replace(&mut drained.cell_wall_ms, Log2Histogram::new());
        let (outcomes, stats) = drained.into_outcomes();
        self.observer
            .sweep_done(stats.cells - stats.failed, stats.failed);
        let (log, trace_json) = self.observer.finish();
        Ok(FabricReport {
            outcomes,
            stats,
            workers,
            lease_latency_ms,
            cell_wall_ms,
            log,
            trace_json,
        })
    }

    /// Dispatch one connection by its first line: a fabric `hello`
    /// starts a worker session, anything else is served as a plain
    /// single-job protocol stream.
    fn handle_connection(
        &self,
        stream: TcpStream,
        server: &Server,
        complete: &AtomicBool,
    ) -> std::io::Result<()> {
        stream.set_read_timeout(Some(POLL))?;
        let mut reader = LineReader::new(stream.try_clone()?, self.options.max_line_bytes);
        let mut writer = BufWriter::new(stream);
        let opened = Instant::now();
        let first = loop {
            match reader.poll_line()? {
                LineEvent::Line(line) => break line,
                LineEvent::Idle => {
                    if complete.load(Ordering::Relaxed)
                        || opened.elapsed() >= self.options.idle_timeout
                    {
                        return Ok(());
                    }
                }
                LineEvent::Eof => return Ok(()),
                LineEvent::TooLong => {
                    return self.refuse(&mut writer, "first line exceeds the frame cap")
                }
            }
        };
        match WorkerFrame::parse(&first) {
            Ok(WorkerFrame::Hello { fabric, worker }) => {
                self.worker_session(&mut reader, &mut writer, fabric, &worker, complete)
            }
            Ok(WorkerFrame::Status { fabric }) => self.answer_status(&mut writer, fabric),
            _ => server
                .serve_guarded(&mut reader, &mut writer, complete, Some(first))
                .map(|_| ()),
        }
    }

    /// Answer one live status query, then close the connection.
    fn answer_status(&self, writer: &mut impl Write, fabric: u64) -> std::io::Result<()> {
        if fabric != u64::from(FABRIC_SCHEMA) {
            return self.refuse(
                writer,
                &format!(
                    "fabric protocol {fabric} unsupported \
                     (this coordinator speaks {FABRIC_SCHEMA})"
                ),
            );
        }
        let body = {
            let mut state = self.locked();
            state.stats.status_queries += 1;
            state.snapshot(Instant::now(), self.observer.elapsed_ms())
        };
        self.observer.status_query();
        writeln!(writer, "{}", CoordinatorFrame::Status(body).render())?;
        writer.flush()
    }

    fn refuse(&self, writer: &mut impl Write, message: &str) -> std::io::Result<()> {
        self.locked().stats.protocol_errors += 1;
        // Connection-level refusals have no registered session; 0 marks
        // them in the event log.
        self.observer.protocol_error(0, message);
        let frame = CoordinatorFrame::Error {
            message: message.to_string(),
        };
        writeln!(writer, "{}", frame.render())?;
        writer.flush()
    }

    /// One worker session, hello through drain. Leases the session
    /// still holds when it ends — for any reason — are revoked.
    fn worker_session(
        &self,
        reader: &mut LineReader<TcpStream>,
        writer: &mut BufWriter<TcpStream>,
        fabric: u64,
        worker: &str,
        complete: &AtomicBool,
    ) -> std::io::Result<()> {
        if fabric != u64::from(FABRIC_SCHEMA) {
            return self.refuse(
                writer,
                &format!("fabric protocol {fabric} unsupported (this coordinator speaks {FABRIC_SCHEMA})"),
            );
        }
        let session = self
            .locked()
            .register_session(worker, Instant::now(), &self.observer);
        let ack = CoordinatorFrame::HelloAck {
            fabric: u64::from(FABRIC_SCHEMA),
            session,
            heartbeat_ms: self.options.heartbeat.as_millis().max(1) as u64,
        };
        writeln!(writer, "{}", ack.render())?;
        writer.flush()?;
        let outcome = self.worker_loop(reader, writer, session, complete);
        // Whatever ended the session, its leases go back to the pool.
        {
            let mut state = self.locked();
            state.revoke_session(session, Instant::now(), &self.options, &self.observer);
            state.session_closed(session);
        }
        self.observer.worker_disconnect(session, worker);
        outcome
    }

    fn worker_loop(
        &self,
        reader: &mut LineReader<TcpStream>,
        writer: &mut BufWriter<TcpStream>,
        session: u64,
        complete: &AtomicBool,
    ) -> std::io::Result<()> {
        let mut last_activity = Instant::now();
        loop {
            match reader.poll_line()? {
                LineEvent::Line(line) => {
                    last_activity = Instant::now();
                    let frame = match WorkerFrame::parse(&line) {
                        Ok(frame) => frame,
                        Err(message) => {
                            return self.refuse(writer, &format!("bad frame: {message}"));
                        }
                    };
                    match frame {
                        WorkerFrame::Ready => {
                            let reply = self.locked().grant(
                                session,
                                Instant::now(),
                                &self.options,
                                &self.jobs,
                                &self.observer,
                            );
                            let drain = matches!(reply, CoordinatorFrame::Drain);
                            writeln!(writer, "{}", reply.render())?;
                            writer.flush()?;
                            if drain {
                                return Ok(());
                            }
                        }
                        WorkerFrame::Heartbeat { lease } => {
                            self.locked().heartbeat(
                                lease,
                                session,
                                Instant::now(),
                                &self.options,
                                &self.observer,
                            );
                        }
                        WorkerFrame::Result {
                            lease,
                            cache,
                            wall_seconds,
                            document,
                        } => {
                            let cache =
                                CacheStatus::from_label(&cache).unwrap_or(CacheStatus::Bypass);
                            self.locked().result(
                                lease,
                                session,
                                document,
                                cache,
                                wall_seconds,
                                Instant::now(),
                                &self.observer,
                            );
                        }
                        WorkerFrame::Nack {
                            lease,
                            kind,
                            message,
                        } => {
                            self.locked().nack(
                                lease,
                                session,
                                &kind,
                                &message,
                                Instant::now(),
                                &self.options,
                                &self.observer,
                            );
                        }
                        WorkerFrame::Hello { .. } => {
                            return self.refuse(writer, "duplicate hello");
                        }
                        WorkerFrame::Status { .. } => {
                            return self.refuse(writer, "status on a worker session");
                        }
                    }
                }
                LineEvent::Idle => {
                    if complete.load(Ordering::Relaxed) {
                        writeln!(writer, "{}", CoordinatorFrame::Drain.render())?;
                        writer.flush()?;
                        return Ok(());
                    }
                    // Deadline expiry is handled centrally by the accept
                    // loop; this connection only polices its own silence.
                    if last_activity.elapsed() >= self.options.idle_timeout {
                        return self.refuse(writer, "idle timeout");
                    }
                }
                LineEvent::TooLong => {
                    return self.refuse(writer, "frame exceeds the line cap");
                }
                LineEvent::Eof => return Ok(()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpe_core::SimConfig;
    use cpe_workloads::{Scale, Workload};

    fn jobs(n: usize) -> Vec<Job> {
        (0..n)
            .map(|_| Job {
                config: SimConfig::dual_port(),
                workload: Workload::Sort,
                scale: Scale::Test,
                max_insts: Some(1_000),
                backend: cpe_core::BackendKind::Direct,
            })
            .collect()
    }

    fn options() -> FabricOptions {
        FabricOptions {
            max_retries: 1,
            max_reassigns: 2,
            max_inflight: 2,
            backoff_base: Duration::from_millis(10),
            ..FabricOptions::default()
        }
    }

    fn lease_id(frame: &CoordinatorFrame) -> u64 {
        match frame {
            CoordinatorFrame::Lease { lease, .. } => *lease,
            other => panic!("expected a lease, got {other:?}"),
        }
    }

    #[test]
    fn grants_respect_the_inflight_bound_and_drain_when_done() {
        let jobs = jobs(3);
        let options = options();
        let obs = FabricObserver::off();
        let now = Instant::now();
        let mut state = FabricState::new(jobs.len(), now);
        let a = state.grant(1, now, &options, &jobs, &obs);
        let b = state.grant(1, now, &options, &jobs, &obs);
        // max_inflight = 2: the third ready gets backpressure.
        let c = state.grant(2, now, &options, &jobs, &obs);
        assert!(matches!(c, CoordinatorFrame::Wait { .. }), "{c:?}");
        assert_eq!(state.stats.waits, 1);
        assert_eq!(state.stats.peak_inflight, 2);
        state.result(
            lease_id(&a),
            1,
            "{\"a\":1}".into(),
            CacheStatus::Miss,
            0.1,
            now,
            &obs,
        );
        state.result(
            lease_id(&b),
            1,
            "{\"b\":1}".into(),
            CacheStatus::Miss,
            0.1,
            now,
            &obs,
        );
        let c = state.grant(2, now, &options, &jobs, &obs);
        state.result(
            lease_id(&c),
            2,
            "{\"c\":1}".into(),
            CacheStatus::Hit,
            0.0,
            now,
            &obs,
        );
        assert!(state.complete());
        assert!(matches!(
            state.grant(1, now, &options, &jobs, &obs),
            CoordinatorFrame::Drain
        ));
        let (outcomes, stats) = state.into_outcomes();
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0].document.as_deref().unwrap(), "{\"a\":1}");
        assert_eq!(outcomes[2].cache, CacheStatus::Hit);
        assert_eq!(stats.granted, 3);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn expired_leases_are_reassigned_and_budget_exhaustion_fails_the_cell() {
        let jobs = jobs(1);
        let options = options();
        let obs = FabricObserver::off();
        let mut now = Instant::now();
        let mut state = FabricState::new(jobs.len(), now);
        for round in 0..3 {
            let lease = lease_id(&state.grant(1, now, &options, &jobs, &obs));
            // Heartbeat keeps it alive across one deadline...
            now += options.lease_ttl / 2;
            state.heartbeat(lease, 1, now, &options, &obs);
            state.expire(now, &options, &obs);
            assert_eq!(state.leases.len(), 1, "round {round} heartbeat kept it");
            // ...but silence past the refreshed deadline revokes it.
            now += options.lease_ttl + Duration::from_millis(1);
            state.expire(now, &options, &obs);
            assert!(state.leases.is_empty(), "round {round} revoked");
        }
        // max_reassigns = 2: the third revocation exhausts the budget.
        assert!(state.complete());
        assert_eq!(state.stats.expired, 3);
        assert_eq!(state.stats.reassigned, 2);
        let (outcomes, stats) = state.into_outcomes();
        let error = outcomes[0].document.as_ref().unwrap_err();
        assert_eq!(error.kind(), "fabric");
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn nacks_retry_with_backoff_then_fail_with_the_remote_kind() {
        let jobs = jobs(1);
        let options = options();
        let obs = FabricObserver::off();
        let now = Instant::now();
        let mut state = FabricState::new(jobs.len(), now);
        let lease = lease_id(&state.grant(1, now, &options, &jobs, &obs));
        state.nack(lease, 1, "watchdog", "no commit", now, &options, &obs);
        assert_eq!(state.stats.retries, 1);
        // The retry backs off: an immediate ready sees wait, not a lease.
        assert!(matches!(
            state.grant(1, now, &options, &jobs, &obs),
            CoordinatorFrame::Wait { .. }
        ));
        let later = now + backoff(&options, 0, 1) + Duration::from_millis(1);
        let lease = lease_id(&state.grant(1, later, &options, &jobs, &obs));
        // max_retries = 1: the second nack is terminal, kind preserved.
        state.nack(lease, 1, "watchdog", "no commit", later, &options, &obs);
        assert!(state.complete());
        let (outcomes, _) = state.into_outcomes();
        let error = outcomes[0].document.as_ref().unwrap_err();
        assert_eq!(error.kind(), "watchdog");
        assert!(error.to_string().contains("2 attempt(s)"), "{error}");
    }

    #[test]
    fn worker_loss_revokes_all_its_leases_and_stale_results_still_land() {
        let jobs = jobs(2);
        let options = options();
        let obs = FabricObserver::off();
        let now = Instant::now();
        let mut state = FabricState::new(jobs.len(), now);
        let a = lease_id(&state.grant(7, now, &options, &jobs, &obs));
        let b = lease_id(&state.grant(7, now, &options, &jobs, &obs));
        state.revoke_session(7, now, &options, &obs);
        assert_eq!(state.stats.reassigned, 2);
        assert!(state.leases.is_empty());
        // The "dead" worker was merely slow: its results still count.
        state.result(
            a,
            7,
            "{\"late\":1}".into(),
            CacheStatus::Miss,
            0.5,
            now,
            &obs,
        );
        assert_eq!(state.stats.stale_results, 1);
        assert_eq!(state.done, 1);
        // The second cell was re-granted and completed elsewhere first;
        // the stale duplicate is ignored.
        let b2 = lease_id(&state.grant(8, now, &options, &jobs, &obs));
        state.result(
            b2,
            8,
            "{\"fresh\":1}".into(),
            CacheStatus::Miss,
            0.1,
            now,
            &obs,
        );
        state.result(
            b,
            7,
            "{\"late\":2}".into(),
            CacheStatus::Miss,
            0.9,
            now,
            &obs,
        );
        assert!(state.complete());
        let (outcomes, _) = state.into_outcomes();
        assert_eq!(outcomes[1].document.as_deref().unwrap(), "{\"fresh\":1}");
    }

    #[test]
    fn snapshots_report_the_grid_and_the_fleet() {
        let jobs = jobs(4);
        let options = options();
        let obs = FabricObserver::off();
        let now = Instant::now();
        let mut state = FabricState::new(jobs.len(), now);
        let w1 = state.register_session("alpha", now, &obs);
        let w2 = state.register_session("beta", now, &obs);
        assert_eq!((w1, w2), (1, 2));
        let a = lease_id(&state.grant(w1, now, &options, &jobs, &obs));
        let _b = lease_id(&state.grant(w2, now, &options, &jobs, &obs));
        state.result(a, w1, "{\"a\":1}".into(), CacheStatus::Hit, 0.2, now, &obs);
        // A nack sends one cell into backoff.
        let c = lease_id(&state.grant(w2, now, &options, &jobs, &obs));
        state.nack(c, w2, "watchdog", "no commit", now, &options, &obs);
        state.session_closed(w2);
        let later = now + Duration::from_millis(7);
        let body = state.snapshot(later, 123);
        assert_eq!(body.elapsed_ms, 123);
        assert_eq!(body.cells, 4);
        assert_eq!(body.done, 1);
        assert_eq!(body.failed, 0);
        assert_eq!(body.leased, 1);
        assert_eq!(body.queued, 1, "the never-touched cell");
        assert_eq!(body.backoff, 1, "the nacked cell waits out its backoff");
        assert_eq!(body.workers.len(), 2);
        assert_eq!(body.workers[0].worker, "alpha");
        assert!(body.workers[0].connected);
        assert_eq!(body.workers[0].cells, 1);
        assert_eq!(body.workers[0].hits, 1);
        assert!(!body.workers[1].connected);
        assert_eq!(body.workers[1].nacks, 1);
        assert!(body.workers[1].last_seen_ms >= 7);
    }

    #[test]
    fn backoff_grows_exponentially_with_deterministic_jitter() {
        let options = options();
        let a1 = backoff(&options, 3, 1);
        assert_eq!(a1, backoff(&options, 3, 1), "jitter is deterministic");
        assert!(backoff(&options, 3, 4) >= backoff(&options, 3, 1) * 4);
        // The cap keeps attempt numbers from overflowing the shift.
        let _ = backoff(&options, 3, 40);
    }
}
