//! The shared recording store behind the replay backend.
//!
//! A replay sweep must record each distinct `(workload, scale,
//! max_insts)` tuple **exactly once** and replay it for every
//! configuration cell — that is the backend's whole point. [`TraceStore`]
//! is that guarantee: a thread-safe map from tuple to shared
//! [`RecordedWorkload`], populated up front by
//! [`TraceStore::record_all`] before any cell is scheduled, and consumed
//! from the worker threads by [`TraceStore::get`]. The recorded/reused
//! counters feed the sweep footer's `trace:` segment — observability
//! only, never the results.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use cpe_core::RecordedWorkload;
use cpe_workloads::{Scale, Workload};

use crate::job::Job;

type TraceKey = (Workload, Scale, Option<u64>);

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<TraceKey, Arc<RecordedWorkload>>,
    recorded: u64,
    reused: u64,
}

/// Recorded traces shared across the cells of one replay run.
#[derive(Debug, Default)]
pub struct TraceStore {
    inner: Mutex<Inner>,
}

impl TraceStore {
    /// An empty store.
    pub fn new() -> TraceStore {
        TraceStore::default()
    }

    fn key(job: &Job) -> TraceKey {
        (job.workload, job.scale, job.max_insts)
    }

    /// Record every distinct `(workload, scale, max_insts)` tuple in
    /// `jobs` that is not already in the store, in job order. Returns how
    /// many recordings this call made.
    pub fn record_all(&self, jobs: &[Job]) -> u64 {
        let mut made = 0;
        for job in jobs {
            let key = TraceStore::key(job);
            // Recording outside the lock is tempting, but the pre-record
            // pass is serial by design (one recording per tuple, before
            // scheduling); holding the lock keeps `get` racing a
            // concurrent `record_all` correct.
            let mut guard = self.inner.lock().expect("trace store lock");
            let inner = &mut *guard;
            if let Entry::Vacant(slot) = inner.map.entry(key) {
                let recorded = RecordedWorkload::record(job.workload, job.scale, job.max_insts);
                slot.insert(Arc::new(recorded));
                inner.recorded += 1;
                made += 1;
            }
        }
        made
    }

    /// The recording for `job`'s tuple, recording it first if the store
    /// does not hold it yet. A pre-populated store (see
    /// [`TraceStore::record_all`]) makes every call a reuse.
    pub fn get(&self, job: &Job) -> Arc<RecordedWorkload> {
        let key = TraceStore::key(job);
        let mut inner = self.inner.lock().expect("trace store lock");
        if let Some(recorded) = inner.map.get(&key) {
            let recorded = Arc::clone(recorded);
            inner.reused += 1;
            return recorded;
        }
        let recorded = Arc::new(RecordedWorkload::record(
            job.workload,
            job.scale,
            job.max_insts,
        ));
        inner.map.insert(key, Arc::clone(&recorded));
        inner.recorded += 1;
        recorded
    }

    /// `(recorded, reused)`: how many recordings were made, and how many
    /// [`TraceStore::get`] calls were served from an existing one.
    pub fn counts(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("trace store lock");
        (inner.recorded, inner.reused)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpe_core::SimConfig;

    fn job(workload: Workload, max_insts: Option<u64>) -> Job {
        Job {
            config: SimConfig::dual_port(),
            workload,
            scale: Scale::Test,
            max_insts,
            backend: cpe_core::BackendKind::Replay,
        }
    }

    #[test]
    fn record_all_records_each_tuple_exactly_once() {
        let store = TraceStore::new();
        let jobs = vec![
            job(Workload::Sort, Some(2_000)),
            job(Workload::Sort, Some(2_000)),
            job(Workload::Compress, Some(2_000)),
            job(Workload::Sort, Some(1_000)),
        ];
        assert_eq!(store.record_all(&jobs), 3, "distinct tuples only");
        assert_eq!(store.record_all(&jobs), 0, "idempotent");
        assert_eq!(store.counts(), (3, 0));
    }

    #[test]
    fn get_reuses_prerecorded_traces_and_shares_them() {
        let store = TraceStore::new();
        let jobs = vec![job(Workload::Sort, Some(2_000))];
        store.record_all(&jobs);
        let a = store.get(&jobs[0]);
        let b = store.get(&jobs[0]);
        assert!(Arc::ptr_eq(&a, &b), "one recording, shared");
        assert_eq!(store.counts(), (1, 2));
    }

    #[test]
    fn get_records_on_the_fly_when_not_prepopulated() {
        let store = TraceStore::new();
        let first = job(Workload::Compress, None);
        let recorded = store.get(&first);
        assert_eq!(store.counts(), (1, 0));
        assert!(
            recorded.trace().complete(),
            "uncapped recording runs to halt"
        );
        store.get(&first);
        assert_eq!(store.counts(), (1, 1));
    }
}
