//! Parallel execution of simulation jobs: a work-stealing scheduler, a
//! content-addressed result cache, and a batch-job server.
//!
//! The simulator itself is deliberately single-threaded and
//! deterministic; what *is* parallel is the experiment space around it —
//! configurations × workloads grids, benchmark suites, batch requests.
//! This crate supplies the execution layer those front ends share:
//!
//! - [`scheduler`]: dependency-free work stealing over `std::thread`,
//!   with results returned in submission order so aggregates are
//!   independent of worker count.
//! - [`cache`]: an on-disk result cache addressed by an FNV-1a hash of
//!   the canonical (key-sorted) configuration JSON plus workload, scale,
//!   instruction window, and schema versions. A cache hit returns the
//!   byte-identical schema-stamped metrics document a fresh run would produce.
//! - [`job`]: the `(SimConfig, workload)` unit of work with panic
//!   isolation and hoisted config validation.
//! - [`sweep`]: the cached, parallel grid behind `cpe sweep`.
//! - [`serve`]: the line-delimited JSON job protocol behind `cpe serve`.
//! - [`protocol`], [`coordinator`], [`worker`]: the fault-tolerant
//!   distributed sweep fabric — leases, heartbeats, retry and
//!   reassignment — behind `cpe sweep --coordinator` / `cpe worker`.
//! - [`observe`]: fleet observability for that fabric — the bounded
//!   JSONL event log, Chrome trace export, live progress line, and the
//!   `cpe status` client. Stderr/side-file only, never the results.
//! - [`chaos`]: the fault-injection harness that proves the fabric's
//!   byte-identity promise under worker death and protocol abuse.
//!
//! The layer's core promise, pinned by
//! `crates/exec/tests/parallel_matches_serial.rs`: for any worker count
//! and any cache state, a sweep's aggregate table and metrics document
//! are **byte-identical** to the serial, uncached run's.

pub mod cache;
pub mod chaos;
pub mod coordinator;
pub mod job;
pub mod observe;
pub mod protocol;
pub mod render;
pub mod scheduler;
pub mod serve;
pub mod sweep;
pub mod traces;
pub mod worker;

pub use cache::{canonical_json, fnv1a64, CacheKey, CacheStats, ResultCache, DEFAULT_CACHE_DIR};
pub use coordinator::{Coordinator, FabricOptions, FabricReport, FabricStats};
pub use job::{
    execute_jobs, named_config, preset_by_name, preset_configs, run_job, run_job_traced,
    scale_by_name, scale_name, workload_by_name, CacheStatus, Job, JobOutcome,
};
pub use observe::{
    query_status, EventLog, FabricObserver, LogSummary, SharedBuffer, SweepProgress, WorkerReport,
    DEFAULT_EVENT_CAPACITY,
};
pub use protocol::{config_fingerprint, JobSpec, StatusBody, WorkerStatus, FABRIC_SCHEMA};
pub use scheduler::{effective_workers, run_work_stealing, SchedulerStats};
pub use serve::{Reply, ServeDefaults, ServeLimits, Server};
pub use sweep::{SweepPlan, SweepResults, SweepStats};
pub use traces::TraceStore;
pub use worker::{run_worker, WorkerOptions, WorkerSummary};

use std::time::Instant;

use cpe_core::{BenchEntry, BenchReport, SimConfig, SimError, Simulator};
use cpe_workloads::{Scale, Workload};

/// Run the standard benchmark suite with the workloads spread across
/// `workers` threads.
///
/// Per-workload wall times measure each run on its own thread, and the
/// totals are the *sum* of those times (the suite's cost in CPU terms,
/// comparable to the serial report) — not the elapsed wall of the batch.
/// The simulated counters are identical to [`BenchReport::run`]'s; only
/// the timings reflect parallel execution.
///
/// # Errors
///
/// The first failing workload's [`SimError`], in suite order.
pub fn bench_parallel(
    name: &str,
    config: &SimConfig,
    max_insts: u64,
    workers: usize,
) -> Result<BenchReport, SimError> {
    config.validate()?;
    let (results, _) = run_work_stealing(&Workload::ALL, workers, |_, &workload| {
        let simulator = Simulator::try_new(config.clone())?;
        let started = Instant::now();
        let summary = simulator.try_run(workload, Scale::Test, Some(max_insts))?;
        let wall = started.elapsed().as_secs_f64();
        Ok::<BenchEntry, SimError>(BenchEntry {
            workload: workload.name().to_string(),
            cycles: summary.cycles,
            insts: summary.insts,
            ipc: summary.ipc,
            wall_seconds: wall,
            cycles_per_sec: if wall > 0.0 {
                summary.cycles as f64 / wall
            } else {
                0.0
            },
            insts_per_sec: if wall > 0.0 {
                summary.insts as f64 / wall
            } else {
                0.0
            },
            sched_events_peak: summary.raw.cpu.sched_events_peak.get(),
        })
    });
    let entries = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    let total_wall: f64 = entries.iter().map(|e| e.wall_seconds).sum();
    Ok(BenchReport::assemble(
        name,
        &config.name,
        max_insts,
        entries,
        total_wall,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_bench_matches_serial_simulated_counters() {
        let config = SimConfig::dual_port();
        let serial = BenchReport::run("b", &config, 1_000).expect("serial bench runs");
        let parallel = bench_parallel("b", &config, 1_000, 3).expect("parallel bench runs");
        assert_eq!(serial.entries.len(), parallel.entries.len());
        for (a, b) in serial.entries.iter().zip(&parallel.entries) {
            assert_eq!(a.workload, b.workload, "suite order is preserved");
            assert_eq!(a.cycles, b.cycles, "{}", a.workload);
            assert_eq!(a.insts, b.insts, "{}", a.workload);
        }
        assert_eq!(serial.total_cycles, parallel.total_cycles);
    }

    #[test]
    fn parallel_bench_rejects_invalid_configs_up_front() {
        let bad = SimConfig::dual_port().with_ports(0);
        let error = bench_parallel("b", &bad, 1_000, 2).expect_err("zero ports");
        assert_eq!(error.kind(), "config");
    }
}
