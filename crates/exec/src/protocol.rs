//! Wire protocol of the distributed sweep fabric.
//!
//! Everything on the wire is line-delimited JSON, one frame per line,
//! the same transport `cpe serve` already speaks — which is what lets a
//! coordinator answer plain single-job requests and fabric workers on
//! the same listener. Frames are versioned by [`FABRIC_SCHEMA`], carried
//! in both `hello` and `hello_ack`; a version mismatch is rejected at
//! the handshake, never discovered mid-sweep.
//!
//! Worker → coordinator:
//!
//! ```text
//! {"fabric":1,"type":"hello","worker":"w1"}
//! {"type":"ready"}                                 request a lease
//! {"type":"heartbeat","lease":7}                   still computing
//! {"type":"result","lease":7,"cache":"miss","wall_ms":41.2,"result":{…}}
//! {"type":"nack","lease":7,"kind":"watchdog","error":"…"}
//! ```
//!
//! Coordinator → worker:
//!
//! ```text
//! {"fabric":1,"type":"hello_ack","session":3,"heartbeat_ms":500}
//! {"type":"lease","lease":7,"job":{"config":"2-port","config_fnv":"…",
//!                                  "workload":"sort","scale":"test","max_insts":20000}}
//! {"type":"wait","millis":100}                     backpressure: ask again later
//! {"type":"drain"}                                 no more work; disconnect
//! {"type":"error","message":"…"}                   protocol violation; closing
//! ```
//!
//! Observer → coordinator (the `cpe status` endpoint — a one-shot
//! connection, answered mid-sweep and then closed):
//!
//! ```text
//! {"fabric":1,"type":"status"}                     query live fleet status
//! {"type":"status","elapsed_ms":1234,"cells":16,"done":9,"failed":0,
//!  "leased":4,"queued":3,"backoff":0,"workers":[{"session":1,…}]}
//! ```
//!
//! The module also supplies [`LineReader`], the guarded line reader
//! every socket in the suite uses: it enforces a maximum line length
//! (a frame that never ends must not grow an unbounded buffer) and
//! surfaces read timeouts as [`LineEvent::Idle`] while *retaining* any
//! partial line, so callers can poll for shutdown/expiry conditions
//! without tearing frames.

use std::io::Read;
use std::time::Duration;

use cpe_core::{config_json, JsonValue, SimError};

use crate::cache::{canonical_json, fnv1a64};
use crate::job::{named_config, scale_by_name, scale_name, workload_by_name, Job};
use crate::render::{
    bool_member, escape_text, f64_member, member, parse, render, text_member, u64_member,
};

/// Version of the fabric protocol itself; checked in both handshake
/// directions.
pub const FABRIC_SCHEMA: u32 = 1;

/// Default cap on one protocol line. Result frames embed a full schema-stamped
/// metrics document (tens of KiB); anything near this cap is garbage.
pub const DEFAULT_MAX_LINE_BYTES: usize = 1024 * 1024;

/// Default heartbeat cadence the coordinator advertises to workers.
pub const DEFAULT_HEARTBEAT: Duration = Duration::from_millis(500);

// ---------------------------------------------------------------------------
// Guarded line reading
// ---------------------------------------------------------------------------

/// What one [`LineReader::poll_line`] call produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineEvent {
    /// One complete line (without its terminator).
    Line(String),
    /// The underlying read timed out; any partial line is retained and
    /// the next poll resumes it.
    Idle,
    /// End of stream. A partial unterminated line at EOF is discarded —
    /// a torn frame is not a frame.
    Eof,
    /// The current line exceeded the cap without a terminator. The
    /// caller should answer an error frame and close; the reader cannot
    /// resynchronize.
    TooLong,
}

/// A line reader with a length cap and timeout-tolerant partial reads.
pub struct LineReader<R> {
    inner: R,
    buf: Vec<u8>,
    max: usize,
}

impl<R: Read> LineReader<R> {
    /// Wrap `inner`, capping lines at `max` bytes.
    pub fn new(inner: R, max: usize) -> LineReader<R> {
        LineReader {
            inner,
            buf: Vec::new(),
            max,
        }
    }

    fn take_line(&mut self) -> Option<String> {
        let pos = self.buf.iter().position(|&b| b == b'\n')?;
        let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
        line.pop(); // the newline
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        Some(String::from_utf8_lossy(&line).into_owned())
    }

    /// Pull the next complete line, reading as needed.
    ///
    /// # Errors
    ///
    /// On I/O failures other than timeouts (which surface as
    /// [`LineEvent::Idle`]).
    pub fn poll_line(&mut self) -> std::io::Result<LineEvent> {
        loop {
            if let Some(line) = self.take_line() {
                // The cap applies to complete lines too, not only to
                // unterminated ones that outgrow the buffer.
                if line.len() > self.max {
                    return Ok(LineEvent::TooLong);
                }
                return Ok(LineEvent::Line(line));
            }
            if self.buf.len() > self.max {
                return Ok(LineEvent::TooLong);
            }
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => return Ok(LineEvent::Eof),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(error)
                    if matches!(
                        error.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(LineEvent::Idle)
                }
                Err(error) if error.kind() == std::io::ErrorKind::Interrupted => {}
                Err(error) => return Err(error),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Job specification on the wire
// ---------------------------------------------------------------------------

/// One leased unit of work, shipped by name plus an integrity hash.
///
/// Fabric jobs travel as *named* configurations: the worker resolves the
/// name against its own binary and verifies that the FNV-1a64 of the
/// canonical configuration JSON matches `config_fnv` — so a version-skewed
/// worker whose `2-port` means something different nacks the lease with a
/// `config` error instead of silently computing the wrong machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// The configuration's report name.
    pub config: String,
    /// 16-hex-digit FNV-1a64 of the canonical configuration JSON.
    pub config_fnv: String,
    /// Workload name.
    pub workload: String,
    /// Scale name.
    pub scale: String,
    /// Committed-instruction window (`None` runs to completion).
    pub max_insts: Option<u64>,
}

/// The integrity hash of a configuration: FNV-1a64 over its canonical
/// (key-sorted) JSON encoding.
pub fn config_fingerprint(config: &cpe_core::SimConfig) -> String {
    let canonical =
        canonical_json(&config_json(config)).expect("config_json emits well-formed JSON");
    format!("{:016x}", fnv1a64(canonical.as_bytes()))
}

impl JobSpec {
    /// Encode a [`Job`] for the wire.
    pub fn from_job(job: &Job) -> JobSpec {
        JobSpec {
            config: job.config.name.clone(),
            config_fnv: config_fingerprint(&job.config),
            workload: job.workload.name().to_string(),
            scale: scale_name(job.scale).to_string(),
            max_insts: job.max_insts,
        }
    }

    /// Resolve the spec against this binary's named configurations and
    /// workloads, verifying the configuration fingerprint.
    ///
    /// # Errors
    ///
    /// [`SimError::Fabric`] (kind `config`) when the name is unknown or
    /// the fingerprint differs — a version-skewed worker must refuse the
    /// job, not compute the wrong machine.
    pub fn resolve(&self) -> Result<Job, SimError> {
        let fail = |message: String| SimError::Fabric {
            kind: "config".to_string(),
            message,
        };
        let config = named_config(&self.config)
            .ok_or_else(|| fail(format!("unknown config `{}`", self.config)))?;
        let fingerprint = config_fingerprint(&config);
        if fingerprint != self.config_fnv {
            return Err(fail(format!(
                "config `{}` fingerprint mismatch: coordinator {}, worker {fingerprint} \
                 (version skew?)",
                self.config, self.config_fnv
            )));
        }
        let workload = workload_by_name(&self.workload)
            .ok_or_else(|| fail(format!("unknown workload `{}`", self.workload)))?;
        let scale = scale_by_name(&self.scale)
            .ok_or_else(|| fail(format!("unknown scale `{}`", self.scale)))?;
        Ok(Job {
            config,
            workload,
            scale,
            max_insts: self.max_insts,
            // Fabric leases are always direct: the recording store never
            // crosses process boundaries, and a lone cell gains nothing
            // from record-then-replay.
            backend: cpe_core::BackendKind::Direct,
        })
    }

    fn render(&self) -> String {
        let window = match self.max_insts {
            Some(n) => n.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"config\":\"{}\",\"config_fnv\":\"{}\",\"workload\":\"{}\",\
             \"scale\":\"{}\",\"max_insts\":{window}}}",
            escape_text(&self.config),
            escape_text(&self.config_fnv),
            escape_text(&self.workload),
            escape_text(&self.scale)
        )
    }

    fn from_json(value: &JsonValue) -> Result<JobSpec, String> {
        let need = |key: &str| -> Result<String, String> {
            text_member(value, key)?
                .map(str::to_string)
                .ok_or_else(|| format!("lease job needs `{key}`"))
        };
        Ok(JobSpec {
            config: need("config")?,
            config_fnv: need("config_fnv")?,
            workload: need("workload")?,
            scale: need("scale")?,
            max_insts: u64_member(value, "max_insts")?,
        })
    }
}

// ---------------------------------------------------------------------------
// Worker → coordinator frames
// ---------------------------------------------------------------------------

/// One frame sent by a worker.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerFrame {
    /// Handshake: protocol version plus a display name.
    Hello {
        /// The worker's [`FABRIC_SCHEMA`].
        fabric: u64,
        /// Display name for logs and stats.
        worker: String,
    },
    /// Request a lease (sent after the handshake and after every
    /// result/nack).
    Ready,
    /// The leased job is still being computed.
    Heartbeat {
        /// The lease being refreshed.
        lease: u64,
    },
    /// The leased job's document.
    Result {
        /// The lease being fulfilled.
        lease: u64,
        /// Cache disposition on the worker (`hit`/`miss`/`bypass`).
        cache: String,
        /// Wall seconds the job cost the worker.
        wall_seconds: f64,
        /// The schema-stamped metrics document, re-rendered canonically.
        document: String,
    },
    /// The leased job failed on the worker.
    Nack {
        /// The lease being refused.
        lease: u64,
        /// The failure's kind label (`watchdog`, `panic`, `config`, …).
        kind: String,
        /// The failure message.
        message: String,
    },
    /// A live-status query (sent by `cpe status`, not by workers). Like
    /// `hello`, it carries the protocol version so a skewed observer is
    /// refused instead of misreading the reply.
    Status {
        /// The observer's [`FABRIC_SCHEMA`].
        fabric: u64,
    },
}

impl WorkerFrame {
    /// Render the frame as one protocol line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            WorkerFrame::Hello { fabric, worker } => format!(
                "{{\"fabric\":{fabric},\"type\":\"hello\",\"worker\":\"{}\"}}",
                escape_text(worker)
            ),
            WorkerFrame::Ready => "{\"type\":\"ready\"}".to_string(),
            WorkerFrame::Heartbeat { lease } => {
                format!("{{\"type\":\"heartbeat\",\"lease\":{lease}}}")
            }
            WorkerFrame::Result {
                lease,
                cache,
                wall_seconds,
                document,
            } => format!(
                "{{\"type\":\"result\",\"lease\":{lease},\"cache\":\"{}\",\
                 \"wall_ms\":{:.3},\"result\":{document}}}",
                escape_text(cache),
                wall_seconds * 1.0e3
            ),
            WorkerFrame::Nack {
                lease,
                kind,
                message,
            } => format!(
                "{{\"type\":\"nack\",\"lease\":{lease},\"kind\":\"{}\",\"error\":\"{}\"}}",
                escape_text(kind),
                escape_text(message)
            ),
            WorkerFrame::Status { fabric } => {
                format!("{{\"fabric\":{fabric},\"type\":\"status\"}}")
            }
        }
    }

    /// Parse one worker line.
    ///
    /// # Errors
    ///
    /// A one-line diagnosis for malformed JSON, unknown frame types, or
    /// missing fields — the coordinator treats any of these as a
    /// protocol violation and revokes the connection's leases.
    pub fn parse(line: &str) -> Result<WorkerFrame, String> {
        let value = parse(line)?;
        let frame_type = text_member(&value, "type")?.ok_or("frame needs a `type`")?;
        let lease_of = |value: &JsonValue| -> Result<u64, String> {
            u64_member(value, "lease")?.ok_or_else(|| "frame needs a `lease`".to_string())
        };
        match frame_type {
            "hello" => Ok(WorkerFrame::Hello {
                fabric: u64_member(&value, "fabric")?.unwrap_or(0),
                worker: text_member(&value, "worker")?
                    .unwrap_or("worker")
                    .to_string(),
            }),
            "ready" => Ok(WorkerFrame::Ready),
            "heartbeat" => Ok(WorkerFrame::Heartbeat {
                lease: lease_of(&value)?,
            }),
            "result" => {
                let document = member(&value, "result").ok_or("result frame needs `result`")?;
                Ok(WorkerFrame::Result {
                    lease: lease_of(&value)?,
                    cache: text_member(&value, "cache")?
                        .unwrap_or("bypass")
                        .to_string(),
                    wall_seconds: f64_member(&value, "wall_ms")?.unwrap_or(0.0) / 1.0e3,
                    document: render(document),
                })
            }
            "nack" => Ok(WorkerFrame::Nack {
                lease: lease_of(&value)?,
                kind: text_member(&value, "kind")?.unwrap_or("fabric").to_string(),
                message: text_member(&value, "error")?.unwrap_or("").to_string(),
            }),
            "status" => Ok(WorkerFrame::Status {
                fabric: u64_member(&value, "fabric")?.unwrap_or(0),
            }),
            other => Err(format!("unknown worker frame type `{other}`")),
        }
    }
}

// ---------------------------------------------------------------------------
// Live status
// ---------------------------------------------------------------------------

/// One worker session's live status as reported in a status reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStatus {
    /// The coordinator-assigned session id.
    pub session: u64,
    /// The worker's display name from its handshake.
    pub worker: String,
    /// Whether the session is still connected.
    pub connected: bool,
    /// Results this worker has landed so far.
    pub cells: u64,
    /// Of those, served from the worker's local cache.
    pub hits: u64,
    /// Computed and stored in the worker's cache.
    pub misses: u64,
    /// Computed with no cache attached.
    pub bypass: u64,
    /// Leases this worker has nacked.
    pub nacks: u64,
    /// Milliseconds since the coordinator last heard from this worker.
    pub last_seen_ms: u64,
}

impl WorkerStatus {
    fn render(&self) -> String {
        format!(
            "{{\"session\":{},\"worker\":\"{}\",\"connected\":{},\"cells\":{},\
             \"hits\":{},\"misses\":{},\"bypass\":{},\"nacks\":{},\"last_seen_ms\":{}}}",
            self.session,
            escape_text(&self.worker),
            self.connected,
            self.cells,
            self.hits,
            self.misses,
            self.bypass,
            self.nacks,
            self.last_seen_ms
        )
    }

    fn from_json(value: &JsonValue) -> Result<WorkerStatus, String> {
        let count = |key: &str| -> Result<u64, String> { Ok(u64_member(value, key)?.unwrap_or(0)) };
        Ok(WorkerStatus {
            session: count("session")?,
            worker: text_member(value, "worker")?
                .unwrap_or("worker")
                .to_string(),
            connected: bool_member(value, "connected")?.unwrap_or(false),
            cells: count("cells")?,
            hits: count("hits")?,
            misses: count("misses")?,
            bypass: count("bypass")?,
            nacks: count("nacks")?,
            last_seen_ms: count("last_seen_ms")?,
        })
    }
}

/// A coordinator's live answer to a status query: the grid's disposition
/// plus one [`WorkerStatus`] per session ever seen.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatusBody {
    /// Milliseconds since the sweep started.
    pub elapsed_ms: u64,
    /// Total grid cells.
    pub cells: u64,
    /// Cells finished successfully.
    pub done: u64,
    /// Cells that exhausted their retry/reassignment budgets.
    pub failed: u64,
    /// Cells currently leased out.
    pub leased: u64,
    /// Cells ready to lease now.
    pub queued: u64,
    /// Cells waiting out a retry backoff.
    pub backoff: u64,
    /// Every worker session seen so far, in session order.
    pub workers: Vec<WorkerStatus>,
}

impl StatusBody {
    fn render(&self) -> String {
        let workers: Vec<String> = self.workers.iter().map(WorkerStatus::render).collect();
        format!(
            "{{\"type\":\"status\",\"elapsed_ms\":{},\"cells\":{},\"done\":{},\"failed\":{},\
             \"leased\":{},\"queued\":{},\"backoff\":{},\"workers\":[{}]}}",
            self.elapsed_ms,
            self.cells,
            self.done,
            self.failed,
            self.leased,
            self.queued,
            self.backoff,
            workers.join(",")
        )
    }

    fn from_json(value: &JsonValue) -> Result<StatusBody, String> {
        let count = |key: &str| -> Result<u64, String> { Ok(u64_member(value, key)?.unwrap_or(0)) };
        let workers = match member(value, "workers") {
            Some(JsonValue::Array(items)) => items
                .iter()
                .map(WorkerStatus::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err("status `workers` must be an array".to_string()),
            None => Vec::new(),
        };
        Ok(StatusBody {
            elapsed_ms: count("elapsed_ms")?,
            cells: count("cells")?,
            done: count("done")?,
            failed: count("failed")?,
            leased: count("leased")?,
            queued: count("queued")?,
            backoff: count("backoff")?,
            workers,
        })
    }
}

// ---------------------------------------------------------------------------
// Coordinator → worker frames
// ---------------------------------------------------------------------------

/// One frame sent by the coordinator.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordinatorFrame {
    /// Handshake acknowledgement.
    HelloAck {
        /// The coordinator's [`FABRIC_SCHEMA`].
        fabric: u64,
        /// This connection's session id.
        session: u64,
        /// How often the worker must heartbeat while computing.
        heartbeat_ms: u64,
    },
    /// A granted lease.
    Lease {
        /// The lease id (unique per grant, never reused).
        lease: u64,
        /// The work.
        job: JobSpec,
    },
    /// No lease available right now (backpressure or backoff); ask again
    /// after `millis`.
    Wait {
        /// Suggested delay before the next `ready`.
        millis: u64,
    },
    /// The grid is complete (or the coordinator is shutting down); the
    /// worker should disconnect.
    Drain,
    /// Protocol violation; the coordinator is closing the connection.
    Error {
        /// What was violated.
        message: String,
    },
    /// Live fleet status, answering a [`WorkerFrame::Status`] query.
    Status(StatusBody),
}

impl CoordinatorFrame {
    /// Render the frame as one protocol line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            CoordinatorFrame::HelloAck {
                fabric,
                session,
                heartbeat_ms,
            } => format!(
                "{{\"fabric\":{fabric},\"type\":\"hello_ack\",\"session\":{session},\
                 \"heartbeat_ms\":{heartbeat_ms}}}"
            ),
            CoordinatorFrame::Lease { lease, job } => {
                format!(
                    "{{\"type\":\"lease\",\"lease\":{lease},\"job\":{}}}",
                    job.render()
                )
            }
            CoordinatorFrame::Wait { millis } => {
                format!("{{\"type\":\"wait\",\"millis\":{millis}}}")
            }
            CoordinatorFrame::Drain => "{\"type\":\"drain\"}".to_string(),
            CoordinatorFrame::Error { message } => {
                format!(
                    "{{\"type\":\"error\",\"message\":\"{}\"}}",
                    escape_text(message)
                )
            }
            CoordinatorFrame::Status(body) => body.render(),
        }
    }

    /// Parse one coordinator line.
    ///
    /// # Errors
    ///
    /// A one-line diagnosis; the worker treats any of these as fatal and
    /// disconnects.
    pub fn parse(line: &str) -> Result<CoordinatorFrame, String> {
        let value = parse(line)?;
        let frame_type = text_member(&value, "type")?.ok_or("frame needs a `type`")?;
        match frame_type {
            "hello_ack" => Ok(CoordinatorFrame::HelloAck {
                fabric: u64_member(&value, "fabric")?.unwrap_or(0),
                session: u64_member(&value, "session")?.unwrap_or(0),
                heartbeat_ms: u64_member(&value, "heartbeat_ms")?
                    .unwrap_or(DEFAULT_HEARTBEAT.as_millis() as u64),
            }),
            "lease" => Ok(CoordinatorFrame::Lease {
                lease: u64_member(&value, "lease")?.ok_or("lease frame needs `lease`")?,
                job: JobSpec::from_json(member(&value, "job").ok_or("lease frame needs `job`")?)?,
            }),
            "wait" => Ok(CoordinatorFrame::Wait {
                millis: u64_member(&value, "millis")?.unwrap_or(100),
            }),
            "drain" => Ok(CoordinatorFrame::Drain),
            "error" => Ok(CoordinatorFrame::Error {
                message: text_member(&value, "message")?.unwrap_or("").to_string(),
            }),
            "status" => Ok(CoordinatorFrame::Status(StatusBody::from_json(&value)?)),
            other => Err(format!("unknown coordinator frame type `{other}`")),
        }
    }
}

/// Whether a first protocol line is a fabric handshake — the dispatch
/// test that lets one listener serve both fabric workers and plain
/// single-job requests.
pub fn is_fabric_hello(line: &str) -> bool {
    matches!(WorkerFrame::parse(line), Ok(WorkerFrame::Hello { .. }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpe_core::SimConfig;
    use cpe_workloads::{Scale, Workload};

    fn job() -> Job {
        Job {
            config: SimConfig::dual_port(),
            workload: Workload::Sort,
            scale: Scale::Test,
            max_insts: Some(5_000),
            backend: cpe_core::BackendKind::Direct,
        }
    }

    #[test]
    fn worker_frames_round_trip() {
        let frames = [
            WorkerFrame::Hello {
                fabric: FABRIC_SCHEMA as u64,
                worker: "w\"1".to_string(),
            },
            WorkerFrame::Ready,
            WorkerFrame::Heartbeat { lease: 9 },
            WorkerFrame::Result {
                lease: 3,
                cache: "miss".to_string(),
                wall_seconds: 0.0413,
                document: "{\"schema\":3,\"summary\":{\"ipc\":1.5}}".to_string(),
            },
            WorkerFrame::Nack {
                lease: 4,
                kind: "watchdog".to_string(),
                message: "no commit for 100000 cycles".to_string(),
            },
            WorkerFrame::Status {
                fabric: FABRIC_SCHEMA as u64,
            },
        ];
        for frame in frames {
            let line = frame.render();
            assert!(!line.contains('\n'), "{line}");
            let parsed = WorkerFrame::parse(&line).expect(&line);
            match (&frame, &parsed) {
                // wall_ms survives only to 3 decimals; compare the rest.
                (
                    WorkerFrame::Result {
                        lease, document, ..
                    },
                    WorkerFrame::Result {
                        lease: lease2,
                        document: document2,
                        ..
                    },
                ) => {
                    assert_eq!(lease, lease2);
                    assert_eq!(document, document2);
                }
                _ => assert_eq!(frame, parsed),
            }
        }
    }

    #[test]
    fn coordinator_frames_round_trip() {
        let frames = [
            CoordinatorFrame::HelloAck {
                fabric: FABRIC_SCHEMA as u64,
                session: 2,
                heartbeat_ms: 500,
            },
            CoordinatorFrame::Lease {
                lease: 7,
                job: JobSpec::from_job(&job()),
            },
            CoordinatorFrame::Wait { millis: 120 },
            CoordinatorFrame::Drain,
            CoordinatorFrame::Error {
                message: "unknown frame".to_string(),
            },
            CoordinatorFrame::Status(StatusBody {
                elapsed_ms: 1_234,
                cells: 16,
                done: 9,
                failed: 1,
                leased: 3,
                queued: 2,
                backoff: 1,
                workers: vec![
                    WorkerStatus {
                        session: 1,
                        worker: "w\"1".to_string(),
                        connected: true,
                        cells: 5,
                        hits: 2,
                        misses: 3,
                        bypass: 0,
                        nacks: 0,
                        last_seen_ms: 12,
                    },
                    WorkerStatus {
                        session: 2,
                        worker: "w2".to_string(),
                        connected: false,
                        cells: 4,
                        hits: 0,
                        misses: 0,
                        bypass: 4,
                        nacks: 1,
                        last_seen_ms: 900,
                    },
                ],
            }),
        ];
        for frame in frames {
            let line = frame.render();
            assert_eq!(CoordinatorFrame::parse(&line).expect(&line), frame);
        }
    }

    #[test]
    fn empty_status_bodies_round_trip_and_reject_bad_workers() {
        let frame = CoordinatorFrame::Status(StatusBody::default());
        let line = frame.render();
        assert_eq!(CoordinatorFrame::parse(&line).expect(&line), frame);
        assert!(
            CoordinatorFrame::parse("{\"type\":\"status\",\"workers\":7}").is_err(),
            "non-array workers must be rejected"
        );
    }

    #[test]
    fn job_specs_resolve_back_to_the_same_job() {
        let original = job();
        let spec = JobSpec::from_job(&original);
        let resolved = spec.resolve().expect("dual_port resolves");
        assert_eq!(resolved.config, original.config);
        assert_eq!(resolved.workload.name(), original.workload.name());
        assert_eq!(resolved.max_insts, original.max_insts);
    }

    #[test]
    fn fingerprint_mismatch_and_unknown_names_are_config_errors() {
        let mut spec = JobSpec::from_job(&job());
        spec.config_fnv = "0000000000000000".to_string();
        let error = spec.resolve().expect_err("fingerprint mismatch");
        assert_eq!(error.kind(), "config");
        assert!(error.to_string().contains("version skew"), "{error}");

        let mut spec = JobSpec::from_job(&job());
        spec.config = "9-port imaginary".to_string();
        assert_eq!(spec.resolve().expect_err("unknown").kind(), "config");
    }

    #[test]
    fn garbage_and_unknown_frames_are_rejected() {
        assert!(WorkerFrame::parse("not json").is_err());
        assert!(WorkerFrame::parse("{\"type\":\"explode\"}").is_err());
        assert!(WorkerFrame::parse("{\"type\":\"heartbeat\"}").is_err());
        assert!(CoordinatorFrame::parse("{\"type\":\"lease\",\"lease\":1}").is_err());
        assert!(is_fabric_hello(
            "{\"fabric\":1,\"type\":\"hello\",\"worker\":\"w\"}"
        ));
        assert!(!is_fabric_hello("{\"workload\":\"sort\"}"));
        assert!(!is_fabric_hello("{\"cmd\":\"stats\"}"));
    }

    #[test]
    fn line_reader_splits_batches_and_caps_length() {
        let input = b"one\r\ntwo\nthree";
        let mut reader = LineReader::new(&input[..], 64);
        assert_eq!(reader.poll_line().unwrap(), LineEvent::Line("one".into()));
        assert_eq!(reader.poll_line().unwrap(), LineEvent::Line("two".into()));
        // Unterminated tail at EOF is a torn frame, not a frame.
        assert_eq!(reader.poll_line().unwrap(), LineEvent::Eof);

        let long = [b'x'; 200];
        let mut reader = LineReader::new(&long[..], 64);
        assert_eq!(reader.poll_line().unwrap(), LineEvent::TooLong);
    }

    #[test]
    fn line_reader_retains_partial_lines_across_timeouts() {
        /// A reader that yields its chunks interleaved with timeouts.
        struct Stutter {
            chunks: Vec<Vec<u8>>,
            timed_out: bool,
        }
        impl Read for Stutter {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                if !self.timed_out {
                    self.timed_out = true;
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                self.timed_out = false;
                match self.chunks.pop() {
                    None => Ok(0),
                    Some(chunk) => {
                        out[..chunk.len()].copy_from_slice(&chunk);
                        Ok(chunk.len())
                    }
                }
            }
        }
        let mut reader = LineReader::new(
            Stutter {
                chunks: vec![b"rld\n".to_vec(), b"hello wo".to_vec()],
                timed_out: false,
            },
            64,
        );
        assert_eq!(reader.poll_line().unwrap(), LineEvent::Idle);
        assert_eq!(reader.poll_line().unwrap(), LineEvent::Idle);
        assert_eq!(
            reader.poll_line().unwrap(),
            LineEvent::Line("hello world".into())
        );
        assert_eq!(reader.poll_line().unwrap(), LineEvent::Idle);
        assert_eq!(reader.poll_line().unwrap(), LineEvent::Eof);
    }
}
