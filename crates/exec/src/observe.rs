//! Fleet observability for the sweep fabric: the structured event log
//! behind `--fabric-log`, the Chrome trace builder behind
//! `--fabric-trace`, the live progress line, and the `cpe status`
//! client.
//!
//! The design constraint everything here answers to is the fabric's
//! byte-identity promise: observing a sweep must never change its
//! output, and must never block it either. Concretely:
//!
//! * Every observation goes to **stderr or a side file**, never stdout —
//!   the table and the metrics document stay byte-identical to an
//!   unobserved run (pinned by `crates/exec/tests/fabric_chaos.rs`).
//! * The event log is a **bounded, drop-counting** writer: the
//!   coordinator hands each rendered line to a fixed-capacity channel
//!   with `try_send` and moves on. A slow disk drops events and counts
//!   them — the same contract the `cpe-trace` ring buffer keeps for
//!   per-run events — instead of stalling lease grants.
//! * When nothing is enabled, [`FabricObserver::off`] short-circuits
//!   before rendering a single byte.
//!
//! The JSONL event schema is documented in `docs/OBSERVABILITY.md`
//! ("Fleet observability"); `crates/exec/tests/fabric_chaos.rs` pins
//! the invariant that the event counts reconcile with the
//! [`FabricStats`](crate::coordinator::FabricStats) counters.

use std::collections::HashMap;
use std::io::{BufWriter, IsTerminal, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cpe_stats::Log2Histogram;

use crate::job::CacheStatus;
use crate::protocol::{
    CoordinatorFrame, LineEvent, LineReader, StatusBody, WorkerFrame, DEFAULT_MAX_LINE_BYTES,
};
use crate::render::escape_text;

/// Default bound on queued-but-unwritten fabric log events. Generous for
/// any real sweep; small enough that a wedged disk costs ~1 MiB, not the
/// coordinator's liveness.
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

// ---------------------------------------------------------------------------
// The bounded, drop-counting event log
// ---------------------------------------------------------------------------

/// What an [`EventLog`] accomplished, reported after the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LogSummary {
    /// Lines actually written to the sink.
    pub written: u64,
    /// Events dropped: the queue was full (slow sink) or the sink
    /// failed mid-run. Dropped events are *counted*, never waited for.
    pub dropped: u64,
}

impl std::fmt::Display for LogSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} event(s) written, {} dropped",
            self.written, self.dropped
        )
    }
}

/// A shared in-memory sink for an [`EventLog`], used by tests and the
/// chaos harness to inspect the emitted lines after a run.
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl SharedBuffer {
    /// Everything written so far, lossily decoded.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().expect("shared buffer lock")).into_owned()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .expect("shared buffer lock")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A bounded JSONL writer that never blocks its producers.
///
/// Producers hand complete lines to [`EventLog::emit`]; a drain thread
/// writes them in arrival order. When the queue is full the line is
/// dropped and counted — the producer (the coordinator, holding its
/// state lock) is never stalled by the sink.
pub struct EventLog {
    sender: SyncSender<String>,
    accepted: AtomicU64,
    dropped: AtomicU64,
    drain: std::thread::JoinHandle<(u64, u64)>,
}

impl EventLog {
    /// Drain into `sink`, queueing at most `capacity` unwritten lines.
    pub fn to_writer(sink: impl Write + Send + 'static, capacity: usize) -> EventLog {
        let (sender, receiver) = sync_channel::<String>(capacity.max(1));
        let drain = std::thread::spawn(move || {
            let mut sink = sink;
            let mut written = 0u64;
            let mut lost = 0u64;
            while let Ok(line) = receiver.recv() {
                if writeln!(sink, "{line}").is_ok() {
                    written += 1;
                } else {
                    // The sink failed; drain the rest as losses so the
                    // summary still accounts for every accepted event.
                    lost += 1;
                    lost += receiver.iter().count() as u64;
                    break;
                }
            }
            let _ = sink.flush();
            (written, lost)
        });
        EventLog {
            sender,
            accepted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            drain,
        }
    }

    /// Drain into a newly created file at `path`.
    ///
    /// # Errors
    ///
    /// When the file cannot be created.
    pub fn create(path: &str, capacity: usize) -> Result<EventLog, String> {
        let file = std::fs::File::create(path)
            .map_err(|error| format!("cannot create `{path}`: {error}"))?;
        Ok(EventLog::to_writer(BufWriter::new(file), capacity))
    }

    /// Drain into a shared in-memory buffer (tests, chaos harness).
    pub fn to_buffer(capacity: usize) -> (EventLog, SharedBuffer) {
        let buffer = SharedBuffer::default();
        (EventLog::to_writer(buffer.clone(), capacity), buffer)
    }

    /// Queue one line, without blocking. A full queue drops the line and
    /// bumps the drop counter.
    pub fn emit(&self, line: String) {
        match self.sender.try_send(line) {
            Ok(()) => {
                self.accepted.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Events dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Close the queue, flush the sink, and account for every event.
    pub fn finish(self) -> LogSummary {
        let dropped = self.dropped.load(Ordering::Relaxed);
        drop(self.sender);
        let (written, lost) = self.drain.join().unwrap_or((0, 0));
        LogSummary {
            written,
            dropped: dropped + lost,
        }
    }
}

// ---------------------------------------------------------------------------
// Chrome trace_event export: one lane per worker, one span per attempt
// ---------------------------------------------------------------------------

/// Color-key a span category onto Catapult's reserved palette so the
/// timeline reads at a glance: green work, red faults.
fn span_color(cat: &str) -> &'static str {
    match cat {
        "hit" => "good",
        "miss" => "thread_state_running",
        "bypass" => "thread_state_runnable",
        "stale" => "yellow",
        "nack" => "bad",
        "expired" | "lost" => "terrible",
        _ => "grey",
    }
}

struct OpenSpan {
    session: u64,
    cell: usize,
    attempt: u32,
    label: String,
    start_us: u64,
}

struct ClosedSpan {
    session: u64,
    cell: usize,
    attempt: u32,
    label: String,
    cat: String,
    start_us: u64,
    dur_us: u64,
}

/// Accumulates one Chrome `trace_event` document for a whole sweep: one
/// lane (`tid`) per worker session, one `"ph":"X"` span per cell
/// attempt, color-keyed by how the attempt ended.
pub struct TraceBuilder {
    workers: Vec<(u64, String)>,
    open: HashMap<u64, OpenSpan>,
    closed: Vec<ClosedSpan>,
}

impl TraceBuilder {
    /// An empty trace.
    pub fn new() -> TraceBuilder {
        TraceBuilder {
            workers: Vec::new(),
            open: HashMap::new(),
            closed: Vec::new(),
        }
    }

    fn register_worker(&mut self, session: u64, name: &str) {
        self.workers.push((session, name.to_string()));
    }

    fn open(&mut self, lease: u64, session: u64, cell: usize, attempt: u32, label: &str, us: u64) {
        self.open.insert(
            lease,
            OpenSpan {
                session,
                cell,
                attempt,
                label: label.to_string(),
                start_us: us,
            },
        );
    }

    fn close(&mut self, lease: u64, cat: &str, us: u64) {
        if let Some(span) = self.open.remove(&lease) {
            self.closed.push(ClosedSpan {
                session: span.session,
                cell: span.cell,
                attempt: span.attempt,
                label: span.label,
                cat: cat.to_string(),
                start_us: span.start_us,
                dur_us: us.saturating_sub(span.start_us).max(1),
            });
        }
    }

    /// Render the trace, closing any still-open spans at `now_us`.
    fn render(mut self, now_us: u64) -> String {
        let leases: Vec<u64> = self.open.keys().copied().collect();
        for lease in leases {
            self.close(lease, "open", now_us);
        }
        self.closed
            .sort_by_key(|span| (span.session, span.start_us, span.cell));
        let mut events: Vec<String> = self
            .workers
            .iter()
            .map(|(session, name)| {
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{session},\
                     \"args\":{{\"name\":\"{} (session {session})\"}}}}",
                    escape_text(name)
                )
            })
            .collect();
        for span in &self.closed {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":0,\"tid\":{},\"cname\":\"{}\",\
                 \"args\":{{\"cell\":{},\"attempt\":{}}}}}",
                escape_text(&span.label),
                escape_text(&span.cat),
                span.start_us,
                span.dur_us,
                span.session,
                span_color(&span.cat),
                span.cell,
                span.attempt
            ));
        }
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}",
            events.join(",")
        )
    }
}

impl Default for TraceBuilder {
    fn default() -> TraceBuilder {
        TraceBuilder::new()
    }
}

// ---------------------------------------------------------------------------
// Live progress
// ---------------------------------------------------------------------------

/// A live sweep progress line on stderr. On a TTY it redraws in place
/// (throttled); otherwise it prints plain incremental lines at a slow
/// cadence, so logs stay readable and short runs stay silent.
///
/// All output goes to stderr: stdout byte-identity across observed and
/// unobserved runs is the fabric's contract, and progress is
/// observability, not output.
pub struct SweepProgress {
    total: usize,
    done: AtomicUsize,
    hits: AtomicUsize,
    misses: AtomicUsize,
    bypassed: AtomicUsize,
    failed: AtomicUsize,
    tty: bool,
    started: Instant,
    last_render_ms: AtomicU64,
}

impl SweepProgress {
    /// Progress over `total` cells, TTY-gated on stderr.
    pub fn auto(total: usize) -> SweepProgress {
        SweepProgress::with_tty(total, std::io::stderr().is_terminal())
    }

    /// Progress with an explicit TTY decision (tests).
    pub fn with_tty(total: usize, tty: bool) -> SweepProgress {
        SweepProgress {
            total,
            done: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            bypassed: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            tty,
            started: Instant::now(),
            last_render_ms: AtomicU64::new(0),
        }
    }

    /// Record one finished cell and redraw when due.
    pub fn cell_done(&self, cache: CacheStatus, failed: bool) {
        if failed {
            self.failed.fetch_add(1, Ordering::Relaxed);
        } else {
            match cache {
                CacheStatus::Hit => self.hits.fetch_add(1, Ordering::Relaxed),
                CacheStatus::Miss => self.misses.fetch_add(1, Ordering::Relaxed),
                CacheStatus::Bypass => self.bypassed.fetch_add(1, Ordering::Relaxed),
            };
        }
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        self.maybe_render(done);
    }

    fn line(&self, done: usize) -> String {
        format!(
            "sweep: {done}/{} cell(s) — {} hit(s), {} miss(es), {} uncached, {} failed ({:.1}s)",
            self.total,
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.bypassed.load(Ordering::Relaxed),
            self.failed.load(Ordering::Relaxed),
            self.started.elapsed().as_secs_f64()
        )
    }

    fn maybe_render(&self, done: usize) {
        // In-place redraws refresh fast; plain lines stay sparse so a
        // piped log is incremental, not spammed.
        let interval_ms: u64 = if self.tty { 100 } else { 2_000 };
        let elapsed_ms = self.started.elapsed().as_millis() as u64;
        let last = self.last_render_ms.load(Ordering::Relaxed);
        let due =
            elapsed_ms.saturating_sub(last) >= interval_ms || (self.tty && done == self.total);
        if !due {
            return;
        }
        // One renderer at a time; a lost race just skips this redraw.
        if self
            .last_render_ms
            .compare_exchange(last, elapsed_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        if self.tty {
            eprint!("\r{}\x1b[K", self.line(done));
        } else {
            eprintln!("{}", self.line(done));
        }
    }

    /// Clear the in-place line so the stats footer starts clean.
    pub fn finish(&self) {
        if self.tty {
            eprint!("\r\x1b[K");
        }
    }
}

// ---------------------------------------------------------------------------
// Per-worker fleet report
// ---------------------------------------------------------------------------

/// One worker session's contribution to a fabric sweep, reported in the
/// stderr footer and the `fabric` metrics document.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// The session id the coordinator assigned.
    pub session: u64,
    /// The worker's display name from its handshake.
    pub name: String,
    /// Whether the session was still connected at assembly.
    pub connected: bool,
    /// Results this worker landed (including stale and duplicate ones).
    pub cells: u64,
    /// Of those, served from the worker's local cache.
    pub hits: u64,
    /// Computed and stored in the worker's cache.
    pub misses: u64,
    /// Computed with no cache attached.
    pub bypass: u64,
    /// Leases this worker nacked.
    pub nacks: u64,
    /// Worker-reported wall milliseconds per landed cell.
    pub wall_ms: Log2Histogram,
}

impl WorkerReport {
    /// Cache hit rate over this worker's cache-visible cells.
    pub fn hit_rate(&self) -> f64 {
        let through_cache = self.hits + self.misses;
        if through_cache == 0 {
            0.0
        } else {
            self.hits as f64 / through_cache as f64
        }
    }
}

impl std::fmt::Display for WorkerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker {} (session {}): {} cell(s) — {} hit(s), {} miss(es), {} uncached, \
             {} nack(s), hit rate {:.1}%",
            self.name,
            self.session,
            self.cells,
            self.hits,
            self.misses,
            self.bypass,
            self.nacks,
            self.hit_rate() * 100.0
        )?;
        if self.wall_ms.total() > 0 {
            write!(
                f,
                ", wall p50 {}ms p99 {}ms",
                self.wall_ms.p50().unwrap_or(0),
                self.wall_ms.p99().unwrap_or(0)
            )?;
        }
        Ok(())
    }
}

/// One [`Log2Histogram`] as the JSON shape the metrics documents use
/// (`count`/`mean`/`max`/percentiles/`buckets`).
pub(crate) fn log2hist_json(hist: &Log2Histogram) -> String {
    let opt = |value: Option<u64>| match value {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    };
    let mean = if hist.mean().is_finite() {
        format!("{}", hist.mean())
    } else {
        "null".to_string()
    };
    let buckets: Vec<String> = hist
        .iter_buckets()
        .map(|(lo, hi, count)| format!("[{lo},{hi},{count}]"))
        .collect();
    format!(
        "{{\"count\":{},\"mean\":{mean},\"max\":{},\"p50\":{},\"p90\":{},\"p95\":{},\"p99\":{},\
         \"buckets\":[{}]}}",
        hist.total(),
        hist.max_seen(),
        opt(hist.p50()),
        opt(hist.p90()),
        opt(hist.p95()),
        opt(hist.p99()),
        buckets.join(",")
    )
}

// ---------------------------------------------------------------------------
// The observer the coordinator calls
// ---------------------------------------------------------------------------

struct ObserverInner {
    log: Option<EventLog>,
    trace: Option<TraceBuilder>,
}

/// Everything a fabric run can be asked to observe, behind one facade
/// the coordinator calls at each state transition. Disabled channels
/// cost a branch; the whole thing off costs nothing measurable.
pub struct FabricObserver {
    started: Instant,
    log_on: bool,
    trace_on: bool,
    inner: Mutex<ObserverInner>,
    progress: Option<SweepProgress>,
}

impl FabricObserver {
    /// An observer with every channel disabled — the default for
    /// library callers and every pre-existing test.
    pub fn off() -> FabricObserver {
        FabricObserver::new(None, false, None)
    }

    /// An observer over the given channels: a JSONL event log, a Chrome
    /// trace, and/or a live progress line.
    pub fn new(log: Option<EventLog>, trace: bool, progress: Option<SweepProgress>) -> Self {
        FabricObserver {
            started: Instant::now(),
            log_on: log.is_some(),
            trace_on: trace,
            inner: Mutex::new(ObserverInner {
                log,
                trace: trace.then(TraceBuilder::new),
            }),
            progress,
        }
    }

    /// Milliseconds since the observer (and with it the run) started.
    pub(crate) fn elapsed_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn emit(&self, event: &str, fields: &str) {
        if !self.log_on {
            return;
        }
        let t_ms = self.started.elapsed().as_secs_f64() * 1.0e3;
        let line = format!("{{\"t_ms\":{t_ms:.3},\"event\":\"{event}\"{fields}}}");
        if let Some(log) = &self.inner.lock().expect("observer lock").log {
            log.emit(line);
        }
    }

    fn with_trace(&self, apply: impl FnOnce(&mut TraceBuilder, u64)) {
        if !self.trace_on {
            return;
        }
        let now_us = self.started.elapsed().as_micros() as u64;
        if let Some(trace) = &mut self.inner.lock().expect("observer lock").trace {
            apply(trace, now_us);
        }
    }

    pub(crate) fn sweep_start(&self, cells: usize) {
        self.emit("sweep_start", &format!(",\"cells\":{cells}"));
    }

    pub(crate) fn worker_connect(&self, session: u64, worker: &str) {
        self.emit(
            "worker_connect",
            &format!(
                ",\"session\":{session},\"worker\":\"{}\"",
                escape_text(worker)
            ),
        );
        self.with_trace(|trace, _| trace.register_worker(session, worker));
    }

    pub(crate) fn worker_disconnect(&self, session: u64, worker: &str) {
        self.emit(
            "worker_disconnect",
            &format!(
                ",\"session\":{session},\"worker\":\"{}\"",
                escape_text(worker)
            ),
        );
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn lease_grant(
        &self,
        lease: u64,
        cell: usize,
        session: u64,
        attempt: u32,
        reassigns: u32,
        config: &str,
        workload: &str,
    ) {
        self.emit(
            "lease_grant",
            &format!(
                ",\"lease\":{lease},\"cell\":{cell},\"session\":{session},\
                 \"attempt\":{attempt},\"reassigns\":{reassigns},\
                 \"config\":\"{}\",\"workload\":\"{}\"",
                escape_text(config),
                escape_text(workload)
            ),
        );
        self.with_trace(|trace, now_us| {
            trace.open(
                lease,
                session,
                cell,
                attempt,
                &format!("{workload} · {config}"),
                now_us,
            );
        });
    }

    pub(crate) fn heartbeat(&self, lease: u64, session: u64) {
        self.emit(
            "heartbeat",
            &format!(",\"lease\":{lease},\"session\":{session}"),
        );
    }

    /// A lease was revoked: by deadline (`expired`) or because its
    /// worker was lost.
    pub(crate) fn lease_revoked(&self, lease: u64, cell: usize, session: u64, expired: bool) {
        let event = if expired {
            "lease_expire"
        } else {
            "lease_revoke"
        };
        self.emit(
            event,
            &format!(",\"lease\":{lease},\"cell\":{cell},\"session\":{session}"),
        );
        self.with_trace(|trace, now_us| {
            trace.close(lease, if expired { "expired" } else { "lost" }, now_us);
        });
    }

    pub(crate) fn reassign(&self, cell: usize, reassigns: u32) {
        self.emit(
            "reassign",
            &format!(",\"cell\":{cell},\"reassigns\":{reassigns}"),
        );
    }

    pub(crate) fn retry(&self, cell: usize, attempt: u32, backoff_ms: u64) {
        self.emit(
            "retry",
            &format!(",\"cell\":{cell},\"attempt\":{attempt},\"backoff_ms\":{backoff_ms}"),
        );
    }

    pub(crate) fn nack(&self, lease: u64, cell: usize, session: u64, kind: &str, stale: bool) {
        self.emit(
            "nack",
            &format!(
                ",\"lease\":{lease},\"cell\":{cell},\"session\":{session},\
                 \"kind\":\"{}\",\"stale\":{stale}",
                escape_text(kind)
            ),
        );
        self.with_trace(|trace, now_us| trace.close(lease, "nack", now_us));
    }

    pub(crate) fn cell_failed(&self, cell: usize, kind: &str, message: &str) {
        self.emit(
            "cell_failed",
            &format!(
                ",\"cell\":{cell},\"kind\":\"{}\",\"error\":\"{}\"",
                escape_text(kind),
                escape_text(message)
            ),
        );
        if let Some(progress) = &self.progress {
            progress.cell_done(CacheStatus::Bypass, true);
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn result(
        &self,
        lease: u64,
        cell: usize,
        session: u64,
        cache: CacheStatus,
        wall_ms: f64,
        stale: bool,
        duplicate: bool,
    ) {
        self.emit(
            "result",
            &format!(
                ",\"lease\":{lease},\"cell\":{cell},\"session\":{session},\
                 \"cache\":\"{}\",\"wall_ms\":{wall_ms:.3},\"stale\":{stale},\
                 \"duplicate\":{duplicate}",
                cache.label()
            ),
        );
        self.with_trace(|trace, now_us| {
            trace.close(lease, if stale { "stale" } else { cache.label() }, now_us);
        });
        if !duplicate {
            if let Some(progress) = &self.progress {
                progress.cell_done(cache, false);
            }
        }
    }

    pub(crate) fn wait(&self, session: u64, reason: &str) {
        self.emit(
            "wait",
            &format!(
                ",\"session\":{session},\"reason\":\"{}\"",
                escape_text(reason)
            ),
        );
    }

    pub(crate) fn protocol_error(&self, session: u64, message: &str) {
        self.emit(
            "protocol_error",
            &format!(
                ",\"session\":{session},\"error\":\"{}\"",
                escape_text(message)
            ),
        );
    }

    pub(crate) fn status_query(&self) {
        self.emit("status_query", "");
    }

    pub(crate) fn sweep_done(&self, done: usize, failed: usize) {
        let wall_ms = self.started.elapsed().as_secs_f64() * 1.0e3;
        self.emit(
            "sweep_done",
            &format!(",\"done\":{done},\"failed\":{failed},\"wall_ms\":{wall_ms:.3}"),
        );
    }

    /// Tear down every channel: clear the progress line, close the log,
    /// render the trace. Returns what each produced.
    pub(crate) fn finish(&self) -> (Option<LogSummary>, Option<String>) {
        if let Some(progress) = &self.progress {
            progress.finish();
        }
        let now_us = self.started.elapsed().as_micros() as u64;
        let mut inner = self.inner.lock().expect("observer lock");
        let log = inner.log.take().map(EventLog::finish);
        let trace = inner.trace.take().map(|trace| trace.render(now_us));
        (log, trace)
    }
}

// ---------------------------------------------------------------------------
// The `cpe status` client
// ---------------------------------------------------------------------------

/// Query a running coordinator for its live status: connect, send one
/// `status` frame at protocol version `fabric`, and parse the reply.
///
/// # Errors
///
/// A one-line diagnosis for connection failures, a refusal (version
/// skew), a timeout, or a malformed reply.
pub fn query_status(addr: &str, fabric: u64, timeout: Duration) -> Result<StatusBody, String> {
    let stream =
        TcpStream::connect(addr).map_err(|error| format!("cannot connect to {addr}: {error}"))?;
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .map_err(|error| format!("cannot set read timeout: {error}"))?;
    let mut writer = BufWriter::new(
        stream
            .try_clone()
            .map_err(|error| format!("clone failed: {error}"))?,
    );
    writeln!(writer, "{}", WorkerFrame::Status { fabric }.render())
        .and_then(|()| writer.flush())
        .map_err(|error| format!("write failed: {error}"))?;
    let mut reader = LineReader::new(stream, DEFAULT_MAX_LINE_BYTES);
    let deadline = Instant::now() + timeout;
    loop {
        match reader
            .poll_line()
            .map_err(|error| format!("read failed: {error}"))?
        {
            LineEvent::Line(line) => {
                return match CoordinatorFrame::parse(&line)? {
                    CoordinatorFrame::Status(body) => Ok(body),
                    CoordinatorFrame::Error { message } => {
                        Err(format!("coordinator refused: {message}"))
                    }
                    other => Err(format!("expected a status frame, got {other:?}")),
                }
            }
            LineEvent::Idle => {
                if Instant::now() >= deadline {
                    return Err(format!("status query to {addr} timed out"));
                }
            }
            LineEvent::Eof => return Err("coordinator closed without answering".to_string()),
            LineEvent::TooLong => return Err("oversized status reply".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::{bool_member, number_at, parse, text_at};
    use std::sync::mpsc;

    #[test]
    fn event_log_writes_lines_in_order_and_accounts_for_them() {
        let (log, buffer) = EventLog::to_buffer(64);
        for index in 0..5 {
            log.emit(format!("{{\"n\":{index}}}"));
        }
        let summary = log.finish();
        assert_eq!(summary.written, 5);
        assert_eq!(summary.dropped, 0);
        let text = buffer.contents();
        let ns: Vec<f64> = text
            .lines()
            .map(|line| number_at(&parse(line).expect(line), &["n"]).expect(line))
            .collect();
        assert_eq!(ns, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn full_queue_drops_events_instead_of_blocking() {
        /// A sink whose first write blocks until the gate sender drops.
        struct Gated {
            gate: mpsc::Receiver<()>,
        }
        impl Write for Gated {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                let _ = self.gate.recv(); // blocks until the test releases
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let capacity = 4;
        let log = EventLog::to_writer(Gated { gate: gate_rx }, capacity);
        let emitted = capacity as u64 + 20;
        for index in 0..emitted {
            log.emit(format!("line {index}"));
        }
        // The drain thread is wedged in its first write; at most
        // capacity + 1 lines can have been accepted.
        assert!(
            log.dropped() >= emitted - capacity as u64 - 1,
            "{}",
            log.dropped()
        );
        drop(gate_tx); // release the sink; remaining writes return Ok
        let summary = log.finish();
        assert_eq!(summary.written + summary.dropped, emitted);
        assert!(summary.dropped > 0);
    }

    #[test]
    fn trace_builder_renders_lanes_and_colored_spans() {
        let mut trace = TraceBuilder::new();
        trace.register_worker(1, "w\"1");
        trace.register_worker(2, "w2");
        trace.open(7, 1, 0, 0, "sort · 2-port", 100);
        trace.close(7, "miss", 350);
        trace.open(8, 2, 1, 1, "compress · 2-port", 200);
        // lease 8 stays open; render closes it as "open".
        let json = trace.render(1_000);
        let parsed = parse(&json).expect("trace parses");
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
        assert_eq!(
            json.matches("thread_name").count(),
            2,
            "one lane per worker"
        );
        assert!(json.contains("\"cat\":\"miss\""));
        assert!(json.contains("\"cat\":\"open\""));
        assert!(json.contains("\"dur\":250"));
        drop(parsed);
    }

    #[test]
    fn observer_off_emits_nothing_and_finishes_empty() {
        let observer = FabricObserver::off();
        observer.sweep_start(4);
        observer.result(1, 0, 1, CacheStatus::Miss, 12.0, false, false);
        let (log, trace) = observer.finish();
        assert!(log.is_none());
        assert!(trace.is_none());
    }

    #[test]
    fn observer_events_parse_and_carry_their_fields() {
        let (log, buffer) = EventLog::to_buffer(64);
        let observer = FabricObserver::new(Some(log), true, None);
        observer.sweep_start(2);
        observer.worker_connect(1, "w1");
        observer.lease_grant(1, 0, 1, 0, 0, "2-port", "sort");
        observer.heartbeat(1, 1);
        observer.result(1, 0, 1, CacheStatus::Hit, 3.25, false, false);
        observer.nack(2, 1, 1, "watchdog", true);
        observer.wait(1, "empty");
        observer.sweep_done(2, 0);
        let (summary, trace) = observer.finish();
        assert_eq!(summary.expect("log ran").written, 8);
        let trace = trace.expect("trace ran");
        assert!(parse(&trace).is_ok(), "{trace}");
        let lines: Vec<_> = buffer.contents().lines().map(str::to_string).collect();
        assert_eq!(lines.len(), 8);
        for line in &lines {
            let value = parse(line).expect(line);
            assert!(number_at(&value, &["t_ms"]).is_some(), "{line}");
            assert!(text_at(&value, &["event"]).is_some(), "{line}");
        }
        let result = parse(&lines[4]).unwrap();
        assert_eq!(text_at(&result, &["event"]), Some("result"));
        assert_eq!(text_at(&result, &["cache"]), Some("hit"));
        assert_eq!(bool_member(&result, "stale").unwrap(), Some(false));
        let nack = parse(&lines[5]).unwrap();
        assert_eq!(text_at(&nack, &["kind"]), Some("watchdog"));
        assert_eq!(bool_member(&nack, "stale").unwrap(), Some(true));
    }

    #[test]
    fn progress_line_reports_the_running_tally() {
        let progress = SweepProgress::with_tty(4, false);
        progress.cell_done(CacheStatus::Hit, false);
        progress.cell_done(CacheStatus::Miss, false);
        progress.cell_done(CacheStatus::Bypass, true);
        let line = progress.line(3);
        assert!(line.contains("3/4"), "{line}");
        assert!(
            line.contains("1 hit(s), 1 miss(es), 0 uncached, 1 failed"),
            "{line}"
        );
    }

    #[test]
    fn log2hist_json_is_well_formed() {
        let mut hist = Log2Histogram::new();
        for value in [1u64, 2, 3, 100, 1000] {
            hist.record(value);
        }
        let text = log2hist_json(&hist);
        let parsed = parse(&text).expect(&text);
        assert_eq!(number_at(&parsed, &["count"]), Some(5.0));
        assert_eq!(number_at(&parsed, &["max"]), Some(1000.0));
        let empty = log2hist_json(&Log2Histogram::new());
        assert!(parse(&empty).is_ok(), "{empty}");
    }
}
