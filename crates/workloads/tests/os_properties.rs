//! Property tests over the OS-activity injector: for arbitrary
//! configurations, the spliced stream must remain structurally valid —
//! consistent pc chains inside bursts, correct resume addresses, proper
//! serialisation markers — because the timing core's fetch model depends
//! on these invariants.

use cpe_isa::{Emulator, Mode, Op, KERNEL_DATA_BASE, KERNEL_TEXT_BASE};
use cpe_workloads::os::{OsConfig, OsInjector};
use cpe_workloads::programs::pmake;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = OsConfig> {
    (
        prop::sample::select(vec![0usize, 40, 120, 250]),
        prop::sample::select(vec![0u64, 500, 2_000, 10_000]),
        prop::sample::select(vec![0usize, 80, 200]),
        prop::sample::select(vec![0u64, 1, 4]),
        prop::sample::select(vec![0usize, 300]),
        prop::sample::select(vec![16u64, 96]),
        any::<u64>(),
    )
        .prop_map(
            |(syscall, timer, timer_insts, cs_every, sched, kb, seed)| OsConfig {
                syscall_handler_insts: syscall,
                timer_interval: timer,
                timer_handler_insts: timer_insts,
                context_switch_every: cs_every,
                scheduler_insts: sched,
                kernel_data_kb: kb,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn injected_streams_are_structurally_valid(config in arb_config()) {
        let user = Emulator::new(pmake::program(4));
        let trace: Vec<_> = OsInjector::new(user, config).collect();
        prop_assert!(!trace.is_empty());

        for (index, window) in trace.windows(2).enumerate() {
            let (current, next) = (&window[0], &window[1]);
            match (current.mode, next.mode) {
                // Within a kernel burst the committed path must chain,
                // except across the eret boundary.
                (Mode::Kernel, Mode::Kernel) if current.inst.op != Op::Eret => {
                    prop_assert_eq!(
                        current.next_pc, next.pc,
                        "kernel chain broken at {}", index
                    );
                }
                // A kernel burst returns to user code via eret, whose
                // next_pc is the resumed user pc.
                (Mode::Kernel, Mode::User) => {
                    prop_assert_eq!(current.inst.op, Op::Eret, "at {}", index);
                    prop_assert_eq!(current.next_pc, next.pc, "resume at {}", index);
                }
                _ => {}
            }
            // Kernel text/data never alias user space.
            if current.mode == Mode::Kernel {
                prop_assert!(current.pc >= KERNEL_TEXT_BASE);
                if let Some(addr) = current.mem_addr {
                    prop_assert!(addr >= KERNEL_DATA_BASE);
                }
            } else {
                prop_assert!(current.pc < KERNEL_TEXT_BASE);
            }
        }

        // The user instructions pass through unchanged, in order.
        let user_side: Vec<_> = trace
            .iter()
            .filter(|di| di.mode == Mode::User)
            .cloned()
            .collect();
        let original: Vec<_> = Emulator::new(pmake::program(4)).collect();
        prop_assert_eq!(user_side, original, "user stream must be untouched");
    }

    /// Every kernel burst runs through the timing model without tripping
    /// its structural assertions (fetch-chain checks, deadlock detector).
    #[test]
    fn injected_streams_simulate_cleanly(config in arb_config()) {
        use cpe_core::{SimConfig, Simulator};
        let user = Emulator::new(pmake::program(3));
        let trace = OsInjector::new(user, config);
        let summary = Simulator::new(SimConfig::combined_single_port())
            .run_trace("prop-os", trace, None);
        prop_assert!(summary.insts > 0);
        prop_assert!(summary.ipc > 0.0);
    }
}
