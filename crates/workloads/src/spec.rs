//! Named workload descriptors — the suite the experiments run.

use cpe_isa::{Emulator, Program};

use crate::os::{OsConfig, OsInjector};
use crate::programs;

/// Problem-size presets.
///
/// `Test` keeps unit/integration tests fast; `Small` suits quick local
/// experiments; `Full` is what the benchmark harness uses to regenerate
/// the paper's tables and figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Tens of thousands of dynamic instructions.
    Test,
    /// Hundreds of thousands of dynamic instructions.
    Small,
    /// Millions of dynamic instructions.
    Full,
}

/// The six workloads of the reproduction suite, each standing in for a
/// class of the paper's SimOS/IRIX applications (see `DESIGN.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Dictionary hashing — scattered load/store pairs.
    Compress,
    /// Streaming blocked FP — dense sequential references.
    Mpeg,
    /// Tree build/probe — dependent pointer chasing.
    Db,
    /// Strided FP butterflies — stride sweep from dense to sparse.
    Fft,
    /// Merge sort — multiple sequential streams, branchy compares.
    Sort,
    /// Build driver — syscall-dense user code plus a heavy OS presence.
    Pmake,
    /// Dense matrix multiply — the extended suite's bandwidth stress test
    /// (not in [`Workload::ALL`]; see [`Workload::EXTENDED`]).
    Matmul,
    /// Bytecode interpreter — the extended suite's indirect-dispatch,
    /// BTB-hostile workload (extended suite only).
    Vm,
}

impl Workload {
    /// The six paper-analog workloads, in canonical report order. The
    /// recorded experiments in `EXPERIMENTS.md` use exactly this set.
    pub const ALL: [Workload; 6] = [
        Workload::Compress,
        Workload::Mpeg,
        Workload::Db,
        Workload::Fft,
        Workload::Sort,
        Workload::Pmake,
    ];

    /// The extended suite: the paper-analog six plus later additions.
    pub const EXTENDED: [Workload; 8] = [
        Workload::Compress,
        Workload::Mpeg,
        Workload::Db,
        Workload::Fft,
        Workload::Sort,
        Workload::Pmake,
        Workload::Matmul,
        Workload::Vm,
    ];

    /// Short name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Compress => "compress",
            Workload::Mpeg => "mpeg",
            Workload::Db => "db",
            Workload::Fft => "fft",
            Workload::Sort => "sort",
            Workload::Pmake => "pmake",
            Workload::Matmul => "matmul",
            Workload::Vm => "vm",
        }
    }

    /// One-line description of the reference pattern it contributes.
    pub fn description(self) -> &'static str {
        match self {
            Workload::Compress => "dictionary hashing: scattered load/store pairs",
            Workload::Mpeg => "streaming blocked FP: dense sequential refs",
            Workload::Db => "tree probes: dependent pointer chasing",
            Workload::Fft => "butterflies: strides from 8B to N/2",
            Workload::Sort => "merge sort: concurrent sequential streams",
            Workload::Pmake => "build driver: syscall-dense + heavy OS",
            Workload::Matmul => "dense FP matmul: peak port bandwidth demand",
            Workload::Vm => "bytecode interpreter: indirect dispatch",
        }
    }

    /// Assemble the workload's program at the given scale.
    pub fn program(self, scale: Scale) -> Program {
        use Scale::*;
        match self {
            Workload::Compress => programs::compress::program(match scale {
                Test => 2_000,
                Small => 10_000,
                Full => 60_000,
            }),
            Workload::Mpeg => programs::mpeg::program(match scale {
                Test => 40,
                Small => 100,
                Full => 700,
            }),
            Workload::Db => match scale {
                Test => programs::db::program(300, 400),
                Small => programs::db::program(1_000, 2_500),
                Full => programs::db::program(4_000, 15_000),
            },
            Workload::Fft => programs::fft::program(match scale {
                Test => 256,
                Small => 1_024,
                // 2048 doubles = 16 KiB: L1-resident, like the paper's
                // cache-friendly scientific kernels.
                Full => 2_048,
            }),
            Workload::Sort => programs::sort::program(match scale {
                Test => 256,
                Small => 1_500,
                // 1800 keys (two 14.4 KiB arrays): L1-resident.
                Full => 1_800,
            }),
            Workload::Pmake => programs::pmake::program(match scale {
                Test => 25,
                Small => 120,
                Full => 900,
            }),
            Workload::Matmul => programs::matmul::program(match scale {
                Test => 16,
                Small => 24,
                // 32x32 doubles: three 8 KiB matrices, L1-resident.
                Full => 32,
            }),
            Workload::Vm => programs::vm::program(match scale {
                Test => 250,
                Small => 1_200,
                Full => 3_500,
            }),
        }
    }

    /// The OS presence appropriate to the workload class: compute codes
    /// see light kernel activity, the build driver a heavy one — mirroring
    /// the kernel fractions full-system tracing reported.
    pub fn os_config(self) -> OsConfig {
        match self {
            Workload::Mpeg | Workload::Fft | Workload::Matmul => OsConfig::light(),
            Workload::Compress | Workload::Sort | Workload::Db | Workload::Vm => {
                OsConfig::default()
            }
            Workload::Pmake => OsConfig::heavy(),
        }
    }

    /// The complete committed-path trace: functional execution of the
    /// program with this workload's OS activity spliced in.
    pub fn trace(self, scale: Scale) -> OsInjector<Emulator> {
        OsInjector::new(Emulator::new(self.program(scale)), self.os_config())
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpe_isa::Mode;

    #[test]
    fn every_workload_assembles_and_runs_at_test_scale() {
        for workload in Workload::ALL {
            let count = workload.trace(Scale::Test).count();
            assert!(count > 10_000, "{workload}: only {count} instructions");
        }
    }

    #[test]
    fn pmake_has_the_highest_kernel_fraction() {
        let kernel_fraction = |w: Workload| {
            let mut total = 0u64;
            let mut kernel = 0u64;
            for di in w.trace(Scale::Test) {
                total += 1;
                if di.mode == Mode::Kernel {
                    kernel += 1;
                }
            }
            kernel as f64 / total as f64
        };
        let pmake = kernel_fraction(Workload::Pmake);
        assert!(pmake > 0.2, "pmake should be OS-heavy: {pmake}");
        for w in [Workload::Mpeg, Workload::Fft, Workload::Sort] {
            assert!(kernel_fraction(w) < pmake, "{w}");
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names = std::collections::HashSet::new();
        for w in Workload::ALL {
            assert!(names.insert(w.name()));
            assert!(!w.description().is_empty());
        }
    }

    #[test]
    fn scales_order_instruction_counts() {
        // Spot-check one workload: Test < Small dynamic length.
        let test = Workload::Compress.trace(Scale::Test).count();
        let small = Workload::Compress.trace(Scale::Small).count();
        assert!(test < small);
    }
}
