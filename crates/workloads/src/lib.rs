//! `cpe-workloads` — the applications and operating-system activity used to
//! evaluate the cache-port techniques.
//!
//! The reproduced paper insists on "realistic applications that include the
//! operating system" (its evaluation ran SimOS with IRIX). This crate is
//! the SimOS-substitute documented in `DESIGN.md`:
//!
//! * [`programs`] — miniature applications **written in the `cpe-isa`
//!   assembly language**, each reproducing the memory-reference *class* of
//!   a mid-90s benchmark: hash-table scatter (`compress`), streaming FP
//!   (`mpeg`), pointer chasing (`db`), strided FP (`fft`), sequential
//!   integer (`sort`), a token-crunching, syscall-heavy build driver
//!   (`pmake`), plus the extended-suite `matmul` (peak FP bandwidth) and
//!   `vm` (indirect-dispatch bytecode interpreter).
//! * [`os`] — a kernel-activity injector that splices synthesized
//!   kernel-mode instruction sequences (trap handlers, timer interrupts,
//!   scheduler slices) into a user instruction stream, with distinct
//!   kernel code/data footprints.
//! * [`synth`] — parameterised statistical reference generators for
//!   controlled microbenchmark sweeps.
//! * [`Workload`] — named descriptors binding a program to its OS
//!   configuration, used by the experiment harness.
//!
//! # Example
//!
//! ```
//! use cpe_workloads::Workload;
//!
//! let spec = Workload::Compress;
//! let trace = spec.trace(cpe_workloads::Scale::Test);
//! assert!(trace.take(1000).count() > 0);
//! ```

pub mod os;
pub mod programs;
mod spec;
pub mod synth;

pub use spec::{Scale, Workload};
