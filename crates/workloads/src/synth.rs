//! Parameterised statistical reference generators.
//!
//! Where the assembly programs provide realism, these generators provide
//! *control*: a loop-shaped instruction stream whose load/store density,
//! working-set size and spatial pattern are dialled directly. The
//! benchmark harness uses them for the port-pressure sweeps where a known
//! reference mix matters more than program semantics.

use cpe_isa::{DynInst, Inst, Mode, Op, Reg, INST_BYTES, TEXT_BASE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Spatial pattern of the generated data references.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddressPattern {
    /// A cursor advancing by the given stride (bytes), wrapping in the
    /// working set.
    Strided(u64),
    /// Uniformly random 8-byte-aligned addresses in the working set.
    Random,
}

/// Configuration of a [`SyntheticTrace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthConfig {
    /// Total instructions to emit.
    pub insts: u64,
    /// Fraction of instructions that are loads.
    pub load_fraction: f64,
    /// Fraction of instructions that are stores.
    pub store_fraction: f64,
    /// Bytes of data touched (rounded up to 8).
    pub working_set_bytes: u64,
    /// Where in the working set references land.
    pub pattern: AddressPattern,
    /// Instructions per loop body (the last one is the loop branch).
    pub body_insts: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Default for SynthConfig {
    /// A memory-heavy mix: 35% loads, 15% stores over 64 KiB.
    fn default() -> SynthConfig {
        SynthConfig {
            insts: 100_000,
            load_fraction: 0.35,
            store_fraction: 0.15,
            working_set_bytes: 64 * 1024,
            pattern: AddressPattern::Strided(8),
            body_insts: 32,
            seed: 7,
        }
    }
}

impl SynthConfig {
    fn validate(&self) {
        assert!(self.insts > 0, "need at least one instruction");
        assert!(self.body_insts >= 2, "body needs room for the loop branch");
        assert!(
            self.load_fraction >= 0.0
                && self.store_fraction >= 0.0
                && self.load_fraction + self.store_fraction <= 1.0,
            "fractions must be sane"
        );
        assert!(self.working_set_bytes >= 8, "working set too small");
    }
}

#[derive(Debug, Clone, Copy)]
enum Slot {
    Alu(Op),
    Load,
    Store,
}

/// A deterministic, loop-shaped [`DynInst`] stream.
///
/// ```
/// use cpe_workloads::synth::{SynthConfig, SyntheticTrace};
///
/// let mut config = SynthConfig::default();
/// config.insts = 1000;
/// let trace: Vec<_> = SyntheticTrace::new(config).collect();
/// assert_eq!(trace.len(), 1000);
/// ```
#[derive(Debug)]
pub struct SyntheticTrace {
    config: SynthConfig,
    body: Vec<Slot>,
    rng: SmallRng,
    emitted: u64,
    cursor: u64,
    data_base: u64,
}

impl SyntheticTrace {
    /// Build the generator.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration (zero instructions, fractions
    /// exceeding 1.0, a 1-instruction body).
    pub fn new(config: SynthConfig) -> SyntheticTrace {
        config.validate();
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let alu_ops = [Op::Add, Op::Xor, Op::Sub, Op::And, Op::Or, Op::Mul];
        let body: Vec<Slot> = (0..config.body_insts - 1)
            .map(|_| {
                let roll: f64 = rng.gen();
                if roll < config.load_fraction {
                    Slot::Load
                } else if roll < config.load_fraction + config.store_fraction {
                    Slot::Store
                } else {
                    Slot::Alu(alu_ops[rng.gen_range(0..alu_ops.len())])
                }
            })
            .collect();
        SyntheticTrace {
            config,
            body,
            rng,
            emitted: 0,
            cursor: 0,
            data_base: cpe_isa::DATA_BASE,
        }
    }

    fn next_addr(&mut self) -> u64 {
        let set = self.config.working_set_bytes & !7;
        match self.config.pattern {
            AddressPattern::Strided(stride) => {
                let addr = self.data_base + self.cursor;
                self.cursor = (self.cursor + stride) % set;
                addr
            }
            AddressPattern::Random => self.data_base + self.rng.gen_range(0..set / 8) * 8,
        }
    }
}

impl Iterator for SyntheticTrace {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        if self.emitted >= self.config.insts {
            return None;
        }
        let body_len = self.config.body_insts as u64;
        let slot_index = (self.emitted % body_len) as usize;
        let pc = TEXT_BASE + slot_index as u64 * INST_BYTES;
        let reg = |i: usize| Reg::x(8 + (i % 12) as u8);

        let di = if slot_index == self.config.body_insts - 1 {
            // The loop-back branch; not taken on the final instruction.
            let last = self.emitted + 1 >= self.config.insts;
            DynInst {
                pc,
                inst: Inst::branch(Op::Bne, reg(0), Reg::ZERO, -(pc as i64 - TEXT_BASE as i64)),
                mem_addr: None,
                taken: !last,
                next_pc: if last { pc + INST_BYTES } else { TEXT_BASE },
                mode: Mode::User,
            }
        } else {
            let (inst, mem_addr) = match self.body[slot_index] {
                Slot::Alu(op) => (
                    Inst::rrr(
                        op,
                        reg(slot_index),
                        reg(slot_index + 1),
                        reg(slot_index + 2),
                    ),
                    None,
                ),
                Slot::Load => {
                    let addr = self.next_addr();
                    (
                        Inst::load(Op::Ld, reg(slot_index), reg(slot_index + 5), 0),
                        Some(addr),
                    )
                }
                Slot::Store => {
                    let addr = self.next_addr();
                    (
                        Inst::store(Op::Sd, reg(slot_index), reg(slot_index + 5), 0),
                        Some(addr),
                    )
                }
            };
            DynInst {
                pc,
                inst,
                mem_addr,
                taken: false,
                next_pc: pc + INST_BYTES,
                mode: Mode::User,
            }
        };
        self.emitted += 1;
        Some(di)
    }
}

#[cfg(test)]
mod tests {
    // Tests tweak one field of a default config at a time; the
    // struct-update suggestion reads worse there.
    #![allow(clippy::field_reassign_with_default)]

    use super::*;

    #[test]
    fn emits_exactly_the_requested_count() {
        let mut config = SynthConfig::default();
        config.insts = 12_345;
        assert_eq!(SyntheticTrace::new(config).count(), 12_345);
    }

    #[test]
    fn reference_fractions_are_close_to_requested() {
        let mut config = SynthConfig::default();
        config.insts = 50_000;
        config.load_fraction = 0.4;
        config.store_fraction = 0.2;
        config.body_insts = 64;
        let (mut loads, mut stores) = (0u64, 0u64);
        for di in SyntheticTrace::new(config) {
            if di.inst.op.is_load() {
                loads += 1;
            }
            if di.inst.op.is_store() {
                stores += 1;
            }
        }
        let lf = loads as f64 / 50_000.0;
        let sf = stores as f64 / 50_000.0;
        assert!((lf - 0.4).abs() < 0.08, "load fraction {lf}");
        assert!((sf - 0.2).abs() < 0.08, "store fraction {sf}");
    }

    #[test]
    fn strided_addresses_stay_in_the_working_set_and_advance() {
        let mut config = SynthConfig::default();
        config.insts = 5_000;
        config.working_set_bytes = 1024;
        config.pattern = AddressPattern::Strided(16);
        let addrs: Vec<u64> = SyntheticTrace::new(config)
            .filter_map(|di| di.mem_addr)
            .collect();
        assert!(!addrs.is_empty());
        for pair in addrs.windows(2) {
            let delta = (pair[1].wrapping_sub(pair[0])) % 1024;
            assert_eq!(delta % 16, 0, "stride must be respected: {pair:?}");
        }
        let base = cpe_isa::DATA_BASE;
        assert!(addrs.iter().all(|&a| (base..base + 1024).contains(&a)));
    }

    #[test]
    fn loop_shape_is_predictor_friendly() {
        let config = SynthConfig {
            insts: 10_000,
            ..SynthConfig::default()
        };
        let mut taken = 0u64;
        let mut branches = 0u64;
        for di in SyntheticTrace::new(config) {
            if di.inst.op.is_branch() {
                branches += 1;
                if di.taken {
                    taken += 1;
                }
            }
        }
        assert!(branches > 100);
        assert!(taken >= branches - 1, "only the last branch falls through");
    }

    #[test]
    fn pc_stream_is_consistent() {
        let config = SynthConfig {
            insts: 1_000,
            ..SynthConfig::default()
        };
        let trace: Vec<_> = SyntheticTrace::new(config).collect();
        for pair in trace.windows(2) {
            assert_eq!(pair[0].next_pc, pair[1].pc);
        }
    }

    #[test]
    fn determinism() {
        let config = SynthConfig::default();
        let a: Vec<_> = SyntheticTrace::new(config).take(5_000).collect();
        let b: Vec<_> = SyntheticTrace::new(config).take(5_000).collect();
        assert!(a.iter().zip(&b).all(|(x, y)| x == y));
    }

    #[test]
    #[should_panic(expected = "fractions")]
    fn rejects_impossible_fractions() {
        let mut config = SynthConfig::default();
        config.load_fraction = 0.8;
        config.store_fraction = 0.5;
        SyntheticTrace::new(config);
    }
}
