//! `compress`-like workload: dictionary hashing.
//!
//! Stands in for SPEC `compress`/LZW-style coders: a hot loop that hashes
//! each input symbol and probes/updates a dictionary table. The memory
//! signature is **scattered load+store pairs** over a 16 KiB table, fed by
//! a sequential input stream. The loop is four-way unrolled with
//! independent symbols, so a 4-issue machine demands well over one data
//! reference per cycle — the pressure that motivates multi-ported caches.
//!
//! The input stream is embedded in the data segment (as the paper's
//! benchmarks read pre-existing files) as a window that the compressor
//! cycles over — keeping the working set L1-resident the way the paper's
//! applications largely were, so that the cache *port*, not DRAM
//! bandwidth, is the contended resource.

use cpe_isa::Program;

/// Hash-table slots (8 bytes each; 8 KiB — comfortably L1-resident next
/// to the input window).
pub const TABLE_SLOTS: u64 = 1024;

/// Bit offset of the hash field taken from each symbol.
pub const HASH_SHIFT: u64 = 13;

/// Symbols processed per unrolled loop iteration.
const UNROLL: u64 = 4;

/// Symbols in the embedded, L1-resident input window (8 KiB).
pub const WINDOW_SYMBOLS: u64 = 1024;

/// The embedded input window.
pub fn input_symbols(symbols: u64) -> Vec<u64> {
    let mut state = 123456789u64;
    (0..symbols.min(WINDOW_SYMBOLS))
        .map(|_| {
            state = super::xorshift64(state);
            state
        })
        .collect()
}

/// One unrolled symbol step: load the symbol, hash it, probe and update
/// the dictionary, fold the probed value into the checksum.
fn symbol_step(i: u64) -> String {
    // Rotate through disjoint temporaries so the four steps are
    // independent and can issue in parallel.
    let (sym, slot, probe) = match i {
        0 => ("t0", "t1", "t2"),
        1 => ("t3", "t4", "t5"),
        2 => ("a0", "a1", "a2"),
        _ => ("a3", "a4", "a5"),
    };
    let offset = i * 8;
    format!(
        r#"
            ld   {sym}, {offset}(s5)
            srli {slot}, {sym}, {shift}
            andi {slot}, {slot}, {mask}
            add  {slot}, {slot}, s2
            ld   {probe}, 0({slot})
            sd   {sym}, 0({slot})
            xor  s4, s4, {probe}
        "#,
        shift = HASH_SHIFT,
        mask = (TABLE_SLOTS - 1) << 3,
    )
}

/// Generate the assembly for `symbols` input symbols.
///
/// # Panics
///
/// Panics unless `symbols` is a positive multiple of 4 (the unroll
/// factor).
pub fn source(symbols: u64) -> String {
    assert!(
        symbols > 0 && symbols.is_multiple_of(UNROLL),
        "symbols must be a positive multiple of 4"
    );
    let input = super::quad_directives(&input_symbols(symbols));
    let steps: String = (0..UNROLL).map(symbol_step).collect();
    format!(
        r#"
        # compress-like: hash every input symbol into a dictionary
        # (probe + insert), 4 symbols per iteration.
        .data
        htab:  .space {table_bytes}
        sink:  .space 16
        input:
{input}
        .text
        main:
            la   s5, input
            la   s2, htab
            li   s4, 0                # checksum of probed slots
            li   s0, {iterations}
            li   s6, {window_iters}   # iterations before the window wraps
        loop:
            {steps}
            addi s5, s5, {bytes_per_iter}
            addi s6, s6, -1
            bnez s6, no_wrap
            la   s5, input
            li   s6, {window_iters}
        no_wrap:
            addi s0, s0, -1
            bnez s0, loop
            la   t0, sink
            sd   s4, 0(t0)
            li   t1, {symbols}
            sd   t1, 8(t0)
            halt
        "#,
        table_bytes = TABLE_SLOTS * 8,
        input = input,
        symbols = symbols,
        iterations = symbols / UNROLL,
        window_iters = symbols.min(WINDOW_SYMBOLS) / UNROLL,
        steps = steps,
        bytes_per_iter = UNROLL * 8,
    )
}

/// Assemble the program.
pub fn program(symbols: u64) -> Program {
    super::build(&source(symbols))
}

/// Reference model: replay the dictionary exactly, returning the checksum
/// of probed slot values.
pub fn expected_checksum(symbols: u64) -> u64 {
    let window = input_symbols(symbols);
    let mut table = vec![0u64; TABLE_SLOTS as usize];
    let mut checksum = 0u64;
    for i in 0..symbols {
        let sym = window[(i % window.len() as u64) as usize];
        let slot = ((sym >> HASH_SHIFT) & ((TABLE_SLOTS - 1) << 3)) / 8;
        checksum ^= table[slot as usize];
        table[slot as usize] = sym;
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpe_isa::{Emulator, DATA_BASE};

    #[test]
    fn checksum_matches_reference() {
        let symbols = 512;
        let mut emu = Emulator::new(program(symbols));
        emu.run_to_halt(200_000).expect("halts");
        let sink = emu.program().symbol("sink").expect("sink label");
        assert_eq!(emu.mem().read_u64(sink), expected_checksum(symbols));
        assert_eq!(emu.mem().read_u64(sink + 8), symbols);
        assert!(sink >= DATA_BASE);
    }

    #[test]
    fn hot_loop_is_memory_dense_and_scattered() {
        let symbols = 400;
        let mut loads = 0u64;
        let mut stores = 0u64;
        let mut insts = 0u64;
        let mut lines = std::collections::HashSet::new();
        for di in Emulator::new(program(symbols)) {
            insts += 1;
            if di.inst.op.is_load() {
                loads += 1;
            }
            if di.inst.op.is_store() {
                stores += 1;
                lines.insert(di.mem_addr.unwrap() / 32);
            }
        }
        // Per symbol: 2 loads (input + probe) and 1 store.
        assert_eq!(loads, 2 * symbols);
        assert_eq!(stores, symbols + 2);
        let density = (loads + stores) as f64 / insts as f64;
        assert!(
            density > 0.25,
            "hot loop must be memory-dense: {density:.2}"
        );
        assert!(
            lines.len() > 150,
            "probes must scatter: {} lines",
            lines.len()
        );
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn rejects_unaligned_counts() {
        source(401);
    }
}
