//! Miniature applications written in `cpe-isa` assembly.
//!
//! Each module generates assembly source parameterised by a problem size,
//! assembles it, and documents which mid-90s workload class it stands in
//! for. The programs compute *verifiable* results (checksums, sortedness
//! flags) that the test suite checks against independent Rust
//! re-implementations — so the ISA, assembler, emulator and program are
//! validated end to end.

pub mod compress;
pub mod db;
pub mod fft;
pub mod matmul;
pub mod mpeg;
pub mod pmake;
pub mod sort;
pub mod vm;

use cpe_isa::Program;

/// Assemble generated source, panicking with the offending line on error.
///
/// Generated sources are code, not input; failing to assemble is a bug in
/// the generator, so a panic (not a `Result`) is the right surface.
pub(crate) fn build(source: &str) -> Program {
    match cpe_isa::asm::assemble(source) {
        Ok(program) => program,
        Err(err) => {
            let line = source
                .lines()
                .nth(err.line.saturating_sub(1))
                .unwrap_or("<missing>");
            panic!("generated program failed to assemble: {err}\n  line: {line}")
        }
    }
}

/// The xorshift64 step every program uses for deterministic pseudo-random
/// data; mirrored here so tests can replay program arithmetic exactly.
pub(crate) fn xorshift64(mut state: u64) -> u64 {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    state
}

/// Render values as `.quad` directive lines (8 per line), for embedding
/// input data in a program's data segment.
pub(crate) fn quad_directives(values: &[u64]) -> String {
    values
        .chunks(8)
        .map(|chunk| {
            let list: Vec<String> = chunk.iter().map(|v| format!("{v:#x}")).collect();
            format!("            .quad {}\n", list.join(", "))
        })
        .collect()
}

/// Render values as `.double` directive lines (8 per line).
pub(crate) fn double_directives(values: &[f64]) -> String {
    values
        .chunks(8)
        .map(|chunk| {
            let list: Vec<String> = chunk.iter().map(|v| format!("{v:.1}")).collect();
            format!("            .double {}\n", list.join(", "))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_matches_the_assembly_sequence() {
        // The assembly implements exactly these three steps; pin the first
        // few values so both sides stay in lock-step.
        let mut s = 123456789u64;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            s = xorshift64(s);
            assert!(seen.insert(s), "xorshift64 must not cycle this early");
            assert_ne!(s, 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed to assemble")]
    fn build_panics_with_context() {
        build("bogus instruction\n");
    }
}
