//! `sort`-like workload: bottom-up merge sort.
//!
//! Stands in for integer-sorting/compiler-style code: branchy compare
//! loops over two sequential input runs merging into a sequential output
//! run. The memory signature is **multiple concurrent sequential streams**
//! with a data-dependent branch per element — heavy, regular port traffic
//! plus a real test of the branch predictor.

use cpe_isa::Program;

/// Generate the assembly sorting `n` pseudo-random 64-bit keys.
pub fn source(n: u64) -> String {
    assert!(n >= 2, "need at least two elements");
    format!(
        r#"
        # Bottom-up merge sort of n keys, then an in-assembly sortedness
        # verification writing 1/0 to sink.
        .data
        arr:  .space {data_bytes}
        tmp:  .space {data_bytes}
        sink: .space 16
        .text
        main:
            la   s0, arr
            la   s1, tmp
            li   s2, {n}
            # fill with xorshift & 0xffff
            li   t4, 987654321
            mv   t0, s0
            mv   t2, s2
        fill:
            slli t5, t4, 13
            xor  t4, t4, t5
            srli t5, t4, 7
            xor  t4, t4, t5
            slli t5, t4, 17
            xor  t4, t4, t5
            andi t5, t4, 65535
            sd   t5, 0(t0)
            addi t0, t0, 8
            addi t2, t2, -1
            bnez t2, fill
            li   s3, 1              # width
        outer:
            li   s4, 0              # chunk start i
        chunk:
            add  t0, s4, s3
            blt  t0, s2, m_ok
            mv   t0, s2
        m_ok:                       # t0 = mid
            slli t1, s3, 1
            add  t1, s4, t1
            blt  t1, s2, h_ok
            mv   t1, s2
        h_ok:                       # t1 = hi
            slli t2, s4, 3
            add  t2, t2, s0         # a cursor
            slli t3, t0, 3
            add  t3, t3, s0         # a end / b start
            mv   t4, t3             # b cursor
            slli t5, t1, 3
            add  t5, t5, s0         # b end
            slli t6, s4, 3
            add  t6, t6, s1         # out cursor
        merge_loop:
            bge  t2, t3, b_rest
            bge  t4, t5, take_a
            ld   a0, 0(t2)
            ld   a1, 0(t4)
            bge  a1, a0, take_a2
            sd   a1, 0(t6)
            addi t4, t4, 8
            addi t6, t6, 8
            j    merge_loop
        take_a:
            ld   a0, 0(t2)
        take_a2:
            sd   a0, 0(t6)
            addi t2, t2, 8
            addi t6, t6, 8
            j    merge_loop
        b_rest:
            bge  t4, t5, merge_done
            ld   a1, 0(t4)
            sd   a1, 0(t6)
            addi t4, t4, 8
            addi t6, t6, 8
            j    b_rest
        merge_done:
            slli t0, s3, 1
            add  s4, s4, t0
            blt  s4, s2, chunk
            # copy tmp back to arr
            mv   t0, s0
            mv   t1, s1
            mv   t2, s2
        copy:
            ld   a0, 0(t1)
            sd   a0, 0(t0)
            addi t0, t0, 8
            addi t1, t1, 8
            addi t2, t2, -1
            bnez t2, copy
            slli s3, s3, 1
            blt  s3, s2, outer
            # verify ascending; also fold a sum for the checksum
            mv   t0, s0
            li   t1, 1
            ld   a1, 0(t0)
            mv   a2, a1             # sum
            li   t2, {n_minus_1}
        vloop:
            addi t0, t0, 8
            ld   a0, 0(t0)
            add  a2, a2, a0
            bge  a0, a1, v_ok
            li   t1, 0
        v_ok:
            mv   a1, a0
            addi t2, t2, -1
            bnez t2, vloop
            la   t3, sink
            sd   t1, 0(t3)
            sd   a2, 8(t3)
            halt
        "#,
        data_bytes = n * 8,
        n = n,
        n_minus_1 = n - 1,
    )
}

/// Assemble the program.
pub fn program(n: u64) -> Program {
    super::build(&source(n))
}

/// The keys the program generates, for reference checking.
pub fn input_keys(n: u64) -> Vec<u64> {
    let mut state = 987654321u64;
    (0..n)
        .map(|_| {
            state = super::xorshift64(state);
            state & 0xffff
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpe_isa::Emulator;

    #[test]
    fn sorts_and_checksums() {
        let n = 256;
        let mut emu = Emulator::new(program(n));
        emu.run_to_halt(2_000_000).expect("halts");
        let sink = emu.program().symbol("sink").unwrap();
        assert_eq!(emu.mem().read_u64(sink), 1, "array must be sorted");
        let expected_sum: u64 = input_keys(n).iter().sum();
        assert_eq!(emu.mem().read_u64(sink + 8), expected_sum, "keys preserved");
    }

    #[test]
    fn sorted_array_matches_rust_sort() {
        let n = 64;
        let mut emu = Emulator::new(program(n));
        emu.run_to_halt(2_000_000).expect("halts");
        let arr = emu.program().symbol("arr").unwrap();
        let got: Vec<u64> = (0..n).map(|i| emu.mem().read_u64(arr + i * 8)).collect();
        let mut expected = input_keys(n);
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn handles_non_power_of_two_lengths() {
        let n = 37;
        let mut emu = Emulator::new(program(n));
        emu.run_to_halt(2_000_000).expect("halts");
        let sink = emu.program().symbol("sink").unwrap();
        assert_eq!(emu.mem().read_u64(sink), 1);
    }
}
