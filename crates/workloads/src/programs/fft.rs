//! `fft`-like workload: strided floating-point butterflies.
//!
//! Stands in for FFT/scientific kernels: log₂N passes over an array with
//! the access stride doubling each pass. Early passes have dense spatial
//! locality; late passes touch one element per cache line — the classic
//! stride sweep that separates line-buffer-friendly from
//! line-buffer-hostile phases within a single program.
//!
//! The stride-1 pass is special-cased and every inner loop is two-way
//! unrolled with pointer increments — exactly what a 90s optimising
//! compiler emitted — so the kernel is memory-dense (~44% of instructions
//! reference the cache) and genuinely port-hungry on a 4-issue machine.

use cpe_isa::Program;

/// One butterfly on the element pair `(*a, *b)` at byte offset `off`,
/// using the given FP temporaries: `t = *b * w; *b = *a - t; *a += t`.
fn butterfly(a: &str, b: &str, off: u64, f: [&str; 4]) -> String {
    let [x, y, t, r] = f;
    format!(
        r#"
            fld  {x}, {off}({a})
            fld  {y}, {off}({b})
            fmul {t}, {y}, f7
            fsub {r}, {x}, {t}
            fadd {x}, {x}, {t}
            fsd  {r}, {off}({b})
            fsd  {x}, {off}({a})
        "#
    )
}

/// Generate the assembly for an `n`-element butterfly network.
///
/// # Panics
///
/// Panics unless `n` is a power of two of at least 8.
pub fn source(n: u64) -> String {
    assert!(
        n.is_power_of_two() && n >= 8,
        "n must be a power of two >= 8"
    );
    let init = super::double_directives(&initial_values(n));
    // Stride-1 pass: pairs (i, i+1) and (i+2, i+3) per iteration.
    let p1_a = butterfly("t0", "t1", 0, ["f3", "f4", "f5", "f6"]);
    let p1_b = butterfly("t0", "t1", 16, ["f8", "f9", "f10", "f11"]);
    // General pass (stride >= 2): pairs (j, j+s) and (j+1, j+s+1).
    let g_a = butterfly("t2", "t3", 0, ["f3", "f4", "f5", "f6"]);
    let g_b = butterfly("t2", "t3", 8, ["f8", "f9", "f10", "f11"]);
    format!(
        r#"
        # fft-like: for stride s in 1,2,4,..,n/2:
        #   for each group of 2s, combine a[j] and a[j+s] with w = 0.5:
        #     t = a[j+s]*w ; a[j+s] = a[j]-t ; a[j] = a[j]+t
        # The working array is embedded, initialised to (i & 15) + 1.
        .data
        sink: .space 8
        re:
{init}
        .text
        main:
            la   s5, re
            # w = 0.5
            li   t1, 1
            fcvt f1, t1
            li   t1, 2
            fcvt f2, t1
            fdiv f7, f1, f2
            li   s1, {n}
            # ---- pass s = 1, two butterflies per iteration ----
            mv   t0, s5
            addi t1, t0, 8
            li   t4, {quarter_n}
        p1:
            {p1_a}
            {p1_b}
            addi t0, t0, 32
            addi t1, t1, 32
            addi t4, t4, -1
            bnez t4, p1
            # ---- passes s = 2, 4, ..., n/2 ----
            li   s0, 2
        pass:
            li   s2, 0              # group start i
        group:
            mv   s3, s2             # j
            add  s4, s2, s0         # group end (i + s)
            slli t2, s3, 3
            add  t2, t2, s5         # &re[j]
            slli t3, s0, 3
            add  t3, t3, t2         # &re[j+s]
        inner:
            {g_a}
            {g_b}
            addi t2, t2, 16
            addi t3, t3, 16
            addi s3, s3, 2
            blt  s3, s4, inner
            slli t4, s0, 1
            add  s2, s2, t4
            blt  s2, s1, group
            slli s0, s0, 1
            blt  s0, s1, pass
            # checksum: sum re[]
            mv   t0, s5
            li   t1, {n}
            fcvt f0, zero
        csum:
            fld  f1, 0(t0)
            fadd f0, f0, f1
            addi t0, t0, 8
            addi t1, t1, -1
            bnez t1, csum
            la   t0, sink
            fsd  f0, 0(t0)
            halt
        "#,
        init = init,
        n = n,
        quarter_n = n / 4,
        p1_a = p1_a,
        p1_b = p1_b,
        g_a = g_a,
        g_b = g_b,
    )
}

/// Assemble the program.
pub fn program(n: u64) -> Program {
    super::build(&source(n))
}

/// The embedded initial array: `re[i] = (i & 15) + 1`.
pub fn initial_values(n: u64) -> Vec<f64> {
    (0..n).map(|i| ((i & 15) + 1) as f64).collect()
}

/// Reference checksum: replays the butterfly network exactly (all values
/// stay dyadic rationals, so f64 arithmetic is exact).
pub fn expected_checksum(n: u64) -> f64 {
    let mut re = initial_values(n);
    let w = 0.5;
    let mut s = 1usize;
    while (s as u64) < n {
        let mut i = 0usize;
        while (i as u64) < n {
            for j in i..i + s {
                let t = re[j + s] * w;
                re[j + s] = re[j] - t;
                re[j] += t;
            }
            i += 2 * s;
        }
        s *= 2;
    }
    re.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpe_isa::Emulator;

    #[test]
    fn checksum_matches_reference() {
        for n in [8u64, 64, 128] {
            let mut emu = Emulator::new(program(n));
            emu.run_to_halt(500_000).expect("halts");
            let sink = emu.program().symbol("sink").unwrap();
            let got = f64::from_bits(emu.mem().read_u64(sink));
            assert_eq!(got, expected_checksum(n), "n = {n}");
        }
    }

    #[test]
    fn kernel_is_memory_dense() {
        let mut mem_refs = 0u64;
        let mut insts = 0u64;
        for di in Emulator::new(program(256)) {
            insts += 1;
            if di.inst.op.is_mem() {
                mem_refs += 1;
            }
        }
        let density = mem_refs as f64 / insts as f64;
        assert!(
            density > 0.33,
            "butterflies must be memory-dense: {density:.2}"
        );
    }

    #[test]
    fn late_passes_use_large_strides() {
        // Record the distance between the paired loads of each butterfly.
        let n = 256u64;
        let mut max_stride = 0u64;
        let mut prev: Option<u64> = None;
        for di in Emulator::new(program(n)) {
            if di.inst.op == cpe_isa::Op::Fld {
                if let Some(p) = prev.take() {
                    max_stride = max_stride.max(di.mem_addr.unwrap().abs_diff(p));
                } else {
                    prev = di.mem_addr;
                }
            } else {
                prev = None;
            }
        }
        assert_eq!(
            max_stride,
            (n / 2) * 8,
            "final pass pairs elements n/2 apart"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        source(100);
    }
}
