//! `mpeg_play`-like workload: streaming blocked floating point.
//!
//! Stands in for video decoding: 8×8 coefficient blocks streamed through a
//! multiply-accumulate against a quantisation table, with the scaled
//! coefficients streamed back out. The memory signature is **dense
//! sequential loads and stores with very high spatial locality** — the
//! best case for wide ports, load combining and line buffers. The inner
//! loop is four-way unrolled with two independent accumulators, so the
//! 4-issue machine demands ~1.5 data references per cycle.

use cpe_isa::Program;

/// Doubles per block (an 8×8 coefficient block).
pub const BLOCK_DOUBLES: u64 = 64;

/// One unrolled lane: load input and quant, multiply, accumulate, store.
fn lane(i: u64, acc: &str) -> String {
    let offset = i * 8;
    let (input, quant, product) = match i {
        0 => ("f0", "f1", "f3"),
        1 => ("f5", "f6", "f8"),
        2 => ("f10", "f11", "f12"),
        _ => ("f13", "f14", "f15"),
    };
    format!(
        r#"
            fld  {input}, {offset}(s0)
            fld  {quant}, {offset}(t3)
            fmul {product}, {input}, {quant}
            fadd {acc}, {acc}, {product}
            fsd  {product}, {offset}(s1)
        "#
    )
}

/// Blocks in the embedded, L1-resident frame window (8 KiB of input
/// plus the same of output).
pub const WINDOW_BLOCKS: u64 = 16;

/// The embedded window of input coefficients: 3, 10, 17, ... mod 256.
pub fn input_values(blocks: u64) -> Vec<f64> {
    let mut seq = 3u64;
    (0..blocks.min(WINDOW_BLOCKS) * BLOCK_DOUBLES)
        .map(|_| {
            let v = seq as f64;
            seq = (seq + 7) & 255;
            v
        })
        .collect()
}

/// Generate the assembly for `blocks` coefficient blocks.
pub fn source(blocks: u64) -> String {
    assert!(blocks > 0, "at least one block");
    let n = blocks * BLOCK_DOUBLES;
    let lanes: String = (0..4)
        .map(|i| lane(i, if i % 2 == 0 { "f2" } else { "f9" }))
        .collect();
    let quant_data =
        super::double_directives(&(1..=BLOCK_DOUBLES).map(|k| k as f64).collect::<Vec<_>>());
    let input_data = super::double_directives(&input_values(blocks));
    format!(
        r#"
        # mpeg-like: out[i] = in[i] * quant[i % 64], plus per-block energy
        # accumulated into a global checksum. Inner loop unrolled 4x with
        # two independent accumulators. The decoder cycles over an embedded
        # L1-resident frame window, as a steady-state decoder reworking its
        # reference frame does.
        .data
        output: .space {data_bytes}
        sink:   .space 8
        quant:
{quant_data}
        input:
{input_data}
        .text
        main:
            # stream the blocks
            la   s0, input
            la   s1, output
            la   s2, quant
            li   s3, {blocks}
            li   s4, {window_blocks} # blocks until the window wraps
            fcvt f4, zero            # global checksum
        block:
            li   t1, {inner_iters}
            mv   t3, s2
            fcvt f2, zero            # accumulator A
            fcvt f9, zero            # accumulator B
        inner:
            {lanes}
            addi s0, s0, 32
            addi s1, s1, 32
            addi t3, t3, 32
            addi t1, t1, -1
            bnez t1, inner
            fadd f2, f2, f9
            fadd f4, f4, f2
            # wrap the frame window
            addi s4, s4, -1
            bnez s4, no_wrap
            la   s0, input
            la   s1, output
            li   s4, {window_blocks}
        no_wrap:
            addi s3, s3, -1
            bnez s3, block
            la   t0, sink
            fsd  f4, 0(t0)
            halt
        "#,
        data_bytes = n.min(WINDOW_BLOCKS * BLOCK_DOUBLES) * 8,
        window_blocks = WINDOW_BLOCKS,
        quant_data = quant_data,
        input_data = input_data,
        blocks = blocks,
        inner_iters = BLOCK_DOUBLES / 4,
        lanes = lanes,
    )
}

/// Assemble the program.
pub fn program(blocks: u64) -> Program {
    super::build(&source(blocks))
}

/// The checksum the program should produce, computed independently.
/// All values are small integers, so the f64 arithmetic is exact and the
/// accumulator split does not change the result.
pub fn expected_checksum(blocks: u64) -> f64 {
    let window = input_values(blocks);
    let window_blocks = window.len() as u64 / BLOCK_DOUBLES;
    let mut sum = 0.0;
    for b in 0..blocks {
        let base = ((b % window_blocks) * BLOCK_DOUBLES) as usize;
        for k in 0..BLOCK_DOUBLES as usize {
            sum += window[base + k] * (k + 1) as f64;
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpe_isa::Emulator;

    #[test]
    fn checksum_matches_reference() {
        let blocks = 10;
        let mut emu = Emulator::new(program(blocks));
        emu.run_to_halt(200_000).expect("halts");
        let sink = emu.program().symbol("sink").unwrap();
        let got = f64::from_bits(emu.mem().read_u64(sink));
        assert_eq!(got, expected_checksum(blocks));
    }

    #[test]
    fn hot_loop_is_very_memory_dense() {
        let mut mem_refs = 0u64;
        let mut insts = 0u64;
        let mut in_stream = false;
        for di in Emulator::new(program(5)) {
            if di.inst.op.is_load() {
                in_stream = true; // the init phases perform no loads
            }
            if in_stream {
                insts += 1;
                if di.inst.op.is_mem() {
                    mem_refs += 1;
                }
            }
        }
        let density = mem_refs as f64 / insts as f64;
        assert!(
            density > 0.45,
            "streaming loop must be memory-dense: {density:.2}"
        );
    }

    #[test]
    fn accesses_are_sequential() {
        // Loads strictly alternate the input and quant streams; taking
        // every other fld isolates the input stream, which must advance in
        // small positive steps.
        let all_loads: Vec<u64> = Emulator::new(program(3))
            .filter(|di| di.inst.op == cpe_isa::Op::Fld)
            .map(|di| di.mem_addr.unwrap())
            .collect();
        let input_loads: Vec<u64> = all_loads.iter().copied().step_by(2).collect();
        assert!(input_loads.len() > 150);
        let sequential = input_loads
            .windows(2)
            .filter(|pair| pair[1].wrapping_sub(pair[0]) <= 32)
            .count();
        let ratio = sequential as f64 / (input_loads.len() - 1) as f64;
        assert!(
            ratio > 0.95,
            "streaming workload must be sequential: {ratio:.2}"
        );
    }
}
