//! `matmul` workload (extended suite): dense matrix multiply.
//!
//! The classic port-hungry FP kernel: an i-k-j loop order keeps one `A`
//! element in a register while streaming a `B` row against a `C` row,
//! four elements per unrolled iteration — 12 memory references per 25
//! instructions, all L1-resident. Not part of the paper-analog six (it
//! has no mid-90s SimOS counterpart in the reconstruction), but included
//! as the extended suite's bandwidth stress test.

use cpe_isa::Program;

/// One unrolled j-lane: `C[j] += a * B[j]` at byte offset `off`.
fn lane(off: u64, f: [&str; 3]) -> String {
    let [b, c, t] = f;
    format!(
        r#"
            fld  {b}, {off}(t2)
            fld  {c}, {off}(t3)
            fmul {t}, {b}, f1
            fadd {c}, {c}, {t}
            fsd  {c}, {off}(t3)
        "#
    )
}

/// The embedded `A` matrix: `A[i][k] = ((i + 2k) & 7) + 1`.
pub fn a_values(n: u64) -> Vec<f64> {
    (0..n * n)
        .map(|idx| {
            let (i, k) = (idx / n, idx % n);
            (((i + 2 * k) & 7) + 1) as f64
        })
        .collect()
}

/// The embedded `B` matrix: `B[k][j] = ((3k + j) & 7) + 1`.
pub fn b_values(n: u64) -> Vec<f64> {
    (0..n * n)
        .map(|idx| {
            let (k, j) = (idx / n, idx % n);
            (((3 * k + j) & 7) + 1) as f64
        })
        .collect()
}

/// Generate the assembly for an `n`×`n` multiply.
///
/// # Panics
///
/// Panics unless `n` is a positive multiple of 4.
pub fn source(n: u64) -> String {
    assert!(
        n > 0 && n.is_multiple_of(4),
        "n must be a positive multiple of 4"
    );
    let a_data = super::double_directives(&a_values(n));
    let b_data = super::double_directives(&b_values(n));
    let lanes: String = [
        lane(0, ["f2", "f3", "f4"]),
        lane(8, ["f5", "f6", "f7"]),
        lane(16, ["f8", "f9", "f10"]),
        lane(24, ["f11", "f12", "f13"]),
    ]
    .concat();
    format!(
        r#"
        # matmul: C = A x B (i-k-j order, j unrolled by four).
        .data
        c_mat: .space {mat_bytes}
        sink:  .space 8
        a_mat:
{a_data}
        b_mat:
{b_data}
        .text
        main:
            la   s1, a_mat
            la   s5, b_mat
            la   s6, c_mat
            li   s3, 0              # i
        iloop:
            li   s4, 0              # k
        kloop:
            # a = A[i*n + k]
            li   t4, {n}
            mul  t0, s3, t4
            add  t0, t0, s4
            slli t0, t0, 3
            add  t0, t0, s1
            fld  f1, 0(t0)
            # t2 = &B[k*n], t3 = &C[i*n]
            mul  t2, s4, t4
            slli t2, t2, 3
            add  t2, t2, s5
            mul  t3, s3, t4
            slli t3, t3, 3
            add  t3, t3, s6
            li   t1, {n_over_4}
        jloop:
            {lanes}
            addi t2, t2, 32
            addi t3, t3, 32
            addi t1, t1, -1
            bnez t1, jloop
            addi s4, s4, 1
            li   t4, {n}
            blt  s4, t4, kloop
            addi s3, s3, 1
            blt  s3, t4, iloop
            # checksum: sum C
            la   t0, c_mat
            li   t1, {n2}
            fcvt f0, zero
        csum:
            fld  f1, 0(t0)
            fadd f0, f0, f1
            addi t0, t0, 8
            addi t1, t1, -1
            bnez t1, csum
            la   t0, sink
            fsd  f0, 0(t0)
            halt
        "#,
        mat_bytes = n * n * 8,
        a_data = a_data,
        b_data = b_data,
        n = n,
        n_over_4 = n / 4,
        n2 = n * n,
        lanes = lanes,
    )
}

/// Assemble the program.
pub fn program(n: u64) -> Program {
    super::build(&source(n))
}

/// Reference checksum: sum of all elements of `C = A × B` (exact in f64:
/// entries are sums of at most `n` products of values ≤ 8).
pub fn expected_checksum(n: u64) -> f64 {
    let a = a_values(n);
    let b = b_values(n);
    let mut sum = 0.0;
    for i in 0..n as usize {
        for j in 0..n as usize {
            let mut acc = 0.0;
            for k in 0..n as usize {
                acc += a[i * n as usize + k] * b[k * n as usize + j];
            }
            sum += acc;
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpe_isa::Emulator;

    #[test]
    fn checksum_matches_reference() {
        let n = 12;
        let mut emu = Emulator::new(program(n));
        emu.run_to_halt(2_000_000).expect("halts");
        let sink = emu.program().symbol("sink").unwrap();
        let got = f64::from_bits(emu.mem().read_u64(sink));
        assert_eq!(got, expected_checksum(n));
    }

    #[test]
    fn c_entries_match_direct_multiplication() {
        let n = 8u64;
        let mut emu = Emulator::new(program(n));
        emu.run_to_halt(2_000_000).expect("halts");
        let c = emu.program().symbol("c_mat").unwrap();
        let a = a_values(n);
        let b = b_values(n);
        for i in 0..n {
            for j in 0..n {
                let expected: f64 = (0..n)
                    .map(|k| a[(i * n + k) as usize] * b[(k * n + j) as usize])
                    .sum();
                let got = f64::from_bits(emu.mem().read_u64(c + (i * n + j) * 8));
                assert_eq!(got, expected, "C[{i}][{j}]");
            }
        }
    }

    #[test]
    fn inner_loop_is_memory_dominated() {
        let mut mem_refs = 0u64;
        let mut insts = 0u64;
        for di in Emulator::new(program(16)) {
            insts += 1;
            if di.inst.op.is_mem() {
                mem_refs += 1;
            }
        }
        let density = mem_refs as f64 / insts as f64;
        assert!(
            density > 0.4,
            "matmul must be memory-dominated: {density:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn rejects_bad_sizes() {
        source(10);
    }
}
