//! `db`-like workload: binary-search-tree build and probe.
//!
//! Stands in for database/index code: dependent pointer chasing through a
//! tree whose nodes scatter across memory. Every step of a lookup is a
//! load whose *address* depends on the previous load — the
//! latency-bound, port-light pattern that gains little from wide ports
//! but stresses the load queue and non-blocking misses.

use cpe_isa::Program;

/// Bytes per tree node: key, left index, right index, padding.
pub const NODE_BYTES: u64 = 32;

/// Key mask (20-bit keys).
const KEY_MASK: u64 = 0xfffff;

/// Generate the assembly: insert `inserts` keys, then probe `lookups`
/// keys drawn from the same generator stream.
pub fn source(inserts: u64, lookups: u64) -> String {
    assert!(
        inserts >= 1 && lookups >= 1,
        "need at least one insert and lookup"
    );
    format!(
        r#"
        # db-like: array-backed BST. Node layout: key @0, left @8, right @16.
        # Index 0 is the root; index 0 as a child pointer means "none".
        .data
        nodes: .space {nodes_bytes}
        sink:  .space 16
        .text
        main:
            la   s0, nodes
            li   s2, {inserts}
            li   s3, 424242001        # xorshift state
            # root node from the first key
            slli t5, s3, 13
            xor  s3, s3, t5
            srli t5, s3, 7
            xor  s3, s3, t5
            slli t5, s3, 17
            xor  s3, s3, t5
            andi t0, s3, {key_mask}
            sd   t0, 0(s0)
            sd   zero, 8(s0)
            sd   zero, 16(s0)
            li   s1, 1                # next free node index
        bloop:
            bge  s1, s2, build_done
            slli t5, s3, 13
            xor  s3, s3, t5
            srli t5, s3, 7
            xor  s3, s3, t5
            slli t5, s3, 17
            xor  s3, s3, t5
            andi t0, s3, {key_mask}   # new key
            li   t1, 0                # cur = root
        walk:
            slli t2, t1, 5
            add  t2, t2, s0
            ld   t3, 0(t2)            # cur key
            beq  t0, t3, bnext        # duplicate: drop
            blt  t0, t3, goleft
            ld   t5, 16(t2)
            bnez t5, wright
            sd   s1, 16(t2)
            j    newnode
        wright:
            mv   t1, t5
            j    walk
        goleft:
            ld   t5, 8(t2)
            bnez t5, wleft
            sd   s1, 8(t2)
            j    newnode
        wleft:
            mv   t1, t5
            j    walk
        newnode:
            slli t2, s1, 5
            add  t2, t2, s0
            sd   t0, 0(t2)
            sd   zero, 8(t2)
            sd   zero, 16(t2)
            addi s1, s1, 1
        bnext:
            j    bloop
        build_done:
            li   s4, {lookups}
            li   s5, 0                # found count
        lloop:
            slli t5, s3, 13
            xor  s3, s3, t5
            srli t5, s3, 7
            xor  s3, s3, t5
            slli t5, s3, 17
            xor  s3, s3, t5
            andi t0, s3, {key_mask}
            li   t1, 0
        lwalk:
            slli t2, t1, 5
            add  t2, t2, s0
            ld   t3, 0(t2)
            beq  t0, t3, lfound
            blt  t0, t3, lleft
            ld   t1, 16(t2)
            bnez t1, lwalk
            j    lnext
        lleft:
            ld   t1, 8(t2)
            bnez t1, lwalk
            j    lnext
        lfound:
            addi s5, s5, 1
        lnext:
            addi s4, s4, -1
            bnez s4, lloop
            la   t0, sink
            sd   s5, 0(t0)
            sd   s1, 8(t0)
            halt
        "#,
        nodes_bytes = inserts * NODE_BYTES,
        inserts = inserts,
        lookups = lookups,
        key_mask = KEY_MASK,
    )
}

/// Assemble the program.
pub fn program(inserts: u64, lookups: u64) -> Program {
    super::build(&source(inserts, lookups))
}

/// Reference model: replay the exact build/probe sequence, returning
/// `(nodes_created, lookups_found)`.
///
/// The assembly keeps drawing keys until `inserts` *nodes* exist
/// (duplicate keys consume a draw without creating a node), so
/// `nodes_created == inserts` by construction; it is returned anyway to
/// keep the test honest about what it checks.
pub fn expected_counts(inserts: u64, lookups: u64) -> (u64, u64) {
    let mut state = 424242001u64;
    let mut next_key = || {
        state = super::xorshift64(state);
        state & KEY_MASK
    };
    let mut keys = std::collections::BTreeSet::new();
    keys.insert(next_key()); // the root
    let mut created = 1u64;
    while created < inserts {
        if keys.insert(next_key()) {
            created += 1;
        }
    }
    let mut found = 0u64;
    for _ in 0..lookups {
        if keys.contains(&next_key()) {
            found += 1;
        }
    }
    (created, found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpe_isa::Emulator;

    #[test]
    fn build_and_probe_counts_match_reference() {
        let (inserts, lookups) = (300, 300);
        let mut emu = Emulator::new(program(inserts, lookups));
        emu.run_to_halt(5_000_000).expect("halts");
        let sink = emu.program().symbol("sink").unwrap();
        let (created, found) = expected_counts(inserts, lookups);
        assert_eq!(emu.mem().read_u64(sink + 8), created, "node count");
        assert_eq!(emu.mem().read_u64(sink), found, "lookup hits");
    }

    #[test]
    fn lookups_chase_dependent_pointers() {
        // Each walk step loads the node key and then a child pointer
        // within the same node (near), then jumps to a node whose address
        // came from that load (far). Pointer chasing shows up as a large
        // population of long inter-load jumps.
        let mut jumps = 0u64;
        let mut near = 0u64;
        let mut prev: Option<u64> = None;
        for di in Emulator::new(program(400, 200)) {
            if di.inst.op.is_load() {
                if let Some(p) = prev {
                    if di.mem_addr.unwrap().abs_diff(p) > 256 {
                        jumps += 1;
                    } else {
                        near += 1;
                    }
                }
                prev = di.mem_addr;
            }
        }
        // The tree's upper levels sit in low, clustered node indices, so
        // near transitions legitimately outnumber far ones; what marks
        // pointer chasing is a large absolute population of long jumps.
        assert!(jumps > 1_000, "tree walks must jump between nodes: {jumps}");
        assert!(
            jumps * 5 > near,
            "far jumps must be a real share: {jumps} far vs {near} near"
        );
    }
}
