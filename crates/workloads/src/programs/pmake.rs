//! `pmake`-like workload: a syscall-heavy build driver.
//!
//! Stands in for the paper's OS-intensive workloads (program development /
//! `pmake`): bursts of user computation — scanning "source files" and
//! updating a rule table — punctuated by frequent system calls. On its own
//! the user side is a memory-dense scanner; combined with the
//! kernel-activity injector (which splices a handler after every
//! `syscall`) it yields the high kernel fractions the paper's full-system
//! traces showed.

use cpe_isa::Program;

/// Tokens scanned per simulated "file".
pub const TOKENS_PER_FILE: u64 = 64;

/// Rule-table slots (8 bytes each).
pub const RULE_SLOTS: u64 = 2048;

/// Generate the assembly processing `files` files.
pub fn source(files: u64) -> String {
    assert!(files >= 1, "need at least one file");
    format!(
        r#"
        # pmake-like: generate a token stream once, then per "file" scan a
        # window of it, folding each token into a rule table, and issue
        # the write/stat syscalls a build driver would.
        .data
        rules:  .space {rules_bytes}
        tokens: .space {tokens_bytes}
        sink:   .space 16
        .text
        main:
            # Phase 1: the token stream (wraps across files).
            la   t0, tokens
            li   s1, 1122334455
            li   t2, {window_tokens}
        gen:
            slli t1, s1, 13
            xor  s1, s1, t1
            srli t1, s1, 7
            xor  s1, s1, t1
            slli t1, s1, 17
            xor  s1, s1, t1
            sd   s1, 0(t0)
            addi t0, t0, 8
            addi t2, t2, -1
            bnez t2, gen
            # Phase 2: scan.
            li   s0, {files}
            la   s2, rules
            li   s3, 0                 # tokens processed
            li   s6, 1640531527
            la   s5, tokens
        file:
            li   s4, {tokens_per_file}
        token:
            ld   t2, 0(s5)             # token A
            mul  t0, t2, s6
            srli t0, t0, 18
            andi t0, t0, {rule_mask}
            slli t0, t0, 3
            add  t0, t0, s2
            ld   t3, 0(t0)             # rule entry A
            add  t3, t3, t2
            sd   t3, 0(t0)
            ld   a2, 8(s5)             # token B
            mul  a0, a2, s6
            srli a0, a0, 18
            andi a0, a0, {rule_mask}
            slli a0, a0, 3
            add  a0, a0, s2
            ld   a3, 0(a0)             # rule entry B
            add  a3, a3, a2
            sd   a3, 0(a0)
            addi s5, s5, 16
            addi s3, s3, 2
            addi s4, s4, -2
            bnez s4, token
            # wrap the token window every 8 files
            li   t4, 7
            and  t4, s0, t4
            bnez t4, no_wrap
            la   s5, tokens
        no_wrap:
            # "write the object file"
            li   a7, 1
            li   a0, 4096
            syscall
            # "stat the next source"
            li   a7, 3
            syscall
            addi s0, s0, -1
            bnez s0, file
            la   t0, sink
            sd   s3, 0(t0)
            halt
        "#,
        rules_bytes = RULE_SLOTS * 8,
        tokens_bytes = 8 * TOKENS_PER_FILE * 8, // an 8-file window
        window_tokens = 8 * TOKENS_PER_FILE,
        files = files,
        tokens_per_file = TOKENS_PER_FILE,
        rule_mask = RULE_SLOTS - 1,
    )
}

/// Assemble the program.
pub fn program(files: u64) -> Program {
    super::build(&source(files))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpe_isa::{Emulator, Op};

    #[test]
    fn token_count_and_syscall_rate() {
        let files = 20;
        let mut syscalls = 0u64;
        let mut insts = 0u64;
        let mut emu = Emulator::new(program(files));
        while let Some(di) = emu.step().expect("executes") {
            insts += 1;
            if di.inst.op == Op::Syscall {
                syscalls += 1;
            }
        }
        assert_eq!(syscalls, files * 2);
        let sink = emu.program().symbol("sink").unwrap();
        assert_eq!(emu.mem().read_u64(sink), files * TOKENS_PER_FILE);
        // Syscall density: one per few hundred instructions, far denser
        // than the compute workloads.
        assert!(
            insts / syscalls < 600,
            "{insts} insts / {syscalls} syscalls"
        );
    }

    #[test]
    fn scanner_is_memory_dense() {
        let mut mem_refs = 0u64;
        let mut insts = 0u64;
        let mut in_scan = false;
        for di in Emulator::new(program(10)) {
            if di.inst.op.is_load() {
                in_scan = true;
            }
            if in_scan {
                insts += 1;
                if di.inst.op.is_mem() {
                    mem_refs += 1;
                }
            }
        }
        let density = mem_refs as f64 / insts as f64;
        assert!(density > 0.2, "scanner must be memory-dense: {density:.2}");
    }

    #[test]
    fn token_window_wraps_not_overruns() {
        // Addresses of token loads must stay inside the tokens array.
        let mut emu = Emulator::new(program(30));
        let tokens = emu.program().symbol("tokens").unwrap();
        let end = tokens + 8 * TOKENS_PER_FILE * 8;
        emu.run_to_halt(10_000_000).expect("halts");
        // Re-run collecting load addresses (fresh emulator, same program).
        for di in Emulator::new(program(30)) {
            if di.inst.op.is_load() {
                let addr = di.mem_addr.unwrap();
                if (tokens..end + 8).contains(&addr) {
                    assert!(addr < end, "token load overran the window: {addr:#x}");
                }
            }
        }
    }
}
