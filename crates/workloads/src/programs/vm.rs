//! `vm` workload (extended suite): a bytecode interpreter.
//!
//! Stands in for interpreter/compiler-class code (`gcc`, `perl`): a
//! threaded dispatch loop whose **indirect jump** changes target with
//! every bytecode — the pattern that punishes BTBs — plus a software
//! operand stack generating dependent load/store pairs. The interpreted
//! program is an accumulation loop embedded as data.

use cpe_isa::Program;

/// Bytecode opcodes (one 8-byte word each; operands follow as words).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bytecode {
    /// Push the next word.
    Push(u64),
    /// Pop two, push their sum.
    Add,
    /// Pop two, push (second - top).
    Sub,
    /// Duplicate the top of stack.
    Dup,
    /// Pop a word into global `idx`.
    Store(u64),
    /// Push global `idx`.
    Load(u64),
    /// Pop; jump to absolute word index when nonzero.
    Jnz(u64),
    /// Stop; `globals[0]` is the result.
    Halt,
}

impl Bytecode {
    fn emit(self, out: &mut Vec<u64>) {
        match self {
            Bytecode::Push(value) => out.extend([0, value]),
            Bytecode::Add => out.push(1),
            Bytecode::Sub => out.push(2),
            Bytecode::Dup => out.push(3),
            Bytecode::Store(idx) => out.extend([4, idx]),
            Bytecode::Load(idx) => out.extend([5, idx]),
            Bytecode::Jnz(target) => out.extend([6, target]),
            Bytecode::Halt => out.push(7),
        }
    }
}

/// The interpreted program: `globals[0] = sum(1..=iterations)` via a
/// countdown loop.
pub fn bytecode(iterations: u64) -> Vec<u64> {
    let mut words = Vec::new();
    // globals[1] = iterations; globals[0] = 0
    Bytecode::Push(iterations).emit(&mut words);
    Bytecode::Store(1).emit(&mut words);
    Bytecode::Push(0).emit(&mut words);
    Bytecode::Store(0).emit(&mut words);
    let loop_start = words.len() as u64;
    // globals[0] += globals[1]
    Bytecode::Load(0).emit(&mut words);
    Bytecode::Load(1).emit(&mut words);
    Bytecode::Add.emit(&mut words);
    Bytecode::Store(0).emit(&mut words);
    // globals[1] -= 1
    Bytecode::Load(1).emit(&mut words);
    Bytecode::Push(1).emit(&mut words);
    Bytecode::Sub.emit(&mut words);
    Bytecode::Dup.emit(&mut words);
    Bytecode::Store(1).emit(&mut words);
    // loop while nonzero (the Dup left the counter on the stack)
    Bytecode::Jnz(loop_start).emit(&mut words);
    Bytecode::Halt.emit(&mut words);
    words
}

/// Reference interpretation of [`bytecode`]: the final `globals[0]`.
pub fn expected_result(iterations: u64) -> u64 {
    // sum(1..=iterations) via the same arithmetic the VM performs.
    iterations * (iterations + 1) / 2
}

/// Generate the host assembly: jump-table threaded dispatch over the
/// embedded bytecode.
pub fn source(iterations: u64) -> String {
    assert!(iterations >= 1, "at least one iteration");
    let code = super::quad_directives(&bytecode(iterations));
    format!(
        r#"
        # vm: threaded bytecode interpreter. Dispatch is one indirect
        # jump per bytecode through a runtime-built handler table.
        .data
        jt:      .space 64          # 8 handler addresses
        globals: .space 256
        stack:   .space 2048
        sink:    .space 8
        code:
{code}
        .text
        main:
            # build the jump table
            la   t0, jt
            la   t1, op_push
            sd   t1, 0(t0)
            la   t1, op_add
            sd   t1, 8(t0)
            la   t1, op_sub
            sd   t1, 16(t0)
            la   t1, op_dup
            sd   t1, 24(t0)
            la   t1, op_store
            sd   t1, 32(t0)
            la   t1, op_load
            sd   t1, 40(t0)
            la   t1, op_jnz
            sd   t1, 48(t0)
            la   t1, op_halt
            sd   t1, 56(t0)
            la   s0, code           # vm pc
            la   s1, stack          # vm sp (grows up)
            la   s2, globals
            la   s3, jt
            la   s7, code           # code base for absolute jumps
        dispatch:
            ld   t0, 0(s0)
            addi s0, s0, 8
            slli t0, t0, 3
            add  t0, t0, s3
            ld   t1, 0(t0)
            jr   t1
        op_push:
            ld   t2, 0(s0)
            addi s0, s0, 8
            sd   t2, 0(s1)
            addi s1, s1, 8
            j    dispatch
        op_add:
            addi s1, s1, -8
            ld   t2, 0(s1)
            ld   t3, -8(s1)
            add  t3, t3, t2
            sd   t3, -8(s1)
            j    dispatch
        op_sub:
            addi s1, s1, -8
            ld   t2, 0(s1)
            ld   t3, -8(s1)
            sub  t3, t3, t2
            sd   t3, -8(s1)
            j    dispatch
        op_dup:
            ld   t2, -8(s1)
            sd   t2, 0(s1)
            addi s1, s1, 8
            j    dispatch
        op_store:
            ld   t2, 0(s0)
            addi s0, s0, 8
            addi s1, s1, -8
            ld   t3, 0(s1)
            slli t2, t2, 3
            add  t2, t2, s2
            sd   t3, 0(t2)
            j    dispatch
        op_load:
            ld   t2, 0(s0)
            addi s0, s0, 8
            slli t2, t2, 3
            add  t2, t2, s2
            ld   t3, 0(t2)
            sd   t3, 0(s1)
            addi s1, s1, 8
            j    dispatch
        op_jnz:
            ld   t2, 0(s0)
            addi s0, s0, 8
            addi s1, s1, -8
            ld   t3, 0(s1)
            beqz t3, dispatch
            slli t2, t2, 3
            add  s0, t2, s7
            j    dispatch
        op_halt:
            ld   a0, 0(s2)
            la   t0, sink
            sd   a0, 0(t0)
            halt
        "#,
        code = code,
    )
}

/// Assemble the program.
pub fn program(iterations: u64) -> Program {
    super::build(&source(iterations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpe_isa::{Emulator, Op};

    #[test]
    fn interprets_the_accumulation_loop_correctly() {
        for iterations in [1u64, 7, 100] {
            let mut emu = Emulator::new(program(iterations));
            emu.run_to_halt(5_000_000).expect("halts");
            let sink = emu.program().symbol("sink").unwrap();
            assert_eq!(
                emu.mem().read_u64(sink),
                expected_result(iterations),
                "iterations = {iterations}"
            );
        }
    }

    #[test]
    fn dispatch_is_indirect_jump_dominated() {
        let mut indirect = 0u64;
        let mut insts = 0u64;
        for di in Emulator::new(program(100)) {
            insts += 1;
            if di.inst.op == Op::Jalr {
                indirect += 1;
            }
        }
        // One indirect dispatch per interpreted bytecode.
        assert!(indirect > 900, "dispatches: {indirect}");
        assert!(
            insts / indirect < 20,
            "dispatch density must be interpreter-like: {insts}/{indirect}"
        );
    }

    #[test]
    fn dispatch_targets_vary() {
        // The single dispatch-site jalr jumps to many distinct handlers —
        // the BTB-hostile pattern this workload exists to provide.
        let mut targets = std::collections::HashSet::new();
        let mut dispatch_pc = None;
        for di in Emulator::new(program(50)) {
            if di.inst.op == Op::Jalr {
                dispatch_pc.get_or_insert(di.pc);
                assert_eq!(Some(di.pc), dispatch_pc, "one dispatch site");
                targets.insert(di.next_pc);
            }
        }
        assert!(targets.len() >= 6, "handlers reached: {}", targets.len());
    }
}
